//! The static dependency audit: executable proofs about the schedule,
//! plus reporting for the `srna analyze` subcommand.
//!
//! The wavefront backend's correctness rests on one inequality: along
//! every dependency edge `(k1, k2) → (c1, c2)` of the slice graph
//! (`c1` strictly under `k1`, `c2` strictly under `k2` — the edge set
//! `depgraph`'s slice graph renders), the level function
//! `max(depth₁, depth₂)` strictly decreases. [`audit_levels`] checks
//! that inequality over *every* edge of a concrete input pair, turning
//! the prose proof in `mcos_parallel::wavefront` into a per-input
//! invariant the CLI can re-establish on demand.

use mcos_core::preprocess::Preprocessed;
use mcos_parallel::wavefront;

/// One dependency edge whose level fails to strictly decrease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelViolation {
    /// The reading slice.
    pub from: (u32, u32),
    /// The dependency it reads.
    pub to: (u32, u32),
    /// `level(from)`.
    pub from_level: u32,
    /// `level(to)` — violating means `to_level >= from_level`.
    pub to_level: u32,
}

/// Result of the level audit on one input pair.
#[derive(Debug, Clone)]
pub struct LevelAudit {
    /// Slices (arc pairs) audited.
    pub slices: u64,
    /// Dependency edges audited.
    pub edges: u64,
    /// Levels the wavefront schedule uses (`max depth + 1`, 0 when a
    /// structure has no arcs).
    pub levels: u32,
    /// Barriers the row schedule would use for the same work (`A₁`).
    pub row_barriers: u32,
    /// Every edge along which the level fails to strictly decrease
    /// (empty = the wavefront schedule is sound for this input).
    pub violations: Vec<LevelViolation>,
}

impl LevelAudit {
    /// True when every edge strictly decreases the level.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits every dependency edge of the slice graph of `(p1, p2)`:
/// `level(k1, k2) = max(depth₁[k1], depth₂[k2])` must strictly decrease
/// from each slice to each of its dependencies.
pub fn audit_levels(p1: &Preprocessed, p2: &Preprocessed) -> LevelAudit {
    let mut edges = 0u64;
    let mut violations = Vec::new();
    for k1 in 0..p1.num_arcs() {
        let (lo1, hi1) = p1.under_range[k1 as usize];
        for k2 in 0..p2.num_arcs() {
            let (lo2, hi2) = p2.under_range[k2 as usize];
            let level = p1.level_of(k1).max(p2.level_of(k2));
            for c1 in lo1..hi1 {
                for c2 in lo2..hi2 {
                    edges += 1;
                    let dep_level = p1.level_of(c1).max(p2.level_of(c2));
                    if dep_level >= level {
                        violations.push(LevelViolation {
                            from: (k1, k2),
                            to: (c1, c2),
                            from_level: level,
                            to_level: dep_level,
                        });
                    }
                }
            }
        }
    }
    LevelAudit {
        slices: p1.num_arcs() as u64 * p2.num_arcs() as u64,
        edges,
        levels: wavefront::num_levels(p1, p2),
        row_barriers: p1.num_arcs(),
        violations,
    }
}

/// Synchronization points each backend pays for stage one of this input
/// pair, as `(backend name, barrier count)`. The row-synchronized
/// backends (mpi-sim, worker-pool, rayon, manager-worker) pay one
/// barrier per arc of `S₁`; the wavefront pays one per dependency
/// level.
pub fn barrier_counts(p1: &Preprocessed, p2: &Preprocessed) -> Vec<(&'static str, u32)> {
    let rows = p1.num_arcs();
    vec![
        ("mpi-sim", rows),
        ("worker-pool", rows),
        ("rayon", rows),
        ("manager-worker", rows),
        ("wavefront", wavefront::num_levels(p1, p2)),
    ]
}

/// One atomic-ordering use site in workspace source.
#[derive(Debug, Clone)]
pub struct OrderingUse {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which `Ordering::` variant appears.
    pub ordering: String,
    /// Whether an adjacent `// ORDERING:` justification was found.
    pub justified: bool,
    /// The source line, trimmed.
    pub context: String,
}

/// Scans non-shim workspace crates for `Ordering::` use sites, pairing
/// each with whether a `// ORDERING:` justification is adjacent. Shares
/// the scanning machinery (and the skip rules for shims, tests, and
/// comments) with the workspace lint.
pub fn ordering_inventory(root: &std::path::Path) -> std::io::Result<Vec<OrderingUse>> {
    let mut uses = Vec::new();
    for file in crate::lint::workspace_sources(root)? {
        let text = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        let lines: Vec<&str> = text.lines().collect();
        let test_code = crate::lint::test_code_mask(&lines);
        for (i, line) in lines.iter().enumerate() {
            if test_code[i] || crate::lint::is_comment_line(line) {
                continue;
            }
            let Some(pos) = line.find("Ordering::") else {
                continue;
            };
            let variant: String = line[pos + "Ordering::".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if variant.is_empty() {
                continue;
            }
            uses.push(OrderingUse {
                file: rel.clone(),
                line: i + 1,
                ordering: variant,
                justified: crate::lint::has_adjacent_marker(&lines, i, "// ORDERING:"),
                context: line.trim().to_string(),
            });
        }
    }
    Ok(uses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn random_structures_audit_sound() {
        for seed in 0..8 {
            let s1 = generate::random_structure(80, 0.9, seed);
            let s2 = generate::random_structure(70, 0.8, seed + 100);
            let p1 = Preprocessed::build(&s1);
            let p2 = Preprocessed::build(&s2);
            let audit = audit_levels(&p1, &p2);
            assert!(audit.is_sound(), "seed {seed}: {:?}", audit.violations);
            assert_eq!(audit.slices, p1.num_arcs() as u64 * p2.num_arcs() as u64);
        }
    }

    #[test]
    fn hairpin_chain_audit_shows_barrier_win() {
        // 12 hairpin groups of stem depth 3: 36 rows but only 3 levels.
        let s = generate::hairpin_chain(12, 3, 2);
        let p = Preprocessed::build(&s);
        let audit = audit_levels(&p, &p);
        assert!(audit.is_sound());
        assert_eq!(audit.row_barriers, 36);
        assert_eq!(audit.levels, 3);
        let counts = barrier_counts(&p, &p);
        assert_eq!(counts.last().unwrap().1, 3);
        assert!(counts.iter().take(4).all(|&(_, c)| c == 36));
    }

    #[test]
    fn empty_structures_audit() {
        let p = Preprocessed::build(&dot_bracket::parse("....").unwrap());
        let audit = audit_levels(&p, &p);
        assert!(audit.is_sound());
        assert_eq!(audit.edges, 0);
        assert_eq!(audit.levels, 0);
    }

    #[test]
    fn a_corrupted_level_function_would_be_caught() {
        // Sanity-check the audit logic itself: feed it a Preprocessed
        // whose depth table is flattened to all zeros — every edge then
        // fails the strict decrease and must be reported.
        let s = generate::worst_case_nested(4);
        let mut p = Preprocessed::build(&s);
        p.depth = vec![0; p.depth.len()];
        let audit = audit_levels(&p, &p);
        assert!(!audit.is_sound());
        assert_eq!(audit.violations.len() as u64, audit.edges);
    }
}

//! Workspace lint runner: scans `crates/*/src` (excluding shims and
//! test modules) for unjustified relaxed orderings, unjustified uses of
//! the unsafe keyword, and library-code `unwrap` calls, honoring the
//! reviewed allowlist in `lint-allow.txt`.
//!
//! Usage: `cargo run -p analysis --bin workspace-lint [-- --root PATH]
//! [--allow PATH]`. Exits non-zero when any finding survives the
//! allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::lint::{lint_workspace, stale_allowlist_entries, Allowlist};

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut allow_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage("--allow needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "workspace-lint: cannot resolve root {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("workspace-lint: bad allowlist: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Stale entries fail the run even when the scan itself is clean:
    // an exemption that exempts nothing would silently cover a future
    // regression at that (rule, path).
    let stale = match stale_allowlist_entries(&root, &allow) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("workspace-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !stale.is_empty() {
        for (rule, path) in &stale {
            println!("stale allowlist entry: {rule} {path}");
        }
        println!(
            "workspace-lint: {} stale allowlist entr{} in {}; remove \
             them (nothing at those paths needs the exemption any more)",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
            allow_path.display()
        );
        return ExitCode::FAILURE;
    }

    match lint_workspace(&root, &allow) {
        Ok(findings) if findings.is_empty() => {
            println!("workspace-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "workspace-lint: {} finding(s); justify with an adjacent \
                 // ORDERING: / // SAFETY: comment or add a reviewed entry \
                 to {}",
                findings.len(),
                allow_path.display()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("workspace-lint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("workspace-lint: {err}");
    }
    eprintln!("usage: workspace-lint [--root PATH] [--allow PATH]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

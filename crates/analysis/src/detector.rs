//! The dynamic race detector: traced backend runs × thread counts ×
//! delay-injection seeds, each replayed through the vector-clock
//! checker.
//!
//! One *cell* of the matrix is: build a [`TraceLog`] whose delay hook
//! is a seeded [`par_sim::jitter::DelayInjector`], run the traced twin
//! of one backend at one thread count, replay the log with
//! [`check_trace`], and cross-check the run's score and memo against
//! the sequential SRNA2 reference. Delay injection perturbs the real
//! thread interleavings, so different seeds explore different
//! adversarial timings of the same schedule; the happens-before verdict
//! is about the *recorded edges*, so a schedule whose correctness
//! depends on lucky timing (rather than on its synchronization) is
//! flagged on whichever seed breaks the luck.

use mcos_core::preprocess::Preprocessed;
use mcos_core::srna2;
use mcos_core::trace::TraceLog;
use mcos_parallel::traced::prna_traced_preprocessed;
use mcos_parallel::Backend;
use par_sim::jitter::DelayInjector;
use rna_structure::ArcStructure;

use crate::vc::{check_trace, DependencyCone, Violation};

/// Outcome of one matrix cell.
#[derive(Debug, Clone)]
pub struct RaceRun {
    /// The engine composition exercised.
    pub backend: Backend,
    /// Worker threads (for manager-worker: workers; one manager rank is
    /// added on top).
    pub threads: u32,
    /// Delay-injection seed.
    pub seed: u64,
    /// Events recorded by the traced run.
    pub events: usize,
    /// Violations the replay found (empty = clean).
    pub violations: Vec<Violation>,
    /// Whether score and memo matched the sequential reference.
    pub result_ok: bool,
}

/// Outcome of a full detector sweep.
#[derive(Debug, Clone)]
pub struct DetectorReport {
    /// One entry per (backend, threads, seed) cell.
    pub runs: Vec<RaceRun>,
}

impl DetectorReport {
    /// Total violations across all runs.
    pub fn total_violations(&self) -> usize {
        self.runs.iter().map(|r| r.violations.len()).sum()
    }

    /// True when every run replayed clean *and* reproduced the
    /// sequential result.
    pub fn all_clean(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.violations.is_empty() && r.result_ok)
    }
}

/// Runs the detector matrix: every backend × every thread count ×
/// every seed.
pub fn detect_races(
    s1: &ArcStructure,
    s2: &ArcStructure,
    backends: &[Backend],
    thread_counts: &[u32],
    seeds: &[u64],
) -> DetectorReport {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let reference = srna2::run_preprocessed(&p1, &p2);
    let cone = DependencyCone { p1: &p1, p2: &p2 };

    let mut runs = Vec::with_capacity(backends.len() * thread_counts.len() * seeds.len());
    for &backend in backends {
        for &threads in thread_counts {
            for &seed in seeds {
                let injector = DelayInjector::new(seed);
                let log = TraceLog::with_delay(Box::new(move || injector.delay()));
                let out = prna_traced_preprocessed(&p1, &p2, backend, threads, &log);
                let events = log.take_events();
                let report = check_trace(&events, Some(cone));
                runs.push(RaceRun {
                    backend,
                    threads,
                    seed,
                    events: events.len(),
                    violations: report.violations,
                    result_ok: out.score == reference.score && out.memo == reference.memo,
                });
            }
        }
    }
    DetectorReport { runs }
}

/// The acceptance matrix of ISSUE 2, widened by the engine
/// unification: every legacy backend composition at 1/2/4/8 threads,
/// `seeds` delay-injection seeds each.
pub fn acceptance_matrix(s1: &ArcStructure, s2: &ArcStructure, seeds: u64) -> DetectorReport {
    let seed_list: Vec<u64> = (0..seeds).collect();
    detect_races(s1, s2, &Backend::ALL, &[1, 2, 4, 8], &seed_list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_parallel::traced::wavefront_traced_without_level_barrier;
    use rna_structure::generate;

    #[test]
    fn single_cell_is_clean() {
        let s = generate::random_structure(36, 0.9, 1);
        let report = detect_races(&s, &s, &[Backend::WAVEFRONT], &[4], &[0, 1]);
        assert_eq!(report.runs.len(), 2);
        assert!(
            report.all_clean(),
            "violations: {}",
            report.total_violations()
        );
        assert!(report.runs.iter().all(|r| r.events > 0));
    }

    #[test]
    fn acceptance_matrix_smoke() {
        // The full acceptance matrix at reduced seed count, kept in the
        // default suite so every `cargo test` exercises all five legacy
        // backends at 1/2/4/8 threads.
        let s1 = generate::random_structure(40, 0.9, 7);
        let s2 = generate::random_structure(36, 0.85, 11);
        let report = acceptance_matrix(&s1, &s2, 2);
        assert_eq!(report.runs.len(), 5 * 4 * 2);
        for r in &report.runs {
            assert!(
                r.violations.is_empty() && r.result_ok,
                "{} @ {} threads, seed {}: {} violation(s), result_ok={}",
                r.backend.name(),
                r.threads,
                r.seed,
                r.violations.len(),
                r.result_ok
            );
        }
    }

    #[test]
    #[ignore = "full acceptance matrix (5 backends x 4 thread counts x 16 seeds); run in CI stress"]
    fn acceptance_matrix_full() {
        let s1 = generate::random_structure(60, 0.9, 3);
        let s2 = generate::random_structure(50, 0.85, 5);
        let report = acceptance_matrix(&s1, &s2, 16);
        assert_eq!(report.runs.len(), 5 * 4 * 16);
        assert!(
            report.all_clean(),
            "{} violation(s) across {} runs",
            report.total_violations(),
            report.runs.len()
        );
    }

    #[test]
    fn broken_schedule_is_detected() {
        // The checker's teeth: the wavefront schedule with one level
        // barrier skipped must produce happens-before violations at
        // every thread count — the merged bucket's LPT order puts the
        // deep slices first, so their reads of sibling level-0 entries
        // precede (or race with) the sibling writes in every
        // interleaving.
        let s = generate::worst_case_nested(8);
        let p1 = Preprocessed::build(&s);
        let cone = DependencyCone { p1: &p1, p2: &p1 };
        for threads in [1u32, 2, 4] {
            let log = TraceLog::new();
            let _ = wavefront_traced_without_level_barrier(&p1, &p1, threads, &log);
            let report = check_trace(&log.take_events(), Some(cone));
            assert!(
                !report.is_clean(),
                "threads {threads}: skipped barrier not detected"
            );
        }
    }
}

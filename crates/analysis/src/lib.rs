//! Concurrency soundness checks for the MCOS workspace.
//!
//! Three independent passes, one per module:
//!
//! * [`vc`] + [`detector`] — **dynamic race detection**. The traced
//!   backend twins (`mcos_parallel::traced`) record memo reads/writes
//!   and synchronization events into a `TraceLog`; the vector-clock
//!   checker replays the log and reports any read not happens-before
//!   ordered after the write it observed, any write/write or
//!   read/write race, and any read outside the reading slice's
//!   strictly-nested dependency cone. Seeded delay injection
//!   (`par_sim::jitter`) perturbs interleavings so clean verdicts are
//!   about synchronization, not luck.
//! * [`audit`] — **static dependency audit**. Proves, per input pair,
//!   that the wavefront level function `max(depth₁, depth₂)` strictly
//!   decreases along every dependency edge, and reports barrier counts
//!   per backend plus an atomic-ordering inventory.
//! * [`prove`] — **static schedule-soundness prover**. Checks, for
//!   every composition in `Backend::MATRIX` at every thread count,
//!   that each slice-DAG dependency edge is covered by a
//!   synchronization path of the schedule's symbolic `SyncPlan`
//!   (settlement, readiness path, or same-worker program order),
//!   reporting the uncovered edge set as a counterexample.
//! * [`lint`] — **workspace lint**. Mechanical enforcement of the
//!   `// ORDERING:` / `// SAFETY:` justification conventions and the
//!   no-`unwrap`-in-library-code rule, with a reviewed allowlist
//!   (`lint-allow.txt`). Run it via
//!   `cargo run -p analysis --bin workspace-lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod detector;
pub mod lint;
pub mod prove;
pub mod vc;

//! The workspace lint: mechanical enforcement of the justification
//! conventions the concurrency-soundness work depends on.
//!
//! Five rules, scanned over every non-shim `crates/*/src/**/*.rs`
//! file, skipping test code (each `#[cfg(test)]`-gated item, tracked
//! through its closing brace by [`test_code_mask`], so a mid-file
//! test-only helper does not mask the library code after it) and
//! comment lines:
//!
//! * **`ordering`** — any explicit atomic ordering (`Relaxed`,
//!   `Acquire`, `Release`, `AcqRel`, `SeqCst`) must carry an adjacent
//!   `// ORDERING:` justification comment (within the three preceding
//!   lines) or an allowlist entry. Relaxed leans on an edge established
//!   elsewhere and the comment must say where; the acquire/release
//!   family must name its pairing partner; SeqCst must say why the
//!   total order is actually needed.
//! * **`safety`** — the unsafe keyword must carry an adjacent
//!   `// SAFETY:` comment or an allowlist entry (most crates here
//!   forbid it outright; the rule covers the rest).
//! * **`unwrap`** — non-test library code must not panic on `Option`/
//!   `Result` shortcuts without an allowlist entry naming the file (the
//!   entry is the reviewed assertion that the invariant is real).
//! * **`policy`** — every execution-engine policy implementation (an
//!   `impl` of `Schedule`, `MemoStore`, or `SliceKernel`) must carry an
//!   adjacent
//!   `// POLICY:` comment stating, in a sentence, what the policy
//!   decides and why it is sound — the reviewed contract the engine's
//!   generic loop depends on.
//! * **`metrics`** — observability goes through the unified registry
//!   (`mcos_telemetry::metrics`), not around it: engine crates
//!   (`crates/core`, `crates/parallel`) must not print ad-hoc stats to
//!   stderr from library code, and no crate outside `crates/telemetry`
//!   may spell a `"mcos."`-prefixed metric name as a string literal —
//!   metric names come from the declared `metrics::names` constants,
//!   so the documented schema stays the single source of truth.
//!
//! The match needles are assembled at runtime so the linter's own
//! source never matches its own rules.

use std::io;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Explicit atomic ordering without adjacent justification.
    RelaxedOrdering,
    /// The unsafe keyword without adjacent justification.
    UnsafeCode,
    /// `Option::unwrap` / `Result::unwrap` call in library code.
    Unwrap,
    /// Engine policy `impl` without an adjacent `// POLICY:` contract.
    Policy,
    /// Ad-hoc observability bypassing the unified metrics registry.
    Metrics,
}

impl Rule {
    /// Name used in allowlist entries and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RelaxedOrdering => "ordering",
            Rule::UnsafeCode => "safety",
            Rule::Unwrap => "unwrap",
            Rule::Policy => "policy",
            Rule::Metrics => "metrics",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Reviewed exemptions: `(rule name, workspace-relative path)` pairs.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format: one `<rule> <path>` pair per line,
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let rule = parts
                .next()
                .ok_or_else(|| format!("line {}: empty", i + 1))?;
            let path = parts
                .next()
                .ok_or_else(|| format!("line {}: missing path after rule", i + 1))?;
            if !matches!(
                rule,
                "ordering" | "safety" | "unwrap" | "policy" | "metrics"
            ) {
                return Err(format!("line {}: unknown rule '{rule}'", i + 1));
            }
            entries.push((rule.to_string(), path.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Whether `rule` is exempted for `file` (workspace-relative, `/`
    /// separators).
    pub fn allows(&self, rule: Rule, file: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, p)| r == rule.name() && p == file)
    }

    /// The parsed `(rule name, path)` pairs, in file order.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }
}

/// Allowlist entries that exempt nothing: no finding of a raw scan
/// (same workspace, empty allowlist) matches their `(rule, path)`.
/// A stale entry is a reviewed exemption whose subject has moved or
/// been fixed — left in place it would silently exempt a future
/// regression, so `workspace-lint` fails on them.
pub fn stale_allowlist_entries(
    root: &Path,
    allow: &Allowlist,
) -> io::Result<Vec<(String, String)>> {
    let raw = lint_workspace(root, &Allowlist::default())?;
    Ok(allow
        .entries()
        .iter()
        .filter(|(rule, path)| !raw.iter().any(|f| f.rule.name() == rule && &f.file == path))
        .cloned()
        .collect())
}

/// Collects every lintable source file: `crates/*/src/**/*.rs`,
/// excluding everything under `crates/shims`.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() || entry.file_name() == "shims" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Per-line mask of test-gated code: `mask[i]` is true when line `i`
/// belongs to an item annotated `#[cfg(test)]` — the attribute line,
/// any further attribute lines, and the item's body through its
/// matching closing brace (or terminating `;` for braceless items
/// like `#[cfg(test)] use ...;`). Brace depth is tracked per item, so
/// a `#[cfg(test)]` helper in the middle of a file masks only itself,
/// not everything after it. Braces inside strings, char literals, and
/// line comments are ignored; multi-line string literals are not
/// tracked (none of the workspace's test items start inside one).
pub fn test_code_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let end = test_item_end(lines, i);
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Index of the last line of the `#[cfg(test)]`-gated item whose
/// attribute sits on line `start`: the line on which the item's brace
/// depth returns to zero (or a `;` ends a braceless item). Runs to the
/// end of the file when the braces never close.
fn test_item_end(lines: &[&str], start: usize) -> usize {
    let mut depth: i64 = 0;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        let mut chars = line.chars().peekable();
        let mut in_str = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' if in_str => {
                    chars.next(); // escape: skip \" and \\
                }
                '"' => in_str = !in_str,
                _ if in_str => {}
                '/' if chars.peek() == Some(&'/') => break, // line comment
                '\'' => {
                    // Char literal ('{', '\n', …) — skip it so its
                    // payload cannot unbalance the count. A lifetime
                    // tick has an alphabetic body and no closing tick
                    // right after, so consume at most one escaped or
                    // plain char followed by the closing quote.
                    let mut ahead = chars.clone();
                    let is_literal = match ahead.next() {
                        Some('\\') => {
                            ahead.next();
                            ahead.next() == Some('\'')
                        }
                        Some(_) => ahead.next() == Some('\''),
                        None => false,
                    };
                    if is_literal {
                        chars = ahead;
                    }
                }
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth <= 0 {
                        return j;
                    }
                }
                ';' if !opened && depth == 0 => return j,
                _ => {}
            }
        }
    }
    lines.len() - 1
}

/// Whether the line is a (line or doc) comment.
pub fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Whether `marker` appears on line `i` or within the three preceding
/// lines (the "adjacent justification" window).
pub fn has_adjacent_marker(lines: &[&str], i: usize, marker: &str) -> bool {
    lines[i.saturating_sub(3)..=i]
        .iter()
        .any(|l| l.contains(marker))
}

/// One needle per memory-ordering variant; every one of them demands a
/// justification comment.
fn ordering_needles() -> Vec<String> {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .map(|v| format!("Ordering::{v}"))
        .collect()
}

fn needle_unsafe() -> String {
    ["un", "safe"].concat()
}

fn needle_unwrap() -> String {
    format!(".{}()", ["un", "wrap"].concat())
}

/// The stderr-stats macro the `metrics` rule bans from engine library
/// code.
fn needle_eprintln() -> String {
    format!("{}!", ["eprint", "ln"].concat())
}

/// A string literal opening with the registry's reserved metric-name
/// prefix.
fn needle_metric_literal() -> String {
    format!("\"{}.", ["mc", "os"].concat())
}

/// A string literal opening with the memory-telemetry sub-namespace.
/// Stricter than the general rule: memory metric names must be declared
/// in `metrics::names` (one file), so even the rest of the telemetry
/// crate has to reference the constants rather than repeat the strings.
fn needle_mem_literal() -> String {
    format!("\"{}.mem.", ["mc", "os"].concat())
}

/// Fragments of the retention metric names (`mcos.mem.evicted_cells`,
/// `mcos.mem.recompute_{slices,cells}`, `mcos.mem.resident_cells_peak`).
/// Stricter than the opening-prefix arm: these fragments may not appear
/// inside any quoted string outside `metrics::names`, so a concatenated
/// spelling (`format!("mcos.{}", "mem.evicted_cells")`) cannot smuggle
/// a retention metric name past the registry.
fn retention_literal_needles() -> Vec<String> {
    ["evicted", "recompute", "resident_cells"]
        .iter()
        .map(|s| format!("mem.{s}"))
        .collect()
}

/// Whether the `metrics` rule's stderr-printing arm applies to this
/// file: engine library code, where observability must flow through
/// the recorder and registry.
fn is_engine_crate(rel: &str) -> bool {
    rel.starts_with("crates/core/") || rel.starts_with("crates/parallel/")
}

/// `"<Trait> for"` needles for the engine policy traits: an `impl` line
/// containing one of these is a policy implementation.
fn policy_needles() -> Vec<String> {
    [
        ["Sched", "ule"].concat(),
        ["Memo", "Store"].concat(),
        ["Slice", "Kernel"].concat(),
    ]
    .iter()
    .map(|t| format!("{t} for "))
    .collect()
}

/// Whether the keyword at byte offset `pos` (length `len`) in `line`
/// stands alone as a word (so `{needle}_code` in a `forbid` attribute
/// does not count).
fn is_word_at(line: &str, pos: usize, len: usize) -> bool {
    let before = line[..pos].chars().next_back();
    let after = line[pos + len..].chars().next();
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    !before.is_some_and(is_word) && !after.is_some_and(is_word)
}

/// Lints one file's text, pushing findings with paths reported as
/// `rel`.
fn lint_text(rel: &str, text: &str, allow: &Allowlist, findings: &mut Vec<LintFinding>) {
    let orderings = ordering_needles();
    let unsafe_kw = needle_unsafe();
    let unwrap_call = needle_unwrap();
    let policies = policy_needles();
    let eprintln_macro = needle_eprintln();
    let metric_literal = needle_metric_literal();
    let mem_literal = needle_mem_literal();
    let retention_literals = retention_literal_needles();
    let lines: Vec<&str> = text.lines().collect();
    let test_code = test_code_mask(&lines);
    for (i, line) in lines.iter().enumerate() {
        if test_code[i] || is_comment_line(line) {
            continue;
        }
        if orderings.iter().any(|n| line.contains(n))
            && !has_adjacent_marker(&lines, i, "// ORDERING:")
            && !allow.allows(Rule::RelaxedOrdering, rel)
        {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::RelaxedOrdering,
                excerpt: line.trim().to_string(),
            });
        }
        let mut search = 0usize;
        while let Some(off) = line[search..].find(&unsafe_kw) {
            let pos = search + off;
            search = pos + unsafe_kw.len();
            if is_word_at(line, pos, unsafe_kw.len())
                && !has_adjacent_marker(&lines, i, "// SAFETY:")
                && !allow.allows(Rule::UnsafeCode, rel)
            {
                findings.push(LintFinding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: Rule::UnsafeCode,
                    excerpt: line.trim().to_string(),
                });
                break;
            }
        }
        if line.contains(&unwrap_call) && !allow.allows(Rule::Unwrap, rel) {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::Unwrap,
                excerpt: line.trim().to_string(),
            });
        }
        if line.trim_start().starts_with("impl")
            && policies.iter().any(|n| line.contains(n))
            && !has_adjacent_marker(&lines, i, "// POLICY:")
            && !allow.allows(Rule::Policy, rel)
        {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::Policy,
                excerpt: line.trim().to_string(),
            });
        }
        let stray_stats = is_engine_crate(rel) && line.contains(&eprintln_macro);
        let adhoc_name = !rel.starts_with("crates/telemetry/") && line.contains(&metric_literal);
        let adhoc_mem = rel != "crates/telemetry/src/metrics.rs" && line.contains(&mem_literal);
        let adhoc_retention = rel != "crates/telemetry/src/metrics.rs"
            && line.contains('"')
            && retention_literals.iter().any(|n| line.contains(n));
        if (stray_stats || adhoc_name || adhoc_mem || adhoc_retention)
            && !allow.allows(Rule::Metrics, rel)
        {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::Metrics,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// Lints the workspace rooted at `root` under `allow`, returning every
/// finding (empty = clean).
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<Vec<LintFinding>> {
    let mut findings = Vec::new();
    for file in workspace_sources(root)? {
        let text = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        lint_text(&rel, &text, allow, &mut findings);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "mcos-lint-fixture-{}-{}",
            std::process::id(),
            files.len()
        ));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
        root
    }

    #[test]
    fn flags_unjustified_relaxed_and_accepts_justified() {
        let bad = format!("fn f() {{ X.load(Ordering::{}); }}\n", "Relaxed");
        let good = format!(
            "// ORDERING: the join edge carries visibility.\nfn f() {{ X.load(Ordering::{}); }}\n",
            "Relaxed"
        );
        let root = fixture(&[
            ("crates/demo/src/bad.rs", bad.as_str()),
            ("crates/demo/src/good.rs", good.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::RelaxedOrdering);
        assert_eq!(findings[0].file, "crates/demo/src/bad.rs");
    }

    #[test]
    fn flags_every_ordering_variant() {
        // The telemetry/backends convention: *every* explicit ordering
        // carries a justification, not just Relaxed.
        for variant in ["Acquire", "Release", "AcqRel", "SeqCst"] {
            let bad = format!("fn f() {{ X.load(Ordering::{variant}); }}\n");
            let good = format!(
                "// ORDERING: pairs with the release store in publish().\n\
                 fn f() {{ X.load(Ordering::{variant}); }}\n"
            );
            let root = fixture(&[
                ("crates/demo/src/bad.rs", bad.as_str()),
                ("crates/demo/src/good.rs", good.as_str()),
            ]);
            let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
            assert_eq!(findings.len(), 1, "{variant}: {findings:?}");
            assert_eq!(findings[0].rule, Rule::RelaxedOrdering, "{variant}");
            assert_eq!(findings[0].file, "crates/demo/src/bad.rs", "{variant}");
        }
    }

    #[test]
    fn flags_unsafe_without_safety_comment() {
        let kw = ["un", "safe"].concat();
        let bad = format!("pub {kw} fn g() {{}}\n");
        let attr = format!("#![forbid({kw}_code)]\n"); // word-boundary exempt
        let good = format!("// SAFETY: no aliasing, len checked.\n{kw} {{ }}\n");
        let root = fixture(&[
            ("crates/demo/src/kw.rs", bad.as_str()),
            ("crates/demo/src/attr.rs", attr.as_str()),
            ("crates/demo/src/ok.rs", good.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::UnsafeCode);
        assert_eq!(findings[0].file, "crates/demo/src/kw.rs");
    }

    #[test]
    fn flags_unwrap_unless_allowlisted_or_in_tests() {
        let call = format!(".{}()", ["un", "wrap"].concat());
        let lib = format!("fn h() {{ x{call}; }}\n");
        let tests = format!("fn ok() {{}}\n#[cfg(test)]\nmod tests {{ fn t() {{ y{call}; }} }}\n");
        let root = fixture(&[
            ("crates/demo/src/lib.rs", lib.as_str()),
            ("crates/demo/src/tested.rs", tests.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::Unwrap);

        let allow = Allowlist::parse("unwrap crates/demo/src/lib.rs\n").unwrap();
        assert!(lint_workspace(&root, &allow).unwrap().is_empty());
    }

    #[test]
    fn shims_and_comments_are_skipped() {
        let call = format!(".{}()", ["un", "wrap"].concat());
        let shim = format!("fn s() {{ x{call}; }}\n");
        let doc = format!("/// let v = maybe{call};\nfn d() {{}}\n");
        let root = fixture(&[
            ("crates/shims/fake/src/lib.rs", shim.as_str()),
            ("crates/demo/src/doc.rs", doc.as_str()),
        ]);
        assert!(lint_workspace(&root, &Allowlist::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn flags_policy_impl_without_contract_comment() {
        let sched = ["Sched", "ule"].concat();
        let store = ["Memo", "Store"].concat();
        let kernel = ["Slice", "Kernel"].concat();
        let bad = format!("struct R;\nimpl {sched} for R {{}}\n");
        let bad_generic = format!("struct T<M>(M);\nimpl<M: {store}> {store} for T<M> {{}}\n");
        let bad_kernel = format!("struct K;\nimpl {kernel} for K {{}}\n");
        let good = format!("// POLICY: one step per row of M.\nimpl {sched} for G {{}}\n");
        let good_kernel = format!("// POLICY: fused scalar loop.\nimpl {kernel} for S {{}}\n");
        // A where-clause bound or trait definition is not an impl.
        let unrelated = format!("pub trait {sched} {{}}\nfn run<S: {sched}>(s: S) {{}}\n");
        let root = fixture(&[
            ("crates/demo/src/bad.rs", bad.as_str()),
            ("crates/demo/src/badgen.rs", bad_generic.as_str()),
            ("crates/demo/src/badkernel.rs", bad_kernel.as_str()),
            ("crates/demo/src/good.rs", good.as_str()),
            ("crates/demo/src/goodkernel.rs", good_kernel.as_str()),
            ("crates/demo/src/unrelated.rs", unrelated.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::Policy));

        let allow = Allowlist::parse(
            "policy crates/demo/src/bad.rs\npolicy crates/demo/src/badgen.rs\n\
             policy crates/demo/src/badkernel.rs\n",
        )
        .unwrap();
        assert!(lint_workspace(&root, &allow).unwrap().is_empty());
    }

    #[test]
    fn flags_stray_stats_and_adhoc_metric_names() {
        let eprint = format!("{}!", ["eprint", "ln"].concat());
        let prefix = ["mc", "os"].concat();
        let stray = format!("fn f() {{ {eprint}(\"slices={{n}}\"); }}\n");
        let adhoc = format!("fn g() {{ reg.counter(\"{prefix}.engine.extra\"); }}\n");
        let declared = format!("pub const X: &str = \"{prefix}.engine.extra\";\n");
        let root = fixture(&[
            // Engine library code must not print stats to stderr...
            ("crates/parallel/src/engine.rs", stray.as_str()),
            // ...but the same line outside the engine crates is fine.
            ("crates/demo/src/tool.rs", stray.as_str()),
            // Ad-hoc metric-name literals are flagged everywhere...
            ("crates/core/src/adhoc.rs", adhoc.as_str()),
            ("crates/demo/src/adhoc.rs", adhoc.as_str()),
            // ...except in the telemetry crate, where they are declared.
            ("crates/telemetry/src/metrics.rs", declared.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::Metrics));
        let files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
        assert!(files.contains(&"crates/parallel/src/engine.rs"));
        assert!(files.contains(&"crates/core/src/adhoc.rs"));
        assert!(files.contains(&"crates/demo/src/adhoc.rs"));

        let allow = Allowlist::parse(
            "metrics crates/parallel/src/engine.rs\n\
             metrics crates/core/src/adhoc.rs\n\
             metrics crates/demo/src/adhoc.rs\n",
        )
        .unwrap();
        assert!(lint_workspace(&root, &allow).unwrap().is_empty());
    }

    #[test]
    fn mem_metric_literals_are_only_declared_in_the_schema_file() {
        let prefix = ["mc", "os"].concat();
        let adhoc = format!("fn g() {{ reg.gauge(\"{prefix}.mem.extra\"); }}\n");
        let declared = format!("pub const M: &str = \"{prefix}.mem.extra\";\n");
        let root = fixture(&[
            // The mem.* sub-namespace is stricter than the general
            // metric rule: even the telemetry crate's other modules
            // must use the declared constants...
            ("crates/telemetry/src/mem.rs", adhoc.as_str()),
            ("crates/parallel/src/engine.rs", adhoc.as_str()),
            // ...and only the schema file declares the strings.
            ("crates/telemetry/src/metrics.rs", declared.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::Metrics));
        let files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
        assert!(files.contains(&"crates/telemetry/src/mem.rs"));
        assert!(files.contains(&"crates/parallel/src/engine.rs"));
    }

    #[test]
    fn retention_metric_fragments_cannot_be_smuggled_by_concatenation() {
        let prefix = ["mc", "os"].concat();
        // A concatenated spelling that evades the opening-prefix arm:
        // the literal never starts with `"mcos.mem.` but still spells a
        // retention metric name at runtime.
        let smuggled = format!(
            "fn g() {{ reg.counter(&format!(\"{prefix}.{{}}\", \"mem.evicted_cells\")); }}\n"
        );
        let recompute = "fn h() { reg.counter(\"x.mem.recompute_slices\"); }\n";
        let declared = format!("pub const E: &str = \"{prefix}.mem.evicted_cells\";\n");
        // The bare JSON-key spellings (no `mem.` prefix) stay legal —
        // reports serialize fields with these names.
        let json_key = "fn k() { obj.push((\"evicted_cells\".to_string(), v)); }\n";
        let root = fixture(&[
            ("crates/parallel/src/engine/budget.rs", smuggled.as_str()),
            ("crates/bench/src/harness.rs", recompute),
            ("crates/telemetry/src/metrics.rs", declared.as_str()),
            ("crates/telemetry/src/liveness.rs", json_key),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::Metrics));
        let files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
        assert!(files.contains(&"crates/parallel/src/engine/budget.rs"));
        assert!(files.contains(&"crates/bench/src/harness.rs"));
    }

    #[test]
    fn mid_file_test_helper_does_not_mask_later_library_code() {
        // The old scanner treated everything after the FIRST
        // `#[cfg(test)]` line as test code, so a test-only helper in
        // the middle of a file hid every finding after it.
        let call = format!(".{}()", ["un", "wrap"].concat());
        let text = format!(
            "fn lib_before() {{}}\n\
             #[cfg(test)]\n\
             fn helper() {{\n\
                 let inside = x{call}; // masked: test-gated\n\
             }}\n\
             fn lib_after() {{ y{call}; }}\n"
        );
        let root = fixture(&[("crates/demo/src/mid.rs", text.as_str())]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::Unwrap);
        assert_eq!(findings[0].line, 6, "{findings:?}");
    }

    #[test]
    fn test_code_mask_tracks_scope_not_file_position() {
        let text = "fn a() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    \x20   fn t() { let s = \"}\"; }\n\
                    \x20   fn u() { if x { y() } }\n\
                    }\n\
                    fn b() {}\n\
                    #[cfg(test)]\n\
                    use super::helper;\n\
                    fn c() {}\n";
        let lines: Vec<&str> = text.lines().collect();
        let mask = test_code_mask(&lines);
        assert_eq!(
            mask,
            vec![false, true, true, true, true, true, false, true, true, false],
            "{mask:?}"
        );
    }

    #[test]
    fn unclosed_test_item_masks_to_end_of_file() {
        let lines = vec!["#[cfg(test)]", "mod tests {", "    fn t() {}"];
        assert_eq!(test_code_mask(&lines), vec![true; 3]);
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let call = format!(".{}()", ["un", "wrap"].concat());
        let lib = format!("fn h() {{ x{call}; }}\n");
        let root = fixture(&[("crates/demo/src/lib.rs", lib.as_str())]);
        let allow = Allowlist::parse(
            "unwrap crates/demo/src/lib.rs\n\
             unwrap crates/demo/src/gone.rs\n\
             ordering crates/demo/src/lib.rs\n",
        )
        .unwrap();
        // The live entry silences the finding...
        assert!(lint_workspace(&root, &allow).unwrap().is_empty());
        // ...and the two entries matching nothing are reported stale.
        let stale = stale_allowlist_entries(&root, &allow).unwrap();
        assert_eq!(
            stale,
            vec![
                ("unwrap".to_string(), "crates/demo/src/gone.rs".to_string()),
                ("ordering".to_string(), "crates/demo/src/lib.rs".to_string()),
            ],
            "{stale:?}"
        );
    }

    #[test]
    fn allowlist_rejects_unknown_rules() {
        assert!(Allowlist::parse("bogus crates/x/src/lib.rs\n").is_err());
        assert!(Allowlist::parse("# comment\n\nunwrap a/b.rs\n").is_ok());
        assert!(Allowlist::parse("policy crates/x/src/lib.rs\n").is_ok());
    }
}

//! The workspace lint: mechanical enforcement of the justification
//! conventions the concurrency-soundness work depends on.
//!
//! Four rules, scanned over every non-shim `crates/*/src/**/*.rs`
//! file, skipping test modules (everything at and after the first
//! `#[cfg(test)]` line — test modules sit at file end throughout this
//! workspace) and comment lines:
//!
//! * **`ordering`** — any explicit atomic ordering (`Relaxed`,
//!   `Acquire`, `Release`, `AcqRel`, `SeqCst`) must carry an adjacent
//!   `// ORDERING:` justification comment (within the three preceding
//!   lines) or an allowlist entry. Relaxed leans on an edge established
//!   elsewhere and the comment must say where; the acquire/release
//!   family must name its pairing partner; SeqCst must say why the
//!   total order is actually needed.
//! * **`safety`** — the unsafe keyword must carry an adjacent
//!   `// SAFETY:` comment or an allowlist entry (most crates here
//!   forbid it outright; the rule covers the rest).
//! * **`unwrap`** — non-test library code must not panic on `Option`/
//!   `Result` shortcuts without an allowlist entry naming the file (the
//!   entry is the reviewed assertion that the invariant is real).
//! * **`policy`** — every execution-engine policy implementation (an
//!   `impl` of `Schedule`, `MemoStore`, or `SliceKernel`) must carry an
//!   adjacent
//!   `// POLICY:` comment stating, in a sentence, what the policy
//!   decides and why it is sound — the reviewed contract the engine's
//!   generic loop depends on.
//!
//! The match needles are assembled at runtime so the linter's own
//! source never matches its own rules.

use std::io;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Explicit atomic ordering without adjacent justification.
    RelaxedOrdering,
    /// The unsafe keyword without adjacent justification.
    UnsafeCode,
    /// `Option::unwrap` / `Result::unwrap` call in library code.
    Unwrap,
    /// Engine policy `impl` without an adjacent `// POLICY:` contract.
    Policy,
}

impl Rule {
    /// Name used in allowlist entries and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RelaxedOrdering => "ordering",
            Rule::UnsafeCode => "safety",
            Rule::Unwrap => "unwrap",
            Rule::Policy => "policy",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Reviewed exemptions: `(rule name, workspace-relative path)` pairs.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format: one `<rule> <path>` pair per line,
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let rule = parts
                .next()
                .ok_or_else(|| format!("line {}: empty", i + 1))?;
            let path = parts
                .next()
                .ok_or_else(|| format!("line {}: missing path after rule", i + 1))?;
            if !matches!(rule, "ordering" | "safety" | "unwrap" | "policy") {
                return Err(format!("line {}: unknown rule '{rule}'", i + 1));
            }
            entries.push((rule.to_string(), path.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Whether `rule` is exempted for `file` (workspace-relative, `/`
    /// separators).
    pub fn allows(&self, rule: Rule, file: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, p)| r == rule.name() && p == file)
    }
}

/// Collects every lintable source file: `crates/*/src/**/*.rs`,
/// excluding everything under `crates/shims`.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() || entry.file_name() == "shims" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Index of the first line opening a test module (`#[cfg(test)]`), or
/// `lines.len()` when there is none. Lines at and after it are not
/// linted — in this workspace test modules sit at the end of each file.
pub fn test_module_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

/// Whether the line is a (line or doc) comment.
pub fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Whether `marker` appears on line `i` or within the three preceding
/// lines (the "adjacent justification" window).
pub fn has_adjacent_marker(lines: &[&str], i: usize, marker: &str) -> bool {
    lines[i.saturating_sub(3)..=i]
        .iter()
        .any(|l| l.contains(marker))
}

/// One needle per memory-ordering variant; every one of them demands a
/// justification comment.
fn ordering_needles() -> Vec<String> {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .map(|v| format!("Ordering::{v}"))
        .collect()
}

fn needle_unsafe() -> String {
    ["un", "safe"].concat()
}

fn needle_unwrap() -> String {
    format!(".{}()", ["un", "wrap"].concat())
}

/// `"<Trait> for"` needles for the engine policy traits: an `impl` line
/// containing one of these is a policy implementation.
fn policy_needles() -> Vec<String> {
    [
        ["Sched", "ule"].concat(),
        ["Memo", "Store"].concat(),
        ["Slice", "Kernel"].concat(),
    ]
    .iter()
    .map(|t| format!("{t} for "))
    .collect()
}

/// Whether the keyword at byte offset `pos` (length `len`) in `line`
/// stands alone as a word (so `{needle}_code` in a `forbid` attribute
/// does not count).
fn is_word_at(line: &str, pos: usize, len: usize) -> bool {
    let before = line[..pos].chars().next_back();
    let after = line[pos + len..].chars().next();
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    !before.is_some_and(is_word) && !after.is_some_and(is_word)
}

/// Lints one file's text, pushing findings with paths reported as
/// `rel`.
fn lint_text(rel: &str, text: &str, allow: &Allowlist, findings: &mut Vec<LintFinding>) {
    let orderings = ordering_needles();
    let unsafe_kw = needle_unsafe();
    let unwrap_call = needle_unwrap();
    let policies = policy_needles();
    let lines: Vec<&str> = text.lines().collect();
    let limit = test_module_start(&lines);
    for (i, line) in lines.iter().enumerate().take(limit) {
        if is_comment_line(line) {
            continue;
        }
        if orderings.iter().any(|n| line.contains(n))
            && !has_adjacent_marker(&lines, i, "// ORDERING:")
            && !allow.allows(Rule::RelaxedOrdering, rel)
        {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::RelaxedOrdering,
                excerpt: line.trim().to_string(),
            });
        }
        let mut search = 0usize;
        while let Some(off) = line[search..].find(&unsafe_kw) {
            let pos = search + off;
            search = pos + unsafe_kw.len();
            if is_word_at(line, pos, unsafe_kw.len())
                && !has_adjacent_marker(&lines, i, "// SAFETY:")
                && !allow.allows(Rule::UnsafeCode, rel)
            {
                findings.push(LintFinding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: Rule::UnsafeCode,
                    excerpt: line.trim().to_string(),
                });
                break;
            }
        }
        if line.contains(&unwrap_call) && !allow.allows(Rule::Unwrap, rel) {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::Unwrap,
                excerpt: line.trim().to_string(),
            });
        }
        if line.trim_start().starts_with("impl")
            && policies.iter().any(|n| line.contains(n))
            && !has_adjacent_marker(&lines, i, "// POLICY:")
            && !allow.allows(Rule::Policy, rel)
        {
            findings.push(LintFinding {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::Policy,
                excerpt: line.trim().to_string(),
            });
        }
    }
}

/// Lints the workspace rooted at `root` under `allow`, returning every
/// finding (empty = clean).
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<Vec<LintFinding>> {
    let mut findings = Vec::new();
    for file in workspace_sources(root)? {
        let text = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        lint_text(&rel, &text, allow, &mut findings);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "mcos-lint-fixture-{}-{}",
            std::process::id(),
            files.len()
        ));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
        root
    }

    #[test]
    fn flags_unjustified_relaxed_and_accepts_justified() {
        let bad = format!("fn f() {{ X.load(Ordering::{}); }}\n", "Relaxed");
        let good = format!(
            "// ORDERING: the join edge carries visibility.\nfn f() {{ X.load(Ordering::{}); }}\n",
            "Relaxed"
        );
        let root = fixture(&[
            ("crates/demo/src/bad.rs", bad.as_str()),
            ("crates/demo/src/good.rs", good.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::RelaxedOrdering);
        assert_eq!(findings[0].file, "crates/demo/src/bad.rs");
    }

    #[test]
    fn flags_every_ordering_variant() {
        // The telemetry/backends convention: *every* explicit ordering
        // carries a justification, not just Relaxed.
        for variant in ["Acquire", "Release", "AcqRel", "SeqCst"] {
            let bad = format!("fn f() {{ X.load(Ordering::{variant}); }}\n");
            let good = format!(
                "// ORDERING: pairs with the release store in publish().\n\
                 fn f() {{ X.load(Ordering::{variant}); }}\n"
            );
            let root = fixture(&[
                ("crates/demo/src/bad.rs", bad.as_str()),
                ("crates/demo/src/good.rs", good.as_str()),
            ]);
            let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
            assert_eq!(findings.len(), 1, "{variant}: {findings:?}");
            assert_eq!(findings[0].rule, Rule::RelaxedOrdering, "{variant}");
            assert_eq!(findings[0].file, "crates/demo/src/bad.rs", "{variant}");
        }
    }

    #[test]
    fn flags_unsafe_without_safety_comment() {
        let kw = ["un", "safe"].concat();
        let bad = format!("pub {kw} fn g() {{}}\n");
        let attr = format!("#![forbid({kw}_code)]\n"); // word-boundary exempt
        let good = format!("// SAFETY: no aliasing, len checked.\n{kw} {{ }}\n");
        let root = fixture(&[
            ("crates/demo/src/kw.rs", bad.as_str()),
            ("crates/demo/src/attr.rs", attr.as_str()),
            ("crates/demo/src/ok.rs", good.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::UnsafeCode);
        assert_eq!(findings[0].file, "crates/demo/src/kw.rs");
    }

    #[test]
    fn flags_unwrap_unless_allowlisted_or_in_tests() {
        let call = format!(".{}()", ["un", "wrap"].concat());
        let lib = format!("fn h() {{ x{call}; }}\n");
        let tests = format!("fn ok() {{}}\n#[cfg(test)]\nmod tests {{ fn t() {{ y{call}; }} }}\n");
        let root = fixture(&[
            ("crates/demo/src/lib.rs", lib.as_str()),
            ("crates/demo/src/tested.rs", tests.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::Unwrap);

        let allow = Allowlist::parse("unwrap crates/demo/src/lib.rs\n").unwrap();
        assert!(lint_workspace(&root, &allow).unwrap().is_empty());
    }

    #[test]
    fn shims_and_comments_are_skipped() {
        let call = format!(".{}()", ["un", "wrap"].concat());
        let shim = format!("fn s() {{ x{call}; }}\n");
        let doc = format!("/// let v = maybe{call};\nfn d() {{}}\n");
        let root = fixture(&[
            ("crates/shims/fake/src/lib.rs", shim.as_str()),
            ("crates/demo/src/doc.rs", doc.as_str()),
        ]);
        assert!(lint_workspace(&root, &Allowlist::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn flags_policy_impl_without_contract_comment() {
        let sched = ["Sched", "ule"].concat();
        let store = ["Memo", "Store"].concat();
        let kernel = ["Slice", "Kernel"].concat();
        let bad = format!("struct R;\nimpl {sched} for R {{}}\n");
        let bad_generic = format!("struct T<M>(M);\nimpl<M: {store}> {store} for T<M> {{}}\n");
        let bad_kernel = format!("struct K;\nimpl {kernel} for K {{}}\n");
        let good = format!("// POLICY: one step per row of M.\nimpl {sched} for G {{}}\n");
        let good_kernel = format!("// POLICY: fused scalar loop.\nimpl {kernel} for S {{}}\n");
        // A where-clause bound or trait definition is not an impl.
        let unrelated = format!("pub trait {sched} {{}}\nfn run<S: {sched}>(s: S) {{}}\n");
        let root = fixture(&[
            ("crates/demo/src/bad.rs", bad.as_str()),
            ("crates/demo/src/badgen.rs", bad_generic.as_str()),
            ("crates/demo/src/badkernel.rs", bad_kernel.as_str()),
            ("crates/demo/src/good.rs", good.as_str()),
            ("crates/demo/src/goodkernel.rs", good_kernel.as_str()),
            ("crates/demo/src/unrelated.rs", unrelated.as_str()),
        ]);
        let findings = lint_workspace(&root, &Allowlist::default()).unwrap();
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::Policy));

        let allow = Allowlist::parse(
            "policy crates/demo/src/bad.rs\npolicy crates/demo/src/badgen.rs\n\
             policy crates/demo/src/badkernel.rs\n",
        )
        .unwrap();
        assert!(lint_workspace(&root, &allow).unwrap().is_empty());
    }

    #[test]
    fn allowlist_rejects_unknown_rules() {
        assert!(Allowlist::parse("bogus crates/x/src/lib.rs\n").is_err());
        assert!(Allowlist::parse("# comment\n\nunwrap a/b.rs\n").is_ok());
        assert!(Allowlist::parse("policy crates/x/src/lib.rs\n").is_ok());
    }
}

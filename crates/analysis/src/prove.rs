//! The static schedule-soundness prover: happens-before *coverage*
//! checking over symbolic synchronization plans.
//!
//! The dynamic detector ([`crate::detector`]) replays concrete
//! interleavings; it can only condemn, never acquit — a clean run says
//! nothing about the interleavings it did not see. This pass closes
//! that gap for the one property the engine actually needs: **every
//! edge of the slice dependency DAG must be covered by a
//! synchronization path of the plan**, for every composition, at every
//! thread count, before anything runs.
//!
//! The edge set is the one [`crate::audit::audit_levels`] enumerates —
//! slice `(k1, k2)` reads exactly the entries `(c1, c2)` with `c1`
//! strictly under `k1` and `c2` strictly under `k2`. The plan is a
//! [`SyncPlan`] from `mcos_parallel::engine::plan`: planned steps with
//! issue order and static ownership, the linearized fork/work/settle/
//! join skeleton, point-to-point readiness edges, and whether a
//! worker's own un-settled publishes are visible to itself.
//!
//! An edge `D → R` (dependency `D`, reader `R`) is covered iff one of:
//!
//! 1. **Settlement** — a `Settle` op for `D`'s step precedes `R`'s
//!    step's `Work` op in the skeleton: every worker observes `D`
//!    settled before any gather of `R` issues.
//! 2. **Readiness path** — the readiness-edge graph contains a path
//!    `D ⇝ R` (flag acquire/release edges compose transitively).
//! 3. **Intra-step program order** — same step, `D` issued before `R`,
//!    *and* both provably run on the same worker (static ownership
//!    pins both to one worker, or the plan has a single worker), *and*
//!    the store makes a worker's own un-settled writes visible
//!    ([`SyncPlan::own_step_writes_visible`]). All three are needed: a
//!    replicated store hides nothing from the writing worker, but an
//!    rwlock/lock-free store hides un-settled values even from their
//!    writer, so program order alone covers nothing there.
//!
//! Anything else — same-step cross-worker, a later or unsettled step —
//! is reported as an [`UncoveredEdge`]: a concrete counterexample
//! naming the slice-DAG edge the schedule fails to order.
//!
//! For the correct matrix this proof is exact, not lucky: both
//! schedules place every dependency in a strictly earlier step (the
//! level audit's inequality), and every step is settled in place, so
//! rule 1 covers every edge. The seeded broken schedules
//! (merged-level wavefront, dropped-readiness program) each leave a
//! nonempty uncovered set at every thread count — asserted in this
//! module's tests and the negative-schedule suite.

use std::collections::{HashMap, HashSet, VecDeque};

use load_balance::Policy;
use mcos_core::preprocess::Preprocessed;
use mcos_core::workload;
use mcos_parallel::engine::plan::{self, SyncOp, SyncPlan};
use mcos_parallel::engine::ReadinessProgram;
use mcos_parallel::Backend;

/// Why an edge counts as covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// The dependency's step settles before the reader's step works.
    Settled,
    /// A readiness-edge path orders the dependency before the reader.
    Readiness,
    /// Same worker, same step, issued earlier, own writes visible.
    ProgramOrder,
}

/// Why an edge is *not* covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncoveredKind {
    /// Same step, and no readiness path, worker pinning, or own-write
    /// visibility orders the pair — the slices may run concurrently
    /// (or in the wrong program order).
    SameStepUnordered,
    /// The dependency's step is earlier but never settled before the
    /// reader's step works (a skipped or misplaced settlement).
    Unsettled,
    /// The dependency is scheduled *after* its reader.
    Backward,
    /// The dependency or reader never appears in the plan's steps.
    Unplanned,
}

/// A concrete slice-DAG edge the plan fails to cover: the
/// counterexample the prover reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoveredEdge {
    /// The reading slice.
    pub reader: (u32, u32),
    /// The dependency it gathers.
    pub dep: (u32, u32),
    /// Step position of the reader (`u32::MAX` if unplanned).
    pub reader_step: u32,
    /// Step position of the dependency (`u32::MAX` if unplanned).
    pub dep_step: u32,
    /// Failure classification.
    pub kind: UncoveredKind,
}

impl std::fmt::Display for UncoveredEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let why = match self.kind {
            UncoveredKind::SameStepUnordered => "same step, unordered",
            UncoveredKind::Unsettled => "earlier step never settled",
            UncoveredKind::Backward => "dependency scheduled later",
            UncoveredKind::Unplanned => "slice missing from plan",
        };
        write!(
            f,
            "slice ({},{}) reads ({},{}) [steps {} <- {}]: {why}",
            self.reader.0, self.reader.1, self.dep.0, self.dep.1, self.reader_step, self.dep_step
        )
    }
}

/// The prover's verdict on one plan.
#[derive(Debug, Clone)]
pub struct ScheduleProof {
    /// Display name of the proved composition.
    pub name: String,
    /// Worker threads the plan was for.
    pub workers: u32,
    /// Dependency edges checked.
    pub edges: u64,
    /// Edges covered by step settlement.
    pub covered_settled: u64,
    /// Edges covered by a readiness path.
    pub covered_readiness: u64,
    /// Edges covered by intra-step program order.
    pub covered_program_order: u64,
    /// The uncovered edge set (empty = the schedule is proved sound
    /// for this input pair at this thread count).
    pub uncovered: Vec<UncoveredEdge>,
}

impl ScheduleProof {
    /// True when every dependency edge is covered.
    pub fn is_covered(&self) -> bool {
        self.uncovered.is_empty()
    }
}

/// Where one slice sits in a plan.
#[derive(Clone, Copy)]
struct SlicePos {
    step: u32,
    pos: u32,
    owner: Option<u32>,
}

/// Checks every slice-DAG dependency edge of `(p1, p2)` against
/// `plan`'s synchronization structure.
pub fn prove_plan(plan: &SyncPlan, p1: &Preprocessed, p2: &Preprocessed) -> ScheduleProof {
    let mut at: HashMap<(u32, u32), SlicePos> = HashMap::new();
    for (step, planned) in plan.steps.iter().enumerate() {
        for (pos, s) in planned.slices.iter().enumerate() {
            at.insert(
                s.slice,
                SlicePos {
                    step: step as u32,
                    pos: pos as u32,
                    owner: s.owner,
                },
            );
        }
    }

    // settled_before_work[r][s]: step s's Settle op precedes step r's
    // Work op in the linearized skeleton.
    let nsteps = plan.steps.len();
    let mut settled = vec![false; nsteps];
    let mut settled_before_work = vec![vec![false; nsteps]; nsteps];
    for op in &plan.ops {
        match *op {
            SyncOp::Work { step } => {
                settled_before_work[step as usize].clone_from(&settled);
            }
            SyncOp::Settle { step, .. } => settled[step as usize] = true,
            SyncOp::Fork { .. } | SyncOp::Join { .. } => {}
        }
    }

    let direct: HashSet<((u32, u32), (u32, u32))> = plan.readiness.iter().copied().collect();
    let mut succs: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
    for &(from, to) in &plan.readiness {
        succs.entry(from).or_default().push(to);
    }
    let readiness_path = |from: (u32, u32), to: (u32, u32)| -> bool {
        if direct.contains(&(from, to)) {
            return true;
        }
        if succs.is_empty() {
            return false;
        }
        let mut seen = HashSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            for &next in succs.get(&node).into_iter().flatten() {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        false
    };

    let mut proof = ScheduleProof {
        name: plan.name.clone(),
        workers: plan.workers,
        edges: 0,
        covered_settled: 0,
        covered_readiness: 0,
        covered_program_order: 0,
        uncovered: Vec::new(),
    };
    for k1 in 0..p1.num_arcs() {
        let (lo1, hi1) = p1.under_range[k1 as usize];
        for k2 in 0..p2.num_arcs() {
            let (lo2, hi2) = p2.under_range[k2 as usize];
            let reader = (k1, k2);
            for c1 in lo1..hi1 {
                for c2 in lo2..hi2 {
                    let dep = (c1, c2);
                    proof.edges += 1;
                    let (Some(&r), Some(&d)) = (at.get(&reader), at.get(&dep)) else {
                        proof.uncovered.push(UncoveredEdge {
                            reader,
                            dep,
                            reader_step: at.get(&reader).map_or(u32::MAX, |s| s.step),
                            dep_step: at.get(&dep).map_or(u32::MAX, |s| s.step),
                            kind: UncoveredKind::Unplanned,
                        });
                        continue;
                    };
                    if d.step < r.step && settled_before_work[r.step as usize][d.step as usize] {
                        proof.covered_settled += 1;
                    } else if readiness_path(dep, reader) {
                        proof.covered_readiness += 1;
                    } else if d.step == r.step
                        && d.pos < r.pos
                        && plan.own_step_writes_visible
                        && (plan.workers == 1 || (d.owner.is_some() && d.owner == r.owner))
                    {
                        proof.covered_program_order += 1;
                    } else {
                        proof.uncovered.push(UncoveredEdge {
                            reader,
                            dep,
                            reader_step: r.step,
                            dep_step: d.step,
                            kind: if d.step > r.step {
                                UncoveredKind::Backward
                            } else if d.step < r.step {
                                UncoveredKind::Unsettled
                            } else {
                                UncoveredKind::SameStepUnordered
                            },
                        });
                    }
                }
            }
        }
    }
    proof
}

/// The Greedy assignment the engine's traced and recorded runs use.
fn greedy(p1: &Preprocessed, p2: &Preprocessed, workers: u32) -> load_balance::Assignment {
    let weights = workload::column_weights(p1, p2);
    Policy::Greedy.assign(&weights, workers)
}

/// Proves one composition at one thread count.
pub fn prove_backend(
    backend: Backend,
    workers: u32,
    p1: &Preprocessed,
    p2: &Preprocessed,
) -> ScheduleProof {
    let assignment = greedy(p1, p2, workers);
    prove_plan(
        &plan::sync_plan(backend, workers, p1, p2, &assignment),
        p1,
        p2,
    )
}

/// The full prover matrix: every composition in [`Backend::MATRIX`] at
/// every thread count, in backend-major order.
pub fn prove_matrix(
    p1: &Preprocessed,
    p2: &Preprocessed,
    thread_counts: &[u32],
) -> Vec<ScheduleProof> {
    let mut proofs = Vec::with_capacity(Backend::MATRIX.len() * thread_counts.len());
    for backend in Backend::MATRIX {
        for &workers in thread_counts {
            proofs.push(prove_backend(backend, workers, p1, p2));
        }
    }
    proofs
}

/// Proves the deliberately broken merged-level wavefront (the dynamic
/// detector's seeded counterexample); expected to report uncovered
/// edges at every thread count.
pub fn prove_broken_wavefront(workers: u32, p1: &Preprocessed, p2: &Preprocessed) -> ScheduleProof {
    let assignment = greedy(p1, p2, workers);
    let plan = plan::sync_plan_broken_wavefront(Backend::WAVEFRONT, workers, p1, p2, &assignment);
    prove_plan(&plan, p1, p2)
}

/// Proves the compiled readiness-flag program (`broken` selects the
/// deliberately edge-dropping variant).
pub fn prove_readiness(
    workers: u32,
    p1: &Preprocessed,
    p2: &Preprocessed,
    broken: bool,
) -> ScheduleProof {
    let program = if broken {
        ReadinessProgram::compile_broken(p1, p2)
    } else {
        ReadinessProgram::compile(p1, p2)
    };
    prove_plan(&program.sync_plan(workers), p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit_levels;
    use rna_structure::generate;

    fn prep(seed: u64) -> (Preprocessed, Preprocessed) {
        let s1 = generate::random_structure(44, 0.9, seed);
        let s2 = generate::random_structure(38, 0.8, seed + 70);
        (Preprocessed::build(&s1), Preprocessed::build(&s2))
    }

    #[test]
    fn full_matrix_is_covered_at_every_thread_count() {
        let (p1, p2) = prep(1);
        let expected_edges = audit_levels(&p1, &p2).edges;
        let proofs = prove_matrix(&p1, &p2, &[1, 2, 4, 8]);
        assert_eq!(proofs.len(), 18 * 4);
        for proof in &proofs {
            assert!(
                proof.is_covered(),
                "{} @ {} workers: {} uncovered, first: {}",
                proof.name,
                proof.workers,
                proof.uncovered.len(),
                proof.uncovered[0]
            );
            assert_eq!(proof.edges, expected_edges, "{}", proof.name);
            // Barrier-only schedules owe everything to settlement.
            assert_eq!(proof.covered_settled, proof.edges, "{}", proof.name);
        }
    }

    #[test]
    fn readiness_program_is_covered_by_flags_alone() {
        let (p1, p2) = prep(2);
        let expected_edges = audit_levels(&p1, &p2).edges;
        for workers in [1u32, 2, 4, 8] {
            let proof = prove_readiness(workers, &p1, &p2, false);
            assert!(proof.is_covered(), "workers {workers}");
            assert_eq!(proof.edges, expected_edges);
            // No settlement barriers exist in the program at all: every
            // edge must be covered by its own flag.
            assert_eq!(proof.covered_readiness, proof.edges, "workers {workers}");
        }
    }

    #[test]
    fn broken_wavefront_yields_concrete_counterexamples() {
        let s = generate::worst_case_nested(8);
        let p = Preprocessed::build(&s);
        for workers in [1u32, 2, 4, 8] {
            let proof = prove_broken_wavefront(workers, &p, &p);
            assert!(
                !proof.is_covered(),
                "workers {workers}: merged levels not caught"
            );
            for edge in &proof.uncovered {
                // The hole is exactly the merged first step: level-1
                // slices reading level-0 entries in the same step.
                assert_eq!(edge.kind, UncoveredKind::SameStepUnordered, "{edge}");
                assert_eq!((edge.reader_step, edge.dep_step), (0, 0), "{edge}");
            }
        }
    }

    #[test]
    fn broken_readiness_reports_exactly_the_dropped_edges() {
        let s = generate::worst_case_nested(8);
        let p = Preprocessed::build(&s);
        let level = |s: (u32, u32)| p.level_of(s.0).max(p.level_of(s.1));
        for workers in [1u32, 2, 4, 8] {
            let proof = prove_readiness(workers, &p, &p, true);
            assert!(
                !proof.is_covered(),
                "workers {workers}: dropped edges not caught"
            );
            for edge in &proof.uncovered {
                assert_eq!(level(edge.reader), 1, "{edge}");
                assert_eq!(edge.kind, UncoveredKind::SameStepUnordered, "{edge}");
            }
        }
    }

    #[test]
    fn a_missing_settlement_is_unsettled_not_covered() {
        // Mutate a correct plan by deleting its Settle ops: the steps
        // still order the slices, but nothing makes writes visible, and
        // the prover must refuse the plan rather than trust step order.
        let (p1, p2) = prep(3);
        let assignment = greedy(&p1, &p2, 2);
        let mut plan =
            mcos_parallel::engine::plan::sync_plan(Backend::WAVEFRONT, 2, &p1, &p2, &assignment);
        plan.ops.retain(|op| !matches!(op, SyncOp::Settle { .. }));
        let proof = prove_plan(&plan, &p1, &p2);
        assert!(!proof.is_covered());
        assert!(proof
            .uncovered
            .iter()
            .all(|e| e.kind == UncoveredKind::Unsettled));
        assert_eq!(proof.uncovered.len() as u64, proof.edges);
    }

    #[test]
    fn single_worker_replicated_program_order_counts() {
        // Hand-merge the first two wavefront levels under a replicated
        // store at one worker: the merged edges are then covered by
        // program order (own replica, single worker, issue order is
        // LPT which puts the deeper reader first — wait, it puts the
        // *larger* slice first). Assert the prover agrees with the
        // dynamic truth either way: coverage iff dep issued first.
        let s = generate::worst_case_nested(6);
        let p = Preprocessed::build(&s);
        let assignment = greedy(&p, &p, 1);
        let plan = mcos_parallel::engine::plan::sync_plan_broken_wavefront(
            mcos_parallel::Backend {
                schedule: mcos_parallel::ScheduleKind::Level,
                store: mcos_parallel::StoreKind::Replicated,
                dist: mcos_parallel::DistKind::Claim,
            },
            1,
            &p,
            &p,
            &assignment,
        );
        let proof = prove_plan(&plan, &p, &p);
        // LPT puts the (heavier) level-1 readers before their level-0
        // dependencies, so program order must NOT cover those edges
        // even though the store would show own writes.
        assert!(!proof.is_covered());
        let pos: HashMap<(u32, u32), usize> = plan.steps[0]
            .slices
            .iter()
            .enumerate()
            .map(|(i, s)| (s.slice, i))
            .collect();
        for edge in &proof.uncovered {
            assert!(
                pos[&edge.dep] > pos[&edge.reader],
                "{}: uncovered although dep issued first",
                edge
            );
        }
    }

    #[test]
    fn empty_structures_prove_trivially() {
        let p = Preprocessed::build(&rna_structure::ArcStructure::unpaired(4));
        for proof in prove_matrix(&p, &p, &[1, 2]) {
            assert!(proof.is_covered());
            assert_eq!(proof.edges, 0);
        }
    }
}

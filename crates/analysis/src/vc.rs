//! The vector-clock happens-before checker.
//!
//! Replays a [`TraceEvent`] log (see [`mcos_core::trace`] for the event
//! model and the recording discipline that makes the log order a sound
//! witness) and verifies that the recorded synchronization edges order
//! every pair of conflicting memo accesses.
//!
//! Each task carries a vector clock; fork/join copy and join clocks,
//! and each barrier accumulates the clocks of arriving tasks and
//! releases the accumulated history to leaving tasks. Memo entries
//! carry FastTrack-style access histories — the `(task, epoch)` of
//! every write and read — and each new access is checked against the
//! opposite-kind history: a read must be HB-after every write of its
//! entry, and a write must be HB-after every prior write *and* every
//! prior read. On top of the pure happens-before conditions, reads
//! carry the slice they serve, so the checker also enforces the
//! paper's dependency-cone claim: slice `(k1, k2)` reads only arc
//! pairs strictly nested under both arcs.

use std::collections::HashMap;

use mcos_core::preprocess::Preprocessed;
use mcos_core::trace::{TaskId, TraceEvent, PARENT_SLICE};

/// What went wrong with one access pair (or one access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read of an entry whose latest write is not ordered before it.
    StaleRead,
    /// A read of an entry no task has written yet (every arc pair is
    /// written exactly once before stage two, so this is always a
    /// schedule hole, not a benign default read).
    ReadBeforeWrite,
    /// Two writes of one entry with no ordering between them.
    WriteWriteRace,
    /// A write not ordered after a prior read of the same entry.
    WriteAfterReadRace,
    /// A read outside the reading slice's strictly-nested dependency
    /// cone (`under_range` of both arcs).
    ConeViolation,
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What kind of ordering hole this is.
    pub kind: ViolationKind,
    /// The memo entry involved.
    pub entry: (u32, u32),
    /// The task performing the unordered (second) access.
    pub task: TaskId,
    /// The task of the earlier conflicting access, when there is one.
    pub other: Option<TaskId>,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} at entry ({}, {}) by task {}: {}",
            self.kind, self.entry.0, self.entry.1, self.task, self.detail
        )
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Number of events replayed.
    pub events: usize,
    /// Number of distinct tasks observed.
    pub tasks: usize,
    /// Number of memo reads checked.
    pub reads: usize,
    /// Number of memo writes checked.
    pub writes: usize,
    /// Everything the replay flagged (empty = the schedule's recorded
    /// edges order all conflicting accesses and respect the cone).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True when the trace replayed clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The dependency cone to check reads against: a read on behalf of
/// slice `(k1, k2)` may only target rows in `p1.under_range[k1]` and
/// columns in `p2.under_range[k2]`.
#[derive(Debug, Clone, Copy)]
pub struct DependencyCone<'a> {
    /// Preprocessing tables of `S₁` (rows).
    pub p1: &'a Preprocessed,
    /// Preprocessing tables of `S₂` (columns).
    pub p2: &'a Preprocessed,
}

/// One task's vector clock, lazily sized to the task universe.
type Clock = Vec<u32>;

fn join_into(dst: &mut Clock, src: &Clock) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// `(task, epoch)` of one recorded access.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    task: TaskId,
    at: u32,
}

impl Epoch {
    /// Does this access happen-before a task whose clock is `clock`?
    fn ordered_before(self, clock: &Clock) -> bool {
        clock[self.task as usize] >= self.at
    }
}

#[derive(Debug, Default)]
struct EntryHistory {
    writes: Vec<Epoch>,
    reads: Vec<Epoch>,
}

/// Replays `events` and checks every conflicting access pair for a
/// happens-before edge; with `cone`, additionally checks every
/// slice-owned read against the strictly-nested dependency ranges.
pub fn check_trace(events: &[TraceEvent], cone: Option<DependencyCone<'_>>) -> CheckReport {
    let num_tasks = events
        .iter()
        .map(|e| match *e {
            TraceEvent::Fork { parent, child } | TraceEvent::Join { parent, child } => {
                parent.max(child)
            }
            TraceEvent::Arrive { task, .. }
            | TraceEvent::Leave { task, .. }
            | TraceEvent::Read { task, .. }
            | TraceEvent::Write { task, .. } => task,
        })
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);

    let mut clocks: Vec<Clock> = vec![vec![0; num_tasks]; num_tasks];
    let mut barriers: HashMap<u32, Clock> = HashMap::new();
    let mut entries: HashMap<(u32, u32), EntryHistory> = HashMap::new();
    let mut violations = Vec::new();
    let mut reads = 0usize;
    let mut writes = 0usize;

    for ev in events {
        match *ev {
            TraceEvent::Fork { parent, child } => {
                // The child inherits everything the parent has done.
                let snapshot = clocks[parent as usize].clone();
                let child_clock = &mut clocks[child as usize];
                join_into(child_clock, &snapshot);
                child_clock[child as usize] += 1;
                // Tick the parent so its post-fork events are *not*
                // ordered before the child.
                clocks[parent as usize][parent as usize] += 1;
            }
            TraceEvent::Join { parent, child } => {
                let snapshot = clocks[child as usize].clone();
                let parent_clock = &mut clocks[parent as usize];
                join_into(parent_clock, &snapshot);
                parent_clock[parent as usize] += 1;
            }
            TraceEvent::Arrive { task, barrier } => {
                let acc = barriers
                    .entry(barrier)
                    .or_insert_with(|| vec![0; num_tasks]);
                join_into(acc, &clocks[task as usize]);
                clocks[task as usize][task as usize] += 1;
            }
            TraceEvent::Leave { task, barrier } => {
                let acc = barriers
                    .entry(barrier)
                    .or_insert_with(|| vec![0; num_tasks]);
                let snapshot = acc.clone();
                let clock = &mut clocks[task as usize];
                join_into(clock, &snapshot);
                clock[task as usize] += 1;
            }
            TraceEvent::Write { task, r, c } => {
                writes += 1;
                let clock = &mut clocks[task as usize];
                clock[task as usize] += 1;
                let me = Epoch {
                    task,
                    at: clock[task as usize],
                };
                let history = entries.entry((r, c)).or_default();
                for w in &history.writes {
                    if w.task != task && !w.ordered_before(&clocks[task as usize]) {
                        violations.push(Violation {
                            kind: ViolationKind::WriteWriteRace,
                            entry: (r, c),
                            task,
                            other: Some(w.task),
                            detail: format!("concurrent with write by task {}", w.task),
                        });
                    }
                }
                for rd in &history.reads {
                    if rd.task != task && !rd.ordered_before(&clocks[task as usize]) {
                        violations.push(Violation {
                            kind: ViolationKind::WriteAfterReadRace,
                            entry: (r, c),
                            task,
                            other: Some(rd.task),
                            detail: format!("concurrent with read by task {}", rd.task),
                        });
                    }
                }
                entries
                    .get_mut(&(r, c))
                    .expect("just inserted")
                    .writes
                    .push(me);
            }
            TraceEvent::Read { task, owner, r, c } => {
                reads += 1;
                let clock = &mut clocks[task as usize];
                clock[task as usize] += 1;
                let me = Epoch {
                    task,
                    at: clock[task as usize],
                };
                if owner != PARENT_SLICE {
                    if let Some(cone) = cone {
                        let (lo1, hi1) = cone.p1.under_range[owner.0 as usize];
                        let (lo2, hi2) = cone.p2.under_range[owner.1 as usize];
                        if r < lo1 || r >= hi1 || c < lo2 || c >= hi2 {
                            violations.push(Violation {
                                kind: ViolationKind::ConeViolation,
                                entry: (r, c),
                                task,
                                other: None,
                                detail: format!(
                                    "slice ({}, {}) may only read rows {lo1}..{hi1} × cols {lo2}..{hi2}",
                                    owner.0, owner.1
                                ),
                            });
                        }
                    }
                }
                let history = entries.entry((r, c)).or_default();
                if history.writes.is_empty() {
                    violations.push(Violation {
                        kind: ViolationKind::ReadBeforeWrite,
                        entry: (r, c),
                        task,
                        other: None,
                        detail: "no write of this entry precedes the read in the log".into(),
                    });
                }
                for w in &history.writes {
                    if w.task != task && !w.ordered_before(&clocks[task as usize]) {
                        violations.push(Violation {
                            kind: ViolationKind::StaleRead,
                            entry: (r, c),
                            task,
                            other: Some(w.task),
                            detail: format!(
                                "write by task {} is not ordered before this read",
                                w.task
                            ),
                        });
                    }
                }
                entries
                    .get_mut(&(r, c))
                    .expect("just inserted")
                    .reads
                    .push(me);
            }
        }
    }

    CheckReport {
        events: events.len(),
        tasks: num_tasks,
        reads,
        writes,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;
    use TraceEvent::*;

    #[test]
    fn empty_trace_is_clean() {
        let report = check_trace(&[], None);
        assert!(report.is_clean());
        assert_eq!(report.tasks, 0);
    }

    #[test]
    fn fork_join_orders_write_before_read() {
        // parent forks child; child writes; parent joins, then reads.
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Write {
                task: 1,
                r: 0,
                c: 0,
            },
            Join {
                parent: 0,
                child: 1,
            },
            Read {
                task: 0,
                owner: PARENT_SLICE,
                r: 0,
                c: 0,
            },
        ];
        let report = check_trace(&events, None);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!((report.reads, report.writes), (1, 1));
    }

    #[test]
    fn unjoined_sibling_read_is_stale() {
        // Two children forked concurrently: one writes, the other
        // reads, no edge between them.
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Fork {
                parent: 0,
                child: 2,
            },
            Write {
                task: 1,
                r: 0,
                c: 0,
            },
            Read {
                task: 2,
                owner: PARENT_SLICE,
                r: 0,
                c: 0,
            },
        ];
        let report = check_trace(&events, None);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::StaleRead);
        assert_eq!(report.violations[0].other, Some(1));
    }

    #[test]
    fn read_with_no_write_is_flagged() {
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Read {
                task: 1,
                owner: PARENT_SLICE,
                r: 2,
                c: 2,
            },
        ];
        let report = check_trace(&events, None);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::ReadBeforeWrite);
    }

    #[test]
    fn concurrent_double_write_is_flagged() {
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Fork {
                parent: 0,
                child: 2,
            },
            Write {
                task: 1,
                r: 3,
                c: 1,
            },
            Write {
                task: 2,
                r: 3,
                c: 1,
            },
        ];
        let report = check_trace(&events, None);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::WriteWriteRace);
    }

    #[test]
    fn write_after_unordered_read_is_flagged() {
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Fork {
                parent: 0,
                child: 2,
            },
            Write {
                task: 1,
                r: 0,
                c: 0,
            },
            Join {
                parent: 0,
                child: 1,
            },
            Fork {
                parent: 0,
                child: 3,
            },
            Read {
                task: 3,
                owner: PARENT_SLICE,
                r: 0,
                c: 0,
            },
            // Task 2 never saw task 3's read; its write races with it.
            Write {
                task: 2,
                r: 0,
                c: 0,
            },
        ];
        let report = check_trace(&events, None);
        let kinds: Vec<ViolationKind> = report.violations.iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&ViolationKind::WriteAfterReadRace),
            "{kinds:?}"
        );
    }

    #[test]
    fn barrier_orders_across_tasks() {
        // Task 1 writes then arrives; task 2 leaves after the arrival,
        // then reads — ordered through the barrier accumulator.
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Fork {
                parent: 0,
                child: 2,
            },
            Write {
                task: 1,
                r: 1,
                c: 1,
            },
            Arrive {
                task: 1,
                barrier: 7,
            },
            Leave {
                task: 2,
                barrier: 7,
            },
            Read {
                task: 2,
                owner: PARENT_SLICE,
                r: 1,
                c: 1,
            },
        ];
        let report = check_trace(&events, None);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn leave_before_arrive_does_not_order() {
        // The same shape, but the leave is logged before the arrive:
        // the barrier had nothing accumulated, so no edge exists.
        let events = [
            Fork {
                parent: 0,
                child: 1,
            },
            Fork {
                parent: 0,
                child: 2,
            },
            Write {
                task: 1,
                r: 1,
                c: 1,
            },
            Leave {
                task: 2,
                barrier: 7,
            },
            Arrive {
                task: 1,
                barrier: 7,
            },
            Read {
                task: 2,
                owner: PARENT_SLICE,
                r: 1,
                c: 1,
            },
        ];
        let report = check_trace(&events, None);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::StaleRead);
    }

    #[test]
    fn cone_violation_is_flagged() {
        // ((..)(..)) : arcs 0 and 1 are hairpins (nothing under), arc 2
        // is the outer arc with both hairpins under it (range 0..2).
        let s = dot_bracket::parse("((..)(..))").unwrap();
        let p = Preprocessed::build(&s);
        let cone = DependencyCone { p1: &p, p2: &p };
        // Slice (2, 2) legitimately reads (0, 0); slice (0, 0) reading
        // anything is outside its (empty) cone.
        let events = [
            Write {
                task: 0,
                r: 0,
                c: 0,
            },
            Read {
                task: 0,
                owner: (2, 2),
                r: 0,
                c: 0,
            },
            Read {
                task: 0,
                owner: (0, 0),
                r: 0,
                c: 0,
            },
        ];
        let report = check_trace(&events, Some(cone));
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::ConeViolation);
        // Parent-sentinel reads are exempt.
        let events = [
            Write {
                task: 0,
                r: 1,
                c: 1,
            },
            Read {
                task: 0,
                owner: PARENT_SLICE,
                r: 1,
                c: 1,
            },
        ];
        assert!(check_trace(&events, Some(cone)).is_clean());
    }

    #[test]
    fn own_earlier_write_satisfies_read() {
        let events = [
            Write {
                task: 4,
                r: 0,
                c: 0,
            },
            Read {
                task: 4,
                owner: PARENT_SLICE,
                r: 0,
                c: 0,
            },
        ];
        assert!(check_trace(&events, None).is_clean());
    }
}

//! Mutation tests: the two deliberately broken schedules must be
//! rejected by BOTH soundness passes — the static prover
//! ([`analysis::prove`]) and the dynamic happens-before checker
//! ([`analysis::vc`]) — at every thread count in the acceptance
//! matrix.
//!
//! The rejections must come from the happens-before machinery, not
//! from an output comparison: both broken schedules read level-0
//! entries before they are written, and a level-0 entry's correct
//! value is zero (its child window is empty), so the premature read of
//! the zeroed table is numerically invisible. Several tests assert
//! that invisibility explicitly — the memo still matches the
//! sequential reference while the checkers reject the run.

use analysis::prove;
use analysis::vc::{check_trace, DependencyCone, ViolationKind};
use mcos_core::preprocess::Preprocessed;
use mcos_core::srna2;
use mcos_core::trace::TraceLog;
use mcos_parallel::engine::ReadinessProgram;
use mcos_parallel::traced::wavefront_traced_without_level_barrier;
use mcos_parallel::KernelKind;
use rna_structure::generate;

const THREADS: [u32; 4] = [1, 2, 4, 8];

fn nested_pair() -> (Preprocessed, Preprocessed) {
    let s1 = generate::worst_case_nested(8);
    let s2 = generate::worst_case_nested(6);
    (Preprocessed::build(&s1), Preprocessed::build(&s2))
}

/// The barrier-skipping wavefront (levels 0 and 1 merged into one
/// step) is statically rejected at every thread count, with concrete
/// same-step-unordered counterexample edges.
#[test]
fn prover_rejects_the_barrier_skipping_wavefront_at_every_thread_count() {
    let (p1, p2) = nested_pair();
    for workers in THREADS {
        let proof = prove::prove_broken_wavefront(workers, &p1, &p2);
        assert!(
            !proof.is_covered(),
            "broken wavefront accepted at {workers} workers"
        );
        assert!(
            proof
                .uncovered
                .iter()
                .all(|e| e.kind == prove::UncoveredKind::SameStepUnordered),
            "{:?}",
            proof.uncovered
        );
    }
}

/// The readiness program with the level-1 waits dropped is statically
/// rejected at every thread count; the correct program is accepted.
#[test]
fn prover_rejects_the_edge_dropping_readiness_program_at_every_thread_count() {
    let (p1, p2) = nested_pair();
    for workers in THREADS {
        let broken = prove::prove_readiness(workers, &p1, &p2, true);
        assert!(
            !broken.is_covered(),
            "broken readiness accepted at {workers} workers"
        );
        let correct = prove::prove_readiness(workers, &p1, &p2, false);
        assert!(
            correct.is_covered(),
            "correct readiness rejected at {workers} workers: {:?}",
            correct.uncovered
        );
    }
}

/// The dynamic checker flags the barrier-skipping wavefront's traced
/// runs at every thread count — as read-before-write holes, while the
/// scores still match the sequential reference (the silent failure
/// mode an output comparison would miss).
#[test]
fn detector_rejects_the_barrier_skipping_wavefront_at_every_thread_count() {
    let (p1, p2) = nested_pair();
    let reference = srna2::run_preprocessed(&p1, &p2);
    let cone = DependencyCone { p1: &p1, p2: &p2 };
    for threads in THREADS {
        let log = TraceLog::new();
        let out = wavefront_traced_without_level_barrier(&p1, &p2, threads, &log);
        let events = log.take_events();
        let report = check_trace(&events, Some(cone));
        assert!(
            !report.violations.is_empty(),
            "broken wavefront replayed clean at {threads} thread(s)"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::ReadBeforeWrite
                    || v.kind == ViolationKind::StaleRead),
            "{:?}",
            report.violations
        );
        assert_eq!(
            out.score, reference.score,
            "the hole is numerically invisible by design; a score \
             mismatch means the fixture stopped testing silent races"
        );
    }
}

/// The dynamic checker flags the edge-dropping readiness program at
/// every thread count, again with the memo numerically identical to
/// the reference; the correct program replays clean.
#[test]
fn detector_rejects_the_edge_dropping_readiness_program_at_every_thread_count() {
    let (p1, p2) = nested_pair();
    let reference = srna2::run_preprocessed(&p1, &p2);
    let cone = DependencyCone { p1: &p1, p2: &p2 };
    let broken = ReadinessProgram::compile_broken(&p1, &p2);
    let correct = ReadinessProgram::compile(&p1, &p2);
    for threads in THREADS {
        let log = TraceLog::new();
        let memo = broken.run_traced(threads, KernelKind::default(), &p1, &p2, &log);
        let events = log.take_events();
        let report = check_trace(&events, Some(cone));
        assert!(
            !report.violations.is_empty(),
            "broken readiness replayed clean at {threads} thread(s)"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::ReadBeforeWrite
                    || v.kind == ViolationKind::StaleRead),
            "{:?}",
            report.violations
        );
        assert_eq!(
            memo, reference.memo,
            "the dropped waits are numerically invisible by design"
        );

        let log = TraceLog::new();
        correct.run_traced(threads, KernelKind::default(), &p1, &p2, &log);
        let clean = check_trace(&log.take_events(), Some(cone));
        assert!(
            clean.violations.is_empty(),
            "correct readiness flagged at {threads} thread(s): {:?}",
            clean.violations
        );
    }
}

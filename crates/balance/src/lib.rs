//! Static load balancing for weighted independent tasks.
//!
//! PRNA distributes the columns of the parent slice (the arcs of `S₂`)
//! across processors *before* stage one begins; the paper uses "a greedy
//! approximation algorithm" for this — Graham's list scheduling
//! (Graham 1969). This crate implements that policy plus the natural
//! alternatives used by the ablation benchmarks:
//!
//! * [`greedy`] — Graham's list scheduling in input order: each task goes
//!   to the currently least-loaded processor (`(2 - 1/p)`-approximate);
//! * [`lpt`] — Longest Processing Time first: greedy over tasks sorted by
//!   decreasing weight (`(4/3 - 1/(3p))`-approximate);
//! * [`block`] — contiguous block partition balanced by prefix sums;
//! * [`round_robin`] — cyclic assignment, ignoring weights.
//!
//! An [`Assignment`] records which tasks each processor owns and exposes
//! quality metrics (makespan, imbalance) used by both the simulator and
//! the experiment reports.
//!
//! ```
//! use load_balance::{greedy, lpt};
//!
//! let weights = [7u64, 3, 5, 1, 8, 2];
//! let a = greedy(&weights, 2);
//! assert_eq!(a.total(), 26);
//! assert!(a.makespan() >= 13); // half the work is a hard floor
//! // LPT's makespan never exceeds (4/3 - 1/(3p)) * OPT.
//! assert!(lpt(&weights, 2).makespan() <= a.makespan());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BinaryHeap;

/// The result of distributing `tasks.len()` weighted tasks over `p`
/// processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `owner[t]` is the processor assigned task `t`.
    pub owner: Vec<u32>,
    /// `load[p]` is the total weight assigned to processor `p`.
    pub load: Vec<u64>,
}

impl Assignment {
    /// Builds an assignment from an owner vector and the task weights.
    pub fn from_owners(owner: Vec<u32>, weights: &[u64], processors: u32) -> Self {
        assert_eq!(owner.len(), weights.len());
        let mut load = vec![0u64; processors as usize];
        for (t, &o) in owner.iter().enumerate() {
            assert!(o < processors, "owner {o} out of range");
            load[o as usize] += weights[t];
        }
        Assignment { owner, load }
    }

    /// Number of processors.
    pub fn processors(&self) -> u32 {
        self.load.len() as u32
    }

    /// The heaviest processor load — the schedule length when tasks are
    /// independent.
    pub fn makespan(&self) -> u64 {
        self.load.iter().copied().max().unwrap_or(0)
    }

    /// Total weight across processors.
    pub fn total(&self) -> u64 {
        self.load.iter().sum()
    }

    /// Ratio of the makespan to a perfectly even split (1.0 is ideal).
    /// Returns 1.0 for zero total weight.
    pub fn imbalance(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.load.len() as f64;
        self.makespan() as f64 / ideal
    }

    /// The tasks owned by processor `p`, in task order.
    pub fn tasks_of(&self, p: u32) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter_map(|(t, &o)| (o == p).then_some(t))
            .collect()
    }

    /// Lower bound on any schedule: `max(total/p, max task weight)`
    /// (needs the weights again since `load` has already aggregated them).
    pub fn lower_bound(&self, weights: &[u64]) -> u64 {
        let total = self.total();
        let p = self.load.len() as u64;
        let even = total.div_ceil(p);
        even.max(weights.iter().copied().max().unwrap_or(0))
    }
}

/// Min-heap entry: (load, processor). `BinaryHeap` is a max-heap, so we
/// order by `Reverse`-like negation via a custom `Ord`.
#[derive(PartialEq, Eq)]
struct Slot {
    load: u64,
    proc: u32,
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the smallest load (then smallest processor id, for
        // determinism) is the "greatest" so it pops first.
        other.load.cmp(&self.load).then(other.proc.cmp(&self.proc))
    }
}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Graham's greedy list scheduling in input order: each task is assigned
/// to the currently least-loaded processor. Deterministic (ties break
/// toward the lowest processor id).
pub fn greedy(weights: &[u64], processors: u32) -> Assignment {
    assert!(processors > 0, "need at least one processor");
    let mut heap: BinaryHeap<Slot> = (0..processors).map(|p| Slot { load: 0, proc: p }).collect();
    let mut owner = vec![0u32; weights.len()];
    for (t, &w) in weights.iter().enumerate() {
        let mut slot = heap.pop().expect("heap has `processors` entries");
        owner[t] = slot.proc;
        slot.load += w;
        heap.push(slot);
    }
    Assignment::from_owners(owner, weights, processors)
}

/// Longest Processing Time first: greedy over tasks sorted by decreasing
/// weight (ties broken by task index for determinism).
pub fn lpt(weights: &[u64], processors: u32) -> Assignment {
    assert!(processors > 0, "need at least one processor");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&t| (std::cmp::Reverse(weights[t]), t));
    let mut heap: BinaryHeap<Slot> = (0..processors).map(|p| Slot { load: 0, proc: p }).collect();
    let mut owner = vec![0u32; weights.len()];
    for t in order {
        let mut slot = heap.pop().expect("heap has `processors` entries");
        owner[t] = slot.proc;
        slot.load += weights[t];
        heap.push(slot);
    }
    Assignment::from_owners(owner, weights, processors)
}

/// Contiguous block partition: splits the task sequence into `p`
/// contiguous runs with near-equal weight using a greedy prefix walk
/// against the ideal per-processor share.
pub fn block(weights: &[u64], processors: u32) -> Assignment {
    assert!(processors > 0, "need at least one processor");
    let total: u64 = weights.iter().sum();
    let mut owner = vec![0u32; weights.len()];
    let mut acc: u64 = 0;
    let mut proc: u32 = 0;
    for (t, &w) in weights.iter().enumerate() {
        // Move to the next processor when this one has reached its share
        // of the remaining ideal split.
        let share = total as f64 * (proc as f64 + 1.0) / processors as f64;
        if proc + 1 < processors && acc as f64 + w as f64 / 2.0 > share {
            proc += 1;
        }
        owner[t] = proc;
        acc += w;
    }
    Assignment::from_owners(owner, weights, processors)
}

/// Cyclic assignment: task `t` goes to processor `t mod p`, ignoring
/// weights entirely.
pub fn round_robin(weights: &[u64], processors: u32) -> Assignment {
    assert!(processors > 0, "need at least one processor");
    let owner: Vec<u32> = (0..weights.len()).map(|t| t as u32 % processors).collect();
    Assignment::from_owners(owner, weights, processors)
}

/// Greedy list scheduling for **heterogeneous** processors: each task is
/// assigned to the processor that would finish it earliest, given
/// per-processor relative speeds (`speed[p]` work units per unit time).
///
/// This is the uniform-machines (`Q||Cmax`) greedy rule — the setting of
/// the manager–worker related work (Snow et al.), where processors of a
/// heterogeneous cluster differ in throughput. With all speeds equal it
/// reduces to [`greedy`] up to tie-breaking.
///
/// # Panics
///
/// Panics if `speeds` is empty or contains a non-positive speed.
pub fn greedy_speeds(weights: &[u64], speeds: &[f64]) -> Assignment {
    assert!(!speeds.is_empty(), "need at least one processor");
    assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
    let p = speeds.len() as u32;
    let mut load = vec![0u64; speeds.len()];
    let mut owner = vec![0u32; weights.len()];
    for (t, &w) in weights.iter().enumerate() {
        // Earliest completion time (load + w) / speed; linear scan keeps
        // this simple and exact (no heap ordering by floats needed).
        let best = (0..speeds.len())
            .min_by(|&a, &b| {
                let ta = (load[a] + w) as f64 / speeds[a];
                let tb = (load[b] + w) as f64 / speeds[b];
                ta.total_cmp(&tb)
            })
            .expect("speeds non-empty");
        owner[t] = best as u32;
        load[best] += w;
    }
    Assignment::from_owners(owner, weights, p)
}

impl Assignment {
    /// The schedule length under per-processor speeds: the maximum of
    /// `load[p] / speed[p]`.
    ///
    /// # Panics
    ///
    /// Panics if `speeds.len()` differs from the processor count.
    pub fn makespan_with_speeds(&self, speeds: &[f64]) -> f64 {
        assert_eq!(speeds.len(), self.load.len(), "one speed per processor");
        self.load
            .iter()
            .zip(speeds)
            .map(|(&l, &s)| l as f64 / s)
            .fold(0.0, f64::max)
    }
}

/// Available balancing policies, for CLI/bench parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Graham greedy list scheduling (the paper's choice).
    Greedy,
    /// Longest Processing Time first.
    Lpt,
    /// Contiguous block partition.
    Block,
    /// Cyclic assignment.
    RoundRobin,
}

impl Policy {
    /// Runs the policy.
    pub fn assign(self, weights: &[u64], processors: u32) -> Assignment {
        match self {
            Policy::Greedy => greedy(weights, processors),
            Policy::Lpt => lpt(weights, processors),
            Policy::Block => block(weights, processors),
            Policy::RoundRobin => round_robin(weights, processors),
        }
    }

    /// All policies, for sweeps.
    pub const ALL: [Policy; 4] = [
        Policy::Greedy,
        Policy::Lpt,
        Policy::Block,
        Policy::RoundRobin,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Greedy => "greedy",
            Policy::Lpt => "lpt",
            Policy::Block => "block",
            Policy::RoundRobin => "round-robin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_balances_equal_weights() {
        let w = vec![1u64; 12];
        let a = greedy(&w, 4);
        assert_eq!(a.load, vec![3, 3, 3, 3]);
        assert!((a.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_is_deterministic() {
        let w: Vec<u64> = (0..50).map(|i| (i * 7919) % 97).collect();
        assert_eq!(greedy(&w, 7), greedy(&w, 7));
    }

    #[test]
    fn greedy_respects_graham_bound() {
        // Makespan <= (2 - 1/p) * OPT; OPT >= max(total/p, max weight).
        let w: Vec<u64> = (0..200).map(|i| (i * 7919) % 1009 + 1).collect();
        for p in [1u32, 2, 4, 8, 16] {
            let a = greedy(&w, p);
            let lb = a.lower_bound(&w);
            let bound = (2.0 - 1.0 / p as f64) * lb as f64;
            assert!(
                a.makespan() as f64 <= bound + 1e-9,
                "p={p}: makespan {} > bound {bound}",
                a.makespan()
            );
        }
    }

    #[test]
    fn lpt_respects_tighter_bound() {
        let w: Vec<u64> = (0..200).map(|i| (i * 104729) % 997 + 1).collect();
        for p in [2u32, 4, 8] {
            let a = lpt(&w, p);
            let lb = a.lower_bound(&w);
            let bound = (4.0 / 3.0 - 1.0 / (3.0 * p as f64)) * lb as f64;
            assert!(
                a.makespan() as f64 <= bound + 1e-9,
                "p={p}: makespan {} > bound {bound}",
                a.makespan()
            );
        }
    }

    #[test]
    fn lpt_no_worse_than_round_robin_on_skewed_weights() {
        let w: Vec<u64> = (0..64).map(|i| if i % 8 == 0 { 100 } else { 1 }).collect();
        let l = lpt(&w, 8).makespan();
        let r = round_robin(&w, 8).makespan();
        assert!(l <= r, "lpt {l} vs round-robin {r}");
    }

    #[test]
    fn block_is_contiguous() {
        let w: Vec<u64> = (0..30).map(|i| i % 5 + 1).collect();
        let a = block(&w, 4);
        for t in 1..w.len() {
            assert!(
                a.owner[t] >= a.owner[t - 1],
                "block owners must be monotone"
            );
        }
        assert_eq!(a.total(), w.iter().sum::<u64>());
    }

    #[test]
    fn round_robin_cycles() {
        let w = vec![1u64; 7];
        let a = round_robin(&w, 3);
        assert_eq!(a.owner, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn single_processor_owns_everything() {
        let w = vec![3u64, 1, 4, 1, 5];
        for policy in Policy::ALL {
            let a = policy.assign(&w, 1);
            assert_eq!(a.makespan(), 14, "{}", policy.name());
            assert!(a.owner.iter().all(|&o| o == 0));
        }
    }

    #[test]
    fn empty_task_list() {
        for policy in Policy::ALL {
            let a = policy.assign(&[], 4);
            assert_eq!(a.makespan(), 0);
            assert_eq!(a.owner.len(), 0);
        }
    }

    #[test]
    fn more_processors_than_tasks() {
        let w = vec![5u64, 3];
        let a = greedy(&w, 8);
        assert_eq!(a.makespan(), 5);
        assert_eq!(a.load.iter().filter(|&&l| l > 0).count(), 2);
    }

    #[test]
    fn tasks_of_partitions_all_tasks() {
        let w: Vec<u64> = (0..25).map(|i| i + 1).collect();
        let a = greedy(&w, 4);
        let mut all: Vec<usize> = (0..4).flat_map(|p| a.tasks_of(p)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..25).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = greedy(&[1, 2], 0);
    }

    #[test]
    fn imbalance_of_empty_is_one() {
        let a = greedy(&[], 4);
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn greedy_speeds_reduces_to_greedy_when_uniform() {
        let w: Vec<u64> = (0..40).map(|i| (i * 13) % 17 + 1).collect();
        let hetero = greedy_speeds(&w, &[1.0; 4]);
        let homo = greedy(&w, 4);
        // Same makespan (tie-breaking may differ, loads may permute).
        assert_eq!(hetero.makespan(), homo.makespan());
        assert_eq!(hetero.total(), homo.total());
    }

    #[test]
    fn greedy_speeds_loads_fast_processors_more() {
        let w = vec![10u64; 30];
        let a = greedy_speeds(&w, &[3.0, 1.0]);
        // The 3x processor should get about 3x the work.
        assert!(a.load[0] > 2 * a.load[1], "loads {:?}", a.load);
        // Completion times should be nearly equal.
        let t0 = a.load[0] as f64 / 3.0;
        let t1 = a.load[1] as f64 / 1.0;
        assert!((t0 - t1).abs() <= 10.0, "times {t0} vs {t1}");
    }

    #[test]
    fn makespan_with_speeds_weighs_loads() {
        let w = vec![6u64, 6];
        let a = greedy_speeds(&w, &[2.0, 1.0]);
        // Task 1 lands where it finishes earliest.
        let m = a.makespan_with_speeds(&[2.0, 1.0]);
        assert!(m <= 6.0, "makespan {m}");
    }

    #[test]
    #[should_panic(expected = "speeds must be positive")]
    fn greedy_speeds_rejects_zero_speed() {
        let _ = greedy_speeds(&[1], &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one speed per processor")]
    fn makespan_with_speeds_checks_length() {
        let a = greedy(&[1, 2], 2);
        let _ = a.makespan_with_speeds(&[1.0]);
    }
}

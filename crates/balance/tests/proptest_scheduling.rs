//! Property tests for the load balancers: conservation, bounds, and
//! policy dominance relations over arbitrary task sets.

use load_balance::{block, greedy, lpt, round_robin, Policy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_every_policy_conserves_work(
        weights in proptest::collection::vec(0u64..10_000, 0..200),
        p in 1u32..32,
    ) {
        let total: u64 = weights.iter().sum();
        for policy in Policy::ALL {
            let a = policy.assign(&weights, p);
            prop_assert_eq!(a.total(), total, "{}", policy.name());
            prop_assert_eq!(a.owner.len(), weights.len());
            prop_assert!(a.owner.iter().all(|&o| o < p));
        }
    }

    #[test]
    fn prop_makespan_at_least_lower_bound(
        weights in proptest::collection::vec(1u64..10_000, 1..200),
        p in 1u32..32,
    ) {
        for policy in Policy::ALL {
            let a = policy.assign(&weights, p);
            prop_assert!(a.makespan() >= a.lower_bound(&weights) / 2 + a.lower_bound(&weights) % 2
                         || a.makespan() >= weights.iter().copied().max().unwrap_or(0),
                         "{}: makespan below max task", policy.name());
            // Exact lower bound: makespan >= max weight and >= ceil(total/p).
            let max_w = weights.iter().copied().max().unwrap();
            let total: u64 = weights.iter().sum();
            prop_assert!(a.makespan() >= max_w);
            prop_assert!(a.makespan() >= total.div_ceil(p as u64));
        }
    }

    #[test]
    fn prop_greedy_graham_bound(
        weights in proptest::collection::vec(1u64..10_000, 1..200),
        p in 1u32..32,
    ) {
        let a = greedy(&weights, p);
        let lb = a.lower_bound(&weights);
        prop_assert!(a.makespan() as f64 <= (2.0 - 1.0 / p as f64) * lb as f64 + 1e-9);
    }

    #[test]
    fn prop_lpt_bound(
        weights in proptest::collection::vec(1u64..10_000, 1..200),
        p in 1u32..32,
    ) {
        let a = lpt(&weights, p);
        let lb = a.lower_bound(&weights);
        prop_assert!(
            a.makespan() as f64 <= (4.0 / 3.0 - 1.0 / (3.0 * p as f64)) * lb as f64 + 1e-9
        );
    }

    #[test]
    fn prop_lpt_no_worse_than_greedy_in_order(
        weights in proptest::collection::vec(1u64..10_000, 1..120),
        p in 2u32..16,
    ) {
        // LPT is greedy over sorted tasks; sorting can only help the
        // worst case here because the last-placed task is the smallest.
        // (This is a known dominance for the *bound*, not pointwise —
        // so compare against the bound-relevant quantity.)
        let l = lpt(&weights, p).makespan();
        let g = greedy(&weights, p).makespan();
        let max_w = weights.iter().copied().max().unwrap();
        // Pointwise LPT <= greedy does not always hold; both must sit
        // within greedy's Graham bound though.
        let total: u64 = weights.iter().sum();
        let lb = (total.div_ceil(p as u64)).max(max_w);
        prop_assert!(l as f64 <= (2.0 - 1.0 / p as f64) * lb as f64 + 1e-9);
        prop_assert!(g as f64 <= (2.0 - 1.0 / p as f64) * lb as f64 + 1e-9);
    }

    #[test]
    fn prop_block_is_contiguous(
        weights in proptest::collection::vec(0u64..1000, 0..150),
        p in 1u32..16,
    ) {
        let a = block(&weights, p);
        for w in a.owner.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn prop_round_robin_is_cyclic(
        n in 0usize..100,
        p in 1u32..16,
    ) {
        let weights = vec![1u64; n];
        let a = round_robin(&weights, p);
        for (t, &o) in a.owner.iter().enumerate() {
            prop_assert_eq!(o, t as u32 % p);
        }
    }

    #[test]
    fn prop_imbalance_at_least_one(
        weights in proptest::collection::vec(1u64..1000, 1..100),
        p in 1u32..16,
    ) {
        for policy in Policy::ALL {
            let a = policy.assign(&weights, p);
            prop_assert!(a.imbalance() >= 1.0 - 1e-12, "{}", policy.name());
        }
    }
}

//! Criterion bench: PRNA backends (ablation A4 — static vs dynamic
//! scheduling, message passing vs shared memory).
//!
//! On a single-core host these measure backend overhead rather than
//! speedup; the speedup experiment proper is the `fig8` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use load_balance::Policy;
use mcos_parallel::{prna, Backend, PrnaConfig};
use rna_structure::generate;
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("prna_backends");
    let s = generate::worst_case_nested(100);
    let procs = 2u32;
    for backend in Backend::ALL {
        let config = PrnaConfig {
            processors: procs,
            policy: Policy::Greedy,
            backend,
            ..PrnaConfig::default()
        };
        group.bench_with_input(BenchmarkId::new(backend.name(), procs), &s, |b, s| {
            b.iter(|| prna(black_box(s), black_box(s), &config).score)
        });
    }
    // Sequential reference.
    group.bench_function("srna2_reference", |b| {
        b.iter(|| mcos_core::srna2::run(black_box(&s), black_box(&s)).score)
    });
    group.finish();
}

fn bench_skewed_scheduling(c: &mut Criterion) {
    // Skewed structure: dynamic (rayon) vs static (pool) scheduling.
    let mut group = c.benchmark_group("prna_skewed");
    let s = generate::skewed_groups(12, 3, 3);
    for backend in [Backend::WORKER_POOL, Backend::RAYON] {
        let config = PrnaConfig {
            processors: 2,
            policy: Policy::Greedy,
            backend,
            ..PrnaConfig::default()
        };
        group.bench_with_input(BenchmarkId::new(backend.name(), 2), &s, |b, s| {
            b.iter(|| prna(black_box(s), black_box(s), &config).score)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backends, bench_skewed_scheduling
}
criterion_main!(benches);

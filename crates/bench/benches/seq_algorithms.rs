//! Criterion bench: the sequential algorithms (Table I/II in microcosm).
//!
//! Benchmarks SRNA1, SRNA2 and the top-down baseline on worst-case and
//! rRNA-like inputs small enough for statistical timing. The expected
//! ordering is SRNA2 < SRNA1 << top-down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcos_core::{baseline, srna1, srna2};
use rna_structure::generate;
use std::hint::black_box;

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case_self");
    for arcs in [25u32, 50, 100] {
        let s = generate::worst_case_nested(arcs);
        group.bench_with_input(BenchmarkId::new("srna1", arcs), &s, |b, s| {
            b.iter(|| srna1::run(black_box(s), black_box(s)).score)
        });
        group.bench_with_input(BenchmarkId::new("srna2", arcs), &s, |b, s| {
            b.iter(|| srna2::run(black_box(s), black_box(s)).score)
        });
        if arcs <= 25 {
            group.bench_with_input(BenchmarkId::new("top_down", arcs), &s, |b, s| {
                b.iter(|| baseline::top_down_memo(black_box(s), black_box(s)).score)
            });
        }
    }
    group.finish();
}

fn bench_rrna_like(c: &mut Criterion) {
    let mut group = c.benchmark_group("rrna_like_self");
    for arcs in [100u32, 200] {
        let cfg = generate::RrnaConfig {
            len: arcs * 5,
            arcs,
            mean_stem: 7,
            nest_bias: 0.55,
        };
        let s = generate::rrna_like(&cfg, 42);
        group.bench_with_input(BenchmarkId::new("srna1", arcs), &s, |b, s| {
            b.iter(|| srna1::run(black_box(s), black_box(s)).score)
        });
        group.bench_with_input(BenchmarkId::new("srna2", arcs), &s, |b, s| {
            b.iter(|| srna2::run(black_box(s), black_box(s)).score)
        });
    }
    group.finish();
}

fn bench_cross_comparison(c: &mut Criterion) {
    // Comparing two *different* structures (the production use case).
    let cfg1 = generate::RrnaConfig {
        len: 600,
        arcs: 120,
        mean_stem: 7,
        nest_bias: 0.55,
    };
    let cfg2 = generate::RrnaConfig {
        len: 700,
        arcs: 150,
        mean_stem: 6,
        nest_bias: 0.5,
    };
    let s1 = generate::rrna_like(&cfg1, 1);
    let s2 = generate::rrna_like(&cfg2, 2);
    c.bench_function("cross_rrna_srna2", |b| {
        b.iter(|| srna2::run(black_box(&s1), black_box(&s2)).score)
    });
}

fn bench_weighted(c: &mut Criterion) {
    // The weighted (Bafna-style) generalization costs one extra weight
    // fetch per matched cell; this quantifies it against plain MCOS.
    use mcos_core::weighted::{self, Uniform, WeightMatrix};
    let s = generate::worst_case_nested(60);
    let a = s.num_arcs();
    let matrix = WeightMatrix::from_fn(a, a, |k1, k2| (k1 + k2) % 4 + 1);
    let mut group = c.benchmark_group("weighted");
    group.bench_function("mcos_plain", |b| {
        b.iter(|| srna2::run(black_box(&s), black_box(&s)).score)
    });
    group.bench_function("uniform_weight", |b| {
        b.iter(|| weighted::run(black_box(&s), black_box(&s), &Uniform(1)).score)
    });
    group.bench_function("matrix_weight", |b| {
        b.iter(|| weighted::run(black_box(&s), black_box(&s), &matrix).score)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_worst_case, bench_rrna_like, bench_cross_comparison, bench_weighted
}
criterion_main!(benches);

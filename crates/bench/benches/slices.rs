//! Criterion bench: compressed vs dense slice tabulation (ablation A2).
//!
//! The compressed grid visits one cell per arc pair inside the window;
//! the dense positional transcription of Figure 2 visits one cell per
//! position pair. On the worst case they coincide up to a constant; on
//! sparse realistic structures the compressed grid wins by the square of
//! the unpaired fraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcos_core::{preprocess::Preprocessed, slice};
use rna_structure::{generate, ArcStructure};
use std::hint::black_box;

/// Full run (stage one + parent) with compressed slices.
fn run_compressed(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let cols = p2.num_arcs() as usize;
    let mut memo = vec![0u32; p1.num_arcs() as usize * cols];
    let mut grid = Vec::new();
    for k1 in 0..p1.num_arcs() {
        for k2 in 0..p2.num_arcs() {
            let v = slice::tabulate_with(
                &p1,
                &p2,
                p1.under_range[k1 as usize],
                p2.under_range[k2 as usize],
                &mut grid,
                |g1, g2| memo[g1 as usize * cols + g2 as usize],
            );
            memo[k1 as usize * cols + k2 as usize] = v;
        }
    }
    slice::tabulate_with(
        &p1,
        &p2,
        p1.full_range(),
        p2.full_range(),
        &mut grid,
        |g1, g2| memo[g1 as usize * cols + g2 as usize],
    )
}

/// Full run with dense positional slices.
fn run_dense(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
    let cols = s2.num_arcs() as usize;
    let mut memo = vec![0u32; s1.num_arcs() as usize * cols];
    for k1 in 0..s1.num_arcs() {
        for k2 in 0..s2.num_arcs() {
            let a1 = s1.arc(k1);
            let a2 = s2.arc(k2);
            let v = slice::tabulate_dense(
                s1,
                s2,
                (a1.left + 1, a1.right - 1),
                (a2.left + 1, a2.right - 1),
                |g1, g2| memo[g1 as usize * cols + g2 as usize],
            );
            memo[k1 as usize * cols + k2 as usize] = v;
        }
    }
    slice::tabulate_dense(s1, s2, (0, s1.len() - 1), (0, s2.len() - 1), |g1, g2| {
        memo[g1 as usize * cols + g2 as usize]
    })
}

fn bench_slices(c: &mut Criterion) {
    let mut group = c.benchmark_group("slice_representation");
    // Dense worst case: representations nearly coincide.
    let dense_input = generate::worst_case_nested(40);
    // Sparse realistic structure: compressed should dominate.
    let sparse_input = generate::rrna_like(
        &generate::RrnaConfig {
            len: 400,
            arcs: 60,
            mean_stem: 6,
            nest_bias: 0.5,
        },
        9,
    );
    for (name, s) in [("worst40", &dense_input), ("rrna60", &sparse_input)] {
        group.bench_with_input(BenchmarkId::new("compressed", name), s, |b, s| {
            b.iter(|| run_compressed(black_box(s), black_box(s)))
        });
        group.bench_with_input(BenchmarkId::new("dense", name), s, |b, s| {
            b.iter(|| run_dense(black_box(s), black_box(s)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_slices
}
criterion_main!(benches);

//! Criterion bench: the substrates — mpi-sim collectives and the load
//! balancers.
//!
//! The allreduce latency measured here is the real (threaded) analogue of
//! the `sync_alpha`/`sync_beta_per_elem` parameters of the simulator's
//! cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use load_balance::Policy;
use std::hint::black_box;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_sim_allreduce");
    group.sample_size(10);
    for ranks in [2u32, 4] {
        for elems in [100usize, 1000] {
            group.throughput(Throughput::Elements(elems as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("ranks{ranks}"), elems),
                &elems,
                |b, &elems| {
                    b.iter(|| {
                        mpi_sim::run(ranks, |mut comm| {
                            let v = vec![comm.rank(); elems];
                            comm.allreduce(v, |mut a, b| {
                                for (x, y) in a.iter_mut().zip(&b) {
                                    *x = (*x).max(*y);
                                }
                                a
                            })
                            .len()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_ring_vs_tree(c: &mut Criterion) {
    // The two allreduce algorithms at a PRNA-row-like payload.
    let mut group = c.benchmark_group("allreduce_algorithms");
    group.sample_size(10);
    let elems = 800usize;
    for ranks in [2u32, 4] {
        group.bench_function(format!("tree_r{ranks}"), |b| {
            b.iter(|| {
                mpi_sim::run(ranks, |mut comm| {
                    let v = vec![comm.rank(); elems];
                    comm.allreduce(v, |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x = (*x).max(*y);
                        }
                        a
                    })
                    .len()
                })
            })
        });
        group.bench_function(format!("ring_r{ranks}"), |b| {
            b.iter(|| {
                mpi_sim::run(ranks, |mut comm| {
                    let v = vec![comm.rank(); elems];
                    comm.allreduce_ring(v, |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x = (*x).max(*y);
                        }
                        a
                    })
                    .len()
                })
            })
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    c.bench_function("mpi_sim_barrier_x10_ranks4", |b| {
        b.iter(|| {
            mpi_sim::run::<u32, _, _>(4, |mut comm| {
                for _ in 0..10 {
                    comm.barrier();
                }
            })
        })
    });
}

fn bench_balancers(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_balance");
    let weights: Vec<u64> = (0..10_000u64).map(|i| (i * 2654435761) % 10_007).collect();
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::new(policy.name(), weights.len()),
            &weights,
            |b, w| b.iter(|| policy.assign(black_box(w), 64).makespan()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allreduce, bench_ring_vs_tree, bench_barrier, bench_balancers
}
criterion_main!(benches);

//! Ablation: load-balancing policy for PRNA's static column
//! distribution (the paper chose Graham's greedy algorithm).
//!
//! Usage: `cargo run -p mcos-bench --release --bin ablation_balance`
//!
//! Replays the PRNA schedule in the simulator for each policy and
//! reports **stage-one compute speedup** (synchronization disabled) —
//! the quantity the distribution policy actually controls — on inputs
//! with increasingly skewed column weights, plus the idealized per-row
//! dynamic scheduler as an upper reference.

use load_balance::Policy;
use mcos_bench::{prna_sim_for, Table};
use par_sim::{CostModel, Scheduling};
use rna_structure::generate;

fn main() {
    // Sync-free model: isolate the scheduling quality. The absolute
    // per-cell cost cancels out of the speedup ratio.
    let model = CostModel {
        sync_alpha: 0.0,
        sync_beta_per_elem: 0.0,
        ..CostModel::default()
    };

    let inputs = [
        // Smooth weight ramp: every policy is near-ideal.
        ("worst-case-400", generate::worst_case_nested(400)),
        // Steep staircase of nested groups: the final groups dominate
        // and sit adjacent in column order, defeating contiguous splits.
        ("skewed-staircase", generate::skewed_groups(16, 2, 10)),
        // A few huge nests among many small hairpins.
        ("heavy-tail", {
            let mut s = generate::hairpin_chain(120, 2, 3);
            for _ in 0..3 {
                s = s.concat(&generate::worst_case_nested(120));
            }
            s
        }),
    ];
    let procs = [8u32, 16, 32, 64];

    for (name, s) in inputs {
        println!("\n=== {name} ({} arcs) ===", s.num_arcs());
        let sim = prna_sim_for(&s, &s);
        let t1 = sim.sequential_seconds(&model);
        let mut table = Table::new(&["procs", "greedy", "lpt", "block", "round-robin", "dynamic"]);
        for &p in &procs {
            let mut cells = vec![p.to_string()];
            for policy in Policy::ALL {
                let out = sim.run(p, Scheduling::Static(policy), &model);
                cells.push(format!("{:.2}", t1 / out.total_seconds));
            }
            let dyn_out = sim.run(p, Scheduling::DynamicPerRow, &model);
            cells.push(format!("{:.2}", t1 / dyn_out.total_seconds));
            table.row(&cells);
        }
        println!("{}", table.render());
    }
    println!("\n(entries are compute-only stage-one speedups; sync costs disabled so the");
    println!(" numbers isolate distribution quality. Greedy/LPT track the dynamic upper");
    println!(" reference; block and round-robin fall behind as column-weight skew grows —");
    println!(" the paper's rationale for a weight-aware static distribution.)");
}

//! Ablation: row barriers vs dependency-level wavefront scheduling.
//!
//! Usage: `cargo run -p mcos-bench --release --bin ablation_barriers
//!         [-- --quick] [-- --out PATH]`
//!
//! Runs **real** (not simulated) PRNA stage one under each shared-memory
//! backend and thread count on three input shapes, and reports per run
//! the stage-one wall-clock plus the number of synchronization points
//! the schedule pays:
//!
//! * row-synchronized backends (`worker-pool`, `rayon`) pay one barrier
//!   per row — `A₁`, the arc count of `S₁`;
//! * the `wavefront` backend pays one barrier per dependency level —
//!   `max_depth + 1` (see `mcos_parallel::wavefront`).
//!
//! The input shapes pull those two counts apart:
//!
//! * **worst-case** (fully nested): depth equals row index, so the two
//!   schedules coincide — wavefront must not lose here;
//! * **hairpin-chain**: thousands of rows, but depth equals the stem
//!   depth — the row schedule pays ~`A₁`× more barriers than needed;
//! * **skewed**: staircase of nested groups, intermediate ratio, with
//!   strong per-row imbalance on top.
//!
//! Each configuration runs `--reps` times (default 3) and the fastest
//! stage-one time is reported — wall-clock on a shared machine is noisy
//! and the minimum is the stablest estimator of the schedule's cost.
//!
//! Results go to stdout (table) and to `--out` (default
//! `crates/bench/results/BENCH_barriers.json`) through the shared
//! [`mcos_bench::emit`] envelope. `--quick` shrinks the inputs and
//! drops to 1 rep for smoke runs (CI).

use load_balance::Policy;
use mcos_bench::{emit, opt_value, secs, Table};
use mcos_core::preprocess::Preprocessed;
use mcos_parallel::{prna, wavefront, Backend, PrnaConfig, ScheduleKind};
use mcos_telemetry::json::Value;
use rna_structure::ArcStructure;

/// Backends under comparison: the two shared-memory row-barrier engines
/// and the level-wavefront engine. (`mpi-sim` is excluded: its
/// replicated tables measure the communication substrate, not the
/// schedule.)
const BACKENDS: [Backend; 3] = [Backend::WORKER_POOL, Backend::RAYON, Backend::WAVEFRONT];

fn sync_points(backend: Backend, p1: &Preprocessed, p2: &Preprocessed) -> u32 {
    match backend.schedule {
        ScheduleKind::Level => wavefront::num_levels(p1, p2),
        // Row-scheduled backends synchronize once per row of M.
        ScheduleKind::Row => p1.num_arcs(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = mcos_bench::has_flag(&args, "--quick");
    let reps: u32 = opt_value(&args, "--reps")
        .map(|r| r.parse().expect("--reps must be an integer"))
        .unwrap_or(if quick { 1 } else { 3 });
    let out_path = opt_value(&args, "--out")
        .unwrap_or("crates/bench/results/BENCH_barriers.json")
        .to_string();

    use rna_structure::generate;
    // "worst-case 512nt equivalent": a fully nested structure of 256
    // arcs occupies 512 positions.
    let inputs: Vec<(&str, ArcStructure)> = if quick {
        vec![
            ("worst-case", generate::worst_case_nested(48)),
            ("hairpin-chain", generate::hairpin_chain(40, 3, 2)),
            ("skewed", generate::skewed_groups(6, 2, 4)),
        ]
    } else {
        vec![
            ("worst-case", generate::worst_case_nested(256)),
            ("hairpin-chain", generate::hairpin_chain(120, 4, 2)),
            ("skewed", generate::skewed_groups(12, 2, 6)),
        ]
    };
    let thread_counts = [1u32, 2, 4, 8];

    let mut input_docs: Vec<Value> = Vec::new();
    for (name, s) in &inputs {
        let p = Preprocessed::build(s);
        let rows = p.num_arcs();
        let levels = wavefront::num_levels(&p, &p);
        println!(
            "\n=== {name} ({} arcs; {} row barriers vs {} wavefront levels) ===",
            rows, rows, levels
        );
        let mut runs: Vec<Value> = Vec::new();
        let mut table = Table::new(&["threads", "backend", "stage1 (s)", "sync points", "score"]);
        for &threads in &thread_counts {
            for backend in BACKENDS {
                let config = PrnaConfig {
                    processors: threads,
                    policy: Policy::Greedy,
                    backend,
                    ..PrnaConfig::default()
                };
                let mut out = prna(s, s, &config);
                for _ in 1..reps {
                    let rerun = prna(s, s, &config);
                    assert_eq!(rerun.score, out.score, "nondeterministic score");
                    if rerun.stage_one < out.stage_one {
                        out = rerun;
                    }
                }
                let sync = sync_points(backend, &p, &p);
                table.row(&[
                    threads.to_string(),
                    backend.name().to_string(),
                    secs(out.stage_one),
                    sync.to_string(),
                    out.score.to_string(),
                ]);
                runs.push(Value::object([
                    ("backend".to_string(), Value::from(backend.name())),
                    ("threads".to_string(), Value::from(threads)),
                    (
                        "stage_one_seconds".to_string(),
                        Value::from(out.stage_one.as_secs_f64()),
                    ),
                    ("sync_points".to_string(), Value::from(sync)),
                    ("score".to_string(), Value::from(out.score)),
                ]));
            }
        }
        println!("{}", table.render());
        input_docs.push(Value::object([
            ("name".to_string(), Value::from(*name)),
            ("arcs".to_string(), Value::from(rows)),
            ("row_barriers".to_string(), Value::from(rows)),
            ("wavefront_levels".to_string(), Value::from(levels)),
            ("runs".to_string(), Value::Array(runs)),
        ]));
    }

    let doc = emit::envelope(
        "barriers",
        [
            ("reps".to_string(), Value::from(reps)),
            ("inputs".to_string(), Value::Array(input_docs)),
        ],
    );
    match emit::write_artifact(&out_path, &doc) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    println!("\n(sync points: row backends barrier once per arc of S1; wavefront once per");
    println!(" nesting level. On the fully nested worst case the schedules coincide; on");
    println!(" hairpin chains the dependency graph is only stem-depth levels deep, so the");
    println!(" wavefront runs all of stage one in a handful of fork/joins.)");
}

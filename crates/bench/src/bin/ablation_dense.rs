//! Ablation: the paper's dense positional implementations vs. this
//! reproduction's compressed-grid implementations.
//!
//! Usage: `cargo run -p mcos-bench --release --bin ablation_dense [--full]`
//!
//! Two questions:
//!
//! 1. **Does the paper's SRNA1→SRNA2 speedup reproduce with the paper's
//!    data layout?** The dense pair differ exactly as the paper
//!    describes: SRNA1 performs a conditional memo lookup (through an
//!    out-of-line lookup routine) plus possible recursion inside the
//!    innermost loop; SRNA2 reads the memo unconditionally.
//! 2. **What does the compressed representation buy?** Both compressed
//!    variants tabulate only arc-pair cells instead of position-pair
//!    cells, which also collapses the SRNA1/SRNA2 gap (the overheads
//!    SRNA2 removes become negligible once slices are compressed).

use mcos_bench::{has_flag, secs, time, Table};
use mcos_core::{dense, srna1, srna2};
use rna_structure::generate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = has_flag(&args, "--full");
    let lengths: Vec<u32> = if full {
        vec![100, 200, 400, 800]
    } else {
        vec![100, 200, 400]
    };

    println!("Ablation — dense positional (paper layout) vs compressed grid\n");
    let mut table = Table::new(&[
        "length",
        "dense1 (s)",
        "dense2 (s)",
        "dense ratio",
        "comp1 (s)",
        "comp2 (s)",
        "comp ratio",
        "dense/comp",
    ]);
    for &n in &lengths {
        let s = generate::worst_case_nested(n / 2);
        let (d1o, d1) = time(|| dense::srna1(&s, &s));
        let (d2o, d2) = time(|| dense::srna2(&s, &s));
        let (c1o, c1) = time(|| srna1::run(&s, &s));
        let (c2o, c2) = time(|| srna2::run(&s, &s));
        assert!(
            d1o.score == n / 2 && d2o.score == n / 2 && c1o.score == n / 2 && c2o.score == n / 2
        );
        table.row(&[
            n.to_string(),
            secs(d1),
            secs(d2),
            format!("{:.2}", d1.as_secs_f64() / d2.as_secs_f64()),
            secs(c1),
            secs(c2),
            format!("{:.2}", c1.as_secs_f64() / c2.as_secs_f64()),
            format!("{:.1}", d2.as_secs_f64() / c2.as_secs_f64()),
        ]);
        eprintln!("done n={n}");
    }
    println!("{}", table.render());

    // Sparse realistic input: the compressed layout's advantage explodes.
    let cfg = generate::RrnaConfig {
        len: 2000,
        arcs: 350,
        mean_stem: 7,
        nest_bias: 0.55,
    };
    let s = generate::rrna_like(&cfg, 11);
    let (dd, d_dense) = time(|| dense::srna2(&s, &s));
    let (cc, d_comp) = time(|| srna2::run(&s, &s));
    assert_eq!(dd.score, cc.score);
    println!(
        "rRNA-like (2000 nt / 350 arcs): dense {:.3}s ({} cells) vs compressed {:.3}s ({} cells) — {:.0}x",
        d_dense.as_secs_f64(),
        dd.cells,
        d_comp.as_secs_f64(),
        cc.counters.cells,
        d_dense.as_secs_f64() / d_comp.as_secs_f64()
    );
}

//! Ablation: PRNA on a **heterogeneous** cluster — the environment of
//! the manager–worker related work (Snow et al.), which the paper's
//! introduction cites as the motivation for dynamic load balancing.
//!
//! Usage: `cargo run -p mcos-bench --release --bin ablation_heterogeneous`
//!
//! Compares three column-distribution strategies on mixed-speed
//! processor pools (simulated): speed-oblivious greedy (the paper's
//! PRNA, which assumes identical processors), speed-aware greedy, and
//! the idealized per-row dynamic scheduler. The question the table
//! answers: how much of the manager–worker scheme's *raison d'être*
//! (heterogeneity) can a static distribution recover just by knowing the
//! speeds?

use mcos_bench::{calibrate_seconds_per_cell, cluster2009_model, prna_sim_for, Table};
use par_sim::Scheduling;
use rna_structure::generate;

fn main() {
    let mut model = cluster2009_model();
    model.seconds_per_cell = calibrate_seconds_per_cell(100);
    let s = generate::worst_case_nested(400);
    let sim = prna_sim_for(&s, &s);
    let t1 = sim.sequential_seconds(&model);

    // Pools: uniform, mildly mixed (2 generations), strongly mixed.
    let pools: [(&str, Vec<f64>); 3] = [
        ("uniform x16", vec![1.0; 16]),
        (
            "two generations (8 fast + 8 slow)",
            [vec![2.0; 8], vec![1.0; 8]].concat(),
        ),
        (
            "strongly mixed (4x3.0 + 4x1.5 + 8x1.0)",
            [vec![3.0; 4], vec![1.5; 4], vec![1.0; 8]].concat(),
        ),
    ];

    println!("PRNA on heterogeneous pools — worst case, 400 arcs (simulated)\n");
    let mut table = Table::new(&[
        "pool",
        "total speed",
        "oblivious",
        "speed-aware",
        "dynamic (homog. ref)",
    ]);
    for (name, speeds) in pools {
        let total_speed: f64 = speeds.iter().sum();
        let oblivious = sim.run_heterogeneous(&speeds, false, &model);
        let aware = sim.run_heterogeneous(&speeds, true, &model);
        // Homogeneous dynamic reference at the same processor count.
        let dynamic = sim.run(speeds.len() as u32, Scheduling::DynamicPerRow, &model);
        table.row(&[
            name.to_string(),
            format!("{total_speed:.1}"),
            format!("{:.2}", t1 / oblivious.total_seconds),
            format!("{:.2}", t1 / aware.total_seconds),
            format!("{:.2}", t1 / dynamic.total_seconds),
        ]);
    }
    println!("{}", table.render());
    println!("(entries are speedups over the calibrated single-core run. A speed-aware");
    println!(" static distribution recovers most of the heterogeneity penalty that the");
    println!(" speed-oblivious PRNA distribution pays on mixed pools — without the");
    println!(" manager-worker scheme's per-task round trips.)");

    // Sanity assertion mirrored in the test suite.
    let speeds = [vec![2.0; 8], vec![1.0; 8]].concat();
    let oblivious = sim.run_heterogeneous(&speeds, false, &model);
    let aware = sim.run_heterogeneous(&speeds, true, &model);
    assert!(aware.total_seconds <= oblivious.total_seconds);
}

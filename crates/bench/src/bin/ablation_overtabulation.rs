//! Ablation: exact tabulation vs overtabulation (the paper's §II/§IV
//! argument for the combined bottom-up/top-down design).
//!
//! Usage: `cargo run -p mcos-bench --release --bin ablation_overtabulation`
//!
//! Compares, at small sizes where the dense 4-D table fits in memory:
//!
//! * the conventional fully tabulating bottom-up strategy (dense
//!   positional subproblems over every `(i1, i2)` start pair),
//! * plain top-down memoization (exact but hash/recursion overhead),
//! * SRNA2 (exact tabulation on the compressed grid).

use mcos_bench::{secs, time, Table};
use mcos_core::{baseline, srna2};
use rna_structure::generate;

fn main() {
    println!("Ablation — overtabulation vs exact tabulation\n");
    let mut table = Table::new(&[
        "input",
        "len",
        "arcs",
        "bu-full subpr",
        "topdown subpr",
        "srna2 cells",
        "overtab x",
        "bu-full (s)",
        "topdown (s)",
        "srna2 (s)",
    ]);
    let inputs: Vec<(&str, rna_structure::ArcStructure)> = vec![
        ("worst-case", generate::worst_case_nested(40)),
        ("hairpins", generate::hairpin_chain(8, 4, 4)),
        ("rrna-like", {
            generate::rrna_like(
                &generate::RrnaConfig {
                    len: 90,
                    arcs: 24,
                    mean_stem: 5,
                    nest_bias: 0.5,
                },
                7,
            )
        }),
        ("sparse", generate::random_structure(90, 0.25, 3)),
    ];
    for (name, s) in inputs {
        let (bu, d_bu) = time(|| baseline::bottom_up_full(&s, &s));
        let (td, d_td) = time(|| baseline::top_down_memo(&s, &s));
        let (v2, d_2) = time(|| srna2::run(&s, &s));
        assert_eq!(bu.score, v2.score);
        assert_eq!(td.score, v2.score);
        table.row(&[
            name.to_string(),
            s.len().to_string(),
            s.num_arcs().to_string(),
            bu.subproblems.to_string(),
            td.subproblems.to_string(),
            v2.counters.cells.to_string(),
            format!(
                "{:.1}",
                bu.subproblems as f64 / v2.counters.cells.max(1) as f64
            ),
            secs(d_bu),
            secs(d_td),
            secs(d_2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The compressed exact tabulation visits orders of magnitude fewer subproblems;\n\
         the gap widens as structures get sparser (data-driven pruning)."
    );
}

//! Ablation: PRNA vs the two related-work parallelization schemes the
//! paper contrasts with in §II.
//!
//! Usage: `cargo run -p mcos-bench --release --bin ablation_related_work`
//!
//! 1. **Manager–worker** (Snow et al. \[7\]): dynamic column distribution
//!    through a dedicated manager rank. Same results, one rank lost to
//!    management plus a request/assign round trip per task.
//! 2. **Shared-memo randomized top-down** (Stivala et al. \[8\]): threads
//!    race down randomized subproblem orders against one lock-free memo.
//!    Correct, but performs *duplicated* slice tabulations that grow
//!    with the thread count — the scalability ceiling the paper cites.

use load_balance::Policy;
use mcos_bench::{secs, time, Table};
use mcos_core::srna2;
use mcos_parallel::{parallel_top_down, prna, prna_manager_worker, Backend, PrnaConfig};
use rna_structure::generate;

fn main() {
    let s = generate::worst_case_nested(150);
    println!(
        "Related-work comparison on the contrived worst case ({} arcs)\n",
        s.num_arcs()
    );
    let reference = srna2::run(&s, &s);

    println!("-- scheme wall times (single-core host: overhead comparison) --");
    let mut t = Table::new(&["scheme", "ranks", "time (s)", "score ok"]);
    for ranks in [2u32, 4] {
        let (static_out, d_static) = time(|| {
            prna(
                &s,
                &s,
                &PrnaConfig {
                    processors: ranks,
                    policy: Policy::Greedy,
                    backend: Backend::MPI_SIM,
                    ..PrnaConfig::default()
                },
            )
        });
        t.row(&[
            "prna-static".into(),
            ranks.to_string(),
            secs(d_static),
            (static_out.score == reference.score).to_string(),
        ]);
        let (mw_out, d_mw) = time(|| prna_manager_worker(&s, &s, ranks));
        t.row(&[
            "manager-worker".into(),
            ranks.to_string(),
            secs(d_mw),
            (mw_out.score == reference.score).to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("-- shared-memo randomized top-down: duplicated work vs threads --");
    let mut t2 = Table::new(&[
        "threads",
        "computed",
        "distinct",
        "duplicated",
        "overhead %",
    ]);
    for threads in [1u32, 2, 4, 8] {
        let out = parallel_top_down(&s, &s, threads, 12345);
        assert_eq!(out.score, reference.score);
        t2.row(&[
            threads.to_string(),
            out.computed_slices.to_string(),
            out.distinct_slices.to_string(),
            out.duplicated.to_string(),
            format!(
                "{:.1}",
                100.0 * out.duplicated as f64 / out.distinct_slices as f64
            ),
        ]);
    }
    println!("{}", t2.render());
    println!("Duplication grows with thread count — \"as the number of processors");
    println!("increases, so, too, does the likelihood of multiple processors following");
    println!("identical paths\" (paper §II on the shared-memoization approach).");
}

//! Figures 3, 4 and 6: dependency-graph illustrations, exported as DOT.
//!
//! Usage: `cargo run -p mcos-bench --release --bin depgraph [--slices]`
//!
//! Prints the top-down subproblem dependency graph (Figure 3) for the
//! paper's 5-position example, or with `--slices` the child-slice /
//! memoization-table dependency graph (Figures 4 and 6) for a nested
//! structure. Pipe into `dot -Tsvg` to render.

use mcos_bench::has_flag;
use mcos_core::depgraph;
use rna_structure::formats::dot_bracket;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--slices") {
        // Figure 4/6 input: a group of nested arcs (self-comparison).
        let s = dot_bracket::parse("((((.))))").expect("valid");
        print!("{}", depgraph::slice_graph_dot(&s, &s));
    } else {
        // Figure 3 input: 5 positions, arcs (0,4) and (1,3).
        let s = dot_bracket::parse("((.))").expect("valid");
        print!("{}", depgraph::subproblem_graph_dot(&s, &s));
    }
}

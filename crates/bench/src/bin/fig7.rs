//! Figure 7: the parent-slice view of child-slice work — the non-empty
//! entries are the subproblem counts of the child slices spawned at each
//! matched arc pair, i.e. the per-column task weights PRNA balances.
//!
//! Usage: `cargo run -p mcos-bench --release --bin fig7`

use load_balance::Policy;
use mcos_core::{preprocess::Preprocessed, workload};
use rna_structure::formats::dot_bracket;

fn main() {
    // Two small structures in the spirit of the paper's Figure 7: groups
    // of nested arcs of different depths, so the column weights differ.
    let s1 = dot_bracket::parse("(((...)))((...))").expect("valid");
    let s2 = dot_bracket::parse("((...))(((...)))").expect("valid");
    let p1 = Preprocessed::build(&s1);
    let p2 = Preprocessed::build(&s2);

    println!("Figure 7 — child-slice work matrix");
    println!("S1 = (((...)))((...))   rows: arcs of S1 by right endpoint");
    println!("S2 = ((...))(((...)))   cols: arcs of S2 by right endpoint");
    println!("(entry = subproblems in the spawned child slice; '.' = leaf pair)\n");
    print!("{}", workload::render_work_matrix(&p1, &p2));

    let weights = workload::column_weights(&p1, &p2);
    println!("\nPer-column weights (load-balancer input): {weights:?}");
    for p in [2u32, 3] {
        let a = Policy::Greedy.assign(&weights, p);
        println!(
            "greedy over {p} processors: loads {:?}, imbalance {:.3}",
            a.load,
            a.imbalance()
        );
    }

    // Also show the worst case, where every column weight differs.
    let w = rna_structure::generate::worst_case_nested(8);
    let pw = Preprocessed::build(&w);
    println!("\nWorst case (8 nested arcs), self-comparison:");
    print!("{}", workload::render_work_matrix(&pw, &pw));
}

//! Figure 8: PRNA speedup on contrived worst-case data — 800 nested arcs
//! (length 1600) and 1600 nested arcs (length 3200), processor counts up
//! to 64.
//!
//! Usage:
//!   cargo run -p mcos-bench --release --bin fig8 [--procs 1,2,4,...]
//!       [--real] [--full]
//!
//! Default mode replays the exact PRNA schedule in the deterministic
//! simulator (`par-sim`): the per-cell cost is calibrated from a real
//! SRNA2 run on this machine, and the allreduce cost uses the
//! 2009-cluster communication preset (DESIGN.md, substitution 2). This
//! reproduces the *shape* of Figure 8 — speedup grows with P, the larger
//! problem scales further (paper: 22× vs 32× at 64 processors) — without
//! 64 physical processors.
//!
//! `--real` additionally runs the threaded PRNA backends and reports
//! measured wall-clock speedup (only meaningful on a multi-core host;
//! uses a smaller default size unless `--full`).

use load_balance::Policy;
use mcos_bench::{
    calibrate_seconds_per_cell, fundy_model, has_flag, opt_value, parse_procs,
    prna_sim_from_preprocessed, time, Table,
};
use mcos_core::preprocess::Preprocessed;
use mcos_parallel::{prna, Backend, PrnaConfig};
use par_sim::Scheduling;
use rna_structure::generate;

/// Paper Figure 8 reference speedups at 64 processors.
const PAPER_800_AT_64: f64 = mcos_bench::paper::FIG8_AT_64[0].1;
const PAPER_1600_AT_64: f64 = mcos_bench::paper::FIG8_AT_64[1].1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let procs: Vec<u32> = opt_value(&args, "--procs")
        .map(parse_procs)
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64]);

    println!("Figure 8 — PRNA speedup, contrived worst-case data");
    println!("(simulated schedule replay; --real for threaded wall-clock)\n");

    eprintln!("calibrating per-cell cost from a real SRNA2 run...");
    let spc = calibrate_seconds_per_cell(150);
    let mut model = fundy_model();
    model.seconds_per_cell = spc;
    eprintln!(
        "calibrated: {spc:.3e} s/cell; cluster preset: alpha {:.0}us, {} cores/node, {}x contention",
        model.sync_alpha * 1e6,
        model.node_cores,
        model.contention_at_full
    );

    let mut table = Table::new(&[
        "procs",
        "speedup 800 arcs",
        "speedup 1600 arcs",
        "util 800",
        "util 1600",
    ]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut curves = Vec::new();
    for arcs in [800u32, 1600] {
        let s = generate::worst_case_nested(arcs);
        let p = Preprocessed::build(&s);
        let sim = prna_sim_from_preprocessed(&p, &p);
        let t1 = sim.sequential_seconds(&model);
        eprintln!(
            "arcs={arcs}: simulated sequential time {t1:.1}s ({} cells)",
            sim.grid.total()
        );
        let mut curve = Vec::new();
        for &pr in &procs {
            let out = sim.run(pr, Scheduling::Static(Policy::Greedy), &model);
            curve.push((pr, t1 / out.total_seconds, out.utilization));
        }
        curves.push(curve);
    }
    for (i, &pr) in procs.iter().enumerate() {
        rows.push(vec![
            pr.to_string(),
            format!("{:.2}", curves[0][i].1),
            format!("{:.2}", curves[1][i].1),
            format!("{:.3}", curves[0][i].2),
            format!("{:.3}", curves[1][i].2),
        ]);
    }
    for r in &rows {
        table.row(r);
    }
    println!("{}", table.render());
    if procs.contains(&64) {
        let i64 = procs.iter().position(|&p| p == 64).unwrap();
        println!(
            "paper at 64 procs: {PAPER_800_AT_64}x (800 arcs), {PAPER_1600_AT_64}x (1600 arcs); \
             simulated: {:.1}x / {:.1}x",
            curves[0][i64].1, curves[1][i64].1
        );
    }

    if has_flag(&args, "--trace") {
        // Schedule diagnosis at 64 processors for the 800-arc input:
        // where the static distribution loses time.
        let s = generate::worst_case_nested(800);
        let p = Preprocessed::build(&s);
        let sim = prna_sim_from_preprocessed(&p, &p);
        let (_, rows) = sim.run_traced(64, Scheduling::Static(Policy::Greedy), &model);
        let mut worst: Vec<(usize, f64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.imbalance()))
            .collect();
        worst.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("\nmost imbalanced rows at P=64 (row = arc of S1, compute imbalance):");
        for (row, imb) in worst.iter().take(5) {
            println!(
                "  row {row:>4}: imbalance {imb:.3}, makespan {:.2e}s, sync {:.2e}s",
                rows[*row].makespan(),
                rows[*row].sync
            );
        }
        let mean: f64 = worst.iter().map(|(_, i)| i).sum::<f64>() / worst.len() as f64;
        println!("  mean row imbalance: {mean:.3}");
    }

    if has_flag(&args, "--real") {
        let arcs = if has_flag(&args, "--full") { 400 } else { 150 };
        let cores = std::thread::available_parallelism()
            .map(|c| c.get() as u32)
            .unwrap_or(1);
        println!("\nReal threaded PRNA (worst case, {arcs} arcs; host has {cores} core(s)):");
        let s = generate::worst_case_nested(arcs);
        let (seq, seq_d) = time(|| mcos_core::srna2::run(&s, &s));
        println!("sequential SRNA2: {:.3}s", seq_d.as_secs_f64());
        let mut t = Table::new(&["backend", "procs", "time (s)", "speedup"]);
        for backend in Backend::ALL {
            for pr in [1u32, 2, 4] {
                if pr > cores * 2 {
                    continue;
                }
                let config = PrnaConfig {
                    processors: pr,
                    policy: Policy::Greedy,
                    backend,
                    ..PrnaConfig::default()
                };
                let (out, d) = time(|| prna(&s, &s, &config));
                assert_eq!(out.score, seq.score);
                t.row(&[
                    backend.name().to_string(),
                    pr.to_string(),
                    format!("{:.3}", d.as_secs_f64()),
                    format!("{:.2}", seq_d.as_secs_f64() / d.as_secs_f64()),
                ]);
            }
        }
        println!("{}", t.render());
    }
}

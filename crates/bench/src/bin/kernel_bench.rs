//! Kernel throughput sweep: every slice-tabulation kernel, single-thread
//! and under every legacy parallel backend, on the three input shapes.
//!
//! Usage: `cargo run -p mcos-bench --release --bin kernel_bench
//!         [-- --quick] [-- --out PATH] [-- --reps N]`
//!
//! (Add `--features simd` to measure the explicit 8-lane scan; the
//! emitted JSON records which variant was built.)
//!
//! The kernel layer (`mcos_core::kernel`) is an axis orthogonal to the
//! engine's schedule × store × distribution matrix: it only swaps the
//! inner max-plus loop of one slice. This bin answers the two questions
//! that axis raises:
//!
//! * **single-thread**: what does each kernel's raw tabulation rate
//!   (cells/sec) look like per input shape, and what speedup does the
//!   tiled sweep deliver over the classic scalar loop? The headline
//!   target is ≥2× on the dense worst case — where slices are large and
//!   the scalar loop's serial max chain dominates — with no regression
//!   on the hairpin chain, whose many tiny slices leave no room for
//!   per-slice preprocessing to amortize.
//! * **composed**: does the kernel choice keep paying once a parallel
//!   backend wraps it in barriers and memo traffic, for every legacy
//!   backend at a fixed thread count?
//!
//! Each configuration runs `--reps` times (default 3) and the fastest
//! time is reported — the minimum is the stablest estimator on a shared
//! machine. Scores are cross-checked across kernels on every run; a
//! mismatch aborts the bench (the equivalence suite owns the exhaustive
//! version of that claim).
//!
//! Results go to stdout (table) and to `--out` (default
//! `crates/bench/results/BENCH_kernel.json`). `--quick` shrinks the
//! inputs and drops to 1 rep for smoke runs (CI).

use std::fmt::Write as _;

use load_balance::Policy;
use mcos_bench::{opt_value, secs, Table};
use mcos_core::kernel::KernelKind;
use mcos_core::preprocess::Preprocessed;
use mcos_core::srna2;
use mcos_parallel::{prna, Backend, PrnaConfig};
use rna_structure::ArcStructure;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = mcos_bench::has_flag(&args, "--quick");
    let reps: u32 = opt_value(&args, "--reps")
        .and_then(|r| r.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 });
    let out_path = opt_value(&args, "--out")
        .unwrap_or("crates/bench/results/BENCH_kernel.json")
        .to_string();

    use rna_structure::generate;
    let inputs: Vec<(&str, ArcStructure)> = if quick {
        vec![
            ("worst-case", generate::worst_case_nested(48)),
            ("hairpin-chain", generate::hairpin_chain(40, 3, 2)),
            ("skewed", generate::skewed_groups(6, 2, 4)),
        ]
    } else {
        vec![
            ("worst-case", generate::worst_case_nested(256)),
            ("hairpin-chain", generate::hairpin_chain(120, 4, 2)),
            ("skewed", generate::skewed_groups(10, 2, 6)),
        ]
    };
    let threads: u32 = if quick { 2 } else { 4 };

    let mut json = format!(
        "{{\n  \"experiment\": \"kernel\",\n  \"simd\": {},\n  \"reps\": {reps},\n  \
         \"inputs\": [\n",
        cfg!(feature = "simd"),
    );
    for (i, (name, s)) in inputs.iter().enumerate() {
        let p = Preprocessed::build(s);
        println!("\n=== {name} ({} arcs) ===", p.num_arcs());
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"arcs\": {}, \"single_thread\": [",
            p.num_arcs()
        );

        // Single-thread sweep: the sequential SRNA2 driver with each
        // kernel dispatched for every slice (stage one + stage two).
        let mut table = Table::new(&["kernel", "total (s)", "Mcells/s", "vs scalar"]);
        let mut scalar_time = f64::NAN;
        let mut score = None;
        for (k, kind) in KernelKind::ALL.into_iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut cells = 0u64;
            for _ in 0..reps {
                let (out, d) =
                    mcos_bench::time(|| srna2::run_preprocessed_with_kernel(&p, &p, kind));
                match score {
                    None => score = Some(out.score),
                    Some(sc) => {
                        assert_eq!(sc, out.score, "{name}: kernel {} diverged", kind.name())
                    }
                }
                best = best.min(d.as_secs_f64());
                cells = out.counters.cells;
            }
            if kind == KernelKind::Scalar {
                scalar_time = best;
            }
            let rate = cells as f64 / best / 1e6;
            table.row(&[
                kind.name().to_string(),
                secs(std::time::Duration::from_secs_f64(best)),
                format!("{rate:.1}"),
                format!("{:.2}x", scalar_time / best),
            ]);
            let _ = writeln!(
                json,
                "      {{\"kernel\": \"{}\", \"seconds\": {best:.6}, \"cells\": {cells}, \
                 \"cells_per_sec\": {:.1}, \"speedup_vs_scalar\": {:.4}}}{}",
                kind.name(),
                cells as f64 / best,
                scalar_time / best,
                if k + 1 < KernelKind::ALL.len() {
                    ","
                } else {
                    ""
                },
            );
        }
        println!("single-thread (sequential SRNA2 driver):");
        println!("{}", table.render());

        // Composed sweep: every legacy backend at a fixed thread count,
        // per kernel — the kernel choice must survive the barriers.
        json.push_str("    ], \"parallel\": [\n");
        let mut table = Table::new(&["backend", "kernel", "stage1 (s)"]);
        let mut first = true;
        for backend in Backend::ALL {
            for kind in KernelKind::ALL {
                let config = PrnaConfig {
                    processors: threads,
                    policy: Policy::Greedy,
                    backend,
                    kernel: kind,
                };
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let out = prna(s, s, &config);
                    assert_eq!(
                        Some(out.score),
                        score,
                        "{name}: {} diverged",
                        backend.name()
                    );
                    best = best.min(out.stage_one.as_secs_f64());
                }
                table.row(&[
                    backend.name().to_string(),
                    kind.name().to_string(),
                    format!("{best:.6}"),
                ]);
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "      {{\"backend\": \"{}\", \"kernel\": \"{}\", \"threads\": {threads}, \
                     \"stage_one_seconds\": {best:.6}}}",
                    backend.name(),
                    kind.name(),
                );
            }
        }
        println!("parallel stage one ({threads} threads):");
        println!("{}", table.render());
        json.push_str("\n    ]}");
        json.push_str(if i + 1 < inputs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    println!("\n(single-thread rows time the full sequential run — stage one and two —");
    println!(" through each kernel; cells/sec uses the counted DP cells. Parallel rows");
    println!(" time stage one only, fastest of {reps} rep(s).)");
}

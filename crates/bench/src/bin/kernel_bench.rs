//! Kernel throughput sweep: every slice-tabulation kernel, single-thread
//! and under every legacy parallel backend, on the three input shapes.
//!
//! Usage: `cargo run -p mcos-bench --release --bin kernel_bench
//!         [-- --quick] [-- --out PATH] [-- --reps N]`
//!
//! (Add `--features simd` to measure the explicit 8-lane scan; the
//! emitted JSON records which variant was built.)
//!
//! The kernel layer (`mcos_core::kernel`) is an axis orthogonal to the
//! engine's schedule × store × distribution matrix: it only swaps the
//! inner max-plus loop of one slice. This bin answers the two questions
//! that axis raises:
//!
//! * **single-thread**: what does each kernel's raw tabulation rate
//!   (cells/sec) look like per input shape, and what speedup does the
//!   tiled sweep deliver over the classic scalar loop? The headline
//!   target is ≥2× on the dense worst case — where slices are large and
//!   the scalar loop's serial max chain dominates — with no regression
//!   on the hairpin chain, whose many tiny slices leave no room for
//!   per-slice preprocessing to amortize.
//! * **composed**: does the kernel choice keep paying once a parallel
//!   backend wraps it in barriers and memo traffic, for every legacy
//!   backend at a fixed thread count?
//!
//! Each configuration runs `--reps` times (default 3) and the fastest
//! time is reported — the minimum is the stablest estimator on a shared
//! machine. Scores are cross-checked across kernels on every run; a
//! mismatch aborts the bench (the equivalence suite owns the exhaustive
//! version of that claim).
//!
//! Results go to stdout (table) and to `--out` (default
//! `crates/bench/results/BENCH_kernel.json`) through the shared
//! [`mcos_bench::emit`] envelope. `--quick` shrinks the inputs and
//! drops to 1 rep for smoke runs (CI).

use load_balance::Policy;
use mcos_bench::{emit, opt_value, secs, Table};
use mcos_core::kernel::KernelKind;
use mcos_core::preprocess::Preprocessed;
use mcos_core::srna2;
use mcos_parallel::{prna, Backend, PrnaConfig};
use mcos_telemetry::json::Value;
use rna_structure::ArcStructure;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = mcos_bench::has_flag(&args, "--quick");
    let reps: u32 = opt_value(&args, "--reps")
        .and_then(|r| r.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 });
    let out_path = opt_value(&args, "--out")
        .unwrap_or("crates/bench/results/BENCH_kernel.json")
        .to_string();

    use rna_structure::generate;
    let inputs: Vec<(&str, ArcStructure)> = if quick {
        vec![
            ("worst-case", generate::worst_case_nested(48)),
            ("hairpin-chain", generate::hairpin_chain(40, 3, 2)),
            ("skewed", generate::skewed_groups(6, 2, 4)),
        ]
    } else {
        vec![
            ("worst-case", generate::worst_case_nested(256)),
            ("hairpin-chain", generate::hairpin_chain(120, 4, 2)),
            ("skewed", generate::skewed_groups(10, 2, 6)),
        ]
    };
    let threads: u32 = if quick { 2 } else { 4 };

    let mut input_docs: Vec<Value> = Vec::new();
    for (name, s) in &inputs {
        let p = Preprocessed::build(s);
        println!("\n=== {name} ({} arcs) ===", p.num_arcs());

        // Single-thread sweep: the sequential SRNA2 driver with each
        // kernel dispatched for every slice (stage one + stage two).
        let mut single: Vec<Value> = Vec::new();
        let mut table = Table::new(&["kernel", "total (s)", "Mcells/s", "vs scalar"]);
        let mut scalar_time = f64::NAN;
        let mut score = None;
        for kind in KernelKind::ALL {
            let mut best = f64::INFINITY;
            let mut cells = 0u64;
            for _ in 0..reps {
                let (out, d) =
                    mcos_bench::time(|| srna2::run_preprocessed_with_kernel(&p, &p, kind));
                match score {
                    None => score = Some(out.score),
                    Some(sc) => {
                        assert_eq!(sc, out.score, "{name}: kernel {} diverged", kind.name())
                    }
                }
                best = best.min(d.as_secs_f64());
                cells = out.counters.cells;
            }
            if kind == KernelKind::Scalar {
                scalar_time = best;
            }
            let rate = cells as f64 / best / 1e6;
            table.row(&[
                kind.name().to_string(),
                secs(std::time::Duration::from_secs_f64(best)),
                format!("{rate:.1}"),
                format!("{:.2}x", scalar_time / best),
            ]);
            single.push(Value::object([
                ("kernel".to_string(), Value::from(kind.name())),
                ("seconds".to_string(), Value::from(best)),
                ("cells".to_string(), Value::from(cells)),
                (
                    "cells_per_sec".to_string(),
                    Value::from(cells as f64 / best),
                ),
                (
                    "speedup_vs_scalar".to_string(),
                    Value::from(scalar_time / best),
                ),
            ]));
        }
        println!("single-thread (sequential SRNA2 driver):");
        println!("{}", table.render());

        // Composed sweep: every legacy backend at a fixed thread count,
        // per kernel — the kernel choice must survive the barriers.
        let mut parallel: Vec<Value> = Vec::new();
        let mut table = Table::new(&["backend", "kernel", "stage1 (s)"]);
        for backend in Backend::ALL {
            for kind in KernelKind::ALL {
                let config = PrnaConfig {
                    processors: threads,
                    policy: Policy::Greedy,
                    backend,
                    kernel: kind,
                    ..PrnaConfig::default()
                };
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let out = prna(s, s, &config);
                    assert_eq!(
                        Some(out.score),
                        score,
                        "{name}: {} diverged",
                        backend.name()
                    );
                    best = best.min(out.stage_one.as_secs_f64());
                }
                table.row(&[
                    backend.name().to_string(),
                    kind.name().to_string(),
                    format!("{best:.6}"),
                ]);
                parallel.push(Value::object([
                    ("backend".to_string(), Value::from(backend.name())),
                    ("kernel".to_string(), Value::from(kind.name())),
                    ("threads".to_string(), Value::from(threads)),
                    ("stage_one_seconds".to_string(), Value::from(best)),
                ]));
            }
        }
        println!("parallel stage one ({threads} threads):");
        println!("{}", table.render());

        input_docs.push(Value::object([
            ("name".to_string(), Value::from(*name)),
            ("arcs".to_string(), Value::from(p.num_arcs())),
            ("single_thread".to_string(), Value::Array(single)),
            ("parallel".to_string(), Value::Array(parallel)),
        ]));
    }

    let doc = emit::envelope(
        "kernel",
        [
            ("reps".to_string(), Value::from(reps)),
            ("inputs".to_string(), Value::Array(input_docs)),
        ],
    );
    match emit::write_artifact(&out_path, &doc) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    println!("\n(single-thread rows time the full sequential run — stage one and two —");
    println!(" through each kernel; cells/sec uses the counted DP cells. Parallel rows");
    println!(" time stage one only, fastest of {reps} rep(s).)");
}

//! Telemetry profile of every PRNA backend: where the time actually goes.
//!
//! Usage: `cargo run -p mcos-bench --release --bin profile_backends
//!         [-- --quick] [-- --out PATH]`
//!
//! Runs real PRNA stage one with the recorder **enabled** under each
//! backend, input shape, and thread count, and reports the load-report
//! aggregates next to the work counters:
//!
//! * **busy %** — slice-tabulation time as a share of `p × wall`
//!   (parallel efficiency of stage one);
//! * **wait %** — barrier/collective wait as a share of `p × wall`;
//! * **imbalance** — observed max/mean busy time across workers, next to
//!   the static assignment's *predicted* imbalance from the `balance`
//!   crate (Graham bound);
//! * counters — slices, cells, largest slice, settled-snapshot reads
//!   (wavefront), Allreduce rounds and payload bytes (mpi-sim).
//!
//! Unlike `ablation_barriers` this bin runs each configuration **once**:
//! the quantities of interest are ratios within one traced run, not
//! wall-clock minima across repetitions, so repetition buys nothing.
//! Telemetry overhead is on the order of one clock read per slice — see
//! the ablation gate in CI (`ablation_barriers` with the recorder
//! disabled) for the zero-cost claim.
//!
//! Results go to stdout (table) and to `--out` (default
//! `crates/bench/results/BENCH_profile.json`). `--quick` shrinks the
//! inputs for smoke runs (CI).

use std::fmt::Write as _;

use load_balance::Policy;
use mcos_bench::{opt_value, Table};
use mcos_core::preprocess::Preprocessed;
use mcos_core::workload;
use mcos_parallel::{prna_recorded, Backend, PrnaConfig};
use mcos_telemetry::report::{GrahamComparison, LoadReport};
use mcos_telemetry::Recorder;
use rna_structure::ArcStructure;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = mcos_bench::has_flag(&args, "--quick");
    let out_path = opt_value(&args, "--out")
        .unwrap_or("crates/bench/results/BENCH_profile.json")
        .to_string();

    use rna_structure::generate;
    let inputs: Vec<(&str, ArcStructure)> = if quick {
        vec![
            ("worst-case", generate::worst_case_nested(48)),
            ("hairpin-chain", generate::hairpin_chain(40, 3, 2)),
            ("skewed", generate::skewed_groups(6, 2, 4)),
        ]
    } else {
        vec![
            ("worst-case", generate::worst_case_nested(192)),
            ("hairpin-chain", generate::hairpin_chain(100, 4, 2)),
            ("skewed", generate::skewed_groups(10, 2, 6)),
        ]
    };
    let thread_counts: &[u32] = if quick { &[2] } else { &[2, 4, 8] };

    let mut json = String::from("{\n  \"experiment\": \"profile\",\n  \"inputs\": [\n");
    for (i, (name, s)) in inputs.iter().enumerate() {
        let p = Preprocessed::build(s);
        let weights = workload::column_weights(&p, &p);
        println!("\n=== {name} ({} arcs) ===", p.num_arcs());
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"arcs\": {}, \"runs\": [",
            p.num_arcs()
        );

        let mut table = Table::new(&[
            "threads",
            "backend",
            "stage1 (s)",
            "busy %",
            "wait %",
            "imbalance",
            "predicted",
            "events",
        ]);
        let mut first_run = true;
        for &threads in thread_counts {
            for backend in Backend::ALL {
                let config = PrnaConfig {
                    processors: threads,
                    policy: Policy::Greedy,
                    backend,
                    ..PrnaConfig::default()
                };
                let recorder = Recorder::enabled();
                let out = prna_recorded(s, s, &config, &recorder);
                let events = recorder.events();
                let c = recorder.counters();
                let assignment = config.policy.assign(&weights, threads);
                let graham = GrahamComparison::from_assignment(&assignment, &weights);
                let report = LoadReport::build(&events, threads).with_graham(graham);

                table.row(&[
                    threads.to_string(),
                    backend.name().to_string(),
                    format!("{:.6}", out.stage_one.as_secs_f64()),
                    format!("{:.1}", report.busy_fraction() * 100.0),
                    format!("{:.1}", report.wait_fraction() * 100.0),
                    format!("{:.3}", report.observed_imbalance()),
                    format!("{:.3}", graham.imbalance),
                    events.len().to_string(),
                ]);
                if !first_run {
                    json.push_str(",\n");
                }
                first_run = false;
                let _ = write!(
                    json,
                    "      {{\"backend\": \"{}\", \"threads\": {threads}, \
                     \"stage_one_seconds\": {:.6}, \"score\": {}, \
                     \"busy_fraction\": {:.6}, \"wait_fraction\": {:.6}, \
                     \"observed_imbalance\": {:.6}, \"predicted_imbalance\": {:.6}, \
                     \"graham_bound_factor\": {:.6}, \"events\": {}, \
                     \"slices\": {}, \"cells\": {}, \"max_cells_per_slice\": {}, \
                     \"barriers\": {}, \"settled_reads\": {}, \
                     \"allreduce_calls\": {}, \"allreduce_rounds\": {}, \
                     \"allreduce_bytes\": {}}}",
                    backend.name(),
                    out.stage_one.as_secs_f64(),
                    out.score,
                    report.busy_fraction(),
                    report.wait_fraction(),
                    report.observed_imbalance(),
                    graham.imbalance,
                    graham.bound_factor,
                    events.len(),
                    c.slices,
                    c.cells,
                    c.max_cells_per_slice,
                    c.barriers,
                    c.settled_reads,
                    c.allreduce_calls,
                    c.allreduce_rounds,
                    c.allreduce_bytes,
                );
            }
        }
        println!("{}", table.render());
        json.push_str("\n    ]}");
        json.push_str(if i + 1 < inputs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    println!("\n(busy/wait are shares of p x wall over worker lanes; imbalance is observed");
    println!(" max/mean busy time vs the static Greedy assignment's predicted makespan");
    println!(" ratio. Every backend records the same slice spans, so columns compare.)");
}

//! Telemetry profile of every PRNA backend: where the time actually goes.
//!
//! Usage: `cargo run -p mcos-bench --release --bin profile_backends
//!         [-- --quick] [-- --out PATH]`
//!
//! Runs real PRNA stage one with the recorder **enabled** under each
//! backend, input shape, and thread count, and reports the load-report
//! aggregates next to the work counters:
//!
//! * **busy %** — slice-tabulation time as a share of `p × wall`
//!   (parallel efficiency of stage one);
//! * **wait %** — barrier/collective wait as a share of `p × wall`;
//! * **imbalance** — observed max/mean busy time across workers, next to
//!   the static assignment's *predicted* imbalance from the `balance`
//!   crate (Graham bound);
//! * counters — slices, cells, largest slice, settled-snapshot reads
//!   (wavefront), Allreduce rounds and payload bytes (mpi-sim).
//!
//! Unlike `ablation_barriers` this bin runs each configuration **once**:
//! the quantities of interest are ratios within one traced run, not
//! wall-clock minima across repetitions, so repetition buys nothing.
//! Telemetry overhead is on the order of one clock read per slice — see
//! the ablation gate in CI (`ablation_barriers` with the recorder
//! disabled) for the zero-cost claim.
//!
//! Results go to stdout (table) and to `--out` (default
//! `crates/bench/results/BENCH_profile.json`) through the shared
//! [`mcos_bench::emit`] envelope. `--quick` shrinks the inputs for
//! smoke runs (CI).

use load_balance::Policy;
use mcos_bench::{emit, opt_value, Table};
use mcos_core::preprocess::Preprocessed;
use mcos_core::workload;
use mcos_parallel::{prna_recorded, Backend, PrnaConfig};
use mcos_telemetry::json::Value;
use mcos_telemetry::report::{GrahamComparison, LoadReport};
use mcos_telemetry::Recorder;
use rna_structure::ArcStructure;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = mcos_bench::has_flag(&args, "--quick");
    let out_path = opt_value(&args, "--out")
        .unwrap_or("crates/bench/results/BENCH_profile.json")
        .to_string();

    use rna_structure::generate;
    let inputs: Vec<(&str, ArcStructure)> = if quick {
        vec![
            ("worst-case", generate::worst_case_nested(48)),
            ("hairpin-chain", generate::hairpin_chain(40, 3, 2)),
            ("skewed", generate::skewed_groups(6, 2, 4)),
        ]
    } else {
        vec![
            ("worst-case", generate::worst_case_nested(192)),
            ("hairpin-chain", generate::hairpin_chain(100, 4, 2)),
            ("skewed", generate::skewed_groups(10, 2, 6)),
        ]
    };
    let thread_counts: &[u32] = if quick { &[2] } else { &[2, 4, 8] };

    let mut input_docs: Vec<Value> = Vec::new();
    for (name, s) in &inputs {
        let p = Preprocessed::build(s);
        let weights = workload::column_weights(&p, &p);
        println!("\n=== {name} ({} arcs) ===", p.num_arcs());
        let mut runs: Vec<Value> = Vec::new();

        let mut table = Table::new(&[
            "threads",
            "backend",
            "stage1 (s)",
            "busy %",
            "wait %",
            "imbalance",
            "predicted",
            "events",
        ]);
        for &threads in thread_counts {
            for backend in Backend::ALL {
                let config = PrnaConfig {
                    processors: threads,
                    policy: Policy::Greedy,
                    backend,
                    ..PrnaConfig::default()
                };
                let recorder = Recorder::enabled();
                let out = prna_recorded(s, s, &config, &recorder);
                let events = recorder.events();
                let c = recorder.counters();
                let assignment = config.policy.assign(&weights, threads);
                let graham = GrahamComparison::from_assignment(&assignment, &weights);
                let report = LoadReport::build(&events, threads).with_graham(graham);

                table.row(&[
                    threads.to_string(),
                    backend.name().to_string(),
                    format!("{:.6}", out.stage_one.as_secs_f64()),
                    format!("{:.1}", report.busy_fraction() * 100.0),
                    format!("{:.1}", report.wait_fraction() * 100.0),
                    format!("{:.3}", report.observed_imbalance()),
                    format!("{:.3}", graham.imbalance),
                    events.len().to_string(),
                ]);
                runs.push(Value::object([
                    ("backend".to_string(), Value::from(backend.name())),
                    ("threads".to_string(), Value::from(threads)),
                    (
                        "stage_one_seconds".to_string(),
                        Value::from(out.stage_one.as_secs_f64()),
                    ),
                    ("score".to_string(), Value::from(out.score)),
                    (
                        "busy_fraction".to_string(),
                        Value::from(report.busy_fraction()),
                    ),
                    (
                        "wait_fraction".to_string(),
                        Value::from(report.wait_fraction()),
                    ),
                    (
                        "observed_imbalance".to_string(),
                        Value::from(report.observed_imbalance()),
                    ),
                    (
                        "predicted_imbalance".to_string(),
                        Value::from(graham.imbalance),
                    ),
                    (
                        "graham_bound_factor".to_string(),
                        Value::from(graham.bound_factor),
                    ),
                    ("events".to_string(), Value::from(events.len())),
                    ("slices".to_string(), Value::from(c.slices)),
                    ("cells".to_string(), Value::from(c.cells)),
                    (
                        "max_cells_per_slice".to_string(),
                        Value::from(c.max_cells_per_slice),
                    ),
                    ("barriers".to_string(), Value::from(c.barriers)),
                    ("settled_reads".to_string(), Value::from(c.settled_reads)),
                    (
                        "allreduce_calls".to_string(),
                        Value::from(c.allreduce_calls),
                    ),
                    (
                        "allreduce_rounds".to_string(),
                        Value::from(c.allreduce_rounds),
                    ),
                    (
                        "allreduce_bytes".to_string(),
                        Value::from(c.allreduce_bytes),
                    ),
                ]));
            }
        }
        println!("{}", table.render());
        input_docs.push(Value::object([
            ("name".to_string(), Value::from(*name)),
            ("arcs".to_string(), Value::from(p.num_arcs())),
            ("runs".to_string(), Value::Array(runs)),
        ]));
    }

    let doc = emit::envelope(
        "profile",
        [("inputs".to_string(), Value::Array(input_docs))],
    );
    match emit::write_artifact(&out_path, &doc) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    println!("\n(busy/wait are shares of p x wall over worker lanes; imbalance is observed");
    println!(" max/mean busy time vs the static Greedy assignment's predicted makespan");
    println!(" ratio. Every backend records the same slice spans, so columns compare.)");
}

//! Scalability analysis: the paper's closing claim about Figure 8 — "the
//! trend of the results suggests scalability, as more speedup is
//! attained when increasing the problem size and the number of
//! processors."
//!
//! Usage: `cargo run -p mcos-bench --release --bin scalability`
//!
//! Sweeps the contrived worst case over problem sizes and processor
//! counts in the calibrated simulator and reports (a) the speedup
//! surface and (b) the parallel efficiency at fixed P as the problem
//! grows — the isoefficiency view of the same claim.

use load_balance::Policy;
use mcos_bench::{calibrate_seconds_per_cell, fundy_model, prna_sim_from_preprocessed, Table};
use mcos_core::preprocess::Preprocessed;
use par_sim::Scheduling;
use rna_structure::generate;

fn main() {
    let mut model = fundy_model();
    model.seconds_per_cell = calibrate_seconds_per_cell(120);
    let arcs_list = [100u32, 200, 400, 800, 1600];
    let procs = [4u32, 16, 64];

    println!("Speedup surface — contrived worst case, simulated Fundy cluster\n");
    let mut table = Table::new(&["arcs", "length", "S(4)", "S(16)", "S(64)", "eff(64) %"]);
    let mut speedups_at_64 = Vec::new();
    for &arcs in &arcs_list {
        let s = generate::worst_case_nested(arcs);
        let p = Preprocessed::build(&s);
        let sim = prna_sim_from_preprocessed(&p, &p);
        let t1 = sim.sequential_seconds(&model);
        let mut row = vec![arcs.to_string(), (2 * arcs).to_string()];
        let mut s64 = 0.0;
        for &pr in &procs {
            let sp = t1
                / sim
                    .run(pr, Scheduling::Static(Policy::Greedy), &model)
                    .total_seconds;
            row.push(format!("{sp:.2}"));
            if pr == 64 {
                s64 = sp;
            }
        }
        row.push(format!("{:.1}", 100.0 * s64 / 64.0));
        speedups_at_64.push(s64);
        table.row(&row);
        eprintln!("done arcs={arcs}");
    }
    println!("{}", table.render());

    let monotone = speedups_at_64.windows(2).all(|w| w[1] >= w[0]);
    println!(
        "speedup at P=64 grows monotonically with problem size: {}",
        if monotone {
            "yes — the paper's scalability trend"
        } else {
            "NO"
        }
    );
    println!(
        "(paper endpoints: S(64) = {:.0} at 800 arcs, {:.0} at 1600 arcs)",
        mcos_bench::paper::FIG8_AT_64[0].1,
        mcos_bench::paper::FIG8_AT_64[1].1
    );
}

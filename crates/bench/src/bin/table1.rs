//! Table I: execution times of SRNA1 and SRNA2 on contrived worst-case
//! data (sequences of length 100–1600, i.e. 50–800 fully nested arcs).
//!
//! Usage: `cargo run -p mcos-bench --release --bin table1 [--full]`
//!
//! The default stops at length 800; `--full` adds length 1600 (several
//! minutes of compute). Paper reference values (2.8 GHz Opteron, C) are
//! printed alongside for shape comparison: the claim is SRNA2 ≈ 2× faster
//! than SRNA1, both scaling as Θ(n⁴).

use mcos_bench::paper::TABLE1 as PAPER;
use mcos_bench::{has_flag, secs, time, Table};
use mcos_core::{srna1, srna2};
use rna_structure::generate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = has_flag(&args, "--full");
    let lengths: Vec<u32> = if full {
        vec![100, 200, 400, 800, 1600]
    } else {
        vec![100, 200, 400, 800]
    };

    println!("Table I — SRNA1 vs SRNA2, contrived worst-case data");
    println!("(paper values: C on 2.8 GHz Opteron; ours: Rust, this machine)\n");
    let mut table = Table::new(&[
        "length",
        "arcs",
        "srna1 (s)",
        "srna2 (s)",
        "ratio",
        "paper srna1",
        "paper srna2",
        "paper ratio",
    ]);
    for &n in &lengths {
        let arcs = n / 2;
        let s = generate::worst_case_nested(arcs);
        let (o1, d1) = time(|| srna1::run(&s, &s));
        let (o2, d2) = time(|| srna2::run(&s, &s));
        assert_eq!(o1.score, arcs, "SRNA1 self-comparison must match all arcs");
        assert_eq!(o2.score, arcs, "SRNA2 self-comparison must match all arcs");
        let (pn, p1, p2) = PAPER
            .iter()
            .find(|(l, _, _)| *l == n)
            .map(|&(l, a, b)| (l, a, b))
            .expect("paper row");
        debug_assert_eq!(pn, n);
        table.row(&[
            n.to_string(),
            arcs.to_string(),
            secs(d1),
            secs(d2),
            format!("{:.2}", d1.as_secs_f64() / d2.as_secs_f64()),
            format!("{p1:.3}"),
            format!("{p2:.3}"),
            format!("{:.2}", p1 / p2),
        ]);
        eprintln!("done n={n}");
    }
    println!("{}", table.render());
    if !full {
        println!("(run with --full to include length 1600)");
    }
}

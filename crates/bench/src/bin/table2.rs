//! Table II: SRNA1 vs SRNA2 on 23S ribosomal RNA secondary structures.
//!
//! Usage: `cargo run -p mcos-bench --release --bin table2`
//!
//! The paper self-compares two real 23S rRNA structures: "Fungus"
//! (*Suillus sinuspaulianus*, GenBank L47585 — 4216 bases, 721 arcs) and
//! "Malaria Parasite" (*Plasmodium falciparum*, GenBank U48228 — 4381
//! bases, 1126 arcs). Without database access we substitute synthetic
//! rRNA-like structures with identical length and arc counts and
//! realistic stem/loop organization (DESIGN.md, substitution 3). The
//! claims under test are shape claims: real structures run far faster
//! than same-length worst cases, and SRNA2 ≈ 2× SRNA1.

use mcos_bench::{secs, time, Table};
use mcos_core::{srna1, srna2};
use rna_structure::generate::{rrna_like, RrnaConfig};
use rna_structure::stats;

fn main() {
    println!("Table II — SRNA1 vs SRNA2, 23S rRNA-like structures (self-comparison)");
    println!("(synthetic stand-ins matching the paper's lengths/arc counts)\n");

    let paper = mcos_bench::paper::TABLE2;
    let inputs = [
        (
            "Fungus (721)",
            RrnaConfig::fungus(),
            0xF47585u64,
            paper[0].3,
            paper[0].4,
        ),
        (
            "Malaria Parasite (1126)",
            RrnaConfig::malaria(),
            0xF48228u64,
            paper[1].3,
            paper[1].4,
        ),
    ];

    let mut table = Table::new(&[
        "structure",
        "bases",
        "arcs",
        "srna1 (s)",
        "srna2 (s)",
        "ratio",
        "paper srna1",
        "paper srna2",
    ]);
    for (name, cfg, seed, paper1, paper2) in inputs {
        let s = rrna_like(&cfg, seed);
        let st = stats::stats(&s);
        eprintln!(
            "{name}: {} stems, longest {}, max depth {}",
            st.stems, st.longest_stem, st.max_depth
        );
        let (o1, d1) = time(|| srna1::run(&s, &s));
        let (o2, d2) = time(|| srna2::run(&s, &s));
        assert_eq!(o1.score, s.num_arcs());
        assert_eq!(o2.score, s.num_arcs());
        table.row(&[
            name.to_string(),
            cfg.len.to_string(),
            cfg.arcs.to_string(),
            secs(d1),
            secs(d2),
            format!("{:.2}", d1.as_secs_f64() / d2.as_secs_f64()),
            format!("{paper1:.3}"),
            format!("{paper2:.3}"),
        ]);
    }
    println!("{}", table.render());
}

//! Table III: percentage break-down of SRNA2 execution (preprocessing,
//! stage one, stage two) on contrived worst-case data.
//!
//! Usage: `cargo run -p mcos-bench --release --bin table3`
//!
//! The paper's claim: stage one (child-slice tabulation) accounts for
//! over 99% of execution at every size from 100 upward, identifying it as
//! the parallelization target.

use mcos_bench::paper::TABLE3 as PAPER;
use mcos_bench::Table;
use mcos_core::srna2;
use rna_structure::generate;

fn main() {
    println!("Table III — SRNA2 execution break-down (%), contrived worst-case data\n");
    let mut table = Table::new(&[
        "length",
        "preproc %",
        "stage1 %",
        "stage2 %",
        "paper preproc",
        "paper stage1",
        "paper stage2",
    ]);
    for (n, pp, p1, p2) in PAPER {
        let s = generate::worst_case_nested(n / 2);
        let out = srna2::run(&s, &s);
        let (a, b, c) = out.timings.percentages();
        table.row(&[
            n.to_string(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{c:.4}"),
            format!("{pp:.4}"),
            format!("{p1:.4}"),
            format!("{p2:.4}"),
        ]);
        eprintln!("done n={n}");
    }
    println!("{}", table.render());
    println!("Stage one dominates at every size — the parallelization target of PRNA.");
}

//! Measurement-noise probe: back-to-back SRNA1/SRNA2 runs on the same
//! input, alternating order, to establish this host's timing noise floor
//! before reading anything into small ratios in Tables I/II.
//!
//! Usage: `cargo run -p mcos-bench --release --bin variance_check [arcs]`

use mcos_core::{srna1, srna2};
use rna_structure::generate;
use std::time::Instant;

fn main() {
    let arcs: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let s = generate::worst_case_nested(arcs);
    // Warmup.
    let _ = srna2::run(&s, &s);
    println!("worst case, {arcs} arcs; four alternating measurements:");
    for round in 0..2 {
        let t = Instant::now();
        let a = srna2::run(&s, &s);
        let d2 = t.elapsed();
        let t = Instant::now();
        let b = srna1::run(&s, &s);
        let d1 = t.elapsed();
        assert_eq!(a.score, b.score);
        println!(
            "  round {round} (srna2 first): srna2={:.3}s srna1={:.3}s srna1/srna2={:.3}",
            d2.as_secs_f64(),
            d1.as_secs_f64(),
            d1.as_secs_f64() / d2.as_secs_f64()
        );
        let t = Instant::now();
        let b = srna1::run(&s, &s);
        let d1 = t.elapsed();
        let t = Instant::now();
        let a = srna2::run(&s, &s);
        let d2 = t.elapsed();
        assert_eq!(a.score, b.score);
        println!(
            "  round {round} (srna1 first): srna2={:.3}s srna1={:.3}s srna1/srna2={:.3}",
            d2.as_secs_f64(),
            d1.as_secs_f64(),
            d1.as_secs_f64() / d2.as_secs_f64()
        );
    }
    println!("(run repeatedly; spreads of 10-15% between identical runs are normal on");
    println!(" shared virtualized hosts, and bound what timing ratios can support.)");
}

//! Shared JSON artifact emission for the experiment binaries.
//!
//! Every bench bin used to hand-roll its JSON with `format!` chains;
//! they now build a [`Value`] tree and emit through this module, so all
//! artifacts carry the same schema-versioned envelope:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "experiment": "<name>",
//!   "env": { "os": ..., "arch": ..., "cpus": ..., "simd": ...,
//!            "debug_assertions": ... },
//!   ...experiment-specific members...
//! }
//! ```
//!
//! The emitter is `mcos_telemetry::json` — the same grammar the schema
//! tests parse, so every artifact round-trips by construction.

use mcos_telemetry::json::Value;

/// Version of the shared envelope (`schema_version` member). Bump when
/// the envelope itself — not an experiment's body — changes shape.
pub const ENVELOPE_SCHEMA_VERSION: u64 = 1;

/// The environment fingerprint embedded in every artifact: enough to
/// tell two machines (or build configurations) apart when comparing
/// trajectories, without anything volatile like hostnames.
pub fn env_fingerprint() -> Value {
    Value::object([
        ("os".to_string(), Value::from(std::env::consts::OS)),
        ("arch".to_string(), Value::from(std::env::consts::ARCH)),
        (
            "cpus".to_string(),
            Value::from(
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1),
            ),
        ),
        ("simd".to_string(), Value::from(cfg!(feature = "simd"))),
        (
            "debug_assertions".to_string(),
            Value::from(cfg!(debug_assertions)),
        ),
    ])
}

/// Wraps experiment-specific members in the standard envelope.
pub fn envelope(experiment: &str, body: impl IntoIterator<Item = (String, Value)>) -> Value {
    let mut members = vec![
        (
            "schema_version".to_string(),
            Value::from(ENVELOPE_SCHEMA_VERSION),
        ),
        ("experiment".to_string(), Value::from(experiment)),
        ("env".to_string(), env_fingerprint()),
    ];
    members.extend(body);
    Value::Object(members)
}

/// Writes `doc` pretty-printed to `path`, creating parent directories.
pub fn write_artifact(path: &str, doc: &Value) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, doc.to_json_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_telemetry::json;

    #[test]
    fn envelope_has_the_standard_members_in_order() {
        let doc = envelope("kernel", [("inputs".to_string(), Value::Array(vec![]))]);
        let Value::Object(members) = &doc else {
            panic!("envelope must be an object")
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["schema_version", "experiment", "env", "inputs"]);
        assert_eq!(
            doc.get("schema_version").and_then(Value::as_f64),
            Some(ENVELOPE_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            doc.get("experiment").and_then(Value::as_str),
            Some("kernel")
        );
        let env = doc.get("env").expect("env");
        for key in ["os", "arch", "cpus", "simd", "debug_assertions"] {
            assert!(env.get(key).is_some(), "env.{key} missing");
        }
        // Emitted envelope re-parses.
        assert_eq!(json::parse(&doc.to_json_pretty()).expect("parse"), doc);
    }
}

//! The bench-trajectory regression harness behind `srna bench`.
//!
//! One entry point runs the declared suites — kernel rates, barrier
//! ablation, an engine-matrix spot sweep, memo-store memory occupancy
//! and liveness floors — on **fixed** small workloads
//! (quick and full mode differ only in repetitions, so metric names
//! never drift between modes), and emits one schema-versioned
//! [`BenchArtifact`] per suite: `BENCH_kernel.json`,
//! `BENCH_barriers.json`, `BENCH_matrix.json`, `BENCH_memory.json` at
//! the repo root.
//!
//! [`check`] compares a fresh artifact against a committed baseline
//! with per-metric tolerances. Metrics declare how they regress:
//!
//! * [`MetricKind::Exact`] — must match to the bit (scores, slice and
//!   cell counts, sync points: deterministic functions of the input,
//!   so any drift is a correctness or schema change);
//! * [`MetricKind::LowerIsBetter`] — wall-clock style; fails when
//!   `fresh > base × (1 + tolerance × slack)`;
//! * [`MetricKind::HigherIsBetter`] — throughput/speedup style; fails
//!   when `fresh < base ÷ (1 + tolerance × slack)`;
//! * [`MetricKind::Info`] — recorded for the trajectory, never gates.
//!
//! `slack` scales every relative tolerance at once: CI passes a
//! generous value to absorb shared-runner noise, while the teeth tests
//! run at `slack = 1` and prove an injected 2× slowdown fails.
//! Schema drift — a baseline gating metric missing from the fresh run,
//! or a `schema_version`/suite mismatch — always fails regardless of
//! slack.

use crate::emit;
use load_balance::Policy;
use mcos_core::kernel::KernelKind;
use mcos_core::preprocess::Preprocessed;
use mcos_core::srna2;
use mcos_parallel::{prna, prna_recorded, wavefront, Backend, PrnaConfig, ScheduleKind};
use mcos_telemetry::json::{self, Value};
use mcos_telemetry::liveness::{self, SliceNode};
use mcos_telemetry::metrics::{self, valid_metric_name, Registry};
use mcos_telemetry::{critical_path, Recorder};
use rna_structure::{generate, ArcStructure};

/// Version of the harness artifact schema (the `suite`/`metrics`
/// members inside the shared envelope). Bump on shape changes; `check`
/// refuses to compare across versions.
///
/// v2: the memory suite grew the budgeted-vs-unbounded ablation rows
/// (`memory.sparse_23s.*`) for the linear-space execution mode.
pub const SCHEMA_VERSION: u64 = 2;

/// How a metric gates in [`check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Deterministic — must match exactly.
    Exact,
    /// Wall-clock style — regression is an increase.
    LowerIsBetter,
    /// Throughput style — regression is a decrease.
    HigherIsBetter,
    /// Trajectory-only — never gates.
    Info,
}

impl MetricKind {
    /// Stable label used in artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Exact => "exact",
            MetricKind::LowerIsBetter => "lower_is_better",
            MetricKind::HigherIsBetter => "higher_is_better",
            MetricKind::Info => "info",
        }
    }

    /// Parses an artifact label.
    pub fn from_name(name: &str) -> Option<MetricKind> {
        match name {
            "exact" => Some(MetricKind::Exact),
            "lower_is_better" => Some(MetricKind::LowerIsBetter),
            "higher_is_better" => Some(MetricKind::HigherIsBetter),
            "info" => Some(MetricKind::Info),
            _ => None,
        }
    }
}

/// One measured quantity in a suite artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted lowercase name (validated against the telemetry schema).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label (`s`, `cells`, `ratio`, …), informational.
    pub unit: String,
    /// How the metric gates.
    pub kind: MetricKind,
    /// Relative tolerance for the gating kinds (ignored for
    /// `Exact`/`Info`).
    pub tolerance: f64,
}

impl Metric {
    fn new(name: impl Into<String>, value: f64, unit: &str, kind: MetricKind, tol: f64) -> Metric {
        let name = name.into();
        debug_assert!(valid_metric_name(&name), "bad metric name {name:?}");
        Metric {
            name,
            value,
            unit: unit.to_string(),
            kind,
            tolerance: tol,
        }
    }

    /// An exact-match metric.
    pub fn exact(name: impl Into<String>, value: f64, unit: &str) -> Metric {
        Metric::new(name, value, unit, MetricKind::Exact, 0.0)
    }

    /// A lower-is-better metric with relative `tolerance`.
    pub fn lower(name: impl Into<String>, value: f64, unit: &str, tolerance: f64) -> Metric {
        Metric::new(name, value, unit, MetricKind::LowerIsBetter, tolerance)
    }

    /// A higher-is-better metric with relative `tolerance`.
    pub fn higher(name: impl Into<String>, value: f64, unit: &str, tolerance: f64) -> Metric {
        Metric::new(name, value, unit, MetricKind::HigherIsBetter, tolerance)
    }

    /// A trajectory-only metric.
    pub fn info(name: impl Into<String>, value: f64, unit: &str) -> Metric {
        Metric::new(name, value, unit, MetricKind::Info, 0.0)
    }
}

/// One suite's schema-versioned result set.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Suite name (`kernel`, `barriers`, `matrix`).
    pub suite: String,
    /// Measured metrics, in declaration order.
    pub metrics: Vec<Metric>,
}

impl BenchArtifact {
    /// The metric named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes into the shared envelope.
    pub fn to_json(&self) -> Value {
        emit::envelope(
            "bench",
            [
                (
                    "bench_schema_version".to_string(),
                    Value::from(SCHEMA_VERSION),
                ),
                ("suite".to_string(), Value::from(self.suite.as_str())),
                (
                    "metrics".to_string(),
                    Value::Array(
                        self.metrics
                            .iter()
                            .map(|m| {
                                Value::object([
                                    ("name".to_string(), Value::from(m.name.as_str())),
                                    ("value".to_string(), Value::from(m.value)),
                                    ("unit".to_string(), Value::from(m.unit.as_str())),
                                    ("kind".to_string(), Value::from(m.kind.name())),
                                    ("tolerance".to_string(), Value::from(m.tolerance)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        )
    }

    /// Writes the artifact to `path` (pretty-printed, parent dirs
    /// created).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        emit::write_artifact(path, &self.to_json())
    }

    /// Parses an artifact document, validating the schema version.
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("bench_schema_version")
            .and_then(Value::as_f64)
            .ok_or("missing bench_schema_version")?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "bench schema version mismatch: artifact {version}, harness {SCHEMA_VERSION}"
            ));
        }
        let suite = doc
            .get("suite")
            .and_then(Value::as_str)
            .ok_or("missing suite")?
            .to_string();
        let metrics = doc
            .get("metrics")
            .and_then(Value::as_array)
            .ok_or("missing metrics array")?
            .iter()
            .map(|m| {
                let name = m
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("metric missing name")?
                    .to_string();
                let value = m
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("metric {name} missing value"))?;
                let unit = m
                    .get("unit")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let kind = m
                    .get("kind")
                    .and_then(Value::as_str)
                    .and_then(MetricKind::from_name)
                    .ok_or_else(|| format!("metric {name} has unknown kind"))?;
                let tolerance = m.get("tolerance").and_then(Value::as_f64).unwrap_or(0.0);
                Ok(Metric {
                    name,
                    value,
                    unit,
                    kind,
                    tolerance,
                })
            })
            .collect::<Result<Vec<Metric>, String>>()?;
        Ok(BenchArtifact { suite, metrics })
    }
}

/// Result of comparing a fresh artifact against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Gating metrics compared.
    pub compared: usize,
    /// Hard failures (regressions, exact drift, schema drift).
    pub failures: Vec<String>,
    /// Non-gating observations (new metrics, info deltas).
    pub notes: Vec<String>,
}

impl CheckReport {
    /// Whether the check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} gating metric(s) compared, {} failure(s)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.compared,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL {f}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note {n}");
        }
        out
    }
}

/// Compares `fresh` against `baseline`. `slack ≥ 1` scales every
/// relative tolerance (CI uses a generous value); exact metrics and
/// schema drift ignore slack entirely.
pub fn check(fresh: &BenchArtifact, baseline: &BenchArtifact, slack: f64) -> CheckReport {
    let mut report = CheckReport::default();
    let slack = slack.max(1.0);
    if fresh.suite != baseline.suite {
        report.failures.push(format!(
            "suite mismatch: fresh {:?}, baseline {:?}",
            fresh.suite, baseline.suite
        ));
        return report;
    }
    for base in &baseline.metrics {
        let Some(new) = fresh.get(&base.name) else {
            if base.kind != MetricKind::Info {
                report.failures.push(format!(
                    "schema drift: baseline metric {} missing from fresh run",
                    base.name
                ));
            } else {
                report
                    .notes
                    .push(format!("info metric {} no longer emitted", base.name));
            }
            continue;
        };
        if new.kind != base.kind {
            report.failures.push(format!(
                "schema drift: {} changed kind {} -> {}",
                base.name,
                base.kind.name(),
                new.kind.name()
            ));
            continue;
        }
        match base.kind {
            MetricKind::Info => {}
            MetricKind::Exact => {
                report.compared += 1;
                if (new.value - base.value).abs() > 1e-9 {
                    report.failures.push(format!(
                        "{}: expected {} exactly, got {}",
                        base.name, base.value, new.value
                    ));
                }
            }
            MetricKind::LowerIsBetter => {
                report.compared += 1;
                let limit = base.value * (1.0 + base.tolerance * slack);
                if new.value > limit {
                    report.failures.push(format!(
                        "{}: {} {} exceeds {} {} (+{:.0}% tolerance at slack {slack})",
                        base.name,
                        new.value,
                        new.unit,
                        limit,
                        base.unit,
                        base.tolerance * slack * 100.0
                    ));
                }
            }
            MetricKind::HigherIsBetter => {
                report.compared += 1;
                let limit = base.value / (1.0 + base.tolerance * slack);
                if new.value < limit {
                    report.failures.push(format!(
                        "{}: {} {} below {} {} (-{:.0}% tolerance at slack {slack})",
                        base.name,
                        new.value,
                        new.unit,
                        limit,
                        base.unit,
                        base.tolerance * slack * 100.0
                    ));
                }
            }
        }
    }
    for new in &fresh.metrics {
        if baseline.get(&new.name).is_none() {
            report
                .notes
                .push(format!("new metric {} (not in baseline)", new.name));
        }
    }
    report
}

/// Suite selection and repetition count. Workloads are fixed; `reps`
/// is the only quick/full difference.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Repetitions per timed configuration (fastest wins).
    pub reps: u32,
}

impl SuiteConfig {
    /// One rep — CI smoke and `--quick`.
    pub fn quick() -> SuiteConfig {
        SuiteConfig { reps: 1 }
    }

    /// Three reps — local baseline regeneration.
    pub fn full() -> SuiteConfig {
        SuiteConfig { reps: 3 }
    }
}

/// The declared suites, in run order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Per-kernel sequential tabulation rates.
    Kernel,
    /// Row-barrier vs wavefront schedule costs.
    Barriers,
    /// Engine-matrix spot sweep with recorded counters.
    Matrix,
    /// Memo-store memory: occupancy, peak bytes, liveness floors.
    Memory,
}

impl Suite {
    /// Every suite.
    pub const ALL: [Suite; 4] = [Suite::Kernel, Suite::Barriers, Suite::Matrix, Suite::Memory];

    /// Suite name used in artifacts and `--suite`.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Kernel => "kernel",
            Suite::Barriers => "barriers",
            Suite::Matrix => "matrix",
            Suite::Memory => "memory",
        }
    }

    /// Parses a `--suite` argument.
    pub fn from_name(name: &str) -> Option<Suite> {
        Suite::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The committed artifact filename for this suite
    /// (`BENCH_<suite>.json`).
    pub fn artifact_name(self) -> String {
        format!("BENCH_{}.json", self.name())
    }

    /// Runs the suite.
    pub fn run(self, cfg: SuiteConfig) -> BenchArtifact {
        match self {
            Suite::Kernel => run_kernel_suite(cfg),
            Suite::Barriers => run_barrier_suite(cfg),
            Suite::Matrix => run_matrix_suite(cfg),
            Suite::Memory => run_memory_suite(cfg),
        }
    }
}

/// Metric-name segment: backend/kernel/input display names use dashes,
/// the metric schema does not.
fn seg(name: &str) -> String {
    name.replace('-', "_")
}

/// The fixed suite workloads: small enough for CI, shaped to pull the
/// schedules apart (fully nested vs wide-and-shallow).
fn suite_inputs() -> Vec<(&'static str, ArcStructure)> {
    vec![
        ("worst_case", generate::worst_case_nested(48)),
        ("hairpin_chain", generate::hairpin_chain(40, 3, 2)),
    ]
}

/// Kernel rates: every slice kernel through the sequential driver on
/// each input. Cell counts and scores are exact; the tiled/four-russians
/// speedup ratio over scalar gates at ±50% — an injected 2× slowdown of
/// one kernel halves its ratio and fails the check at `slack = 1`.
pub fn run_kernel_suite(cfg: SuiteConfig) -> BenchArtifact {
    let mut metrics = Vec::new();
    for (input, s) in suite_inputs() {
        let p = Preprocessed::build(&s);
        let mut scalar_time = f64::INFINITY;
        let mut score: Option<u32> = None;
        for kind in KernelKind::ALL {
            let mut best = f64::INFINITY;
            let mut cells = 0u64;
            for _ in 0..cfg.reps.max(1) {
                let (out, d) = crate::time(|| srna2::run_preprocessed_with_kernel(&p, &p, kind));
                best = best.min(d.as_secs_f64());
                cells = out.counters.cells;
                match score {
                    None => score = Some(out.score),
                    Some(sc) => assert_eq!(sc, out.score, "{input}: kernel diverged"),
                }
            }
            if kind == KernelKind::Scalar {
                scalar_time = best;
            }
            let prefix = format!("kernel.{input}.{}", seg(kind.name()));
            metrics.push(Metric::lower(format!("{prefix}.seconds"), best, "s", 3.0));
            metrics.push(Metric::exact(
                format!("{prefix}.cells"),
                cells as f64,
                "cells",
            ));
            metrics.push(Metric::info(
                format!("{prefix}.cells_per_sec"),
                cells as f64 / best,
                "cells/s",
            ));
            if kind != KernelKind::Scalar {
                metrics.push(Metric::higher(
                    format!("{prefix}.speedup_vs_scalar"),
                    scalar_time / best,
                    "ratio",
                    0.5,
                ));
            }
        }
        metrics.push(Metric::exact(
            format!("kernel.{input}.score"),
            f64::from(score.unwrap_or(0)),
            "score",
        ));
    }
    BenchArtifact {
        suite: Suite::Kernel.name().to_string(),
        metrics,
    }
}

/// Barrier ablation: the row-barrier pool vs the level wavefront at two
/// threads. Sync-point counts and scores are exact (pure functions of
/// the input); stage-one times ride along with a loose gate.
pub fn run_barrier_suite(cfg: SuiteConfig) -> BenchArtifact {
    let backends = [Backend::WORKER_POOL, Backend::WAVEFRONT];
    let mut metrics = Vec::new();
    for (input, s) in suite_inputs() {
        let p = Preprocessed::build(&s);
        for backend in backends {
            let config = PrnaConfig {
                processors: 2,
                policy: Policy::Greedy,
                backend,
                ..PrnaConfig::default()
            };
            let mut out = prna(&s, &s, &config);
            for _ in 1..cfg.reps.max(1) {
                let rerun = prna(&s, &s, &config);
                assert_eq!(rerun.score, out.score, "nondeterministic score");
                if rerun.stage_one < out.stage_one {
                    out = rerun;
                }
            }
            let sync_points = match backend.schedule {
                ScheduleKind::Level => wavefront::num_levels(&p, &p),
                ScheduleKind::Row => p.num_arcs(),
            };
            let prefix = format!("barriers.{input}.{}", seg(backend.name()));
            metrics.push(Metric::exact(
                format!("{prefix}.sync_points"),
                f64::from(sync_points),
                "barriers",
            ));
            metrics.push(Metric::exact(
                format!("{prefix}.score"),
                f64::from(out.score),
                "score",
            ));
            metrics.push(Metric::lower(
                format!("{prefix}.stage_one_seconds"),
                out.stage_one.as_secs_f64(),
                "s",
                3.0,
            ));
        }
    }
    BenchArtifact {
        suite: Suite::Barriers.name().to_string(),
        metrics,
    }
}

/// Engine-matrix spot sweep: six compositions covering every schedule,
/// store, and distribution, with the recorder on. Counter totals come
/// through the unified metrics registry and gate exactly — a schedule
/// or store change that alters what runs is caught deterministically,
/// independent of machine speed.
pub fn run_matrix_suite(cfg: SuiteConfig) -> BenchArtifact {
    let spot = [
        "mpi-sim",
        "rayon",
        "row-lockfree-managed",
        "wavefront-replicated-claim",
        "wavefront-rwlock-managed",
        "wavefront-lockfree",
    ];
    let s1 = generate::random_structure(48, 0.9, 7);
    let s2 = generate::random_structure(40, 0.8, 8);
    let mut metrics = Vec::new();
    for name in spot {
        let backend =
            Backend::from_name(name).unwrap_or_else(|| panic!("unknown spot backend {name}"));
        let config = PrnaConfig {
            processors: 2,
            policy: Policy::Greedy,
            backend,
            ..PrnaConfig::default()
        };
        let recorder = Recorder::enabled();
        let mut out = prna_recorded(&s1, &s2, &config, &recorder);
        for _ in 1..cfg.reps.max(1) {
            let rerun = prna(&s1, &s2, &config);
            assert_eq!(rerun.score, out.score, "nondeterministic score");
            if rerun.stage_one < out.stage_one {
                out.stage_one = rerun.stage_one;
            }
        }
        // Publish through the registry: the suite reads the same stable
        // names every other reporter uses.
        let registry = Registry::new();
        metrics::publish_run(
            &registry,
            &recorder.events(),
            &recorder.counters(),
            out.stage_one.as_nanos() as u64,
        )
        .unwrap_or_else(|e| panic!("metrics registry rejected the run: {e}"));
        let snap = registry.snapshot();
        let slices = snap
            .counter(metrics::names::ENGINE_SLICES_TOTAL)
            .unwrap_or(0);
        let cells = snap
            .counter(metrics::names::ENGINE_CELLS_TOTAL)
            .unwrap_or(0);
        let prefix = format!("matrix.{}", seg(name));
        metrics.push(Metric::exact(
            format!("{prefix}.score"),
            f64::from(out.score),
            "score",
        ));
        metrics.push(Metric::exact(
            format!("{prefix}.slices"),
            slices as f64,
            "slices",
        ));
        metrics.push(Metric::exact(
            format!("{prefix}.cells"),
            cells as f64,
            "cells",
        ));
        metrics.push(Metric::info(
            format!("{prefix}.stage_one_seconds"),
            out.stage_one.as_secs_f64(),
            "s",
        ));
    }
    BenchArtifact {
        suite: Suite::Matrix.name().to_string(),
        metrics,
    }
}

/// Memo-store memory: one backend per store representation, recorder on.
/// Physical occupancy (cells allocated/written), the modelled level-
/// liveness floor, and peak memo bytes are exact functions of the input
/// and store, so they gate deterministically; scratch and allocator
/// peaks ride along as info.
pub fn run_memory_suite(_cfg: SuiteConfig) -> BenchArtifact {
    let stores = [
        ("replicated", "row-replicated"),
        ("rwlock", "row-rwlock"),
        ("lockfree", "wavefront-lockfree"),
    ];
    let mut metrics = Vec::new();
    for (input, s) in suite_inputs() {
        let p = Preprocessed::build(&s);
        for (store, backend_name) in stores {
            let backend = Backend::from_name(backend_name)
                .unwrap_or_else(|| panic!("unknown memory-suite backend {backend_name}"));
            let config = PrnaConfig {
                processors: 2,
                policy: Policy::Greedy,
                backend,
                ..PrnaConfig::default()
            };
            let recorder = Recorder::enabled();
            let out = prna_recorded(&s, &s, &config, &recorder);
            let events = recorder.events();
            let counters = recorder.counters();
            // Same registry path every other reporter uses: the suite
            // reads the published mcos.mem.* gauges, not raw counters.
            let registry = Registry::new();
            metrics::publish_run(
                &registry,
                &events,
                &counters,
                out.stage_one.as_nanos() as u64,
            )
            .unwrap_or_else(|e| panic!("metrics registry rejected the run: {e}"));
            let snap = registry.snapshot();
            let cells_allocated = snap
                .gauge(metrics::names::MEM_MEMO_CELLS_ALLOCATED)
                .unwrap_or(0.0);
            let cells_written = snap
                .gauge(metrics::names::MEM_MEMO_CELLS_WRITTEN)
                .unwrap_or(0.0);
            let peak_bytes = snap
                .gauge(metrics::names::MEM_MEMO_BYTES_PEAK)
                .unwrap_or(0.0);
            let scratch_peak = snap
                .gauge(metrics::names::MEM_SCRATCH_BYTES_PEAK)
                .unwrap_or(0.0);
            let scratch_allocs = snap
                .counter(metrics::names::MEM_SCRATCH_ALLOCS)
                .unwrap_or(0);
            // Liveness floor from the recorded slice set: a model of the
            // input and dependency structure, independent of timing.
            let costs = critical_path::slice_costs_from_events(&events);
            let nodes: Vec<SliceNode> = costs
                .iter()
                .map(|c| SliceNode {
                    k1: c.k1,
                    k2: c.k2,
                    level: c.level,
                })
                .collect();
            let model = liveness::level_liveness(&nodes, |k1, k2, sink| {
                let (lo1, hi1) = p.under_range[k1 as usize];
                let (lo2, hi2) = p.under_range[k2 as usize];
                for c1 in lo1..hi1 {
                    for c2 in lo2..hi2 {
                        sink(c1, c2);
                    }
                }
            });
            let prefix = format!("memory.{input}.{store}");
            metrics.push(Metric::exact(
                format!("{prefix}.score"),
                f64::from(out.score),
                "score",
            ));
            metrics.push(Metric::exact(
                format!("{prefix}.cells_allocated"),
                cells_allocated,
                "cells",
            ));
            metrics.push(Metric::exact(
                format!("{prefix}.cells_written"),
                cells_written,
                "cells",
            ));
            metrics.push(Metric::exact(
                format!("{prefix}.floor_cells"),
                model.floor_cells as f64,
                "slices",
            ));
            metrics.push(Metric::lower(
                format!("{prefix}.peak_bytes"),
                peak_bytes,
                "bytes",
                0.0,
            ));
            metrics.push(Metric::info(
                format!("{prefix}.occupancy"),
                if cells_allocated > 0.0 {
                    cells_written / cells_allocated
                } else {
                    0.0
                },
                "ratio",
            ));
            metrics.push(Metric::info(
                format!("{prefix}.scratch_bytes_peak"),
                scratch_peak,
                "bytes",
            ));
            metrics.push(Metric::info(
                format!("{prefix}.scratch_allocs"),
                scratch_allocs as f64,
                "allocs",
            ));
        }
    }
    metrics.extend(run_memory_ablation());
    BenchArtifact {
        suite: Suite::Memory.name().to_string(),
        metrics,
    }
}

/// The linear-space ablation: the same 23S-scale sparse pair (~2900 nt,
/// 435 arcs per side — the shape `--mem-budget` exists for) run
/// unbounded and under a pressuring budget, on the coordinated rwlock
/// store at two threads. Every row is a deterministic function of the
/// input, schedule, and budget — eviction decisions never depend on
/// timing — so the whole ablation gates exactly. The invariants the
/// rows encode:
///
/// * budgeted score == unbounded score (resolution is lossless);
/// * `resident_cells_peak ≤ budget` (the budget is honoured);
/// * the budgeted peak is a small fraction of the unbounded footprint
///   (asserted here at < 25%, the linear-space acceptance bar);
/// * evicted reads are accounted as recompute work, never silent.
fn run_memory_ablation() -> Vec<Metric> {
    use mcos_parallel::engine::RetentionPlan;

    let s = generate::sparse_hairpin_field(2900, 145, 3, 4, 7);
    let p = Preprocessed::build(&s);
    let backend = Backend::from_name("row-rwlock").expect("ablation backend");
    let base = PrnaConfig {
        processors: 2,
        policy: Policy::Greedy,
        backend,
        ..PrnaConfig::default()
    };
    let snapshot = |config: &PrnaConfig| {
        let recorder = Recorder::enabled();
        let out = prna_recorded(&s, &s, config, &recorder);
        let registry = Registry::new();
        metrics::publish_run(
            &registry,
            &recorder.events(),
            &recorder.counters(),
            out.stage_one.as_nanos() as u64,
        )
        .unwrap_or_else(|e| panic!("metrics registry rejected the run: {e}"));
        (out.score, registry.snapshot())
    };

    let (score, unbounded) = snapshot(&base);
    let allocated = unbounded
        .gauge(metrics::names::MEM_MEMO_CELLS_ALLOCATED)
        .unwrap_or(0.0);

    // A pressuring budget: half the no-pressure liveness floor, but at
    // least the widest single step (the hard lower bound on residency).
    let plan = RetentionPlan::new(&p, &p, backend.schedule);
    let widest = (0..plan.num_steps())
        .map(|step| plan.cells_written_at(step))
        .max()
        .unwrap_or(0);
    let budget = (plan.liveness().floor_cells / 2).max(widest).max(1);
    let budgeted_cfg = PrnaConfig {
        mem_budget: Some(budget),
        ..base
    };
    let (budget_score, budgeted) = snapshot(&budgeted_cfg);
    assert_eq!(budget_score, score, "budgeted run changed the score");
    let peak = budgeted
        .gauge(metrics::names::MEM_RESIDENT_CELLS_PEAK)
        .unwrap_or(0.0);
    assert!(
        peak > 0.0 && peak <= budget as f64,
        "resident peak {peak} violates budget {budget}"
    );
    assert!(
        peak * 4.0 < allocated,
        "budgeted peak {peak} is not < 25% of the unbounded footprint {allocated}"
    );

    let prefix = "memory.sparse_23s";
    vec![
        Metric::exact(format!("{prefix}.score"), f64::from(score), "score"),
        Metric::exact(
            format!("{prefix}.grid_cells"),
            plan.grid_cells() as f64,
            "cells",
        ),
        Metric::exact(
            format!("{prefix}.unbounded.cells_allocated"),
            allocated,
            "cells",
        ),
        Metric::exact(format!("{prefix}.budget_cells"), budget as f64, "cells"),
        Metric::exact(
            format!("{prefix}.budgeted.resident_cells_peak"),
            peak,
            "cells",
        ),
        Metric::exact(
            format!("{prefix}.budgeted.evicted_cells"),
            budgeted
                .counter(metrics::names::MEM_EVICTED_CELLS)
                .unwrap_or(0) as f64,
            "cells",
        ),
        Metric::exact(
            format!("{prefix}.budgeted.recompute_cells"),
            budgeted
                .counter(metrics::names::MEM_RECOMPUTE_CELLS)
                .unwrap_or(0) as f64,
            "cells",
        ),
        Metric::info(
            format!("{prefix}.budgeted.peak_fraction_of_unbounded"),
            if allocated > 0.0 {
                peak / allocated
            } else {
                0.0
            },
            "ratio",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(metrics: Vec<Metric>) -> BenchArtifact {
        BenchArtifact {
            suite: "kernel".to_string(),
            metrics,
        }
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(vec![
            Metric::exact("kernel.a.cells", 100.0, "cells"),
            Metric::lower("kernel.a.seconds", 0.5, "s", 3.0),
            Metric::higher("kernel.a.speedup_vs_scalar", 2.0, "ratio", 0.5),
            Metric::info("kernel.a.cells_per_sec", 200.0, "cells/s"),
        ]);
        let report = check(&a, &a, 1.0);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.compared, 3, "info metrics must not gate");
    }

    /// The teeth test: an injected 2× slowdown must fail the check at
    /// slack 1 through the speedup-ratio gate.
    #[test]
    fn injected_two_x_slowdown_fails() {
        let baseline = artifact(vec![
            Metric::lower("kernel.a.seconds", 0.5, "s", 3.0),
            Metric::higher("kernel.a.speedup_vs_scalar", 2.0, "ratio", 0.5),
        ]);
        let mut slowed = baseline.clone();
        // A 2× slowdown of this kernel: time doubles, ratio halves.
        for m in &mut slowed.metrics {
            match m.kind {
                MetricKind::LowerIsBetter => m.value *= 2.0,
                MetricKind::HigherIsBetter => m.value /= 2.0,
                _ => {}
            }
        }
        let report = check(&slowed, &baseline, 1.0);
        assert!(!report.passed());
        // The ratio gate fires (2.0 → 1.0 < 2.0/1.5); the loose
        // absolute-seconds backstop (tol 3.0) does not at only 2×.
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("speedup_vs_scalar")),
            "{:?}",
            report.failures
        );
        // A 5× slowdown also trips the seconds backstop.
        let mut crawl = baseline.clone();
        crawl.metrics[0].value *= 5.0;
        let report = check(&crawl, &baseline, 1.0);
        assert!(report.failures.iter().any(|f| f.contains("seconds")));
    }

    #[test]
    fn exact_drift_fails_at_any_slack() {
        let baseline = artifact(vec![Metric::exact("matrix.m.score", 40.0, "score")]);
        let mut fresh = baseline.clone();
        fresh.metrics[0].value = 41.0;
        for slack in [1.0, 10.0, 1000.0] {
            assert!(!check(&fresh, &baseline, slack).passed(), "slack {slack}");
        }
        assert!(check(&baseline, &baseline, 1.0).passed());
    }

    #[test]
    fn schema_drift_is_a_failure_new_metrics_are_not() {
        let baseline = artifact(vec![
            Metric::exact("kernel.a.cells", 1.0, "cells"),
            Metric::info("kernel.a.rate", 5.0, "cells/s"),
        ]);
        let fresh = artifact(vec![
            Metric::exact("kernel.a.cells", 1.0, "cells"),
            Metric::exact("kernel.b.cells", 2.0, "cells"),
        ]);
        let report = check(&fresh, &baseline, 100.0);
        // Dropped info metric: note. New metric: note. No failures.
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.notes.len(), 2);

        let dropped_gate = artifact(vec![Metric::info("kernel.a.rate", 5.0, "cells/s")]);
        let report = check(&dropped_gate, &baseline, 100.0);
        assert!(!report.passed(), "dropping a gating metric must fail");
        assert!(report.failures[0].contains("schema drift"));
    }

    #[test]
    fn kind_changes_and_suite_mismatches_fail() {
        let baseline = artifact(vec![Metric::exact("kernel.a.cells", 1.0, "cells")]);
        let fresh = artifact(vec![Metric::info("kernel.a.cells", 1.0, "cells")]);
        assert!(!check(&fresh, &baseline, 1.0).passed());

        let other = BenchArtifact {
            suite: "matrix".to_string(),
            metrics: vec![],
        };
        assert!(!check(&other, &baseline, 1.0).passed());
    }

    #[test]
    fn slack_scales_relative_gates_only() {
        let baseline = artifact(vec![Metric::lower("kernel.a.seconds", 1.0, "s", 0.5)]);
        let mut fresh = baseline.clone();
        fresh.metrics[0].value = 2.4;
        // slack 1: limit 1.5 → fail; slack 3: limit 2.5 → pass.
        assert!(!check(&fresh, &baseline, 1.0).passed());
        assert!(check(&fresh, &baseline, 3.0).passed());
    }

    #[test]
    fn artifacts_round_trip_through_json() {
        let a = artifact(vec![
            Metric::exact("kernel.a.cells", 123.0, "cells"),
            Metric::lower("kernel.a.seconds", 0.125, "s", 3.0),
            Metric::higher("kernel.a.speedup_vs_scalar", 1.75, "ratio", 0.5),
            Metric::info("kernel.a.cells_per_sec", 984.0, "cells/s"),
        ]);
        let text = a.to_json().to_json_pretty();
        let back = BenchArtifact::parse(&text).expect("parse");
        assert_eq!(back, a);
        // Version guard: a bumped schema version refuses to parse.
        let doctored = text.replace(
            "\"bench_schema_version\": 2",
            "\"bench_schema_version\": 99",
        );
        assert!(BenchArtifact::parse(&doctored)
            .expect_err("must reject")
            .contains("schema version"));
    }

    #[test]
    fn suites_emit_valid_names_and_deterministic_exact_metrics() {
        let cfg = SuiteConfig::quick();
        for suite in Suite::ALL {
            let a = suite.run(cfg);
            assert_eq!(a.suite, suite.name());
            assert!(!a.metrics.is_empty());
            for m in &a.metrics {
                assert!(valid_metric_name(&m.name), "{} invalid", m.name);
                assert!(m.value.is_finite(), "{} not finite", m.name);
            }
            // Exact metrics are reproducible run to run.
            let b = suite.run(cfg);
            for m in &a.metrics {
                if m.kind == MetricKind::Exact {
                    let again = b.get(&m.name).expect("metric stable");
                    assert_eq!(again.value, m.value, "{} drifted", m.name);
                }
            }
            // And a self-check passes at slack 1 on everything exact
            // (relative gates compare a to b, both real runs).
            let report = check(&b, &a, 10.0);
            assert!(report.passed(), "{}", report.render());
        }
    }
}

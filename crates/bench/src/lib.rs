//! Shared harness utilities for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library provides the common
//! pieces: wall-clock timing, aligned table rendering, a tiny argument
//! parser, the calibrated cost-model presets, and the standard workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod harness;
pub mod paper;

use std::time::{Duration, Instant};

use mcos_core::preprocess::Preprocessed;
use par_sim::{CostModel, PrnaSim, WorkGrid};
use rna_structure::ArcStructure;

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Minimal flag parser: `has_flag(&args, "--full")`.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Minimal option parser: `opt_value(&args, "--procs")` returns the token
/// following the flag.
pub fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// A right-aligned plain-text table renderer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with millisecond precision, matching the
/// paper's tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The communication parameters used for Figure 8's simulated cluster: a
/// 2009-era commodity cluster interconnect (ethernet-class allreduce:
/// 300 µs per tree round plus 50 ns per element). The per-cell compute
/// cost must still be calibrated from a real run.
pub fn cluster2009_model() -> CostModel {
    CostModel {
        seconds_per_cell: 1e-9, // placeholder until calibrated
        sync_alpha: 300e-6,
        sync_beta_per_elem: 50e-9,
        ..CostModel::default()
    }
}

/// Figure 8's testbed preset: the paper's *Fundy* hybrid cluster — the
/// `cluster2009` interconnect plus multi-core nodes whose memory-bound DP
/// tabulation degrades under full occupancy (8 cores/node, 2× per-cell
/// slowdown when saturated). See DESIGN.md, substitution 2.
pub fn fundy_model() -> CostModel {
    CostModel {
        node_cores: 8,
        contention_at_full: 2.0,
        ..cluster2009_model()
    }
}

/// Calibrates the per-cell cost by running SRNA2 on a contrived
/// worst-case input of `calib_arcs` arcs and dividing time by cells.
pub fn calibrate_seconds_per_cell(calib_arcs: u32) -> f64 {
    let s = rna_structure::generate::worst_case_nested(calib_arcs);
    let (out, d) = time(|| mcos_core::srna2::run(&s, &s));
    d.as_secs_f64() / out.counters.cells as f64
}

/// Builds the PRNA stage-one simulation input for a structure pair.
pub fn prna_sim_for(s1: &ArcStructure, s2: &ArcStructure) -> PrnaSim {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    prna_sim_from_preprocessed(&p1, &p2)
}

/// Builds the PRNA stage-one simulation input from preprocessed tables.
pub fn prna_sim_from_preprocessed(p1: &Preprocessed, p2: &Preprocessed) -> PrnaSim {
    let a1 = p1.num_arcs() as usize;
    let a2 = p2.num_arcs() as usize;
    let grid = WorkGrid::from_fn(a1, a2, |r, c| {
        mcos_core::workload::child_slice_cells(p1, p2, r as u32, c as u32)
            + mcos_core::workload::SLICE_OVERHEAD_CELLS
    });
    PrnaSim {
        grid,
        sequential_work: mcos_core::workload::stage_two_work(p1, p2),
    }
}

/// Parses a comma-separated list of processor counts (e.g. `1,2,4,8`).
pub fn parse_procs(s: &str) -> Vec<u32> {
    s.split(',')
        .map(|t| t.trim().parse().expect("processor counts must be integers"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(&["100".into(), "0.015".into()]);
        t.row(&["1600".into(), "1434.856".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("0.015"));
        assert!(lines[3].starts_with("1600"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn flag_and_option_parsing() {
        let args: Vec<String> = ["--full", "--procs", "1,2,4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(has_flag(&args, "--full"));
        assert!(!has_flag(&args, "--real"));
        assert_eq!(opt_value(&args, "--procs"), Some("1,2,4"));
        assert_eq!(parse_procs("1, 2,4"), vec![1, 2, 4]);
    }

    #[test]
    fn sim_input_matches_workload_totals() {
        let s = rna_structure::generate::worst_case_nested(10);
        let sim = prna_sim_for(&s, &s);
        let p = Preprocessed::build(&s);
        assert_eq!(
            sim.grid.total(),
            mcos_core::workload::stage_one_work(&p, &p)
        );
    }

    #[test]
    fn calibration_is_positive() {
        let spc = calibrate_seconds_per_cell(30);
        assert!(spc > 0.0 && spc < 1e-3);
    }
}

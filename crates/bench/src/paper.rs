//! The paper's published reference numbers, centralized.
//!
//! Every experiment binary prints its measurements next to these values;
//! keeping them in one place keeps the binaries honest about what they
//! compare against and gives the test suite something to sanity-check
//! (e.g. the recorded ratios the narrative quotes).

/// Table I: execution seconds for contrived worst-case data —
/// `(sequence length, SRNA1, SRNA2)` on a 2.8 GHz dual-core Opteron (C,
/// PGI 8.0-6).
pub const TABLE1: [(u32, f64, f64); 5] = [
    (100, 0.015, 0.008),
    (200, 0.238, 0.128),
    (400, 4.008, 2.323),
    (800, 76.371, 37.799),
    (1600, 1434.856, 660.696),
];

/// Table II: execution seconds for the 23S rRNA self-comparisons —
/// `(name, bases, arcs, SRNA1, SRNA2)`.
pub const TABLE2: [(&str, u32, u32, f64, f64); 2] = [
    ("Fungus", 4216, 721, 49.149, 25.472),
    ("Malaria Parasite", 4381, 1126, 86.887, 39.028),
];

/// Table III: percentage breakdown of SRNA2 —
/// `(length, preprocessing %, stage one %, stage two %)`.
pub const TABLE3: [(u32, f64, f64, f64); 4] = [
    (100, 0.1814, 99.6131, 0.1693),
    (200, 0.0488, 99.9055, 0.0434),
    (400, 0.0052, 99.9844, 0.0102),
    (800, 0.0002, 99.9963, 0.0034),
];

/// Figure 8 endpoints quoted in the text: speedup at 64 processors for
/// `(arcs, speedup)`.
pub const FIG8_AT_64: [(u32, f64); 2] = [(800, 22.0), (1600, 32.0)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scaling_is_quartic() {
        // Each doubling of n multiplies time by roughly 16 (the Θ(n⁴)
        // claim); the paper's own data should show 12–20x per step.
        for w in TABLE1.windows(2) {
            let (n0, s10, s20) = w[0];
            let (n1, s11, s21) = w[1];
            assert_eq!(n1, 2 * n0);
            for (a, b) in [(s10, s11), (s20, s21)] {
                let ratio = b / a;
                assert!((10.0..22.0).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn table1_srna2_is_roughly_twice_as_fast() {
        for (_, s1, s2) in TABLE1 {
            let ratio = s1 / s2;
            assert!((1.6..2.2).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn table3_stage_one_dominates_and_grows() {
        let mut prev = 0.0;
        for (_, _, stage1, _) in TABLE3 {
            assert!(stage1 > 99.0);
            assert!(stage1 >= prev);
            prev = stage1;
        }
    }

    #[test]
    fn fig8_larger_problem_scales_further() {
        assert!(FIG8_AT_64[1].1 > FIG8_AT_64[0].1);
    }
}

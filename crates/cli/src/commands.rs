//! Subcommand implementations for the `srna` CLI.

use load_balance::Policy;
use mcos_bench::harness::{self, BenchArtifact, Suite, SuiteConfig};
use mcos_core::{srna2, traceback, verify};
use mcos_parallel::{prna, prna_recorded, Backend, KernelKind, PrnaConfig};
use mcos_telemetry::critical_path::{self, Explanation, StallReport};
use mcos_telemetry::json::Value;
use mcos_telemetry::liveness::{self, MemoryReport, SliceNode};
use mcos_telemetry::report::{GrahamComparison, LoadReport, MemoryUse};
use mcos_telemetry::{mem, trace, CounterSnapshot, Recorder};
use par_sim::Scheduling;
use rna_structure::formats::dot_bracket;
use rna_structure::io::{load_path, Format};
use rna_structure::{generate, stats, ArcStructure};

/// Top-level usage text.
pub const USAGE: &str = "\
usage: srna <subcommand> [options]

  compare <A> <B> [--format db|ct|bpseq] [--trace] [--threads N]
          [--backend NAME] [--kernel NAME] [--mem-budget CELLS]
          [--weighted] [--stats]
      Maximum common ordered substructure of two structure files.
      --backend picks the parallel stage-one engine when --threads > 1.
      NAME is <schedule>-<store>[-<dist>] with schedule row|wavefront,
      store replicated|rwlock|lockfree, dist static|claim|managed
      (default static) — e.g. row-lockfree, wavefront-replicated.
      Legacy aliases: mpi-sim (mpi), worker-pool (pool, the default),
      rayon, wavefront, manager-worker (manager).
      --kernel picks the slice-tabulation inner loop, orthogonal to the
      backend: scalar, tiled (the default), or four-russians (fr).
      --mem-budget caps resident memo cells (parallel runs only):
      stage one evicts per the retention plan and later reads of
      evicted cells are recomputed — same score, linear space.
      --weighted scores with sequence-aware Bafna-style weights (needs
      sequence-bearing formats: ct or bpseq).
      --stats prints work counters (slices, cells, largest slice, memo
      and settled-snapshot traffic, Allreduce rounds) after the score.
      --mem prints the process heap peak and peak RSS after the run
      (allocator peak needs a build with --features mem-profile).
  generate worst <arcs>
  generate hairpins <count> <depth> <loop>
  generate rrna <len> <arcs> [--seed S]
  generate random <len> <density> [--seed S]
  generate sparse-field <len> <count> <depth> <loop> [--seed S]
  generate sparse-skewed <len> <families> <depth> <step> [--seed S]
      Emit a synthetic structure in dot-bracket notation. The sparse-*
      kinds scatter shallow stems over a long chromosome-scale chain —
      the shapes --mem-budget is built for.
  info <A> [--format db|ct|bpseq]
      Structure statistics.
  speedup --arcs N [--procs 1,2,4,...] [--json] [--out PATH]
      Simulated PRNA speedup on a worst-case input of N arcs.
      --json emits the curve as JSON (to stdout, or to --out PATH).
  profile [<A> [<B>]] [--format db|ct|bpseq] [--threads N]
          [--backend NAME] [--kernel NAME] [--mem-budget CELLS]
          [--out trace.json] [--json]
      Run PRNA with telemetry enabled: writes a Chrome/Perfetto trace
      (open in https://ui.perfetto.dev or chrome://tracing, with memo
      memory counter tracks sampled at slice ends) and prints the
      per-worker load report (busy/wait share, largest slice,
      observed imbalance vs the Graham bound), the per-kernel
      tabulation throughput (cells/sec), the memo-store memory line
      (cells allocated, peak MiB, occupancy), and work counters.
      --json prints the schema-versioned load report instead of the
      rendered tables. With no files, profiles a generated
      hairpin-chain self-comparison. B defaults to A.
  explain [<A> [<B>]] [--format db|ct|bpseq] [--threads N]
          [--backend NAME] [--kernel NAME] [--mem-budget CELLS]
          [--memory] [--json] [--out PATH]
      Explain a run's parallel performance: reconstructs the slice-DAG
      critical path from measured per-slice costs (total work T1, span
      T-inf, the Brent speedup ceiling T1/max(T1/p, T-inf)) and
      attributes every worker's wall-clock to busy, dependency-wait,
      barrier-wait, queue-empty, coordinator, and untracked buckets —
      the buckets sum to each lane's measured wall exactly. Prints a
      headline like \"observed 3.1x of a 4.6x ceiling; 22% of lost
      time is level-wait on worker 3\". --memory switches to the
      level-liveness memory report instead: memo cells allocated vs
      written vs the model's minimum resident set, per-level residency
      high-water marks, scratch and allocator peaks, the retention
      counters under --mem-budget (cells evicted, slices/cells
      recomputed, resident-cell peak), and a headline
      like \"peak X MiB, theoretical floor Y MiB; level L holds Z% of
      peak\". --json emits the machine-readable twin of either report
      (to stdout, or to --out PATH). With no files, explains a
      generated hairpin-chain self-comparison.
  bench [--quick] [--reps N] [--suite kernel,barriers,matrix,memory]
        [--out-dir DIR] [--check [BASELINE_DIR]] [--slack F]
      Run the declared regression suites (kernel tabulation rates,
      barrier-schedule ablation, engine-matrix spot sweep, memo-store
      memory occupancy/liveness) on fixed
      workloads and write schema-versioned BENCH_<suite>.json
      artifacts to --out-dir (default '.'). With --check, write
      BENCH_<suite>.fresh.json instead and compare against the
      baselines in BASELINE_DIR (default: --out-dir): exact metrics
      (scores, cell/slice counts, sync points) must match to the bit,
      timing metrics get per-metric relative tolerances scaled by
      --slack (default 1; CI uses a generous value). Any regression,
      missing gating metric, or schema-version mismatch exits nonzero.
      --quick drops to 1 repetition (same workloads, same metric
      names).
  cluster <A> <B> <C> ... [--threshold 0.8] [--threads N]
      Pairwise MCOS similarity matrix and single-linkage clusters.
  draw <A> [--format db|ct|bpseq]
      ASCII arc diagram of a structure.
  analyze <A> [<B>] [--format db|ct|bpseq] [--prove] [--race] [--seeds N]
      Concurrency soundness report for the pair (B defaults to A):
      dependency-level audit, per-backend barrier counts, and the
      workspace atomic-ordering inventory. --prove runs the static
      schedule-soundness prover: every schedule x store x distribution
      composition at 1/2/4/8 threads must cover every slice-DAG
      dependency edge with a synchronization path (settlement,
      readiness, or same-worker program order); uncovered edges are
      printed as counterexamples. --race additionally runs the
      vector-clock race detector over all five parallel backends at
      1/2/4/8 threads with N delay-injection seeds each (default 4).
      Traced runs record every memo access; keep --race inputs small
      (tens of arcs, not hundreds).
";

fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--mem-budget` (resident memo cells; `None` = unbounded).
fn parse_mem_budget(args: &[String]) -> Result<Option<u64>, String> {
    match opt_value(args, "--mem-budget") {
        Some(v) => {
            let cells: u64 = v
                .parse()
                .map_err(|_| "--mem-budget must be a cell count (integer)".to_string())?;
            if cells == 0 {
                return Err("--mem-budget must be at least 1 cell".into());
            }
            Ok(Some(cells))
        }
        None => Ok(None),
    }
}

/// Parses `--kernel` (defaulting to the production default kernel).
fn parse_kernel(args: &[String]) -> Result<KernelKind, String> {
    match opt_value(args, "--kernel") {
        Some(name) => KernelKind::from_name(name).ok_or_else(|| {
            format!("unknown kernel '{name}' (expected scalar, tiled, or four-russians)")
        }),
        None => Ok(KernelKind::default()),
    }
}

/// Loads a structure file via `rna_structure::io` (extension-based
/// detection with content sniffing; `--format` overrides both),
/// returning the full record (structure + optional sequence/title).
fn load_full(path: &str, forced: Option<&str>) -> Result<rna_structure::io::Loaded, String> {
    let format = match forced {
        Some(name) => Some(
            Format::from_name(name)
                .ok_or_else(|| format!("unknown format '{name}' (expected db, ct, or bpseq)"))?,
        ),
        None => None,
    };
    load_path(path, format).map_err(|e| format!("{path}: {e}"))
}

/// Structure-only convenience wrapper over [`load_full`].
fn load(path: &str, forced: Option<&str>) -> Result<ArcStructure, String> {
    load_full(path, forced).map(|loaded| loaded.structure)
}

/// `srna compare`.
pub fn compare(args: &[String]) -> Result<(), String> {
    // Positional arguments are the two paths; skip values that follow
    // value-taking flags.
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--format"
            || a == "--threads"
            || a == "--backend"
            || a == "--kernel"
            || a == "--mem-budget"
        {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        return Err("compare needs exactly two structure files".into());
    }
    let format = opt_value(args, "--format");
    let loaded1 = load_full(&paths[0], format)?;
    let loaded2 = load_full(&paths[1], format)?;
    let (s1, s2) = (&loaded1.structure, &loaded2.structure);
    println!(
        "S1: {} positions, {} arcs; S2: {} positions, {} arcs",
        s1.len(),
        s1.num_arcs(),
        s2.len(),
        s2.num_arcs()
    );

    if has_flag(args, "--weighted") {
        let q1 = loaded1
            .sequence
            .as_ref()
            .ok_or_else(|| format!("{}: --weighted needs a sequence-bearing format", paths[0]))?;
        let q2 = loaded2
            .sequence
            .as_ref()
            .ok_or_else(|| format!("{}: --weighted needs a sequence-bearing format", paths[1]))?;
        use mcos_core::weighted::{self, ArcWeight, SequenceWeight};
        let w = SequenceWeight::new(s1, q1, s2, q2, 1, 1);
        let p1 = mcos_core::preprocess::Preprocessed::build(s1);
        let p2 = mcos_core::preprocess::Preprocessed::build(s2);
        let out = weighted::run_preprocessed(&p1, &p2, &w);
        println!("weighted similarity score: {}", out.score);
        if has_flag(args, "--trace") {
            let mapping = traceback::traceback_weighted(&p1, &p2, &out.memo, &w);
            verify::check_mapping(s1, s2, &mapping.pairs)
                .map_err(|e| format!("internal error: invalid traceback: {e}"))?;
            println!("matched arc pairs (S1 arc -> S2 arc, weight):");
            for &(a, b) in &mapping.pairs {
                println!("  {} -> {}  ({})", s1.arc(a), s2.arc(b), w.weight(a, b));
            }
        }
        return Ok(());
    }
    let (s1, s2) = (loaded1.structure.clone(), loaded2.structure.clone());

    let threads: u32 = opt_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| "--threads must be an integer"))
        .transpose()?
        .unwrap_or(1);
    let backend = match opt_value(args, "--backend") {
        Some(name) => Backend::from_name(name).ok_or_else(|| {
            format!(
                "unknown backend '{name}' (expected <schedule>-<store>[-<dist>], e.g. \
row-lockfree, or a legacy name: mpi-sim, worker-pool, rayon, wavefront, manager-worker)"
            )
        })?,
        None => Backend::WORKER_POOL,
    };
    let kernel = parse_kernel(args)?;
    let mem_budget = parse_mem_budget(args)?;
    let stats = has_flag(args, "--stats");
    if threads > 1 {
        let config = PrnaConfig {
            processors: threads,
            policy: Policy::Greedy,
            backend,
            kernel,
            mem_budget,
        };
        if stats {
            let recorder = Recorder::enabled();
            let score = prna_recorded(&s1, &s2, &config, &recorder).score;
            println!("MCOS score: {score} matched arcs");
            print_snapshot(&recorder.counters());
        } else {
            println!("MCOS score: {} matched arcs", prna(&s1, &s2, &config).score);
        }
    } else {
        let out = srna2::run_with_kernel(&s1, &s2, kernel);
        println!("MCOS score: {} matched arcs", out.score);
        if stats {
            let c = &out.counters;
            println!("work counters (sequential SRNA2):");
            println!("  slices tabulated:    {}", c.slices);
            println!("  cells tabulated:     {}", c.cells);
            println!("  largest slice:       {} cells", c.max_cells_per_slice);
            println!(
                "  memo lookups:        {} ({} hits)",
                c.memo_lookups(),
                c.memo_hits
            );
        }
    }

    if has_flag(args, "--trace") {
        let mapping = traceback::traceback(&s1, &s2);
        verify::check_mapping(&s1, &s2, &mapping.pairs)
            .map_err(|e| format!("internal error: invalid traceback: {e}"))?;
        println!("matched arc pairs (S1 arc -> S2 arc):");
        for &(a, b) in &mapping.pairs {
            println!("  {} -> {}", s1.arc(a), s2.arc(b));
        }
    }

    // Process-level footprint, printed last so it covers the whole run.
    // Unlike `explain --memory` this path never enables the recorder,
    // so the heap peak reflects the solve itself (memo, scratch,
    // recompute cache) rather than telemetry buffers — the number the
    // CI mem-smoke compares across --mem-budget settings.
    if has_flag(args, "--mem") {
        println!(
            "mem: allocator live peak {} bytes; peak RSS {} bytes",
            mem::snapshot().peak(),
            mem::peak_rss_bytes().unwrap_or(0)
        );
    }
    Ok(())
}

/// Prints a recorded [`CounterSnapshot`] in the `--stats` format.
fn print_snapshot(c: &CounterSnapshot) {
    println!("work counters (parallel stage one):");
    println!("  slices tabulated:    {}", c.slices);
    println!("  cells tabulated:     {}", c.cells);
    println!("  largest slice:       {} cells", c.max_cells_per_slice);
    println!("  barrier waits:       {}", c.barriers);
    if c.settled_reads > 0 {
        println!("  settled-snapshot reads: {}", c.settled_reads);
    }
    if c.memo_hits + c.memo_misses > 0 {
        println!(
            "  memo lookups:        {} ({} hits)",
            c.memo_hits + c.memo_misses,
            c.memo_hits
        );
    }
    if c.allreduce_calls > 0 {
        println!(
            "  allreduce:           {} call(s), {} tree round(s), {} payload bytes",
            c.allreduce_calls, c.allreduce_rounds, c.allreduce_bytes
        );
    }
}

/// `srna profile`.
pub fn profile(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--format"
            || a == "--threads"
            || a == "--backend"
            || a == "--kernel"
            || a == "--out"
            || a == "--mem-budget"
        {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            paths.push(a.clone());
        }
    }
    if paths.len() > 2 {
        return Err("profile takes at most two structure files".into());
    }
    let format = opt_value(args, "--format");
    let (s1, s2, label) = match paths.len() {
        0 => {
            // Default workload: a hairpin chain compared against itself —
            // many rows, few dependency levels, so backend scheduling
            // differences are visible in the trace.
            let s = generate::hairpin_chain(20, 3, 2);
            (
                s.clone(),
                s,
                "generated hairpin chain (20 groups, stem depth 3)".to_string(),
            )
        }
        1 => {
            let s = load(&paths[0], format)?;
            (s.clone(), s, format!("{} vs itself", paths[0]))
        }
        _ => (
            load(&paths[0], format)?,
            load(&paths[1], format)?,
            format!("{} vs {}", paths[0], paths[1]),
        ),
    };
    let threads: u32 = opt_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| "--threads must be an integer"))
        .transpose()?
        .unwrap_or(4);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let backend = match opt_value(args, "--backend") {
        Some(name) => Backend::from_name(name).ok_or_else(|| {
            format!(
                "unknown backend '{name}' (expected <schedule>-<store>[-<dist>], e.g. \
row-lockfree, or a legacy name: mpi-sim, worker-pool, rayon, wavefront, manager-worker)"
            )
        })?,
        None => Backend::WORKER_POOL,
    };
    let kernel = parse_kernel(args)?;
    let mem_budget = parse_mem_budget(args)?;
    let out_path = opt_value(args, "--out").unwrap_or("trace.json");

    let config = PrnaConfig {
        processors: threads,
        policy: Policy::Greedy,
        backend,
        kernel,
        mem_budget,
    };
    let recorder = Recorder::enabled();
    let outcome = prna_recorded(&s1, &s2, &config, &recorder);
    let events = recorder.events();

    println!(
        "profiled {} @ {} threads, kernel {}: {label}",
        backend.name(),
        threads,
        kernel.name()
    );
    println!(
        "MCOS score: {} matched arcs; stage one {:.3} ms, {} event(s) recorded",
        outcome.score,
        outcome.stage_one.as_secs_f64() * 1e3,
        events.len()
    );

    // The static Greedy assignment is the report's prediction baseline —
    // it is what the mpi/pool backends actually ran, and the reference
    // schedule the dynamic backends are compared against.
    let p1 = mcos_core::preprocess::Preprocessed::build(&s1);
    let p2 = mcos_core::preprocess::Preprocessed::build(&s2);
    let weights = mcos_core::workload::column_weights(&p1, &p2);
    let assignment = config.policy.assign(&weights, threads);
    let counters = recorder.counters();
    let report = LoadReport::build(&events, threads)
        .with_graham(GrahamComparison::from_assignment(&assignment, &weights))
        .with_kernel(kernel.name())
        .with_memory(MemoryUse {
            cells_allocated: counters.memo_cells_allocated,
            cells_written: counters.memo_cells_written,
            cell_bytes: 4,
        });
    if has_flag(args, "--json") {
        print!("{}", report.to_json().to_json_pretty());
    } else {
        print!("{}", report.render());
        print_snapshot(&counters);
    }

    // The trace gets the liveness model's counter tracks so Perfetto
    // shows the memory trajectory next to the spans.
    let model = liveness_model(&events, &p1, &p2);
    std::fs::write(
        out_path,
        trace::chrome_trace_json_with_memory(&events, Some(&model)),
    )
    .map_err(|e| format!("{out_path}: {e}"))?;
    println!("wrote {out_path} (open in https://ui.perfetto.dev or chrome://tracing)");
    Ok(())
}

/// The level-liveness model of a recorded run: slice nodes from the
/// recorded spans, dependencies from the recurrence's `under_range`
/// cross product (the same relation `explain` walks for the critical
/// path).
fn liveness_model(
    events: &[mcos_telemetry::Event],
    p1: &mcos_core::preprocess::Preprocessed,
    p2: &mcos_core::preprocess::Preprocessed,
) -> liveness::LevelLiveness {
    let costs = critical_path::slice_costs_from_events(events);
    let nodes: Vec<SliceNode> = costs
        .iter()
        .map(|c| SliceNode {
            k1: c.k1,
            k2: c.k2,
            level: c.level,
        })
        .collect();
    liveness::level_liveness(&nodes, |k1, k2, sink| {
        let (lo1, hi1) = p1.under_range[k1 as usize];
        let (lo2, hi2) = p2.under_range[k2 as usize];
        for c1 in lo1..hi1 {
            for c2 in lo2..hi2 {
                sink(c1, c2);
            }
        }
    })
}

/// `srna explain`.
pub fn explain(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--format"
            || a == "--threads"
            || a == "--backend"
            || a == "--kernel"
            || a == "--out"
            || a == "--mem-budget"
        {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            paths.push(a.clone());
        }
    }
    if paths.len() > 2 {
        return Err("explain takes at most two structure files".into());
    }
    let format = opt_value(args, "--format");
    let (s1, s2) = match paths.len() {
        // Same default workload as `profile`: many rows, few levels, so
        // there is a real gap between the row and wavefront ceilings.
        0 => {
            let s = generate::hairpin_chain(20, 3, 2);
            (s.clone(), s)
        }
        1 => {
            let s = load(&paths[0], format)?;
            (s.clone(), s)
        }
        _ => (load(&paths[0], format)?, load(&paths[1], format)?),
    };
    let threads: u32 = opt_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| "--threads must be an integer"))
        .transpose()?
        .unwrap_or(4);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let backend = match opt_value(args, "--backend") {
        Some(name) => Backend::from_name(name).ok_or_else(|| {
            format!(
                "unknown backend '{name}' (expected <schedule>-<store>[-<dist>], e.g. \
row-lockfree, or a legacy name: mpi-sim, worker-pool, rayon, wavefront, manager-worker)"
            )
        })?,
        None => Backend::WORKER_POOL,
    };
    let kernel = parse_kernel(args)?;
    let mem_budget = parse_mem_budget(args)?;

    let config = PrnaConfig {
        processors: threads,
        policy: Policy::Greedy,
        backend,
        kernel,
        mem_budget,
    };
    let recorder = Recorder::enabled();
    let outcome = prna_recorded(&s1, &s2, &config, &recorder);
    let events = recorder.events();

    // The dependency relation of the measured DAG: slice (k1, k2)
    // reads every cross-product child slice (c1, c2) with c1 nested
    // under k1 and c2 under k2 (the recurrence's under_range).
    let p1 = mcos_core::preprocess::Preprocessed::build(&s1);
    let p2 = mcos_core::preprocess::Preprocessed::build(&s2);

    if has_flag(args, "--memory") {
        let c = recorder.counters();
        let report = MemoryReport {
            backend: backend.name().to_string(),
            kernel: kernel.name().to_string(),
            threads,
            cell_bytes: 4,
            cells_allocated: c.memo_cells_allocated,
            cells_written: c.memo_cells_written,
            liveness: liveness_model(&events, &p1, &p2),
            scratch_bytes_peak: c.scratch_bytes_peak,
            scratch_allocs: c.scratch_allocs,
            alloc_live_peak_bytes: mem::snapshot().peak(),
            peak_rss_bytes: mem::peak_rss_bytes().unwrap_or(0),
            evicted_cells: c.evicted_cells,
            recompute_slices: c.recompute_slices,
            recompute_cells: c.recompute_cells,
            resident_cells_peak: c.resident_cells_peak,
        };
        if has_flag(args, "--json") {
            let text = report.to_json().to_json_pretty();
            match opt_value(args, "--out") {
                Some(path) => {
                    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
                    println!("wrote {path}");
                }
                None => print!("{text}"),
            }
        } else {
            println!(
                "MCOS score: {} matched arcs; stage one {:.3} ms",
                outcome.score,
                outcome.stage_one.as_secs_f64() * 1e3
            );
            print!("{}", report.render());
        }
        return Ok(());
    }

    let costs = critical_path::slice_costs_from_events(&events);
    let cp = critical_path::critical_path(&costs, |k1, k2, sink| {
        let (lo1, hi1) = p1.under_range[k1 as usize];
        let (lo2, hi2) = p2.under_range[k2 as usize];
        for c1 in lo1..hi1 {
            for c2 in lo2..hi2 {
                sink(c1, c2);
            }
        }
    });

    let explanation = Explanation {
        backend: backend.name().to_string(),
        kernel: kernel.name().to_string(),
        threads,
        critical_path: cp,
        wall_ns: outcome.stage_one.as_nanos() as u64,
        stalls: StallReport::build(&events),
    };

    if has_flag(args, "--json") {
        let text = explanation.to_json().to_json_pretty();
        match opt_value(args, "--out") {
            Some(path) => {
                std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {path}");
            }
            None => print!("{text}"),
        }
    } else {
        println!(
            "MCOS score: {} matched arcs; stage one {:.3} ms",
            outcome.score,
            outcome.stage_one.as_secs_f64() * 1e3
        );
        print!("{}", explanation.render());
    }
    Ok(())
}

/// `srna bench`.
pub fn bench(args: &[String]) -> Result<(), String> {
    let quick = has_flag(args, "--quick");
    let mut cfg = if quick {
        SuiteConfig::quick()
    } else {
        SuiteConfig::full()
    };
    if let Some(reps) = opt_value(args, "--reps") {
        cfg.reps = reps.parse().map_err(|_| "--reps must be an integer")?;
    }
    let suites: Vec<Suite> = match opt_value(args, "--suite") {
        None => Suite::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                Suite::from_name(name.trim()).ok_or_else(|| {
                    format!("unknown suite '{name}' (kernel, barriers, matrix, memory)")
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let out_dir = opt_value(args, "--out-dir").unwrap_or(".");
    let slack: f64 = opt_value(args, "--slack")
        .map(|s| s.parse().map_err(|_| "--slack must be a number"))
        .transpose()?
        .unwrap_or(1.0);
    // `--check` takes an optional baseline directory; without one the
    // baselines are read from --out-dir (the committed layout).
    let check_dir = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| match args.get(i + 1) {
            Some(next) if !next.starts_with("--") => next.as_str(),
            _ => out_dir,
        });

    let mut failed = false;
    for suite in suites {
        println!("suite {}: running ({} rep(s))...", suite.name(), cfg.reps);
        let fresh = suite.run(cfg);
        match check_dir {
            None => {
                let path = format!("{out_dir}/{}", suite.artifact_name());
                fresh.write(&path).map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "suite {}: wrote {path} ({} metric(s))",
                    suite.name(),
                    fresh.metrics.len()
                );
            }
            Some(base_dir) => {
                let fresh_path = format!("{out_dir}/BENCH_{}.fresh.json", suite.name());
                fresh
                    .write(&fresh_path)
                    .map_err(|e| format!("{fresh_path}: {e}"))?;
                let base_path = format!("{base_dir}/{}", suite.artifact_name());
                let text =
                    std::fs::read_to_string(&base_path).map_err(|e| format!("{base_path}: {e}"))?;
                let report = match BenchArtifact::parse(&text) {
                    Ok(baseline) => harness::check(&fresh, &baseline, slack),
                    // Schema drift in the baseline itself is a failure
                    // with the same exit path as a regression.
                    Err(e) => harness::CheckReport {
                        compared: 0,
                        failures: vec![format!("{base_path}: {e}")],
                        notes: vec![],
                    },
                };
                print!("suite {} vs {base_path}: {}", suite.name(), report.render());
                failed |= !report.passed();
            }
        }
    }
    if failed {
        return Err("bench check failed (see FAIL lines above)".into());
    }
    Ok(())
}

/// `srna generate`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("generate needs a kind")?;
    let seed: u64 = opt_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| "--seed must be an integer"))
        .transpose()?
        .unwrap_or(0);
    let positional: Vec<&String> = args[1..]
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<f64>().is_ok())
        .collect();
    let num = |i: usize, name: &str| -> Result<u32, String> {
        positional
            .get(i)
            .ok_or_else(|| format!("missing <{name}>"))?
            .parse()
            .map_err(|_| format!("<{name}> must be an integer"))
    };
    let s = match kind.as_str() {
        "worst" => generate::worst_case_nested(num(0, "arcs")?),
        "hairpins" => generate::hairpin_chain(num(0, "count")?, num(1, "depth")?, num(2, "loop")?),
        "sparse-field" => generate::sparse_hairpin_field(
            num(0, "len")?,
            num(1, "count")?,
            num(2, "depth")?,
            num(3, "loop")?,
            seed,
        ),
        "sparse-skewed" => generate::sparse_skewed_families(
            num(0, "len")?,
            num(1, "families")?,
            num(2, "depth")?,
            num(3, "step")?,
            seed,
        ),
        "rrna" => {
            let len = num(0, "len")?;
            let arcs = num(1, "arcs")?;
            generate::rrna_like(
                &generate::RrnaConfig {
                    len,
                    arcs,
                    mean_stem: 7,
                    nest_bias: 0.55,
                },
                seed,
            )
        }
        "random" => {
            let len = num(0, "len")?;
            let density: f64 = positional
                .get(1)
                .ok_or("missing <density>")?
                .parse()
                .map_err(|_| "<density> must be a number")?;
            generate::random_structure(len, density, seed)
        }
        other => return Err(format!("unknown generator '{other}'")),
    };
    println!("{}", dot_bracket::to_string(&s));
    Ok(())
}

/// `srna info`.
pub fn info(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("info needs a structure file")?;
    let s = load(path, opt_value(args, "--format"))?;
    let st = stats::stats(&s);
    println!("positions:       {}", st.len);
    println!("arcs:            {}", st.arcs);
    println!("paired fraction: {:.3}", st.paired_fraction);
    println!("max depth:       {}", st.max_depth);
    println!("mean depth:      {:.2}", st.mean_depth);
    println!("stems:           {}", st.stems);
    println!("longest stem:    {}", st.longest_stem);
    println!("top-level arcs:  {}", st.top_level_arcs);
    Ok(())
}

/// `srna draw`.
pub fn draw(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("draw needs a structure file")?;
    let s = load(path, opt_value(args, "--format"))?;
    print!("{}", rna_structure::draw::arc_diagram(&s));
    Ok(())
}

/// `srna cluster`.
pub fn cluster(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--threshold" || a == "--threads" || a == "--format" {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            paths.push(a.clone());
        }
    }
    if paths.len() < 2 {
        return Err("cluster needs at least two structure files".into());
    }
    let threshold: f64 = opt_value(args, "--threshold")
        .map(|t| t.parse().map_err(|_| "--threshold must be a number"))
        .transpose()?
        .unwrap_or(0.8);
    let threads: u32 = opt_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| "--threads must be an integer"))
        .transpose()?
        .unwrap_or(1);
    let format = opt_value(args, "--format");
    let structures: Vec<ArcStructure> = paths
        .iter()
        .map(|p| load(p, format))
        .collect::<Result<_, _>>()?;

    let matrix = mcos_parallel::pairwise::score_matrix(&structures, threads);
    println!("pairwise similarity (matched arcs / smaller arc count):");
    for (i, pi) in paths.iter().enumerate() {
        for (j, pj) in paths.iter().enumerate() {
            if j > i {
                println!("  {pi} vs {pj}: {:.3}", matrix.similarity(i, j));
            }
        }
    }
    let clusters = matrix.cluster(threshold);
    println!("clusters at similarity >= {threshold}:");
    for (p, c) in paths.iter().zip(&clusters) {
        println!("  {p}: cluster {c}");
    }
    Ok(())
}

/// `srna analyze`.
pub fn analyze(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--format" || a == "--seeds" {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            paths.push(a.clone());
        }
    }
    if paths.is_empty() || paths.len() > 2 {
        return Err("analyze needs one or two structure files".into());
    }
    let format = opt_value(args, "--format");
    let s1 = load(&paths[0], format)?;
    let s2 = match paths.get(1) {
        Some(p) => load(p, format)?,
        None => s1.clone(),
    };

    let p1 = mcos_core::preprocess::Preprocessed::build(&s1);
    let p2 = mcos_core::preprocess::Preprocessed::build(&s2);

    let audit = analysis::audit::audit_levels(&p1, &p2);
    println!(
        "dependency-level audit: {} slices, {} edges, {} wavefront level(s)",
        audit.slices, audit.edges, audit.levels
    );
    if !audit.is_sound() {
        for v in audit.violations.iter().take(10) {
            println!(
                "  VIOLATION {:?} (level {}) -> {:?} (level {})",
                v.from, v.from_level, v.to, v.to_level
            );
        }
        return Err(format!(
            "level function fails to strictly decrease on {} edge(s)",
            audit.violations.len()
        ));
    }
    println!("  every edge strictly decreases max(depth1, depth2): sound");

    println!("stage-one synchronization points per backend:");
    for (name, count) in analysis::audit::barrier_counts(&p1, &p2) {
        println!("  {name:<15} {count}");
    }

    // The inventory scans the workspace this binary was built from;
    // skip it quietly when the source tree is not present.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match analysis::audit::ordering_inventory(&root) {
        Ok(uses) => {
            let justified = uses.iter().filter(|u| u.justified).count();
            println!(
                "atomic-ordering inventory: {} use site(s), {} justified",
                uses.len(),
                justified
            );
            for u in uses.iter().filter(|u| !u.justified) {
                println!(
                    "  UNJUSTIFIED {}:{} Ordering::{}",
                    u.file, u.line, u.ordering
                );
            }
        }
        Err(_) => println!("atomic-ordering inventory: workspace sources not found, skipped"),
    }

    if has_flag(args, "--prove") {
        let threads = [1u32, 2, 4, 8];
        let proofs = analysis::prove::prove_matrix(&p1, &p2, &threads);
        let mut uncovered = 0usize;
        for proof in &proofs {
            if !proof.is_covered() {
                uncovered += proof.uncovered.len();
                println!(
                    "  UNCOVERED {} @ {} workers: {} edge(s)",
                    proof.name,
                    proof.workers,
                    proof.uncovered.len()
                );
                for edge in proof.uncovered.iter().take(5) {
                    println!("    {edge}");
                }
            }
        }
        let edges = proofs.first().map_or(0, |p| p.edges);
        println!(
            "schedule-soundness prover: {} composition(s) x {:?} threads, {} edge(s) each",
            mcos_parallel::Backend::MATRIX.len(),
            threads,
            edges
        );
        if uncovered > 0 {
            return Err(format!(
                "prover found {uncovered} uncovered dependency edge(s)"
            ));
        }
        println!("  every dependency edge is covered in every plan: sound");
        // Self-test that the prover has teeth: the deliberately broken
        // merged-level wavefront must yield a concrete counterexample.
        let broken = analysis::prove::prove_broken_wavefront(4, &p1, &p2);
        match broken.uncovered.first() {
            Some(edge) if audit.edges > 0 => {
                println!("  teeth check: broken wavefront rejected ({edge})");
            }
            _ if audit.edges == 0 => {
                println!("  teeth check: skipped (no dependency edges in this pair)");
            }
            _ => return Err("prover accepted the deliberately broken wavefront".into()),
        }
    }

    if has_flag(args, "--race") {
        let seeds: u64 = opt_value(args, "--seeds")
            .map(|s| s.parse().map_err(|_| "--seeds must be an integer"))
            .transpose()?
            .unwrap_or(4);
        println!("race detector: 5 backends x [1,2,4,8] threads x {seeds} seed(s)...");
        let report = analysis::detector::acceptance_matrix(&s1, &s2, seeds);
        for r in &report.runs {
            if !r.violations.is_empty() || !r.result_ok {
                println!(
                    "  {} @ {} threads, seed {}: {} violation(s), result_ok={}",
                    r.backend.name(),
                    r.threads,
                    r.seed,
                    r.violations.len(),
                    r.result_ok
                );
                for v in r.violations.iter().take(5) {
                    println!("    {v}");
                }
            }
        }
        if report.all_clean() {
            println!(
                "  all {} runs replay clean and match the sequential reference",
                report.runs.len()
            );
        } else {
            return Err(format!(
                "race detector found {} violation(s)",
                report.total_violations()
            ));
        }
    }
    Ok(())
}

/// `srna speedup`.
pub fn speedup(args: &[String]) -> Result<(), String> {
    let arcs: u32 = opt_value(args, "--arcs")
        .ok_or("speedup needs --arcs N")?
        .parse()
        .map_err(|_| "--arcs must be an integer")?;
    let procs: Vec<u32> = opt_value(args, "--procs")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().map_err(|_| "--procs must be integers"))
                .collect::<Result<Vec<u32>, _>>()
        })
        .transpose()?
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64]);

    let s = generate::worst_case_nested(arcs);
    let p = mcos_core::preprocess::Preprocessed::build(&s);
    // Calibrate from a bounded-size real run.
    let calib = generate::worst_case_nested(arcs.min(120));
    let t0 = std::time::Instant::now();
    let out = srna2::run(&calib, &calib);
    let spc = t0.elapsed().as_secs_f64() / out.counters.cells as f64;

    let grid = par_sim::WorkGrid::from_fn(p.num_arcs() as usize, p.num_arcs() as usize, |r, c| {
        mcos_core::workload::child_slice_cells(&p, &p, r as u32, c as u32)
            + mcos_core::workload::SLICE_OVERHEAD_CELLS
    });
    let sim = par_sim::PrnaSim {
        grid,
        sequential_work: mcos_core::workload::stage_two_work(&p, &p),
    };
    let model = par_sim::CostModel {
        seconds_per_cell: spc,
        sync_alpha: 300e-6,
        sync_beta_per_elem: 50e-9,
        ..par_sim::CostModel::default()
    };
    let curve = sim.speedup_curve(&procs, Scheduling::Static(Policy::Greedy), &model);
    if has_flag(args, "--json") {
        let doc = mcos_bench::emit::envelope(
            "speedup",
            [
                ("input".to_string(), Value::from("worst-case")),
                ("arcs".to_string(), Value::from(arcs)),
                ("seconds_per_cell".to_string(), Value::from(spc)),
                (
                    "points".to_string(),
                    Value::Array(
                        curve
                            .iter()
                            .map(|&(pr, sp)| {
                                Value::object([
                                    ("procs".to_string(), Value::from(pr)),
                                    ("speedup".to_string(), Value::from(sp)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        );
        match opt_value(args, "--out") {
            Some(path) => {
                mcos_bench::emit::write_artifact(path, &doc).map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {path}");
            }
            None => print!("{}", doc.to_json_pretty()),
        }
    } else {
        println!("worst case, {arcs} arcs; calibrated {spc:.3e} s/cell");
        println!("procs  speedup");
        for (pr, sp) in curve {
            println!("{pr:>5}  {sp:>7.2}");
        }
    }
    Ok(())
}

//! `srna` — command-line tool for comparing RNA secondary structures.
//!
//! Subcommands:
//!
//! * `srna compare <A> <B>` — MCOS score (and mapping with `--trace`) of
//!   two structure files; formats inferred from extension (`.db`, `.ct`,
//!   `.bpseq`) or forced with `--format`.
//! * `srna generate <kind> ...` — emit a synthetic structure as
//!   dot-bracket (kinds: `worst`, `hairpins`, `rrna`, `random`).
//! * `srna info <A>` — structure statistics.
//! * `srna speedup --arcs N [--procs 1,2,...]` — simulated PRNA speedup
//!   for a worst-case input of N arcs.
//! * `srna cluster <files...>` — pairwise similarity matrix and
//!   single-linkage clusters for a collection of structures.
//! * `srna analyze <A> [<B>]` — concurrency soundness report:
//!   dependency-level audit, barrier counts per backend, ordering
//!   inventory, and (with `--race`) the vector-clock race detector.
//! * `srna profile [<A> [<B>]]` — run PRNA with telemetry enabled: write
//!   a Chrome/Perfetto `trace.json` and print the per-worker load report
//!   (busy/wait share, observed vs predicted imbalance) and counters.
//! * `srna explain [<A> [<B>]]` — reconstruct the slice-DAG critical
//!   path (T1, T∞, the Brent speedup ceiling) from a recorded run and
//!   attribute every worker's wall-clock to stall buckets; with
//!   `--memory`, report memo occupancy and the level-liveness floor
//!   instead.
//! * `srna bench` — run the declared regression suites on fixed
//!   workloads, writing schema-versioned `BENCH_<suite>.json`
//!   artifacts; `--check` compares against committed baselines with
//!   per-metric tolerances and exits nonzero on regression.

use std::process::ExitCode;

mod commands;

// Opt-in counting allocator: `--features mem-profile` swaps in the
// arena-tagging wrapper around the system allocator so the memory
// reports show real live/peak bytes, not just the model.
#[cfg(feature = "mem-profile")]
#[global_allocator]
static ALLOC: mcos_telemetry::mem::CountingAlloc = mcos_telemetry::mem::CountingAlloc::system();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "compare" => commands::compare(rest),
        "generate" => commands::generate(rest),
        "info" => commands::info(rest),
        "speedup" => commands::speedup(rest),
        "cluster" => commands::cluster(rest),
        "draw" => commands::draw(rest),
        "analyze" => commands::analyze(rest),
        "profile" => commands::profile(rest),
        "explain" => commands::explain(rest),
        "bench" => commands::bench(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("srna: {e}");
            ExitCode::FAILURE
        }
    }
}

//! End-to-end tests of the `srna` binary, driven via `std::process`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn srna(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srna"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("srna_cli_test_{}_{name}", std::process::id()));
    std::fs::write(&path, content).expect("write temp file");
    path
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = srna(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: srna"));
}

#[test]
fn help_succeeds() {
    let out = srna(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("compare"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = srna(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown subcommand"));
}

#[test]
fn generate_worst_emits_dot_bracket() {
    let out = srna(&["generate", "worst", "4"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "(((())))");
}

#[test]
fn generate_is_seed_deterministic() {
    let a = srna(&["generate", "rrna", "80", "15", "--seed", "7"]);
    let b = srna(&["generate", "rrna", "80", "15", "--seed", "7"]);
    let c = srna(&["generate", "rrna", "80", "15", "--seed", "8"]);
    assert_eq!(stdout(&a), stdout(&b));
    assert_ne!(stdout(&a), stdout(&c));
}

#[test]
fn compare_self_matches_all_arcs() {
    let f = temp_file("self.db", "(((...)))((...))\n");
    let out = srna(&["compare", f.to_str().unwrap(), f.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("MCOS score: 5"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn compare_paper_example_with_trace() {
    let a = temp_file("a.db", "(((...)))((...))\n");
    let b = temp_file("b.db", "((...))(((...)))\n");
    let out = srna(&[
        "compare",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--trace",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MCOS score: 4"));
    assert!(text.contains("matched arc pairs"));
    // Four matched pairs like "  (9,15) -> (8,14)".
    assert_eq!(text.matches(") -> (").count(), 4);
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn compare_with_threads_agrees() {
    let a = temp_file("t1.db", "((((....))))((..))\n");
    let b = temp_file("t2.db", "((..))((((....))))\n");
    let seq = srna(&["compare", a.to_str().unwrap(), b.to_str().unwrap()]);
    let par = srna(&[
        "compare",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threads",
        "3",
    ]);
    let score = |o: &Output| {
        stdout(o)
            .lines()
            .find(|l| l.contains("MCOS score"))
            .unwrap()
            .to_string()
    };
    assert_eq!(score(&seq), score(&par));
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn compare_kernels_agree_sequential_and_parallel() {
    let a = temp_file("k1.db", "((((....))))((..))\n");
    let b = temp_file("k2.db", "((..))((((....))))\n");
    let score = |o: &Output| {
        stdout(o)
            .lines()
            .find(|l| l.contains("MCOS score"))
            .unwrap()
            .to_string()
    };
    let reference = srna(&["compare", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(reference.status.success(), "{}", stderr(&reference));
    for kernel in ["scalar", "tiled", "four-russians"] {
        for extra in [
            &[][..],
            &["--threads", "3", "--backend", "row-lockfree"][..],
        ] {
            let mut args = vec!["compare", a.to_str().unwrap(), b.to_str().unwrap()];
            args.extend_from_slice(extra);
            args.extend_from_slice(&["--kernel", kernel]);
            let out = srna(&args);
            assert!(out.status.success(), "{kernel}: {}", stderr(&out));
            assert_eq!(score(&out), score(&reference), "kernel {kernel} {extra:?}");
        }
    }
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn compare_rejects_unknown_kernel() {
    let f = temp_file("badkernel.db", "(.)\n");
    let out = srna(&[
        "compare",
        f.to_str().unwrap(),
        f.to_str().unwrap(),
        "--kernel",
        "warp9",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown kernel"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn profile_reports_kernel_throughput() {
    let trace =
        std::env::temp_dir().join(format!("srna_cli_test_{}_trace.json", std::process::id()));
    let out = srna(&[
        "profile",
        "--threads",
        "2",
        "--kernel",
        "tiled",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("kernel tiled"), "{text}");
    assert!(text.contains("Mcells/s"), "{text}");
    assert!(text.contains("max slice"), "{text}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn compare_rejects_missing_file() {
    let out = srna(&["compare", "/no/such/file.db", "/no/such/other.db"]);
    assert!(!out.status.success());
}

#[test]
fn compare_rejects_bad_structure() {
    let f = temp_file("bad.db", "(((\n");
    let out = srna(&["compare", f.to_str().unwrap(), f.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unmatched"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn info_reports_stats() {
    let f = temp_file("info.db", "((..))(..)\n");
    let out = srna(&["info", f.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("positions:       10"));
    assert!(text.contains("arcs:            3"));
    assert!(text.contains("stems:           2"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn info_reads_bpseq_via_extension() {
    let f = temp_file("x.bpseq", "1 G 5\n2 A 0\n3 A 0\n4 A 0\n5 C 1\n");
    let out = srna(&["info", f.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("arcs:            1"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn speedup_prints_curve() {
    let out = srna(&["speedup", "--arcs", "40", "--procs", "1,2,4"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("procs"));
    assert_eq!(
        text.lines()
            .filter(|l| l.trim().starts_with(char::is_numeric))
            .count(),
        3
    );
}

#[test]
fn cluster_groups_identical_files() {
    let a = temp_file("cl_a.db", "((((....))))\n");
    let b = temp_file("cl_b.db", "((((....))))\n");
    let c = temp_file("cl_c.db", "(.)(.)(.)(.)\n");
    let out = srna(&[
        "cluster",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        c.to_str().unwrap(),
        "--threshold",
        "0.9",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("cluster 0"));
    assert!(text.contains("cluster 1"));
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    std::fs::remove_file(&c).ok();
}

#[test]
fn weighted_compare_requires_sequences() {
    let f = temp_file("w.db", "((.))\n");
    let out = srna(&[
        "compare",
        f.to_str().unwrap(),
        f.to_str().unwrap(),
        "--weighted",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("sequence-bearing"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn weighted_compare_on_bpseq() {
    // Self-comparison with arc weight 1 + bonus 1 per agreeing endpoint:
    // one arc, both bases agree => score 3.
    let f = temp_file("w.bpseq", "1 G 5\n2 A 0\n3 A 0\n4 A 0\n5 C 1\n");
    let out = srna(&[
        "compare",
        f.to_str().unwrap(),
        f.to_str().unwrap(),
        "--weighted",
        "--trace",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("weighted similarity score: 3"), "{text}");
    assert!(text.contains("(3)"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn draw_renders_arc_diagram() {
    let f = temp_file("draw.db", "((.))\n");
    let out = srna(&["draw", f.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains(".---."));
    assert!(text.contains("((.))"));
    std::fs::remove_file(&f).ok();
}

#[test]
fn analyze_prove_proves_the_matrix_and_rejects_the_broken_schedule() {
    let f = temp_file("prove.db", "((((....))))((..))\n");
    let out = srna(&["analyze", f.to_str().unwrap(), "--prove"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("every dependency edge is covered in every plan: sound"),
        "{text}"
    );
    assert!(
        text.contains("teeth check: broken wavefront rejected"),
        "{text}"
    );
    assert!(text.contains("same step, unordered"), "{text}");
    std::fs::remove_file(&f).ok();
}

#[test]
fn cluster_needs_two_files() {
    let out = srna(&["cluster", "/tmp/only_one.db"]);
    assert!(!out.status.success());
}

#[test]
fn explain_human_report_names_the_ceiling_and_buckets() {
    let out = srna(&["explain", "--backend", "wavefront", "--threads", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("speedup ceiling"), "{text}");
    assert!(text.contains("observed"), "{text}");
    assert!(text.contains("per-worker wall-clock attribution"), "{text}");
    assert!(text.contains("busy"), "{text}");
}

/// The acceptance identity, end to end: in the JSON twin every lane's
/// six stall buckets sum to that lane's measured wall-clock exactly.
#[test]
fn explain_json_buckets_sum_to_wall() {
    use mcos_telemetry::json::Value;
    let out = srna(&[
        "explain",
        "--backend",
        "worker-pool",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = mcos_telemetry::json::parse(&stdout(&out)).expect("json twin parses");
    assert_eq!(doc.get("schema_version").and_then(Value::as_f64), Some(1.0));
    assert_eq!(
        doc.get("backend").and_then(Value::as_str),
        Some("worker-pool")
    );
    assert!(doc.get("t1_ns").and_then(Value::as_f64).expect("t1") > 0.0);
    assert!(doc.get("ceiling").and_then(Value::as_f64).expect("ceiling") >= 1.0);
    assert!(doc
        .get("headline")
        .and_then(Value::as_str)
        .expect("headline")
        .contains("ceiling"));
    let workers = doc
        .get("workers")
        .and_then(Value::as_array)
        .expect("workers");
    // Coordinator lane + 2 workers.
    assert_eq!(workers.len(), 3);
    for w in workers {
        let field = |name: &str| w.get(name).and_then(Value::as_f64).expect("field");
        let sum = field("busy_ns")
            + field("dependency_wait_ns")
            + field("barrier_wait_ns")
            + field("queue_empty_ns")
            + field("coordinator_ns")
            + field("untracked_ns");
        assert_eq!(sum, field("wall_ns"), "lane {:?}", w.get("tid"));
    }
}

/// `srna bench --check` passes against a just-written baseline and —
/// the harness's teeth — exits nonzero once that baseline is doctored.
#[test]
fn bench_check_passes_fresh_and_fails_doctored_baseline() {
    use mcos_bench::harness::{BenchArtifact, MetricKind};
    let root = std::env::temp_dir().join(format!("srna_cli_bench_{}", std::process::id()));
    let base_dir = root.join("base");
    let fresh_dir = root.join("fresh");
    std::fs::create_dir_all(&base_dir).expect("mkdir");
    let base = base_dir.to_str().unwrap();

    let out = srna(&["bench", "--quick", "--suite", "barriers", "--out-dir", base]);
    assert!(out.status.success(), "{}", stderr(&out));
    let baseline_path = base_dir.join("BENCH_barriers.json");
    assert!(baseline_path.exists());

    // Generous slack: exact metrics carry the comparison; the timing
    // gates must absorb shared-runner noise.
    let check_args = |fresh: &str| {
        vec![
            "bench".to_string(),
            "--quick".to_string(),
            "--suite".to_string(),
            "barriers".to_string(),
            "--out-dir".to_string(),
            fresh.to_string(),
            "--check".to_string(),
            base.to_string(),
            "--slack".to_string(),
            "50".to_string(),
        ]
    };
    let args = check_args(fresh_dir.to_str().unwrap());
    let out = srna(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("PASS"), "{}", stdout(&out));
    assert!(fresh_dir.join("BENCH_barriers.fresh.json").exists());

    // Teeth: shift every exact metric in the baseline by one. A real
    // regression that changes what ran must fail at any slack.
    let text = std::fs::read_to_string(&baseline_path).expect("read baseline");
    let mut doctored = BenchArtifact::parse(&text).expect("baseline parses");
    let mut changed = 0;
    for m in &mut doctored.metrics {
        if m.kind == MetricKind::Exact {
            m.value += 1.0;
            changed += 1;
        }
    }
    assert!(changed > 0, "barriers suite must declare exact metrics");
    doctored
        .write(baseline_path.to_str().unwrap())
        .expect("rewrite baseline");
    let out = srna(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(!out.status.success(), "doctored baseline must fail");
    assert!(stdout(&out).contains("FAIL"), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("bench check failed"),
        "{}",
        stderr(&out)
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bench_rejects_unknown_suite() {
    let out = srna(&["bench", "--suite", "warp9"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown suite"));
}

#[test]
fn speedup_json_emits_the_shared_envelope() {
    use mcos_telemetry::json::Value;
    let out = srna(&["speedup", "--arcs", "24", "--procs", "1,2", "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = mcos_telemetry::json::parse(&stdout(&out)).expect("parses");
    assert_eq!(
        doc.get("experiment").and_then(Value::as_str),
        Some("speedup")
    );
    assert!(doc.get("schema_version").is_some());
    assert!(doc.get("env").and_then(|e| e.get("cpus")).is_some());
    let points = doc.get("points").and_then(Value::as_array).expect("points");
    assert_eq!(points.len(), 2);
}

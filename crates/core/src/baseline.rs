//! The two conventional dynamic-programming strategies the paper contrasts
//! with (§II, §IV): plain top-down memoization over the four-dimensional
//! subproblem space, and the overtabulating bottom-up strategy.
//!
//! Both are exact (they compute the same MCOS score as SRNA1/SRNA2) but
//! carry the costs the paper's redesign eliminates:
//!
//! * [`top_down_memo`] performs an **exact tabulation** — it visits only
//!   subproblems reachable from the root — but pays recursion overhead and
//!   needs a general 4-D memo keyed by `(i1, j1, i2, j2)`; a dense memo
//!   would need `Θ(n²m²)` space ("for most computers, it would not take
//!   long to exhaust available memory").
//! * [`bottom_up_full`] fills the entire dense four-dimensional table with
//!   no regard for the input structure — **overtabulation**: it computes
//!   `Θ(n²m²)` positional subproblems even when almost none contribute to
//!   the result. It is restricted to small inputs by its memory appetite,
//!   which is precisely the paper's point.

use std::collections::HashMap;

use rna_structure::ArcStructure;

/// Result of a baseline run: the score plus the number of subproblems
/// actually materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineOutcome {
    /// The MCOS score.
    pub score: u32,
    /// Number of distinct subproblems tabulated/memoized.
    pub subproblems: u64,
}

/// Top-down memoized evaluation of the recurrence, exactly as a direct
/// recursive transcription of the paper's Figure 2 (with a hash-map memo
/// standing in for the unaffordable dense 4-D table).
///
/// Intended for small inputs and as a correctness oracle; the recursion
/// and hashing overhead make it far slower than SRNA1/SRNA2.
pub fn top_down_memo(s1: &ArcStructure, s2: &ArcStructure) -> BaselineOutcome {
    struct Ctx<'a> {
        s1: &'a ArcStructure,
        s2: &'a ArcStructure,
        memo: HashMap<(u32, u32, u32, u32), u32>,
    }

    /// `f(i1, j1, i2, j2)` with *exclusive* upper bounds: the window is
    /// `[i1, j1)` × `[i2, j2)`, so the empty window is `j <= i` and no
    /// signed arithmetic is needed.
    fn f(ctx: &mut Ctx<'_>, i1: u32, j1: u32, i2: u32, j2: u32) -> u32 {
        if j1 <= i1 || j2 <= i2 {
            return 0;
        }
        let key = (i1, j1, i2, j2);
        if let Some(&v) = ctx.memo.get(&key) {
            return v;
        }
        // Last positions of the (inclusive) windows.
        let x = j1 - 1;
        let y = j2 - 1;
        let mut v = f(ctx, i1, j1 - 1, i2, j2).max(f(ctx, i1, j1, i2, j2 - 1));
        let a1 = ctx
            .s1
            .arc_ending_at(x)
            .filter(|&k| ctx.s1.arc(k).left >= i1);
        let a2 = ctx
            .s2
            .arc_ending_at(y)
            .filter(|&k| ctx.s2.arc(k).left >= i2);
        if let (Some(k1), Some(k2)) = (a1, a2) {
            let l1 = ctx.s1.arc(k1).left;
            let l2 = ctx.s2.arc(k2).left;
            let d1 = f(ctx, i1, l1, i2, l2);
            let d2 = f(ctx, l1 + 1, x, l2 + 1, y);
            v = v.max(1 + d1 + d2);
        }
        ctx.memo.insert(key, v);
        v
    }

    let mut ctx = Ctx {
        s1,
        s2,
        memo: HashMap::new(),
    };
    let score = f(&mut ctx, 0, s1.len(), 0, s2.len());
    BaselineOutcome {
        score,
        subproblems: ctx.memo.len() as u64,
    }
}

/// Maximum sequence length accepted by [`bottom_up_full`]; the dense
/// table holds `(n+1)²(m+1)²` 32-bit entries, so 96 positions per side is
/// already ~330 MB.
pub const BOTTOM_UP_MAX_LEN: u32 = 96;

/// Fully tabulating bottom-up evaluation over the dense four-dimensional
/// positional table — the conventional strategy, kept as the
/// overtabulation baseline.
///
/// `t[i1][x][i2][y] = F[i1, x, i2, y]` for all `0 <= i1 <= x < n`,
/// `0 <= i2 <= y < m` (plus empty-window borders). Slices are computed in
/// decreasing `(i1, i2)` order so the dynamic dependency `d₂` (which lives
/// in slice `(k1+1, k2+1)` with `k1 >= i1`, `k2 >= i2`) is available.
///
/// # Panics
///
/// Panics if either structure is longer than [`BOTTOM_UP_MAX_LEN`].
pub fn bottom_up_full(s1: &ArcStructure, s2: &ArcStructure) -> BaselineOutcome {
    let n = s1.len();
    let m = s2.len();
    assert!(
        n <= BOTTOM_UP_MAX_LEN && m <= BOTTOM_UP_MAX_LEN,
        "bottom_up_full is a small-input baseline (max {BOTTOM_UP_MAX_LEN} positions)"
    );
    if n == 0 || m == 0 {
        return BaselineOutcome {
            score: 0,
            subproblems: 0,
        };
    }

    // Index layout: ((i1 * (n+1) + x1) * m + i2) * (m+1) + y1, where
    // x1 = x + 1 and y1 = y + 1 encode the inclusive window ends with a
    // zero border for empty windows.
    let n1 = (n + 1) as usize;
    let m1 = (m + 1) as usize;
    let idx = |i1: usize, x1: usize, i2: usize, y1: usize| -> usize {
        ((i1 * n1 + x1) * m as usize + i2) * m1 + y1
    };
    let mut t = vec![0u32; n as usize * n1 * m as usize * m1];
    let mut subproblems: u64 = 0;

    for i1 in (0..n).rev() {
        for i2 in (0..m).rev() {
            for x in i1..n {
                let a1 = s1.arc_ending_at(x).filter(|&k| s1.arc(k).left >= i1);
                for y in i2..m {
                    subproblems += 1;
                    let (iu, xu, ju, yu) =
                        (i1 as usize, (x + 1) as usize, i2 as usize, (y + 1) as usize);
                    let mut v = t[idx(iu, xu - 1, ju, yu)].max(t[idx(iu, xu, ju, yu - 1)]);
                    if let Some(k1) = a1 {
                        if let Some(k2) = s2.arc_ending_at(y).filter(|&k| s2.arc(k).left >= i2) {
                            let l1 = s1.arc(k1).left;
                            let l2 = s2.arc(k2).left;
                            // d1 = F[i1, l1-1, i2, l2-1]: the window end
                            // l-1 encodes as x1 = l; when l == i1 that is
                            // the (untouched, zero) empty-window border.
                            let d1 = t[idx(iu, l1 as usize, ju, l2 as usize)];
                            // d2 = F[l1+1, x-1, l2+1, y-1]: likewise a
                            // single lookup — when x == l1+1 the window is
                            // empty and the cell is a zero border.
                            let d2 = t
                                [idx((l1 + 1) as usize, x as usize, (l2 + 1) as usize, y as usize)];
                            v = v.max(1 + d1 + d2);
                        }
                    }
                    t[idx(iu, xu, ju, yu)] = v;
                }
            }
        }
    }
    BaselineOutcome {
        score: t[idx(0, n as usize, 0, m as usize)],
        subproblems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{srna1, srna2};
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn top_down_tiny_cases() {
        let cases = [
            ("", "", 0u32),
            ("(.)", "(.)", 1),
            ("((.))", "((.))", 2),
            ("(((...)))((...))", "((...))(((...)))", 4),
        ];
        for (a, b, want) in cases {
            let s1 = dot_bracket::parse(a).unwrap();
            let s2 = dot_bracket::parse(b).unwrap();
            assert_eq!(top_down_memo(&s1, &s2).score, want, "{a} vs {b}");
            assert_eq!(bottom_up_full(&s1, &s2).score, want, "{a} vs {b}");
        }
    }

    #[test]
    fn all_four_algorithms_agree() {
        for seed in 0..25 {
            let s1 = generate::random_structure(36, 0.9, seed);
            let s2 = generate::random_structure(32, 0.8, seed + 7000);
            let td = top_down_memo(&s1, &s2).score;
            let bu = bottom_up_full(&s1, &s2).score;
            let v1 = srna1::run(&s1, &s2).score;
            let v2 = srna2::run(&s1, &s2).score;
            assert_eq!(td, bu, "seed {seed}");
            assert_eq!(td, v1, "seed {seed}");
            assert_eq!(td, v2, "seed {seed}");
        }
    }

    #[test]
    fn bottom_up_overtabulates() {
        // The contrived worst case is the *best* case for bottom-up
        // relative overtabulation, yet even here it computes positional
        // subproblems for every (i1, i2) start pair, while SRNA2 computes
        // only arc-pair slices on the compressed grid.
        let s = generate::worst_case_nested(12); // 24 positions
        let bu = bottom_up_full(&s, &s);
        let v2 = srna2::run(&s, &s);
        assert_eq!(bu.score, v2.score);
        assert!(
            bu.subproblems > 10 * v2.counters.cells,
            "expected >10x overtabulation, got {} vs {}",
            bu.subproblems,
            v2.counters.cells
        );
    }

    #[test]
    fn top_down_is_exact_tabulation() {
        // Top-down visits far fewer subproblems than full bottom-up on
        // sparse structures.
        let s = generate::hairpin_chain(3, 2, 4); // sparse
        let td = top_down_memo(&s, &s);
        let bu = bottom_up_full(&s, &s);
        assert_eq!(td.score, bu.score);
        assert!(td.subproblems < bu.subproblems);
    }

    #[test]
    #[should_panic(expected = "small-input baseline")]
    fn bottom_up_rejects_large_inputs() {
        let s = generate::worst_case_nested(60); // 120 positions
        let _ = bottom_up_full(&s, &s);
    }

    #[test]
    fn bottom_up_empty_inputs() {
        let e = ArcStructure::unpaired(0);
        let s = dot_bracket::parse("(.)").unwrap();
        assert_eq!(bottom_up_full(&e, &s).score, 0);
        assert_eq!(top_down_memo(&e, &s).score, 0);
    }

    use rna_structure::ArcStructure;
}

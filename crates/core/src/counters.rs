//! Operation counters: machine-independent work accounting.
//!
//! The paper's arguments about overtabulation vs. exact tabulation are
//! statements about *how many subproblems are visited*, independent of the
//! machine. [`Counters`] records those quantities so tests and the
//! overtabulation ablation can assert them exactly.

use std::ops::AddAssign;

/// Work counters accumulated by an MCOS algorithm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Compressed subproblems (slice cells) tabulated.
    pub cells: u64,
    /// Slices tabulated (parent + child slices).
    pub slices: u64,
    /// Memoization lookups that found a value (SRNA1 only; SRNA2 performs
    /// no conditional lookups by design).
    pub memo_hits: u64,
    /// Memoization lookups that missed and triggered a spawn (SRNA1 only).
    pub memo_misses: u64,
    /// Maximum recursion depth observed when spawning child slices
    /// (SRNA1; the paper proves this never exceeds 1).
    pub max_spawn_depth: u64,
    /// Entries read out of a settled snapshot instead of the live table
    /// (wavefront backend; 0 for the sequential algorithms).
    pub settled_reads: u64,
    /// Largest single-slice cell count tabulated — the granularity
    /// ceiling that bounds how well any column distribution can balance.
    pub max_cells_per_slice: u64,
}

impl Counters {
    /// Total memo lookups (hits + misses).
    pub fn memo_lookups(&self) -> u64 {
        self.memo_hits + self.memo_misses
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.cells += rhs.cells;
        self.slices += rhs.slices;
        self.memo_hits += rhs.memo_hits;
        self.memo_misses += rhs.memo_misses;
        self.max_spawn_depth = self.max_spawn_depth.max(rhs.max_spawn_depth);
        self.settled_reads += rhs.settled_reads;
        self.max_cells_per_slice = self.max_cells_per_slice.max(rhs.max_cells_per_slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Counters {
            cells: 10,
            slices: 1,
            memo_hits: 2,
            memo_misses: 3,
            max_spawn_depth: 1,
            settled_reads: 4,
            max_cells_per_slice: 9,
        };
        a += Counters {
            cells: 5,
            slices: 2,
            memo_hits: 1,
            memo_misses: 0,
            max_spawn_depth: 3,
            settled_reads: 6,
            max_cells_per_slice: 7,
        };
        assert_eq!(a.cells, 15);
        assert_eq!(a.slices, 3);
        assert_eq!(a.memo_lookups(), 6);
        assert_eq!(a.max_spawn_depth, 3, "depth takes the max, not the sum");
        assert_eq!(a.settled_reads, 10);
        assert_eq!(a.max_cells_per_slice, 9, "cells/slice takes the max");
    }
}

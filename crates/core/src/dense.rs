//! Paper-faithful *dense positional* implementations of SRNA1 and SRNA2.
//!
//! The paper's C implementations tabulate slices over **positions**: a
//! slice for the window `[i1, j1] × [i2, j2]` is a dense
//! `(width × width)` array, allocated on entry and deallocated on exit
//! (Algorithms 1–2 say so explicitly), and the memoization table `M` is
//! the position-indexed `n × m` table of Figure 5, consulted through a
//! lookup routine that returns `KEY_NOT_FOUND` for absent entries.
//!
//! These are the implementations whose measured behaviour the paper's
//! Tables I–III describe; this module transcribes them so the
//! reproduction can compare like with like:
//!
//! * [`srna1`] — recursion + conditional lookup in the innermost loop
//!   (the overhead SRNA2 was designed to remove);
//! * [`srna2`] — the two-stage variant with unconditional lookups.
//!
//! The production implementations in [`crate::srna1`] / [`crate::srna2`]
//! instead tabulate over the compressed arc-endpoint grid, which makes
//! both algorithms far faster and shrinks the SRNA1/SRNA2 gap — see
//! `EXPERIMENTS.md` for the measured comparison.

use rna_structure::ArcStructure;

/// Sentinel returned by the SRNA1 memo lookup for absent entries.
pub const KEY_NOT_FOUND: u32 = u32::MAX;

/// Result of a dense run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseOutcome {
    /// The MCOS score.
    pub score: u32,
    /// Positional subproblems tabulated (slice cells).
    pub cells: u64,
    /// Slices tabulated (allocations performed).
    pub slices: u64,
}

/// The paper's memo lookup routine: out-of-line, returns
/// [`KEY_NOT_FOUND`] when the entry has not been memoized.
#[inline(never)]
fn memo_lookup(memo: &[u32], cols: usize, i1: u32, i2: u32) -> u32 {
    memo[i1 as usize * cols + i2 as usize]
}

struct Ctx<'a> {
    s1: &'a ArcStructure,
    s2: &'a ArcStructure,
    /// Position-indexed `n × m` memo table (Figure 5): entry `(i1, i2)`
    /// is the final value of `slice_{i1,i2}`.
    memo: Vec<u32>,
    cols: usize,
    cells: u64,
    slices: u64,
}

impl Ctx<'_> {
    /// Algorithm 1: dense tabulation of the slice over the inclusive
    /// windows `[i1, j1] × [i2, j2]`, spawning child slices recursively
    /// on memo misses. Empty windows (`j < i`) return 0.
    fn srna1_slice(&mut self, i1: u32, j1: u32, i2: u32, j2: u32) -> u32 {
        if j1 < i1 || j2 < i2 {
            return 0;
        }
        let w1 = (j1 - i1 + 1) as usize;
        let w2 = (j2 - i2 + 1) as usize;
        self.slices += 1;
        self.cells += (w1 * w2) as u64;
        // "Allocate memory for slice_{i1,i2}" — a fresh dense array per
        // spawn, exactly as the pseudocode prescribes.
        let width = w2 + 1;
        let mut t = vec![0u32; (w1 + 1) * width];
        for x in i1..=j1 {
            let xr = (x - i1 + 1) as usize;
            let arc1 = self
                .s1
                .arc_ending_at(x)
                .filter(|&k| self.s1.arc(k).left >= i1);
            for y in i2..=j2 {
                let yr = (y - i2 + 1) as usize;
                let mut v = t[(xr - 1) * width + yr].max(t[xr * width + yr - 1]);
                if let Some(k1) = arc1 {
                    if let Some(k2) = self
                        .s2
                        .arc_ending_at(y)
                        .filter(|&k| self.s2.arc(k).left >= i2)
                    {
                        let l1 = self.s1.arc(k1).left;
                        let l2 = self.s2.arc(k2).left;
                        let d1 = t[(l1 - i1) as usize * width + (l2 - i2) as usize];
                        // The SRNA1 signature: conditional lookup with
                        // spawn-on-miss inside the innermost loop.
                        let mut d2 = memo_lookup(&self.memo, self.cols, l1 + 1, l2 + 1);
                        if d2 == KEY_NOT_FOUND {
                            d2 = self.srna1_slice(
                                l1 + 1,
                                x.wrapping_sub(1),
                                l2 + 1,
                                y.wrapping_sub(1),
                            );
                            self.memo[(l1 + 1) as usize * self.cols + (l2 + 1) as usize] = d2;
                        }
                        v = v.max(1 + d1 + d2);
                    }
                }
                t[xr * width + yr] = v;
            }
        }
        t[(w1 + 1) * width - 1]
        // "Deallocate memory for slice" — `t` drops here.
    }

    /// Algorithm 2 (`TabulateSlice`): same dense loop with unconditional
    /// memo reads — every needed entry is guaranteed present.
    fn srna2_slice(&mut self, i1: u32, j1: u32, i2: u32, j2: u32) -> u32 {
        if j1 < i1 || j2 < i2 {
            return 0;
        }
        let w1 = (j1 - i1 + 1) as usize;
        let w2 = (j2 - i2 + 1) as usize;
        self.slices += 1;
        self.cells += (w1 * w2) as u64;
        let width = w2 + 1;
        let mut t = vec![0u32; (w1 + 1) * width];
        for x in i1..=j1 {
            let xr = (x - i1 + 1) as usize;
            let arc1 = self
                .s1
                .arc_ending_at(x)
                .filter(|&k| self.s1.arc(k).left >= i1);
            for y in i2..=j2 {
                let yr = (y - i2 + 1) as usize;
                let mut v = t[(xr - 1) * width + yr].max(t[xr * width + yr - 1]);
                if let Some(k1) = arc1 {
                    if let Some(k2) = self
                        .s2
                        .arc_ending_at(y)
                        .filter(|&k| self.s2.arc(k).left >= i2)
                    {
                        let l1 = self.s1.arc(k1).left;
                        let l2 = self.s2.arc(k2).left;
                        let d1 = t[(l1 - i1) as usize * width + (l2 - i2) as usize];
                        let d2 = self.memo[(l1 + 1) as usize * self.cols + (l2 + 1) as usize];
                        v = v.max(1 + d1 + d2);
                    }
                }
                t[xr * width + yr] = v;
            }
        }
        t[(w1 + 1) * width - 1]
    }
}

/// Dense SRNA1 (Algorithm 1): bottom-up parent-slice tabulation with
/// recursive spawn-on-miss, positional slices, positional memo.
pub fn srna1(s1: &ArcStructure, s2: &ArcStructure) -> DenseOutcome {
    let n = s1.len();
    let m = s2.len();
    if n == 0 || m == 0 {
        return DenseOutcome {
            score: 0,
            cells: 0,
            slices: 0,
        };
    }
    let mut ctx = Ctx {
        s1,
        s2,
        memo: vec![KEY_NOT_FOUND; n as usize * m as usize],
        cols: m as usize,
        cells: 0,
        slices: 0,
    };
    let score = ctx.srna1_slice(0, n - 1, 0, m - 1);
    DenseOutcome {
        score,
        cells: ctx.cells,
        slices: ctx.slices,
    }
}

/// Dense SRNA2 (Algorithms 2–3): stage one tabulates the child slice of
/// every arc pair by increasing right endpoints; stage two tabulates the
/// parent slice.
pub fn srna2(s1: &ArcStructure, s2: &ArcStructure) -> DenseOutcome {
    let n = s1.len();
    let m = s2.len();
    if n == 0 || m == 0 {
        return DenseOutcome {
            score: 0,
            cells: 0,
            slices: 0,
        };
    }
    let mut ctx = Ctx {
        s1,
        s2,
        memo: vec![0; n as usize * m as usize],
        cols: m as usize,
        cells: 0,
        slices: 0,
    };
    // Stage one.
    for k1 in 0..s1.num_arcs() {
        let a1 = s1.arc(k1);
        for k2 in 0..s2.num_arcs() {
            let a2 = s2.arc(k2);
            let v = ctx.srna2_slice(a1.left + 1, a1.right - 1, a2.left + 1, a2.right - 1);
            ctx.memo[(a1.left + 1) as usize * ctx.cols + (a2.left + 1) as usize] = v;
        }
    }
    // Stage two.
    let score = ctx.srna2_slice(0, n - 1, 0, m - 1);
    DenseOutcome {
        score,
        cells: ctx.cells,
        slices: ctx.slices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srna2 as compressed;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn dense_variants_agree_with_compressed() {
        for seed in 0..20 {
            let s1 = generate::random_structure(48, 0.9, seed);
            let s2 = generate::random_structure(40, 0.8, seed + 900);
            let reference = compressed::run(&s1, &s2).score;
            assert_eq!(srna1(&s1, &s2).score, reference, "seed {seed} srna1");
            assert_eq!(srna2(&s1, &s2).score, reference, "seed {seed} srna2");
        }
    }

    #[test]
    fn dense_pair_tabulate_identical_cells() {
        // Both dense variants materialize the same slices (every arc pair
        // plus the parent), hence identical positional cell counts.
        let s = generate::worst_case_nested(16);
        let a = srna1(&s, &s);
        let b = srna2(&s, &s);
        assert_eq!(a.score, b.score);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.slices, b.slices);
    }

    #[test]
    fn dense_visits_more_cells_than_compressed_on_sparse_inputs() {
        let s = generate::rrna_like(
            &generate::RrnaConfig {
                len: 200,
                arcs: 30,
                mean_stem: 5,
                nest_bias: 0.5,
            },
            3,
        );
        let dense = srna2(&s, &s);
        let comp = compressed::run(&s, &s);
        assert_eq!(dense.score, comp.score);
        assert!(
            dense.cells > 5 * comp.counters.cells,
            "dense {} vs compressed {}",
            dense.cells,
            comp.counters.cells
        );
    }

    #[test]
    fn dense_handles_edge_cases() {
        let e = rna_structure::ArcStructure::unpaired(0);
        let u = rna_structure::ArcStructure::unpaired(6);
        let h = dot_bracket::parse("(.)").unwrap();
        for f in [srna1, srna2] {
            assert_eq!(f(&e, &h).score, 0);
            assert_eq!(f(&u, &h).score, 0);
            assert_eq!(f(&h, &h).score, 1);
        }
    }

    #[test]
    fn paper_example_dense() {
        let s1 = dot_bracket::parse("(((...)))((...))").unwrap();
        let s2 = dot_bracket::parse("((...))(((...)))").unwrap();
        assert_eq!(srna1(&s1, &s2).score, 4);
        assert_eq!(srna2(&s1, &s2).score, 4);
    }
}

//! DOT exports of the dependency structures illustrated in the paper.
//!
//! * [`subproblem_graph_dot`] — the four-dimensional subproblem dependency
//!   graph unfolded top-down from the root (Figure 3): solid edges for the
//!   static dependencies `s₁`/`s₂`, dashed edges for the dynamic
//!   dependencies `d₁`/`d₂` triggered by matched arcs.
//! * [`slice_graph_dot`] — the memoization-table dependency graph over
//!   child slices (Figures 4 and 6): node `(k1, k2)` is the slice spawned
//!   by matching arc `k1` of `S₁` with arc `k2` of `S₂`; a dashed edge
//!   points to each slice it looks up.
//! * [`slice_levels_dot`] — the same slice graph with nodes colored and
//!   ranked by their wavefront scheduling level
//!   `max(depth₁(k1), depth₂(k2))`; every dashed edge points from a
//!   higher level to a strictly lower one, which is the visual form of
//!   the wavefront correctness argument.
//!
//! These are illustrations — use small structures, or the graphs become
//! unreadable (the subproblem export refuses structures beyond a small
//! size limit).

use std::collections::HashSet;
use std::fmt::Write as _;

use rna_structure::ArcStructure;

use crate::preprocess::Preprocessed;

/// Maximum positions per structure accepted by [`subproblem_graph_dot`].
pub const SUBPROBLEM_GRAPH_MAX_LEN: u32 = 16;

/// Exports the top-down subproblem dependency graph as DOT (Figure 3
/// style). Nodes are `(i1, j1, i2, j2)` windows (inclusive bounds, with
/// `j = i-1` rendering as an empty window that is omitted); edges follow
/// the exact top-down unfolding, so the graph is the *exact tabulation*.
///
/// # Panics
///
/// Panics if either structure exceeds [`SUBPROBLEM_GRAPH_MAX_LEN`].
pub fn subproblem_graph_dot(s1: &ArcStructure, s2: &ArcStructure) -> String {
    assert!(
        s1.len() <= SUBPROBLEM_GRAPH_MAX_LEN && s2.len() <= SUBPROBLEM_GRAPH_MAX_LEN,
        "subproblem graphs are illustrations; max {SUBPROBLEM_GRAPH_MAX_LEN} positions"
    );
    let mut dot = String::from("digraph subproblems {\n  node [shape=box, fontsize=10];\n");
    let mut seen: HashSet<(u32, u32, u32, u32)> = HashSet::new();
    // Windows with exclusive ends to avoid signed arithmetic.
    fn node_name(w: (u32, u32, u32, u32)) -> String {
        format!(
            "\"({},{},{},{})\"",
            w.0,
            w.1 as i64 - 1,
            w.2,
            w.3 as i64 - 1
        )
    }
    fn visit(
        s1: &ArcStructure,
        s2: &ArcStructure,
        w: (u32, u32, u32, u32),
        seen: &mut HashSet<(u32, u32, u32, u32)>,
        dot: &mut String,
    ) {
        let (i1, j1, i2, j2) = w;
        if j1 <= i1 || j2 <= i2 || !seen.insert(w) {
            return;
        }
        let x = j1 - 1;
        let y = j2 - 1;
        // Static dependencies.
        for child in [(i1, j1 - 1, i2, j2), (i1, j1, i2, j2 - 1)] {
            if child.1 > child.0 && child.3 > child.2 {
                let _ = writeln!(dot, "  {} -> {};", node_name(w), node_name(child));
                visit(s1, s2, child, seen, dot);
            }
        }
        // Dynamic dependencies on a matched arc.
        let a1 = s1.arc_ending_at(x).filter(|&k| s1.arc(k).left >= i1);
        let a2 = s2.arc_ending_at(y).filter(|&k| s2.arc(k).left >= i2);
        if let (Some(k1), Some(k2)) = (a1, a2) {
            let l1 = s1.arc(k1).left;
            let l2 = s2.arc(k2).left;
            for child in [(i1, l1, i2, l2), (l1 + 1, x, l2 + 1, y)] {
                if child.1 > child.0 && child.3 > child.2 {
                    let _ = writeln!(
                        dot,
                        "  {} -> {} [style=dashed];",
                        node_name(w),
                        node_name(child)
                    );
                    visit(s1, s2, child, seen, dot);
                }
            }
        }
    }
    visit(s1, s2, (0, s1.len(), 0, s2.len()), &mut seen, &mut dot);
    dot.push_str("}\n");
    dot
}

/// Exports the child-slice dependency graph as DOT (Figures 4/6 style):
/// one node per spawned slice (arc pair with non-empty child windows plus
/// the parent), dashed edges to the slices whose memoized values it reads.
pub fn slice_graph_dot(s1: &ArcStructure, s2: &ArcStructure) -> String {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let mut dot = String::from("digraph slices {\n  node [shape=ellipse, fontsize=10];\n");
    let _ = writeln!(dot, "  parent [label=\"slice(0,0)\", shape=doubleoctagon];");

    // Every arc pair is a slice; it reads the memo entry of every arc pair
    // strictly inside its windows.
    for k1 in 0..p1.num_arcs() {
        let (lo1, hi1) = p1.under_range[k1 as usize];
        for k2 in 0..p2.num_arcs() {
            let (lo2, hi2) = p2.under_range[k2 as usize];
            let name = format!("\"s{k1}_{k2}\"");
            let a1 = s1.arc(k1);
            let a2 = s2.arc(k2);
            let _ = writeln!(
                dot,
                "  {name} [label=\"slice({},{})\\narcs {a1}x{a2}\"];",
                a1.left + 1,
                a2.left + 1
            );
            for c1 in lo1..hi1 {
                for c2 in lo2..hi2 {
                    let _ = writeln!(dot, "  {name} -> \"s{c1}_{c2}\" [style=dashed];");
                }
            }
        }
    }
    // Parent reads every arc pair.
    for k1 in 0..p1.num_arcs() {
        for k2 in 0..p2.num_arcs() {
            let _ = writeln!(dot, "  parent -> \"s{k1}_{k2}\" [style=dashed];");
        }
    }
    dot.push_str("}\n");
    dot
}

/// Exports the child-slice dependency graph colored by wavefront
/// scheduling level: slice `(k1, k2)` is assigned level
/// `max(depth₁(k1), depth₂(k2))`, all slices of one level share a fill
/// color and a `rank=same` row, and (as in [`slice_graph_dot`]) dashed
/// edges point to the slices whose memoized values it reads. Because a
/// slice only reads strictly nested arc pairs, every edge crosses from
/// a higher rank to a strictly lower one.
pub fn slice_levels_dot(s1: &ArcStructure, s2: &ArcStructure) -> String {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    // A small qualitative palette, cycled for deep structures.
    const PALETTE: [&str; 6] = [
        "#c6dbef", "#9ecae1", "#6baed6", "#4292c6", "#2171b5", "#08519c",
    ];
    let mut dot = String::from(
        "digraph slice_levels {\n  rankdir=BT;\n  node [shape=ellipse, fontsize=10, style=filled];\n",
    );

    let max_level = match (p1.max_depth(), p2.max_depth()) {
        (Some(d1), Some(d2)) => d1.max(d2),
        _ => {
            // No arc pairs: just the (empty-windowed) parent.
            dot.push_str("  parent [label=\"slice(0,0)\", shape=doubleoctagon, style=solid];\n}\n");
            return dot;
        }
    };

    // One rank=same cluster per level so the wavefronts render as rows.
    for level in 0..=max_level {
        let _ = write!(dot, "  {{ rank=same;");
        for k1 in 0..p1.num_arcs() {
            for k2 in 0..p2.num_arcs() {
                if p1.level_of(k1).max(p2.level_of(k2)) == level {
                    let _ = write!(dot, " \"s{k1}_{k2}\";");
                }
            }
        }
        dot.push_str(" }\n");
    }

    for k1 in 0..p1.num_arcs() {
        let (lo1, hi1) = p1.under_range[k1 as usize];
        for k2 in 0..p2.num_arcs() {
            let (lo2, hi2) = p2.under_range[k2 as usize];
            let level = p1.level_of(k1).max(p2.level_of(k2));
            let color = PALETTE[level as usize % PALETTE.len()];
            let _ = writeln!(
                dot,
                "  \"s{k1}_{k2}\" [label=\"slice {k1},{k2}\\nlevel {level}\", fillcolor=\"{color}\"];"
            );
            for c1 in lo1..hi1 {
                for c2 in lo2..hi2 {
                    debug_assert!(
                        p1.level_of(c1).max(p2.level_of(c2)) < level,
                        "dependency edge must drop a level"
                    );
                    let _ = writeln!(dot, "  \"s{k1}_{k2}\" -> \"s{c1}_{c2}\" [style=dashed];");
                }
            }
        }
    }
    // The parent slice sits above the deepest wavefront.
    let _ = writeln!(
        dot,
        "  parent [label=\"parent\\nlevel {}\", shape=doubleoctagon, style=solid];",
        max_level + 1
    );
    for k1 in 0..p1.num_arcs() {
        for k2 in 0..p2.num_arcs() {
            let _ = writeln!(dot, "  parent -> \"s{k1}_{k2}\" [style=dashed];");
        }
    }
    dot.push_str("}\n");
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;

    #[test]
    fn subproblem_graph_contains_root_and_dashed_edges() {
        // The paper's Figure 3 input: sequence of 5 positions with arcs
        // (0,4) and (1,3) — self-comparison.
        let s = dot_bracket::parse("((.))").unwrap();
        let dot = subproblem_graph_dot(&s, &s);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"(0,4,0,4)\""), "root node present");
        assert!(dot.contains("style=dashed"), "dynamic edges present");
    }

    #[test]
    fn subproblem_graph_is_exact() {
        // A structure with no arcs unfolds only along static edges and
        // never emits dashed edges.
        let s = dot_bracket::parse("....").unwrap();
        let dot = subproblem_graph_dot(&s, &s);
        assert!(!dot.contains("dashed"));
    }

    #[test]
    #[should_panic(expected = "illustrations")]
    fn subproblem_graph_rejects_large_inputs() {
        let s = rna_structure::generate::worst_case_nested(20);
        let _ = subproblem_graph_dot(&s, &s);
    }

    #[test]
    fn slice_graph_shape() {
        let s = dot_bracket::parse("(((.)))").unwrap();
        let dot = slice_graph_dot(&s, &s);
        // 3x3 arc pairs + parent.
        assert_eq!(dot.matches("label=\"slice(").count(), 9 + 1);
        // Parent reads all 9.
        assert_eq!(dot.matches("parent -> ").count(), 9);
    }

    #[test]
    fn slice_graph_edges_follow_nesting() {
        let s = dot_bracket::parse("((.))").unwrap();
        let dot = slice_graph_dot(&s, &s);
        // Outer pair (1,1) reads inner pair (0,0).
        assert!(dot.contains("\"s1_1\" -> \"s0_0\""));
        // Inner pair reads nothing.
        assert!(!dot.contains("\"s0_0\" -> "));
    }

    #[test]
    fn slice_levels_ranks_by_depth() {
        // ((..)(..)) self-compared: hairpins at level 0, outer arc pairs
        // pulled to level 1 whenever either side is the outer arc.
        let s = dot_bracket::parse("((..)(..))").unwrap();
        let dot = slice_levels_dot(&s, &s);
        assert!(dot.contains("\"s0_0\" [label=\"slice 0,0\\nlevel 0\""));
        assert!(dot.contains("\"s2_0\" [label=\"slice 2,0\\nlevel 1\""));
        assert!(dot.contains("\"s2_2\" [label=\"slice 2,2\\nlevel 1\""));
        // Two wavefront rows plus the parent above them.
        assert_eq!(dot.matches("rank=same").count(), 2);
        assert!(dot.contains("parent [label=\"parent\\nlevel 2\""));
    }

    #[test]
    fn slice_levels_handles_arcless_structures() {
        let s = dot_bracket::parse("....").unwrap();
        let dot = slice_levels_dot(&s, &s);
        assert!(dot.contains("parent"));
        assert!(!dot.contains("rank=same"));
    }
}

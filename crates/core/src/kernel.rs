//! Pluggable slice-tabulation kernels: interchangeable inner loops for
//! the compressed-grid recurrence.
//!
//! The engine work (schedules × stores × distributions) optimized
//! *synchronization*; on compute-bound shapes every backend bottlenecks
//! on the same scalar inner loop. This module factors that loop into a
//! policy of its own — a [`SliceKernel`] — mirroring the engine's
//! policy style, with three implementations:
//!
//! * [`Scalar`] — the row-hoisted reference loop, byte-for-byte the
//!   arithmetic of [`slice::tabulate_with_rows`](crate::slice::tabulate_with_rows);
//! * [`Tiled`] — a cache-tiled two-phase sweep whose data-parallel
//!   phase autovectorizes (and, under the `simd` feature, is written in
//!   explicit 8-lane blocks with a log-step prefix-max);
//! * [`FourRussians`] — a prototype of the Frid–Gusfield-style block
//!   precomputation (arXiv:1307.7820): the running-max scan is replaced
//!   by a difference-encoded table lookup over 4-column blocks.
//!
//! # Why the recurrence splits into two phases
//!
//! For a fixed row `p` the compressed-grid recurrence is
//!
//! ```text
//! out[q+1] = max( prev[q+1], out[q], 1 + d1[q] + d2[q] )
//! ```
//!
//! where `d1[q] = grid[r1][r2[q]]`. The key structural fact is that
//! `r1 <= p`: `rank_before_left` counts window arcs ending *before* the
//! current arc opens, and every such arc has a strictly smaller index.
//! So the `d1` gather reads only **completed** rows, never the row being
//! written. The only loop-carried dependency left is the running max
//! `out[q]`, a max-plus *prefix scan*. Splitting the row:
//!
//! 1. **candidate phase** (data-parallel, vectorizable):
//!    `m[q] = max(prev[q+1], 1 + d1[r2[q]] + d2[q])`
//! 2. **scan phase** (prefix max with carry 0 at the row start, since
//!    grid column 0 is identically 0):
//!    `out[q+1] = max(out[q], m[q])`
//!
//! `max` is associative and all values are exact integers, so every
//! refactoring of the scan — serial, 8-lane log-step, or table-driven —
//! is *bit-identical* to the reference loop, not merely approximately
//! equal. The equivalence suite asserts exactly that.
//!
//! # The Four-Russians block scheme
//!
//! Along a row of the compressed grid the value can rise by at most 1
//! per column (each column adds one arc of `S₂` to the window, and any
//! matching uses that arc at most once). Hence within a 4-column block
//! starting from carry `c = out[q₀]`, each candidate satisfies
//! `m[q₀+i] <= c + i + 1`, so the *differences* `δᵢ = m[q₀+i] ⊖ c` live
//! in `{0..4}` — a 5-letter alphabet. All `5⁴ = 625` blocks are
//! precomputed once into a table mapping the difference pattern to its
//! packed prefix maxima, turning 4 sequential max steps into one lookup.
//! This prototype tables only the scan phase — the candidate phase is
//! still Θ(cells) — so it demonstrates the encoding, not the full
//! Frid–Gusfield submatrix speedup; see DESIGN.md for the limits.

use std::sync::OnceLock;

use crate::preprocess::Preprocessed;
use crate::slice::ArcRange;

/// Reusable scratch for one kernel invocation: the compressed grid plus
/// the per-row buffers every kernel shares. One per worker/driver,
/// reused across slices to avoid per-slice allocation.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// The `(a+1) × (b+1)` compressed grid, row-major.
    grid: Vec<u32>,
    /// Row-hoisted `d₂` values (`d2_row[q]` for arc pair `(g1, lo2+q)`).
    d2_row: Vec<u32>,
    /// Slice-hoisted `r2` column ranks (`q`-only, so computed once per
    /// slice rather than once per cell).
    r2_row: Vec<u32>,
    /// Candidate-phase buffer for the two-phase kernels.
    m_row: Vec<u32>,
}

impl KernelScratch {
    /// Bytes currently held by the scratch buffers (capacity, not
    /// length: reuse keeps the buffers at their high-water capacity, so
    /// this is the worker's scratch high-water mark).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<u32>()
            * (self.grid.capacity()
                + self.d2_row.capacity()
                + self.r2_row.capacity()
                + self.m_row.capacity())
    }
}

/// One slice-tabulation strategy: the inner loop of the MCOS recurrence
/// over one compressed grid.
///
/// Contract: `tabulate` must return the value of the slice's last
/// subproblem, bit-identical to
/// [`slice::tabulate_with`](crate::slice::tabulate_with) on the same
/// ranges and `d₂` values, and must return 0 for empty windows without
/// calling `fill_d2`. `fill_d2(g1, buf)` fills `buf[q]` with the child
/// value for arc pair `(g1, lo2 + q)`, exactly as in
/// [`slice::tabulate_with_rows`](crate::slice::tabulate_with_rows).
pub trait SliceKernel: Sync {
    /// Short display name (stable; used by telemetry and bench JSON).
    fn name(&self) -> &'static str;

    /// Tabulates one slice, returning its memoizable result.
    fn tabulate(
        &self,
        p1: &Preprocessed,
        p2: &Preprocessed,
        range1: ArcRange,
        range2: ArcRange,
        scratch: &mut KernelScratch,
        fill_d2: &mut dyn FnMut(u32, &mut [u32]),
    ) -> u32;
}

/// Kernel selection, the fourth orthogonal policy axis next to the
/// engine's schedule × store × distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The row-hoisted scalar reference loop.
    Scalar,
    /// Cache-tiled two-phase sweep (SIMD-shaped under `--features simd`).
    Tiled,
    /// Four-Russians block-lookup prototype.
    FourRussians,
}

impl KernelKind {
    /// Every kernel, for sweeps.
    pub const ALL: [KernelKind; 3] = [
        KernelKind::Scalar,
        KernelKind::Tiled,
        KernelKind::FourRussians,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        self.kernel().name()
    }

    /// Parses a kernel from its name (case-insensitive; `fr` is accepted
    /// for `four-russians`). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<KernelKind> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "tiled" => Some(KernelKind::Tiled),
            "four-russians" | "fr" => Some(KernelKind::FourRussians),
            _ => None,
        }
    }

    /// The kernel implementation behind this selection.
    pub fn kernel(self) -> &'static dyn SliceKernel {
        match self {
            KernelKind::Scalar => &Scalar,
            KernelKind::Tiled => &Tiled,
            KernelKind::FourRussians => &FourRussians,
        }
    }
}

impl Default for KernelKind {
    /// [`KernelKind::Tiled`]: the equivalence suite proves it
    /// bit-identical to the reference, so the fast path is the default.
    fn default() -> Self {
        KernelKind::Tiled
    }
}

/// One row's working set, with the completed-rows region already split
/// off so kernels get disjoint, bounds-checked slices.
struct Row<'a> {
    /// The row being written, `width = b + 1` long; `out[0]` is the
    /// always-zero grid column 0.
    out: &'a mut [u32],
    /// The previous row (`prev[q+1]` is the `s₁` dependency).
    prev: &'a [u32],
    /// The completed row `r1` the `d₁` gather reads from.
    d1: &'a [u32],
    /// Row-hoisted `d₂` values, `b` long.
    d2: &'a [u32],
    /// Slice-hoisted `r2` ranks, `b` long.
    r2: &'a [u32],
    /// Candidate buffer, `b` long (scratch for the two-phase kernels).
    m: &'a mut [u32],
    /// The window-relative rank row `d1` was sliced from. Grid row 0 is
    /// identically zero (it is initialized and never written), so
    /// `r1 == 0` means the `d1` gather is a gather of zeros and the
    /// candidate arithmetic can drop it — bit-identically.
    r1: usize,
}

/// Shared slice frame: sizes the scratch buffers, precomputes the `r2`
/// rank row once per slice (the satellite hoist, applied to every
/// kernel), and walks the rows calling `row_fn` with disjoint views.
/// Returns the slice result, or 0 for empty windows without calling
/// `fill_d2`.
fn drive(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: ArcRange,
    range2: ArcRange,
    scratch: &mut KernelScratch,
    fill_d2: &mut dyn FnMut(u32, &mut [u32]),
    mut row_fn: impl FnMut(Row<'_>),
) -> u32 {
    let (lo1, hi1) = range1;
    let (lo2, hi2) = range2;
    let a = (hi1 - lo1) as usize;
    let b = (hi2 - lo2) as usize;
    if a == 0 || b == 0 {
        return 0;
    }
    let width = b + 1;
    scratch.grid.clear();
    scratch.grid.resize((a + 1) * width, 0);
    scratch.d2_row.clear();
    scratch.d2_row.resize(b, 0);
    scratch.m_row.clear();
    scratch.m_row.resize(b, 0);
    scratch.r2_row.clear();
    scratch
        .r2_row
        .extend((0..b).map(|q| p2.rank_before_left[lo2 as usize + q].max(lo2) - lo2));

    for p in 0..a {
        let g1 = lo1 + p as u32;
        fill_d2(g1, &mut scratch.d2_row);
        let r1 = (p1.rank_before_left[g1 as usize].max(lo1) - lo1) as usize;
        // Rows 0..=p are complete; row p+1 is being written. r1 <= p
        // always (arcs ending before this arc opens have smaller
        // indices), so the d1 gather stays inside `done`.
        let (done, rest) = scratch.grid.split_at_mut((p + 1) * width);
        row_fn(Row {
            out: &mut rest[..width],
            prev: &done[p * width..],
            d1: &done[r1 * width..(r1 + 1) * width],
            d2: &scratch.d2_row,
            r2: &scratch.r2_row,
            m: &mut scratch.m_row,
            r1,
        });
    }
    scratch.grid[(a + 1) * width - 1]
}

/// Candidate phase shared by the two-phase kernels:
/// `m[q] = max(prev[q+1], 1 + d1[r2[q]] + d2[q])` over one column block.
/// Data-parallel — no loop-carried dependency. The `d1` gather runs as
/// its own pass (writing into `m`) so it cannot stop the arithmetic
/// pass from vectorizing: the second loop is pure lane-wise add/max,
/// which LLVM turns into packed `paddd`/`pmaxud`.
#[inline]
fn candidates(row: &mut Row<'_>, q0: usize, len: usize) {
    let m = &mut row.m[q0..q0 + len];
    let prev = &row.prev[q0 + 1..q0 + 1 + len];
    let d2 = &row.d2[q0..q0 + len];
    let r2 = &row.r2[q0..q0 + len];
    if row.r1 == 0 {
        // d1 is grid row 0 — all zeros — so the gather drops out.
        for i in 0..len {
            m[i] = prev[i].max(1 + d2[i]);
        }
        return;
    }
    for i in 0..len {
        m[i] = row.d1[r2[i] as usize];
    }
    for i in 0..len {
        m[i] = prev[i].max(1 + m[i] + d2[i]);
    }
}

// POLICY: Scalar is the reference inner loop — the exact arithmetic of
// `slice::tabulate_with_rows`, one fused candidate+max step per cell.
// Every other kernel is judged bit-identical against it.
impl SliceKernel for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn tabulate(
        &self,
        p1: &Preprocessed,
        p2: &Preprocessed,
        range1: ArcRange,
        range2: ArcRange,
        scratch: &mut KernelScratch,
        fill_d2: &mut dyn FnMut(u32, &mut [u32]),
    ) -> u32 {
        drive(p1, p2, range1, range2, scratch, fill_d2, |mut row| {
            fused_row(&mut row);
        })
    }
}

/// The row-hoisted scalar reference loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scalar;

/// Columns per cache tile: candidates for one tile are produced and
/// scanned while still resident in L1.
const TILE: usize = 512;

/// Rows narrower than this run the fused scalar loop instead: the
/// two-phase split (candidate buffer traffic + a second pass) only
/// amortizes once a row is a couple of vectors wide. Both paths are
/// bit-identical, so the cutover is purely a throughput choice.
const NARROW: usize = 16;

// POLICY: Tiled splits each row into a data-parallel candidate phase and
// a prefix-max scan with a carry chained across tiles — bit-identical to
// Scalar because max is associative; simd only reshapes the scan.
impl SliceKernel for Tiled {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn tabulate(
        &self,
        p1: &Preprocessed,
        p2: &Preprocessed,
        range1: ArcRange,
        range2: ArcRange,
        scratch: &mut KernelScratch,
        fill_d2: &mut dyn FnMut(u32, &mut [u32]),
    ) -> u32 {
        drive(p1, p2, range1, range2, scratch, fill_d2, |mut row| {
            let b = row.d2.len();
            if b < NARROW {
                fused_row(&mut row);
                return;
            }
            // Grid column 0 is identically 0, so the row scan starts
            // with carry 0.
            let mut carry = 0u32;
            let mut q0 = 0;
            while q0 < b {
                let len = TILE.min(b - q0);
                candidates(&mut row, q0, len);
                carry = scan(
                    &row.m[q0..q0 + len],
                    &mut row.out[q0 + 1..q0 + 1 + len],
                    carry,
                );
                q0 += len;
            }
        })
    }
}

/// The fused candidate+max step, one cell at a time — the Scalar loop
/// as a helper, for the narrow-row path of the tiled kernel.
#[inline]
fn fused_row(row: &mut Row<'_>) {
    let b = row.d2.len();
    for q in 0..b {
        let s = row.prev[q + 1].max(row.out[q]);
        let d1 = row.d1[row.r2[q] as usize];
        row.out[q + 1] = s.max(1 + d1 + row.d2[q]);
    }
}

/// Cache-tiled two-phase kernel (column blocks, carried prefix max).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tiled;

/// Prefix-max scan: `out[i] = max(carry, m[0..=i])`; returns the carry
/// for the next tile. Serial formulation — the loop-carried max is what
/// the compiler sees, which is the autovectorization-friendly fallback
/// the `simd` feature replaces.
#[cfg(not(feature = "simd"))]
#[inline]
fn scan(m: &[u32], out: &mut [u32], mut carry: u32) -> u32 {
    for (o, &v) in out.iter_mut().zip(m) {
        carry = carry.max(v);
        *o = carry;
    }
    carry
}

/// Prefix-max scan in explicit 8-lane blocks: a log-step
/// (shift-and-max) prefix network per block, then a carry broadcast.
/// rustc stable has no `std::simd`, so the lanes are fixed-width arrays
/// in the exact shape LLVM lowers to vector shuffles and `pmaxud`;
/// semantically it is the same associative max-reduction, so results
/// are bit-identical to the serial scan.
#[cfg(feature = "simd")]
#[inline]
fn scan(m: &[u32], out: &mut [u32], mut carry: u32) -> u32 {
    const LANES: usize = 8;
    let blocks = m.len() / LANES;
    for blk in 0..blocks {
        let base = blk * LANES;
        let mut v = [0u32; LANES];
        v.copy_from_slice(&m[base..base + LANES]);
        // Hillis-Steele prefix max: after step s, lane i holds
        // max(m[i-2^s+1 ..= i]) clipped at the block start.
        let mut sh = 1;
        while sh < LANES {
            let mut shifted = [0u32; LANES];
            shifted[sh..].copy_from_slice(&v[..LANES - sh]);
            for (lane, s) in v.iter_mut().zip(shifted) {
                *lane = (*lane).max(s);
            }
            sh <<= 1;
        }
        for lane in &mut v {
            *lane = (*lane).max(carry);
        }
        out[base..base + LANES].copy_from_slice(&v);
        carry = v[LANES - 1];
    }
    for i in blocks * LANES..m.len() {
        carry = carry.max(m[i]);
        out[i] = carry;
    }
    carry
}

/// Four-Russians block width (columns per table lookup).
const FR_K: usize = 4;
/// Difference alphabet size: within a block, `m[q0+i] - out[q0]` is at
/// most `i + 1 <= FR_K` (the per-column increment bound), so deltas
/// live in `0..=FR_K`.
const FR_RADIX: usize = FR_K + 1;

/// The precomputed block table: for each of the `RADIX^K = 625`
/// difference patterns, the packed prefix maxima (4 × 3 bits; each
/// prefix max is at most 4, so 3 bits suffice). Built once per process.
fn fr_table() -> &'static [u16] {
    static TABLE: OnceLock<Vec<u16>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = vec![0u16; FR_RADIX.pow(FR_K as u32)];
        for (code, packed) in table.iter_mut().enumerate() {
            let mut rest = code;
            let mut running = 0u16;
            for i in 0..FR_K {
                running = running.max((rest % FR_RADIX) as u16);
                rest /= FR_RADIX;
                *packed |= running << (3 * i);
            }
        }
        table
    })
}

// POLICY: FourRussians replaces the scan with difference-encoded block
// lookups (arXiv:1307.7820): deltas against the block-start carry are
// bounded by the recurrence, so 4 columns become one 625-entry probe.
impl SliceKernel for FourRussians {
    fn name(&self) -> &'static str {
        "four-russians"
    }

    fn tabulate(
        &self,
        p1: &Preprocessed,
        p2: &Preprocessed,
        range1: ArcRange,
        range2: ArcRange,
        scratch: &mut KernelScratch,
        fill_d2: &mut dyn FnMut(u32, &mut [u32]),
    ) -> u32 {
        let table = fr_table();
        drive(p1, p2, range1, range2, scratch, fill_d2, |mut row| {
            let b = row.d2.len();
            candidates(&mut row, 0, b);
            let mut carry = 0u32;
            let blocks = b / FR_K;
            for blk in 0..blocks {
                let base = blk * FR_K;
                // Encode the block's deltas in base RADIX. The
                // recurrence guarantees m[base+i] <= carry + i + 1
                // (see module docs), so each delta fits the alphabet.
                let mut code = 0usize;
                for i in (0..FR_K).rev() {
                    let delta = row.m[base + i].saturating_sub(carry);
                    debug_assert!(delta as usize <= i + 1, "increment bound violated");
                    code = code * FR_RADIX + delta as usize;
                }
                let packed = table[code];
                for i in 0..FR_K {
                    row.out[base + 1 + i] = carry + u32::from((packed >> (3 * i)) & 0x7);
                }
                carry = row.out[base + FR_K];
            }
            for q in blocks * FR_K..b {
                carry = carry.max(row.m[q]);
                row.out[q + 1] = carry;
            }
        })
    }
}

/// Four-Russians block-lookup prototype.
#[derive(Debug, Clone, Copy, Default)]
pub struct FourRussians;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;
    use rna_structure::ArcStructure;

    /// Miniature SRNA2 through one kernel: every child slice bottom-up,
    /// then the parent slice.
    fn full_with_kernel(s1: &ArcStructure, s2: &ArcStructure, kind: KernelKind) -> u32 {
        let p1 = Preprocessed::build(s1);
        let p2 = Preprocessed::build(s2);
        let cols = p2.num_arcs() as usize;
        let mut memo = vec![0u32; p1.num_arcs() as usize * cols];
        let mut scratch = KernelScratch::default();
        let k = kind.kernel();
        for k1 in 0..p1.num_arcs() {
            for k2 in 0..p2.num_arcs() {
                let (lo2, hi2) = p2.under_range[k2 as usize];
                let v = k.tabulate(
                    &p1,
                    &p2,
                    p1.under_range[k1 as usize],
                    p2.under_range[k2 as usize],
                    &mut scratch,
                    &mut |g1, buf| {
                        let start = g1 as usize * cols;
                        buf.copy_from_slice(&memo[start + lo2 as usize..start + hi2 as usize]);
                    },
                );
                memo[k1 as usize * cols + k2 as usize] = v;
            }
        }
        let (lo2, hi2) = p2.full_range();
        k.tabulate(
            &p1,
            &p2,
            p1.full_range(),
            p2.full_range(),
            &mut scratch,
            &mut |g1, buf| {
                let start = g1 as usize * cols;
                buf.copy_from_slice(&memo[start + lo2 as usize..start + hi2 as usize]);
            },
        )
    }

    #[test]
    fn names_round_trip() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::from_name("FR"), Some(KernelKind::FourRussians));
        assert_eq!(KernelKind::from_name("TILED"), Some(KernelKind::Tiled));
        assert_eq!(KernelKind::from_name("avx-512"), None);
    }

    #[test]
    fn default_kernel_is_tiled() {
        assert_eq!(KernelKind::default(), KernelKind::Tiled);
    }

    #[test]
    fn empty_window_returns_zero_without_fill() {
        let s = dot_bracket::parse("(.)").unwrap();
        let p = Preprocessed::build(&s);
        let mut scratch = KernelScratch::default();
        for kind in KernelKind::ALL {
            let v = kind
                .kernel()
                .tabulate(&p, &p, (0, 0), (0, 1), &mut scratch, &mut |_, _| {
                    panic!("fill_d2 must not run for an empty window")
                });
            assert_eq!(v, 0, "{}", kind.name());
        }
    }

    #[test]
    fn every_kernel_matches_paper_example() {
        let s1 = dot_bracket::parse("(((...)))((...))").unwrap();
        let s2 = dot_bracket::parse("((...))(((...)))").unwrap();
        for kind in KernelKind::ALL {
            assert_eq!(full_with_kernel(&s1, &s2, kind), 4, "{}", kind.name());
            assert_eq!(full_with_kernel(&s1, &s1, kind), 5, "{}", kind.name());
        }
    }

    #[test]
    fn kernels_match_tabulate_with_on_random_structures() {
        for seed in 0..12 {
            let s1 = generate::random_structure(52, 0.9, seed);
            let s2 = generate::random_structure(44, 0.8, seed + 300);
            let p1 = Preprocessed::build(&s1);
            let p2 = Preprocessed::build(&s2);
            let mut grid = Vec::new();
            let reference = slice::tabulate_with(
                &p1,
                &p2,
                p1.full_range(),
                p2.full_range(),
                &mut grid,
                |_, _| 0,
            );
            let mut scratch = KernelScratch::default();
            for kind in KernelKind::ALL {
                let got = kind.kernel().tabulate(
                    &p1,
                    &p2,
                    p1.full_range(),
                    p2.full_range(),
                    &mut scratch,
                    &mut |_, buf| buf.fill(0),
                );
                assert_eq!(got, reference, "seed {seed} kernel {}", kind.name());
            }
        }
    }

    #[test]
    fn four_russians_table_is_prefix_max() {
        let table = fr_table();
        assert_eq!(table.len(), 625);
        // Spot-check: pattern (1, 0, 3, 2) -> prefix maxima 1,1,3,3.
        // Base-5 little-endian: 1 + 0*5 + 3*25 + 2*125 = 326.
        let packed = table[326];
        let pm: Vec<u16> = (0..4).map(|i| (packed >> (3 * i)) & 7).collect();
        assert_eq!(pm, vec![1, 1, 3, 3]);
    }

    #[test]
    fn scan_handles_odd_lengths() {
        // Exercise the sub-lane tail paths of the scan directly.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31] {
            let m: Vec<u32> = (0..len as u32).map(|i| (i * 7) % 13).collect();
            let mut out = vec![0u32; len];
            let carry = scan(&m, &mut out, 2);
            let mut want = 2u32;
            for (i, &v) in m.iter().enumerate() {
                want = want.max(v);
                assert_eq!(out[i], want, "len {len} i {i}");
            }
            assert_eq!(carry, want, "len {len}");
        }
    }
}

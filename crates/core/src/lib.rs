//! Maximum Common Ordered Substructure (MCOS) dynamic programming.
//!
//! This crate implements the sequential algorithms of *"Finding Common RNA
//! Secondary Structures: A Case Study on the Dynamic Parallelization of a
//! Data-driven Recurrence"* (Stewart, Aubanel & Evans, IPPS 2012):
//!
//! * the data-driven recurrence `F[i1, j1, i2, j2]` of the paper's Figure 2
//!   (a modification of Bafna et al.'s RNA similarity formulation that
//!   counts matched arcs instead of aligning sequences);
//! * **[`srna1`]** — the combined bottom-up/top-down algorithm: slices of
//!   the four-dimensional table are tabulated bottom-up, child slices are
//!   spawned recursively the first time a matched arc is encountered, and
//!   each child slice's final value is memoized (Algorithm 1);
//! * **[`srna2`]** — the two-stage refinement that eliminates the memo
//!   check and the recursion: stage one tabulates every child slice in
//!   increasing arc-endpoint order, stage two tabulates the parent slice
//!   (Algorithms 2–3). SRNA2 is the basis of the parallel algorithm PRNA
//!   (see the `mcos-parallel` crate);
//! * **[`baseline`]** — the two conventional strategies the paper contrasts
//!   with: plain top-down memoization over the 4-D subproblem space, and
//!   the overtabulating bottom-up strategy;
//! * **[`traceback`]** and **[`verify`]** — recovery of the optimal arc
//!   mapping and an independent validity checker;
//! * **[`workload`]** — the child-slice work accounting behind the paper's
//!   Figure 7 and PRNA's static load balancing;
//! * **[`weighted`]** — the general Bafna-style weighted similarity model
//!   the paper's counting formulation derives from;
//! * **[`depgraph`]** — DOT exports of the dependency structures shown in
//!   the paper's Figures 3, 4 and 6.
//!
//! # The problem
//!
//! Given two non-pseudoknot arc structures `S₁` (over `n` positions) and
//! `S₂` (over `m` positions), find the maximum number of arcs of a common
//! ordered substructure — a set of arc pairs `(a ∈ S₁, b ∈ S₂)` such that
//! the induced position mapping preserves sequence order and the
//! nested/sequential relation of every two arcs.
//!
//! # Quick example
//!
//! ```
//! use rna_structure::formats::dot_bracket;
//! use mcos_core::{mcos_score, srna2};
//!
//! // Three nested then two nested arcs vs. two nested then three nested:
//! // the optimal common substructure has 4 arcs (paper §III-B).
//! let s1 = dot_bracket::parse("(((...)))((...))").unwrap();
//! let s2 = dot_bracket::parse("((...))(((...)))").unwrap();
//! assert_eq!(mcos_score(&s1, &s2), 4);
//!
//! // Self-comparison always matches every arc.
//! assert_eq!(srna2::run(&s1, &s1).score, s1.num_arcs());
//! ```
//!
//! # Representation
//!
//! The value `F[i1, j1, i2, j2]` only increases at `(j1, j2)` coordinates
//! where matched arcs end, so each two-dimensional slice of the table is a
//! running-max grid over **arc right-endpoints** (the compressed grid).
//! Because the non-pseudoknot model forbids crossings, the arcs under any
//! arc occupy a *contiguous range* of the right-endpoint-sorted arc array
//! ([`Preprocessed::under_range`]), so a child slice is just an index
//! window — no per-slice allocation or filtering is needed. See
//! `DESIGN.md` for the full argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod counters;
pub mod dense;
pub mod depgraph;
pub mod kernel;
pub mod memo;
pub mod preprocess;
pub mod recompute;
pub mod slice;
pub mod srna1;
pub mod srna2;
pub mod trace;
pub mod traceback;
pub mod verify;
pub mod weighted;
pub mod workload;

pub use counters::Counters;
pub use kernel::{KernelKind, KernelScratch, SliceKernel};
pub use memo::MemoTable;
pub use preprocess::Preprocessed;
pub use srna2::StageTimings;

use rna_structure::ArcStructure;

/// Computes the MCOS score (number of matched arcs) of two structures with
/// the fastest sequential algorithm (SRNA2).
pub fn mcos_score(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
    srna2::run(s1, s2).score
}

//! The memoization table `M`.
//!
//! The paper stores `M` as an `n × m` position-indexed table whose row
//! `i1` and column `i2` are the interval start points of spawned child
//! slices. Because arcs never share endpoints, the meaningful entries are
//! in one-to-one correspondence with **arc pairs**: a child slice is
//! spawned at `(k1+1, k2+1)` exactly when `(k1, j1) ∈ S₁` and
//! `(k2, j2) ∈ S₂` are matched, and `k1` uniquely identifies the arc of
//! `S₁` (at most one arc starts at any position). We therefore key `M` by
//! `(arc index in S₁, arc index in S₂)`, which is the same table without
//! the all-zero rows — row `r` of this table *is* row `left(r)+1` of the
//! paper's table.

/// Sentinel meaning "not yet memoized" (used by SRNA1's conditional
/// lookup; SRNA2 initializes every entry to zero instead).
pub const NOT_FOUND: u32 = u32::MAX;

/// A dense arc-indexed memoization table: rows are arcs of `S₁`, columns
/// are arcs of `S₂`, both in increasing right-endpoint order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoTable {
    rows: u32,
    cols: u32,
    values: Vec<u32>,
}

impl MemoTable {
    /// Creates a table with every entry zero (SRNA2/PRNA convention: a
    /// lookup always returns a valid value; entries for arc pairs with
    /// empty child windows correctly stay zero).
    pub fn zeroed(rows: u32, cols: u32) -> Self {
        MemoTable {
            rows,
            cols,
            values: vec![0; rows as usize * cols as usize],
        }
    }

    /// Creates a table with every entry [`NOT_FOUND`] (SRNA1 convention:
    /// a miss triggers the spawning of the child slice).
    pub fn unset(rows: u32, cols: u32) -> Self {
        MemoTable {
            rows,
            cols,
            values: vec![NOT_FOUND; rows as usize * cols as usize],
        }
    }

    /// Number of rows (arcs of `S₁`).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (arcs of `S₂`).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Reads the entry for arc pair `(r, c)`.
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> u32 {
        self.values[r as usize * self.cols as usize + c as usize]
    }

    /// Writes the entry for arc pair `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: u32, c: u32, v: u32) {
        self.values[r as usize * self.cols as usize + c as usize] = v;
    }

    /// One full row as a slice (used by PRNA's per-row synchronization).
    #[inline]
    pub fn row(&self, r: u32) -> &[u32] {
        let w = self.cols as usize;
        &self.values[r as usize * w..(r as usize + 1) * w]
    }

    /// One full row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: u32) -> &mut [u32] {
        let w = self.cols as usize;
        &mut self.values[r as usize * w..(r as usize + 1) * w]
    }

    /// The whole table as a flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }

    /// Element-wise maximum with another table of identical shape — the
    /// shared-memory analogue of `MPI_Allreduce(MPI_MAX)` over the whole
    /// table. Used by tests to merge per-rank replicas.
    pub fn merge_max(&mut self, other: &MemoTable) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a = (*a).max(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_unset() {
        let z = MemoTable::zeroed(2, 3);
        assert_eq!(z.get(1, 2), 0);
        let u = MemoTable::unset(2, 3);
        assert_eq!(u.get(0, 0), NOT_FOUND);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = MemoTable::zeroed(3, 4);
        m.set(2, 3, 17);
        m.set(0, 0, 5);
        assert_eq!(m.get(2, 3), 17);
        assert_eq!(m.get(0, 0), 5);
        assert_eq!(m.get(1, 1), 0);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut m = MemoTable::zeroed(2, 3);
        m.set(1, 0, 7);
        m.set(1, 2, 9);
        assert_eq!(m.row(1), &[7, 0, 9]);
        m.row_mut(0).copy_from_slice(&[1, 2, 3]);
        assert_eq!(m.get(0, 1), 2);
    }

    #[test]
    fn merge_max_is_elementwise() {
        let mut a = MemoTable::zeroed(2, 2);
        let mut b = MemoTable::zeroed(2, 2);
        a.set(0, 0, 5);
        b.set(0, 0, 3);
        b.set(1, 1, 9);
        a.merge_max(&b);
        assert_eq!(a.get(0, 0), 5);
        assert_eq!(a.get(1, 1), 9);
    }

    #[test]
    fn zero_sized_tables() {
        let m = MemoTable::zeroed(0, 5);
        assert_eq!(m.as_slice().len(), 0);
    }
}

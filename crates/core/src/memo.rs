//! The memoization table `M`.
//!
//! The paper stores `M` as an `n × m` position-indexed table whose row
//! `i1` and column `i2` are the interval start points of spawned child
//! slices. Because arcs never share endpoints, the meaningful entries are
//! in one-to-one correspondence with **arc pairs**: a child slice is
//! spawned at `(k1+1, k2+1)` exactly when `(k1, j1) ∈ S₁` and
//! `(k2, j2) ∈ S₂` are matched, and `k1` uniquely identifies the arc of
//! `S₁` (at most one arc starts at any position). We therefore key `M` by
//! `(arc index in S₁, arc index in S₂)`, which is the same table without
//! the all-zero rows — row `r` of this table *is* row `left(r)+1` of the
//! paper's table.

// Model-checking builds swap in loom's instrumented atomics so the
// `tests/loom_models.rs` schedules exercise the real table code.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU32, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU32, Ordering};

/// Sentinel meaning "not yet memoized" (used by SRNA1's conditional
/// lookup; SRNA2 initializes every entry to zero instead).
pub const NOT_FOUND: u32 = u32::MAX;

/// A dense arc-indexed memoization table: rows are arcs of `S₁`, columns
/// are arcs of `S₂`, both in increasing right-endpoint order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoTable {
    rows: u32,
    cols: u32,
    values: Vec<u32>,
}

impl MemoTable {
    /// Creates a table with every entry zero (SRNA2/PRNA convention: a
    /// lookup always returns a valid value; entries for arc pairs with
    /// empty child windows correctly stay zero).
    pub fn zeroed(rows: u32, cols: u32) -> Self {
        MemoTable {
            rows,
            cols,
            values: vec![0; rows as usize * cols as usize],
        }
    }

    /// Creates a table with every entry [`NOT_FOUND`] (SRNA1 convention:
    /// a miss triggers the spawning of the child slice).
    pub fn unset(rows: u32, cols: u32) -> Self {
        MemoTable {
            rows,
            cols,
            values: vec![NOT_FOUND; rows as usize * cols as usize],
        }
    }

    /// Number of rows (arcs of `S₁`).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (arcs of `S₂`).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Reads the entry for arc pair `(r, c)`.
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> u32 {
        self.values[r as usize * self.cols as usize + c as usize]
    }

    /// Writes the entry for arc pair `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: u32, c: u32, v: u32) {
        self.values[r as usize * self.cols as usize + c as usize] = v;
    }

    /// One full row as a slice (used by PRNA's per-row synchronization).
    #[inline]
    pub fn row(&self, r: u32) -> &[u32] {
        let w = self.cols as usize;
        &self.values[r as usize * w..(r as usize + 1) * w]
    }

    /// One full row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: u32) -> &mut [u32] {
        let w = self.cols as usize;
        &mut self.values[r as usize * w..(r as usize + 1) * w]
    }

    /// The whole table as a flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }

    /// Total number of cells (`rows × cols`).
    #[inline]
    pub fn cell_count(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Bytes resident in the cell storage.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<u32>()
    }

    /// Element-wise maximum with another table of identical shape — the
    /// shared-memory analogue of `MPI_Allreduce(MPI_MAX)` over the whole
    /// table. Used by tests to merge per-rank replicas.
    pub fn merge_max(&mut self, other: &MemoTable) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a = (*a).max(*b);
        }
    }
}

/// An evictable arc-indexed memo table: rows materialize lazily on
/// first write and are deallocated once every cell in them has been
/// evicted, so the resident footprint follows the live window instead
/// of the full `a₁ × a₂` grid.
///
/// Reads of unmaterialized or evicted cells return zero — the SRNA2
/// "empty child window" convention — so an evicting store composed
/// with a recompute-on-miss policy stays bit-identical: evicted cells
/// are zeroed eagerly, which makes a forgotten recompute loud (a wrong
/// score) instead of silently reading a stale-but-correct value.
///
/// Allocation accounting is **cumulative**: `cells_allocated()` counts
/// every cell ever materialized (a row freed and later rewritten is
/// counted twice), which keeps the occupancy invariant
/// `cells_written ≤ cells_allocated` intact for windowed stores.
#[derive(Debug, Clone, Default)]
pub struct PartialMemo {
    rows: u32,
    cols: u32,
    data: Vec<Option<PartialRow>>,
    cells_allocated: u64,
    cells_resident: u64,
    cells_resident_peak: u64,
}

/// One materialized row: values plus a live-cell bitmap so repeated
/// writes to the same cell (replica publish followed by step install)
/// and repeated evictions stay idempotent in the accounting.
#[derive(Debug, Clone)]
struct PartialRow {
    vals: Box<[u32]>,
    bits: Box<[u64]>,
    live: u32,
}

impl PartialRow {
    fn new(cols: u32) -> Self {
        PartialRow {
            vals: vec![0u32; cols as usize].into_boxed_slice(),
            bits: vec![0u64; (cols as usize).div_ceil(64)].into_boxed_slice(),
            live: 0,
        }
    }

    /// Marks cell `c` live; true if it was not live before.
    #[inline]
    fn mark(&mut self, c: u32) -> bool {
        let word = &mut self.bits[(c / 64) as usize];
        let mask = 1u64 << (c % 64);
        let fresh = *word & mask == 0;
        if fresh {
            *word |= mask;
            self.live += 1;
        }
        fresh
    }

    /// Clears cell `c`; true if it was live.
    #[inline]
    fn clear(&mut self, c: u32) -> bool {
        let word = &mut self.bits[(c / 64) as usize];
        let mask = 1u64 << (c % 64);
        let hit = *word & mask != 0;
        if hit {
            *word &= !mask;
            self.live -= 1;
        }
        hit
    }
}

impl PartialMemo {
    /// Creates an empty table: no row is materialized yet.
    pub fn new(rows: u32, cols: u32) -> Self {
        PartialMemo {
            rows,
            cols,
            data: (0..rows).map(|_| None).collect(),
            cells_allocated: 0,
            cells_resident: 0,
            cells_resident_peak: 0,
        }
    }

    /// Number of rows (arcs of `S₁`).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (arcs of `S₂`).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Reads the entry for arc pair `(r, c)`; zero when the row is not
    /// materialized (never written, or fully evicted).
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> u32 {
        match &self.data[r as usize] {
            Some(row) => row.vals[c as usize],
            None => 0,
        }
    }

    /// Writes the entry for arc pair `(r, c)`, materializing the row
    /// (zero-filled) on first touch. Rewriting a live cell does not
    /// inflate the residency accounting.
    pub fn set(&mut self, r: u32, c: u32, v: u32) {
        let cols = self.cols;
        let slot = &mut self.data[r as usize];
        let row = match slot {
            Some(row) => row,
            None => {
                self.cells_allocated += cols as u64;
                slot.insert(PartialRow::new(cols))
            }
        };
        row.vals[c as usize] = v;
        if row.mark(c) {
            self.cells_resident += 1;
            self.cells_resident_peak = self.cells_resident_peak.max(self.cells_resident);
        }
    }

    /// Copies row `r`, columns `lo..hi`, into `buf`; unmaterialized
    /// rows read as zeros.
    pub fn gather_into(&self, r: u32, lo: u32, hi: u32, buf: &mut [u32]) {
        match &self.data[r as usize] {
            Some(row) => buf.copy_from_slice(&row.vals[lo as usize..hi as usize]),
            None => buf.fill(0),
        }
    }

    /// Evicts the given cells of row `r`: zeroes them, and frees the
    /// row's storage once no live cell remains in it. Returns the
    /// number of cells actually dropped (already-evicted or
    /// never-written cells do not count twice).
    pub fn evict_cells(&mut self, r: u32, cols: &[u32]) -> u64 {
        let slot = &mut self.data[r as usize];
        let Some(row) = slot else { return 0 };
        let mut dropped = 0u64;
        for &c in cols {
            if row.clear(c) {
                row.vals[c as usize] = 0;
                dropped += 1;
            }
        }
        self.cells_resident -= dropped;
        if row.live == 0 {
            *slot = None;
        }
        dropped
    }

    /// Cumulative cells ever materialized (a freed-then-rewritten row
    /// counts twice).
    #[inline]
    pub fn cells_allocated(&self) -> u64 {
        self.cells_allocated
    }

    /// Live (written, not evicted) cells right now.
    #[inline]
    pub fn cells_resident(&self) -> u64 {
        self.cells_resident
    }

    /// High-water mark of [`PartialMemo::cells_resident`].
    #[inline]
    pub fn cells_resident_peak(&self) -> u64 {
        self.cells_resident_peak
    }

    /// Materializes the table as a dense [`MemoTable`]; evicted and
    /// never-written cells come out zero.
    pub fn into_table(self) -> MemoTable {
        let w = self.cols as usize;
        let mut values = Vec::with_capacity(self.rows as usize * w);
        for slot in &self.data {
            match slot {
                Some(row) => values.extend_from_slice(&row.vals),
                None => values.resize(values.len() + w, 0),
            }
        }
        MemoTable {
            rows: self.rows,
            cols: self.cols,
            values,
        }
    }
}

/// A lock-free shared-memory memo table for wavefront scheduling.
///
/// All slices of one dependency level write disjoint entries
/// concurrently while reading entries produced by strictly lower
/// levels. Both sides use `Relaxed` atomic accesses: the scheduler
/// joins every worker thread between levels, and that join edge
/// (thread spawn/join are synchronizing operations) is what makes
/// lower-level writes visible — the atomics only have to make the
/// concurrent same-level accesses data-race-free, not order them.
///
/// Build with [`AtomicMemoTable::zeroed`], fill level by level, then
/// [`AtomicMemoTable::into_inner`] the finished [`MemoTable`] for
/// stage two (no copy: `AtomicU32` and `u32` share a layout, and the
/// conversion just reads each cell back out of the retired table).
#[derive(Debug)]
pub struct AtomicMemoTable {
    rows: u32,
    cols: u32,
    values: Vec<AtomicU32>,
}

impl AtomicMemoTable {
    /// Creates a table with every entry zero (the SRNA2/PRNA
    /// convention, as for [`MemoTable::zeroed`]).
    pub fn zeroed(rows: u32, cols: u32) -> Self {
        let mut values = Vec::new();
        values.resize_with(rows as usize * cols as usize, || AtomicU32::new(0));
        AtomicMemoTable { rows, cols, values }
    }

    /// Number of rows (arcs of `S₁`).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (arcs of `S₂`).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Reads the entry for arc pair `(r, c)`.
    ///
    /// Sound only for entries whose writing level has already been
    /// joined (or entries this thread wrote itself); the wavefront
    /// schedule guarantees exactly that.
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> u32 {
        // ORDERING: Relaxed — visibility of the writing level is
        // provided by the scheduler's join edge between levels, not by
        // this load; the atomic only prevents a same-level data race.
        self.values[r as usize * self.cols as usize + c as usize].load(Ordering::Relaxed)
    }

    /// Writes the entry for arc pair `(r, c)`. Each entry is written by
    /// exactly one slice, so plain stores suffice.
    #[inline]
    pub fn set(&self, r: u32, c: u32, v: u32) {
        // ORDERING: Relaxed — exactly one slice writes each entry, and
        // the level join that settles the entry is the release point;
        // the store carries no synchronization of its own.
        self.values[r as usize * self.cols as usize + c as usize].store(v, Ordering::Relaxed);
    }

    /// One full row as a slice of atomics, for bulk gathers: indexing the
    /// row once and zipping beats per-element [`AtomicMemoTable::get`]
    /// address arithmetic in the hot `d₂` fill. Same visibility caveats
    /// as [`AtomicMemoTable::get`].
    #[inline]
    pub fn row(&self, r: u32) -> &[AtomicU32] {
        let w = self.cols as usize;
        &self.values[r as usize * w..(r as usize + 1) * w]
    }

    /// Total number of cells (`rows × cols`).
    #[inline]
    pub fn cell_count(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Consumes the table into an ordinary [`MemoTable`] once all
    /// levels have completed.
    pub fn into_inner(self) -> MemoTable {
        MemoTable {
            rows: self.rows,
            cols: self.cols,
            values: self.values.into_iter().map(AtomicU32::into_inner).collect(),
        }
    }

    /// Non-consuming snapshot of the current contents, for assertions
    /// mid-fill. Same visibility caveats as [`AtomicMemoTable::get`].
    pub fn freeze(&self) -> MemoTable {
        MemoTable {
            rows: self.rows,
            cols: self.cols,
            values: self
                .values
                .iter()
                // ORDERING: Relaxed — the caller must already hold a
                // synchronization edge (join) against every writer
                // whose value it expects to see, exactly as for `get`.
                .map(|v| v.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_unset() {
        let z = MemoTable::zeroed(2, 3);
        assert_eq!(z.get(1, 2), 0);
        let u = MemoTable::unset(2, 3);
        assert_eq!(u.get(0, 0), NOT_FOUND);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = MemoTable::zeroed(3, 4);
        m.set(2, 3, 17);
        m.set(0, 0, 5);
        assert_eq!(m.get(2, 3), 17);
        assert_eq!(m.get(0, 0), 5);
        assert_eq!(m.get(1, 1), 0);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut m = MemoTable::zeroed(2, 3);
        m.set(1, 0, 7);
        m.set(1, 2, 9);
        assert_eq!(m.row(1), &[7, 0, 9]);
        m.row_mut(0).copy_from_slice(&[1, 2, 3]);
        assert_eq!(m.get(0, 1), 2);
    }

    #[test]
    fn merge_max_is_elementwise() {
        let mut a = MemoTable::zeroed(2, 2);
        let mut b = MemoTable::zeroed(2, 2);
        a.set(0, 0, 5);
        b.set(0, 0, 3);
        b.set(1, 1, 9);
        a.merge_max(&b);
        assert_eq!(a.get(0, 0), 5);
        assert_eq!(a.get(1, 1), 9);
    }

    #[test]
    fn zero_sized_tables() {
        let m = MemoTable::zeroed(0, 5);
        assert_eq!(m.as_slice().len(), 0);
        assert_eq!(m.cell_count(), 0);
    }

    #[test]
    fn cell_count_and_resident_bytes_cover_the_grid() {
        let m = MemoTable::zeroed(3, 4);
        assert_eq!(m.cell_count(), 12);
        assert!(m.resident_bytes() >= 12 * 4);
        let a = AtomicMemoTable::zeroed(3, 4);
        assert_eq!(a.cell_count(), 12);
    }

    #[test]
    fn atomic_round_trip_matches_memo_table() {
        let atomic = AtomicMemoTable::zeroed(3, 4);
        let mut plain = MemoTable::zeroed(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                let v = r * 10 + c;
                atomic.set(r, c, v);
                plain.set(r, c, v);
            }
        }
        assert_eq!(atomic.get(2, 3), 23);
        assert_eq!(atomic.freeze(), plain);
        assert_eq!(atomic.into_inner(), plain);
    }

    #[test]
    fn atomic_concurrent_same_level_writes() {
        // Model one wavefront level: many threads write disjoint entries
        // concurrently while reading already-joined lower entries.
        let table = AtomicMemoTable::zeroed(8, 64);
        table.set(0, 0, 100); // "lower level", written before the spawn
        std::thread::scope(|s| {
            for r in 1..8u32 {
                let table = &table;
                s.spawn(move || {
                    for c in 0..64u32 {
                        let base = table.get(0, 0); // lower-level read
                        table.set(r, c, base + r * 64 + c);
                    }
                });
            }
        });
        let done = table.into_inner();
        for r in 1..8u32 {
            for c in 0..64u32 {
                assert_eq!(done.get(r, c), 100 + r * 64 + c);
            }
        }
    }

    #[test]
    fn atomic_empty_table() {
        let t = AtomicMemoTable::zeroed(0, 7);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.cols(), 7);
        assert_eq!(t.into_inner().as_slice().len(), 0);
    }

    #[test]
    fn atomic_zero_column_table() {
        let t = AtomicMemoTable::zeroed(5, 0);
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 0);
        assert_eq!(t.row(4).len(), 0); // in-bounds empty row slice
        let frozen = t.freeze();
        assert_eq!(frozen.as_slice().len(), 0);
        assert_eq!(t.into_inner(), frozen);
    }

    #[test]
    fn atomic_untouched_table_freezes_to_zeroed() {
        // freeze / into_inner on a table nobody ever wrote must equal
        // the zeroed plain table (the SRNA2 "empty child window"
        // convention depends on this).
        let t = AtomicMemoTable::zeroed(3, 4);
        let expected = MemoTable::zeroed(3, 4);
        assert_eq!(t.freeze(), expected);
        assert_eq!(t.into_inner(), expected);
    }

    #[test]
    fn partial_rows_materialize_on_write_and_free_on_eviction() {
        let mut p = PartialMemo::new(3, 4);
        assert_eq!(p.cells_allocated(), 0);
        assert_eq!(p.get(2, 3), 0); // unmaterialized reads as zero
        p.set(1, 0, 7);
        p.set(1, 2, 9);
        assert_eq!(p.cells_allocated(), 4); // one row materialized whole
        assert_eq!(p.cells_resident(), 2);
        let mut buf = [99u32; 3];
        p.gather_into(1, 0, 3, &mut buf);
        assert_eq!(buf, [7, 0, 9]);
        p.gather_into(0, 1, 4, &mut buf);
        assert_eq!(buf, [0, 0, 0]);
        assert_eq!(p.evict_cells(1, &[0, 2]), 2);
        assert_eq!(p.cells_resident(), 0);
        assert_eq!(p.get(1, 0), 0); // row freed; reads zero again
        assert_eq!(p.cells_resident_peak(), 2);
    }

    #[test]
    fn partial_accounting_is_idempotent_under_rewrites_and_reevictions() {
        // The replicated store publishes a cell and then installs the
        // merged step over it: two writes, one resident cell. Sweeps
        // may also re-enumerate an already-evicted cell.
        let mut p = PartialMemo::new(2, 2);
        p.set(0, 1, 3);
        p.set(0, 1, 5);
        assert_eq!(p.cells_resident(), 1);
        assert_eq!(p.get(0, 1), 5);
        assert_eq!(p.evict_cells(0, &[1]), 1);
        assert_eq!(p.evict_cells(0, &[1]), 0);
        assert_eq!(p.evict_cells(1, &[0]), 0); // never-written row
        assert_eq!(p.cells_resident(), 0);
    }

    #[test]
    fn partial_rematerialization_counts_cumulatively() {
        let mut p = PartialMemo::new(1, 2);
        p.set(0, 0, 1);
        p.evict_cells(0, &[0]);
        p.set(0, 1, 2);
        // The row was freed and re-materialized: cumulative allocation
        // counts it twice, keeping cells_written ≤ cells_allocated for
        // windowed stores.
        assert_eq!(p.cells_allocated(), 4);
        assert_eq!(p.cells_resident_peak(), 1);
    }

    #[test]
    fn partial_into_table_zero_fills_holes() {
        let mut p = PartialMemo::new(2, 3);
        p.set(0, 1, 4);
        p.set(1, 2, 6);
        p.evict_cells(1, &[2]);
        let t = p.into_table();
        let mut expected = MemoTable::zeroed(2, 3);
        expected.set(0, 1, 4);
        assert_eq!(t, expected);
    }

    #[test]
    fn atomic_settled_snapshot_interleaving() {
        // Hand-rolled two-thread interleaving of the wavefront's
        // settled-snapshot protocol: a writer publishes one level's
        // entry and signals completion; the coordinator waits for the
        // signal (the stand-in for the level join edge), folds the
        // entry into a plain snapshot, and hands the snapshot value to
        // the next level's reader. Exercises every step of
        // write → join → snapshot → read across real threads, many
        // times to vary the interleaving around the signal.
        use std::sync::atomic::AtomicBool;
        for round in 0..200u32 {
            let table = AtomicMemoTable::zeroed(2, 1);
            let done = AtomicBool::new(false);
            let mut settled = MemoTable::zeroed(2, 1);
            std::thread::scope(|s| {
                s.spawn(|| {
                    table.set(0, 0, round + 1);
                    // ORDERING: Release — models the synchronizing half
                    // of the level join the real scheduler performs.
                    done.store(true, Ordering::Release);
                });
                // ORDERING: Acquire — pairs with the Release above;
                // after observing `done`, the writer's Relaxed store
                // must be visible (the whole point of the protocol).
                while !done.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                settled.set(0, 0, table.get(0, 0));
            });
            assert_eq!(settled.get(0, 0), round + 1, "round {round}");
        }
    }
}

//! Preprocessing: per-structure index tables used by every slice
//! tabulation.
//!
//! This corresponds to the paper's preprocessing stage ("a preprocessing
//! step is performed that determines all of the possible rows and columns
//! that correspond with matched arcs", §IV-B). Concretely, for each
//! structure we compute:
//!
//! * the sorted right-endpoint array (the traversal order of stage one);
//! * for every arc, the **contiguous range** of arc indices nested under
//!   it (`under_range`) — contiguity is a consequence of the
//!   non-pseudoknot model: an arc with its right endpoint strictly inside
//!   another arc must be fully nested under it;
//! * for every arc, the number of arcs ending strictly before its left
//!   endpoint (`rank_before_left`), which resolves the static dependency
//!   `d₁ = F[i1, k1-1, i2, k2-1]` into a compressed-grid coordinate in
//!   O(1) during tabulation;
//! * for every arc, its **nesting depth** (`depth`): 0 for hairpins, and
//!   `1 + max(depth of directly nested arcs)` otherwise. Slice `(k1, k2)`
//!   only reads memo entries of arc pairs strictly nested under it, whose
//!   depths are strictly smaller — so depth induces a wavefront schedule
//!   for stage one that is finer than the row-by-row order (see
//!   `mcos_parallel`'s `Backend::WAVEFRONT`).

use rna_structure::ArcStructure;

/// Precomputed index tables for one structure.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Right endpoint of each arc, in increasing order (parallel to the
    /// structure's arc array).
    pub ends: Vec<u32>,
    /// `under_range[k] = (lo, hi)`: arcs nested strictly under arc `k`
    /// occupy indices `lo..hi` of the arc array.
    pub under_range: Vec<(u32, u32)>,
    /// `rank_before_left[k]`: number of arcs whose right endpoint is less
    /// than arc `k`'s left endpoint.
    pub rank_before_left: Vec<u32>,
    /// `depth[k]`: nesting depth of arc `k` — 0 for hairpins (no arc
    /// under), otherwise one more than the deepest arc nested under `k`.
    pub depth: Vec<u32>,
}

impl Preprocessed {
    /// Builds the index tables for a structure.
    ///
    /// Cost: `O(A log A)` for `A` arcs (binary searches over the sorted
    /// endpoint array).
    pub fn build(s: &ArcStructure) -> Self {
        let ends: Vec<u32> = s.arcs().iter().map(|a| a.right).collect();
        debug_assert!(
            ends.windows(2).all(|w| w[0] < w[1]),
            "ends must be strictly sorted"
        );
        let mut under_range = Vec::with_capacity(ends.len());
        let mut rank_before_left = Vec::with_capacity(ends.len());
        for arc in s.arcs() {
            // Arcs under `arc` have right endpoints in (arc.left, arc.right).
            let lo = ends.partition_point(|&e| e <= arc.left);
            let hi = ends.partition_point(|&e| e < arc.right);
            under_range.push((lo as u32, hi as u32));
            let rank = ends.partition_point(|&e| e < arc.left);
            rank_before_left.push(rank as u32);
        }
        // Nesting depth in O(A): arcs arrive in right-endpoint order, so
        // when arc `k` is reached, every arc nested under it has already
        // been processed. Arcs still open to the left of `k` sit on the
        // stack; those with a left endpoint inside `k` are exactly the
        // maximal (direct-child) arcs under `k`.
        let mut depth = Vec::with_capacity(ends.len());
        let mut stack: Vec<(u32, u32)> = Vec::new(); // (left, depth)
        for arc in s.arcs() {
            let mut d = 0u32;
            while let Some(&(left, child_depth)) = stack.last() {
                if left <= arc.left {
                    break;
                }
                stack.pop();
                d = d.max(child_depth + 1);
            }
            stack.push((arc.left, d));
            depth.push(d);
        }
        Preprocessed {
            ends,
            under_range,
            rank_before_left,
            depth,
        }
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> u32 {
        self.ends.len() as u32
    }

    /// The full arc range `(0, A)` — the "window" of the parent slice.
    #[inline]
    pub fn full_range(&self) -> (u32, u32) {
        (0, self.ends.len() as u32)
    }

    /// Number of arcs nested under arc `k`.
    #[inline]
    pub fn under_count(&self, k: u32) -> u32 {
        let (lo, hi) = self.under_range[k as usize];
        hi - lo
    }

    /// Number of arcs (global indices) whose right endpoint is `< pos`.
    #[inline]
    pub fn rank_of_pos(&self, pos: u32) -> u32 {
        self.ends.partition_point(|&e| e < pos) as u32
    }

    /// Nesting depth of arc `k` (0 for hairpins).
    #[inline]
    pub fn level_of(&self, k: u32) -> u32 {
        self.depth[k as usize]
    }

    /// The largest nesting depth of any arc, or `None` for an arc-free
    /// structure. `Some(d)` means depths `0..=d` all occur.
    pub fn max_depth(&self) -> Option<u32> {
        self.depth.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn worst_case_ranges_are_prefixes() {
        // Fully nested arcs: arc k (in right-endpoint order) has exactly k
        // arcs under it, occupying indices 0..k.
        let s = generate::worst_case_nested(6);
        let p = Preprocessed::build(&s);
        assert_eq!(p.num_arcs(), 6);
        for k in 0..6u32 {
            assert_eq!(p.under_range[k as usize], (0, k));
            assert_eq!(p.under_count(k), k);
        }
    }

    #[test]
    fn sequential_arcs_have_empty_ranges() {
        let s = dot_bracket::parse("(.)(.)(.)").unwrap();
        let p = Preprocessed::build(&s);
        for k in 0..3u32 {
            assert_eq!(p.under_count(k), 0);
        }
        // rank_before_left: arc 0 starts at 0 (0 arcs before), arc 1 at 3
        // (1 arc ends before position 3), arc 2 at 6 (2 arcs end before).
        assert_eq!(p.rank_before_left, vec![0, 1, 2]);
    }

    #[test]
    fn mixed_structure_ranges() {
        // ((..)(..)) : outer arc contains two hairpins.
        let s = dot_bracket::parse("((..)(..))").unwrap();
        let p = Preprocessed::build(&s);
        // Arc order by right endpoint: (1,4), (5,8), (0,9).
        assert_eq!(p.ends, vec![4, 8, 9]);
        assert_eq!(p.under_range[0], (0, 0)); // hairpin (1,4): nothing under
        assert_eq!(p.under_range[1], (1, 1)); // hairpin (5,8): nothing under
        assert_eq!(p.under_range[2], (0, 2)); // outer (0,9): both hairpins
    }

    #[test]
    fn under_range_is_exactly_the_nested_arcs() {
        // Cross-check under_range against the O(A²) definition on random
        // structures.
        for seed in 0..10 {
            let s = generate::random_structure(80, 0.9, seed);
            let p = Preprocessed::build(&s);
            for k in 0..s.num_arcs() {
                let (lo, hi) = p.under_range[k as usize];
                let expected: Vec<u32> = s.arcs_under(k);
                let got: Vec<u32> = (lo..hi).collect();
                assert_eq!(got, expected, "seed {seed}, arc {k}");
            }
        }
    }

    #[test]
    fn rank_of_pos_counts_ends_before() {
        let s = dot_bracket::parse("(.)(.)").unwrap(); // ends at 2 and 5
        let p = Preprocessed::build(&s);
        assert_eq!(p.rank_of_pos(0), 0);
        assert_eq!(p.rank_of_pos(2), 0);
        assert_eq!(p.rank_of_pos(3), 1);
        assert_eq!(p.rank_of_pos(6), 2);
    }

    #[test]
    fn empty_structure() {
        let s = dot_bracket::parse("....").unwrap();
        let p = Preprocessed::build(&s);
        assert_eq!(p.num_arcs(), 0);
        assert_eq!(p.full_range(), (0, 0));
        assert_eq!(p.max_depth(), None);
    }

    #[test]
    fn depth_of_known_structures() {
        // Fully nested: arc k has depth k.
        let p = Preprocessed::build(&generate::worst_case_nested(5));
        assert_eq!(p.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.max_depth(), Some(4));

        // Sequential hairpins: all depth 0.
        let p = Preprocessed::build(&dot_bracket::parse("(.)(.)(.)").unwrap());
        assert_eq!(p.depth, vec![0, 0, 0]);
        assert_eq!(p.max_depth(), Some(0));

        // ((..)(..)) : two hairpins at depth 0, outer arc at depth 1.
        let p = Preprocessed::build(&dot_bracket::parse("((..)(..))").unwrap());
        assert_eq!(p.depth, vec![0, 0, 1]);
        assert_eq!(p.level_of(2), 1);
    }

    #[test]
    fn depth_matches_quadratic_definition() {
        // depth[k] = 1 + max depth over every arc nested under k (the max
        // over all nested arcs equals the max over direct children).
        for seed in 0..10 {
            let s = generate::random_structure(80, 0.9, seed);
            let p = Preprocessed::build(&s);
            for k in 0..s.num_arcs() {
                let (lo, hi) = p.under_range[k as usize];
                let expected = (lo..hi).map(|j| p.depth[j as usize] + 1).max().unwrap_or(0);
                assert_eq!(p.depth[k as usize], expected, "seed {seed}, arc {k}");
            }
        }
    }

    #[test]
    fn depth_strictly_decreases_under_nesting() {
        // The wavefront correctness invariant: every arc nested under `k`
        // has strictly smaller depth.
        for seed in 0..10 {
            let s = generate::random_structure(120, 0.8, seed);
            let p = Preprocessed::build(&s);
            for k in 0..s.num_arcs() {
                let (lo, hi) = p.under_range[k as usize];
                for j in lo..hi {
                    assert!(
                        p.depth[j as usize] < p.depth[k as usize],
                        "seed {seed}: arc {j} under {k} must be strictly shallower"
                    );
                }
            }
        }
    }
}

//! Recompute-on-miss resolution of evicted memo cells.
//!
//! Linear-space execution (the `Budgeted` store decorator in
//! `mcos-parallel`, and the Hirschberg-style stage two) drops memo
//! cells once their last stage-one reader has settled. Any later read
//! of a dropped cell is serviced here: the cell's child slice is
//! re-tabulated through the same [`SliceKernel`] path that produced it
//! the first time, recursively forcing whatever children were evicted
//! too. Because the kernel is deterministic and reads the same child
//! values, the recomputed value is bit-identical to the evicted one.
//!
//! The recursion is driven by an explicit worklist, not the call
//! stack: deeply nested structures (a 10k-nt worst-case chain is
//! ~5000 levels deep) would otherwise overflow the stack.

use crate::kernel::{KernelScratch, SliceKernel};
use crate::preprocess::Preprocessed;
use std::collections::HashMap;

/// Resolves memo cells against a partially evicted base table,
/// recomputing misses through the slice kernel.
///
/// `base` is consulted first for every cell: `Some(v)` means the cell
/// is resident with value `v`; `None` means it was evicted and must be
/// recomputed. Recomputed values are cached for the lifetime of the
/// oracle so shared children are forced once.
pub struct CellOracle<'a, F> {
    p1: &'a Preprocessed,
    p2: &'a Preprocessed,
    kernel: &'a dyn SliceKernel,
    base: F,
    scratch: KernelScratch,
    cache: HashMap<(u32, u32), u32>,
    cap: usize,
    stack: Vec<(u32, u32)>,
    recompute_slices: u64,
    recompute_cells: u64,
}

impl<'a, F: FnMut(u32, u32) -> Option<u32>> CellOracle<'a, F> {
    /// Creates an oracle over the given structures, kernel and base
    /// lookup.
    pub fn new(
        p1: &'a Preprocessed,
        p2: &'a Preprocessed,
        kernel: &'a dyn SliceKernel,
        base: F,
    ) -> Self {
        CellOracle {
            p1,
            p2,
            kernel,
            base,
            scratch: KernelScratch::default(),
            cache: HashMap::new(),
            cap: usize::MAX,
            stack: Vec::new(),
            recompute_slices: 0,
            recompute_cells: 0,
        }
    }

    /// Caps the recompute cache at `cap` entries: when a `get` begins
    /// with the cache at or over the cap, the cache is dropped and
    /// rebuilt. Without a cap, a long scan over an evicted region (the
    /// budgeted stage two reads every grid cell) accumulates the whole
    /// recomputation closure and silently regrows the quadratic
    /// footprint the eviction freed. With a cap, resident memory stays
    /// `cap + closure(one cell)` and shared children merely risk being
    /// re-forced across clears — recompute time traded for space, which
    /// is the budget's contract.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self
    }

    /// Creates an oracle pre-seeded with `cache` — entries recomputed
    /// by an earlier oracle over the same structures and base. Memo
    /// values are immutable once written, so reusing them is always
    /// sound and saves re-forcing shared children.
    pub fn seeded(
        p1: &'a Preprocessed,
        p2: &'a Preprocessed,
        kernel: &'a dyn SliceKernel,
        base: F,
        cache: HashMap<(u32, u32), u32>,
    ) -> Self {
        let mut oracle = Self::new(p1, p2, kernel, base);
        oracle.cache = cache;
        oracle
    }

    /// Consumes the oracle, returning its cache for reuse by a
    /// successor (see [`CellOracle::seeded`]).
    pub fn into_cache(self) -> HashMap<(u32, u32), u32> {
        self.cache
    }

    /// Child slices re-tabulated so far.
    pub fn recompute_slices(&self) -> u64 {
        self.recompute_slices
    }

    /// Grid cells tabulated during recomputation so far.
    pub fn recompute_cells(&self) -> u64 {
        self.recompute_cells
    }

    #[inline]
    fn resolved(&mut self, g1: u32, g2: u32) -> Option<u32> {
        if let Some(&v) = self.cache.get(&(g1, g2)) {
            return Some(v);
        }
        (self.base)(g1, g2)
    }

    /// Returns the memo value for arc pair `(g1, g2)`, recomputing it
    /// (and any evicted descendants) if it is not resident.
    pub fn get(&mut self, g1: u32, g2: u32) -> u32 {
        if let Some(v) = self.resolved(g1, g2) {
            return v;
        }
        // Enforce the cap only between forcings: entries inside one
        // cell's closure must survive until its tabulation lands.
        if self.cache.len() >= self.cap {
            self.cache.clear();
        }
        debug_assert!(self.stack.is_empty());
        self.stack.push((g1, g2));
        while let Some(&(a, b)) = self.stack.last() {
            if self.resolved(a, b).is_some() {
                self.stack.pop();
                continue;
            }
            let (lo1, hi1) = self.p1.under_range[a as usize];
            let (lo2, hi2) = self.p2.under_range[b as usize];
            let before = self.stack.len();
            for c1 in lo1..hi1 {
                for c2 in lo2..hi2 {
                    if self.resolved(c1, c2).is_none() {
                        self.stack.push((c1, c2));
                    }
                }
            }
            if self.stack.len() > before {
                continue; // force the missing children first
            }
            // Every child is resolved: re-tabulate this slice exactly
            // as stage one did.
            let cols = hi2 - lo2;
            let value = {
                let cache = &self.cache;
                let base = &mut self.base;
                self.kernel.tabulate(
                    self.p1,
                    self.p2,
                    (lo1, hi1),
                    (lo2, hi2),
                    &mut self.scratch,
                    &mut |c1: u32, buf: &mut [u32]| {
                        for (i, c2) in (lo2..hi2).enumerate() {
                            buf[i] = cache
                                .get(&(c1, c2))
                                .copied()
                                .or_else(|| base(c1, c2))
                                .expect("child forced before parent tabulation");
                        }
                    },
                )
            };
            self.recompute_slices += 1;
            self.recompute_cells += u64::from(hi1 - lo1) * u64::from(cols);
            self.cache.insert((a, b), value);
            self.stack.pop();
        }
        self.resolved(g1, g2)
            .expect("worklist terminated with the root resolved")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use crate::srna2;
    use rna_structure::generate;

    /// Evict every cell and recompute all of them: the oracle must
    /// reproduce the full memo bit-for-bit from nothing.
    #[test]
    fn recomputes_the_whole_memo_from_scratch() {
        let s1 = generate::random_structure(48, 0.5, 7);
        let s2 = generate::random_structure(44, 0.5, 8);
        let reference = srna2::run(&s1, &s2);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let kernel = KernelKind::Scalar.kernel();
        let mut oracle = CellOracle::new(&p1, &p2, kernel, |_, _| None);
        for g1 in 0..p1.num_arcs() {
            for g2 in 0..p2.num_arcs() {
                assert_eq!(
                    oracle.get(g1, g2),
                    reference.memo.get(g1, g2),
                    "cell ({g1}, {g2})"
                );
            }
        }
        assert!(oracle.recompute_slices() > 0);
        assert!(oracle.recompute_cells() >= oracle.recompute_slices());
    }

    /// Resident cells are never recomputed.
    #[test]
    fn resident_cells_cost_no_recompute() {
        let s1 = generate::worst_case_nested(6);
        let reference = srna2::run(&s1, &s1);
        let p1 = Preprocessed::build(&s1);
        let kernel = KernelKind::Scalar.kernel();
        let memo = &reference.memo;
        let mut oracle = CellOracle::new(&p1, &p1, kernel, |a, b| Some(memo.get(a, b)));
        for g1 in 0..p1.num_arcs() {
            for g2 in 0..p1.num_arcs() {
                assert_eq!(oracle.get(g1, g2), reference.memo.get(g1, g2));
            }
        }
        assert_eq!(oracle.recompute_slices(), 0);
        assert_eq!(oracle.recompute_cells(), 0);
    }

    /// A capped oracle stays under its cap between forcings and still
    /// resolves every cell correctly — it only pays more recompute.
    #[test]
    fn capped_cache_is_bounded_and_still_correct() {
        let s1 = generate::random_structure(40, 0.6, 31);
        let s2 = generate::random_structure(36, 0.6, 32);
        let reference = srna2::run(&s1, &s2);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let kernel = KernelKind::Scalar.kernel();
        let cap = 16;
        let mut capped = CellOracle::new(&p1, &p2, kernel, |_, _| None).with_cap(cap);
        let mut unbounded = CellOracle::new(&p1, &p2, kernel, |_, _| None);
        let mut capped_peak = 0;
        for g1 in 0..p1.num_arcs() {
            for g2 in 0..p2.num_arcs() {
                assert_eq!(capped.get(g1, g2), reference.memo.get(g1, g2));
                capped_peak = capped_peak.max(capped.cache.len());
                unbounded.get(g1, g2);
            }
        }
        // The peak never exceeds cap + one cell's closure, and clears
        // actually happened: the capped peak sits strictly below the
        // unbounded cache (which accumulates the whole grid).
        assert!(
            capped_peak < unbounded.cache.len(),
            "capped peak {capped_peak} vs unbounded {}",
            unbounded.cache.len()
        );
        assert!(
            capped.recompute_slices() > unbounded.recompute_slices(),
            "the cap trades recompute for space"
        );
    }

    /// A sparse eviction pattern (every third cell) resolves through
    /// the mixed resident/recompute path.
    #[test]
    fn mixed_residency_matches_the_reference() {
        let s1 = generate::random_structure(40, 0.6, 21);
        let s2 = generate::random_structure(36, 0.6, 22);
        let reference = srna2::run(&s1, &s2);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let kernel = KernelKind::Tiled.kernel();
        let memo = &reference.memo;
        let cols = p2.num_arcs();
        let mut oracle = CellOracle::new(&p1, &p2, kernel, |a, b| {
            if (a * cols + b) % 3 == 0 {
                None
            } else {
                Some(memo.get(a, b))
            }
        });
        for g1 in 0..p1.num_arcs() {
            for g2 in 0..p2.num_arcs() {
                assert_eq!(oracle.get(g1, g2), reference.memo.get(g1, g2));
            }
        }
        assert!(oracle.recompute_slices() > 0);
    }
}

//! `TabulateSlice`: bottom-up tabulation of one two-dimensional slice of
//! the four-dimensional dynamic programming table (Algorithm 2 of the
//! paper).
//!
//! A slice is identified by a pair of *arc ranges* — contiguous windows of
//! the right-endpoint-sorted arc arrays (see
//! [`Preprocessed`]). The slice value
//! `C[p][q]` on the compressed grid equals `F[i1, e1[p], i2, e2[q]]`
//! where `e1`/`e2` are the arc right-endpoints inside the windows: since
//! `F` only increases where matched arcs end, the compressed grid carries
//! exactly the information of the paper's positional slice.
//!
//! For each compressed cell the recurrence reads
//!
//! * the static dependencies `s₁ = C[p-1][q]` and `s₂ = C[p][q-1]`
//!   (running max),
//! * the dynamic dependency `d₁ = C[rank(l1)][rank(l2)]` — the value of
//!   the slice just before the matched arcs open — resolved in O(1) from
//!   the precomputed `rank_before_left` tables,
//! * the dynamic dependency `d₂` — the memoized value of the child slice
//!   under the matched arcs — obtained from a caller-supplied provider so
//!   the same loop serves SRNA1 (lookup-or-spawn), SRNA2 and PRNA (plain
//!   memo read).
//!
//! The dense positional variant ([`tabulate_dense`]) fills a
//! `(width+1) × (width+1)` table over every position of the window; it is
//! what a direct transcription of the paper's Figure 2 produces, and is
//! kept as a correctness oracle and ablation baseline.

use rna_structure::ArcStructure;

use crate::preprocess::Preprocessed;

/// An inclusive arc-index window `(lo, hi)` covering arcs `lo..hi`.
pub type ArcRange = (u32, u32);

/// Tabulates one slice on the compressed grid, returning the value of its
/// last subproblem (the slice's memoizable result).
///
/// `d2` is called once per matched arc pair `(g1, g2)` (global arc
/// indices) and must return the value of the child slice spawned under
/// that pair. `grid` is a scratch buffer, reused across calls to avoid
/// per-slice allocation; its contents on entry are irrelevant, and on
/// return it holds the compressed grid followed by a small scratch tail
/// (use [`tabulate_grid`] to get the bare grid).
///
/// Returns 0 when either window is empty. Callers that count tabulated
/// subproblems do so via [`cell_count`] on the ranges; see
/// `Counters::slice` in the SRNA drivers.
pub fn tabulate_with<F>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: ArcRange,
    range2: ArcRange,
    grid: &mut Vec<u32>,
    mut d2: F,
) -> u32
where
    F: FnMut(u32, u32) -> u32,
{
    let (lo1, hi1) = range1;
    let (lo2, hi2) = range2;
    let a = (hi1 - lo1) as usize;
    let b = (hi2 - lo2) as usize;
    if a == 0 || b == 0 {
        return 0;
    }
    let width = b + 1;
    let cells_len = (a + 1) * width;
    grid.clear();
    // The buffer tail past the grid holds the slice-hoisted r2 ranks:
    // the column rank of d1 depends only on q, so it is computed once
    // per slice instead of once per cell.
    grid.resize(cells_len + b, 0);
    // Work through local slices so the optimizer can keep the buffers'
    // pointers and lengths in registers across the hot loop.
    let (cells, r2s) = grid.split_at_mut(cells_len);
    for (q, r2) in r2s.iter_mut().enumerate() {
        let g2 = lo2 + q as u32;
        *r2 = p2.rank_before_left[g2 as usize].max(lo2) - lo2;
    }

    for p in 0..a {
        let g1 = lo1 + p as u32;
        // Row rank of d1: number of window arcs of S1 ending before this
        // arc opens.
        let r1 = (p1.rank_before_left[g1 as usize].max(lo1) - lo1) as usize;
        let row = (p + 1) * width;
        let prev = p * width;
        let d1_row = r1 * width;
        for q in 0..b {
            let g2 = lo2 + q as u32;
            let r2 = r2s[q] as usize;
            let s = cells[prev + q + 1].max(cells[row + q]);
            let d1 = cells[d1_row + r2];
            let d2v = d2(g1, g2);
            cells[row + q + 1] = s.max(1 + d1 + d2v);
        }
    }
    cells[cells_len - 1]
}

/// Row-hoisted variant of [`tabulate_with`]: the `d₂` dependency is
/// materialized once per row instead of once per cell.
///
/// For a fixed `g1`, the inner loop of [`tabulate_with`] reads the child
/// slice values `d₂(g1, lo2)..d₂(g1, hi2)` — a contiguous segment of
/// memo row `g1` under the memo-table layout every backend uses. This
/// variant asks the caller to fill that segment into `d2_row` once per
/// row (`fill_d2(g1, buf)`, with `buf[q]` the value for arc pair
/// `(g1, lo2 + q)`), turning the per-cell indirect memo lookup into a
/// linear scan of a dense buffer: one bounds check pattern, no repeated
/// `g1 * cols` address arithmetic, and a single contiguous copy per row
/// for `MemoTable`-backed callers.
///
/// `grid` and `d2_row` are scratch buffers reused across calls; their
/// contents on entry are irrelevant. Returns 0 when either window is
/// empty (without calling `fill_d2`).
pub fn tabulate_with_rows<F>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: ArcRange,
    range2: ArcRange,
    grid: &mut Vec<u32>,
    d2_row: &mut Vec<u32>,
    mut fill_d2: F,
) -> u32
where
    F: FnMut(u32, &mut [u32]),
{
    let (lo1, hi1) = range1;
    let (lo2, hi2) = range2;
    let a = (hi1 - lo1) as usize;
    let b = (hi2 - lo2) as usize;
    if a == 0 || b == 0 {
        return 0;
    }
    let width = b + 1;
    grid.clear();
    grid.resize((a + 1) * width, 0);
    // The d2 buffer's tail holds the slice-hoisted r2 ranks (q-only, so
    // computed once per slice; see `tabulate_with`).
    d2_row.clear();
    d2_row.resize(2 * b, 0);
    let cells: &mut [u32] = grid.as_mut_slice();
    let (d2s, r2s) = d2_row.split_at_mut(b);
    for (q, r2) in r2s.iter_mut().enumerate() {
        let g2 = lo2 + q as u32;
        *r2 = p2.rank_before_left[g2 as usize].max(lo2) - lo2;
    }

    for p in 0..a {
        let g1 = lo1 + p as u32;
        fill_d2(g1, d2s);
        let r1 = (p1.rank_before_left[g1 as usize].max(lo1) - lo1) as usize;
        let row = (p + 1) * width;
        let prev = p * width;
        let d1_row = r1 * width;
        for q in 0..b {
            let r2 = r2s[q] as usize;
            let s = cells[prev + q + 1].max(cells[row + q]);
            let d1 = cells[d1_row + r2];
            cells[row + q + 1] = s.max(1 + d1 + d2s[q]);
        }
    }
    cells[(a + 1) * width - 1]
}

/// Like [`tabulate_with`], but returns the full compressed grid (row-major,
/// `(a+1) × (b+1)`) for use by the traceback.
pub fn tabulate_grid<F>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: ArcRange,
    range2: ArcRange,
    d2: F,
) -> Vec<u32>
where
    F: FnMut(u32, u32) -> u32,
{
    let mut grid = Vec::new();
    tabulate_with(p1, p2, range1, range2, &mut grid, d2);
    let (lo1, hi1) = range1;
    let (lo2, hi2) = range2;
    if hi1 == lo1 || hi2 == lo2 {
        // Normalize the empty case to a 1x1 zero grid.
        return vec![0];
    }
    // Drop the r2 scratch tail `tabulate_with` keeps past the grid.
    grid.truncate((hi1 - lo1 + 1) as usize * (hi2 - lo2 + 1) as usize);
    grid
}

/// Number of compressed subproblems a slice over these ranges tabulates.
#[inline]
pub fn cell_count(range1: ArcRange, range2: ArcRange) -> u64 {
    (range1.1 - range1.0) as u64 * (range2.1 - range2.0) as u64
}

/// Dense positional tabulation of one slice over the inclusive position
/// windows `[i1, j1] × [i2, j2]` — a direct transcription of the paper's
/// Figure 2 recurrence. Used as a correctness oracle and in the
/// compressed-vs-dense ablation.
///
/// `d2(g1, g2)` provides child-slice values exactly as in
/// [`tabulate_with`]. Empty windows (`j < i`, encoded by the caller
/// passing `width = 0` semantics via `j1 < i1`) return 0.
pub fn tabulate_dense<F>(
    s1: &ArcStructure,
    s2: &ArcStructure,
    (i1, j1): (u32, u32),
    (i2, j2): (u32, u32),
    mut d2: F,
) -> u32
where
    F: FnMut(u32, u32) -> u32,
{
    if j1 < i1 || j2 < i2 {
        return 0;
    }
    let w1 = (j1 - i1 + 1) as usize;
    let w2 = (j2 - i2 + 1) as usize;
    let width = w2 + 1;
    // t[(x - i1 + 1) * width + (y - i2 + 1)] = F[i1, x, i2, y]
    let mut t = vec![0u32; (w1 + 1) * width];
    for x in i1..=j1 {
        let xr = (x - i1 + 1) as usize;
        let arc1 = s1.arc_ending_at(x).filter(|&k| s1.arc(k).left >= i1);
        for y in i2..=j2 {
            let yr = (y - i2 + 1) as usize;
            let mut v = t[(xr - 1) * width + yr].max(t[xr * width + yr - 1]);
            if let Some(k1) = arc1 {
                if let Some(k2) = s2.arc_ending_at(y).filter(|&k| s2.arc(k).left >= i2) {
                    let l1 = s1.arc(k1).left;
                    let l2 = s2.arc(k2).left;
                    // d1 = F[i1, l1-1, i2, l2-1]; row/col index l - i is
                    // exactly (l-1) - i + 1, and 0 when l == i (empty).
                    let d1 = t[(l1 - i1) as usize * width + (l2 - i2) as usize];
                    v = v.max(1 + d1 + d2(k1, k2));
                }
            }
            t[xr * width + yr] = v;
        }
    }
    t[(w1 + 1) * width - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    /// Fully tabulates both structures' child slices bottom-up with the
    /// compressed representation, then the parent slice — a miniature
    /// SRNA2 used to test the slice engine in isolation.
    fn full_compressed(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
        let p1 = Preprocessed::build(s1);
        let p2 = Preprocessed::build(s2);
        let mut memo = vec![0u32; p1.num_arcs() as usize * p2.num_arcs() as usize];
        let cols = p2.num_arcs() as usize;
        let mut grid = Vec::new();
        for k1 in 0..p1.num_arcs() {
            for k2 in 0..p2.num_arcs() {
                let v = tabulate_with(
                    &p1,
                    &p2,
                    p1.under_range[k1 as usize],
                    p2.under_range[k2 as usize],
                    &mut grid,
                    |g1, g2| memo[g1 as usize * cols + g2 as usize],
                );
                memo[k1 as usize * cols + k2 as usize] = v;
            }
        }
        tabulate_with(
            &p1,
            &p2,
            p1.full_range(),
            p2.full_range(),
            &mut grid,
            |g1, g2| memo[g1 as usize * cols + g2 as usize],
        )
    }

    /// Same, with the dense positional slices.
    fn full_dense(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
        let mut memo = vec![0u32; (s1.num_arcs() * s2.num_arcs()) as usize];
        let cols = s2.num_arcs() as usize;
        for k1 in 0..s1.num_arcs() {
            for k2 in 0..s2.num_arcs() {
                let a1 = s1.arc(k1);
                let a2 = s2.arc(k2);
                let v = tabulate_dense(
                    s1,
                    s2,
                    (a1.left + 1, a1.right.wrapping_sub(1)),
                    (a2.left + 1, a2.right.wrapping_sub(1)),
                    |g1, g2| memo[g1 as usize * cols + g2 as usize],
                );
                memo[k1 as usize * cols + k2 as usize] = v;
            }
        }
        tabulate_dense(s1, s2, (0, s1.len() - 1), (0, s2.len() - 1), |g1, g2| {
            memo[g1 as usize * cols + g2 as usize]
        })
    }

    #[test]
    fn empty_window_returns_zero() {
        let s = dot_bracket::parse("(.)").unwrap();
        let p = Preprocessed::build(&s);
        let mut grid = Vec::new();
        assert_eq!(
            tabulate_with(&p, &p, (0, 0), (0, 1), &mut grid, |_, _| 0),
            0
        );
        assert_eq!(
            tabulate_with(&p, &p, (0, 1), (1, 1), &mut grid, |_, _| 0),
            0
        );
    }

    #[test]
    fn single_arc_pair_matches() {
        let s = dot_bracket::parse("(.)").unwrap();
        let p = Preprocessed::build(&s);
        let mut grid = Vec::new();
        let v = tabulate_with(&p, &p, (0, 1), (0, 1), &mut grid, |_, _| 0);
        assert_eq!(v, 1);
    }

    #[test]
    fn nested_arcs_accumulate_through_d2() {
        // ((.)) self-compared: outer match contributes 1 + d2(inner) = 2.
        let s = dot_bracket::parse("((.))").unwrap();
        assert_eq!(full_compressed(&s, &s), 2);
    }

    #[test]
    fn sequential_arcs_accumulate_through_d1() {
        // (.)(.) self-compared: both arcs match via the d1 chain.
        let s = dot_bracket::parse("(.)(.)").unwrap();
        assert_eq!(full_compressed(&s, &s), 2);
    }

    #[test]
    fn paper_example_three_then_two_vs_two_then_three() {
        // §III-B: "three nested arcs followed by two nested arcs" vs "two
        // nested arcs followed by three nested arcs" => 4 matched arcs.
        let s1 = dot_bracket::parse("(((...)))((...))").unwrap();
        let s2 = dot_bracket::parse("((...))(((...)))").unwrap();
        assert_eq!(full_compressed(&s1, &s2), 4);
        // Identical ordering => 5.
        assert_eq!(full_compressed(&s1, &s1), 5);
    }

    #[test]
    fn compressed_matches_dense_on_random_structures() {
        for seed in 0..30 {
            let s1 = generate::random_structure(40, 0.8, seed);
            let s2 = generate::random_structure(36, 0.8, seed + 1000);
            assert_eq!(
                full_compressed(&s1, &s2),
                full_dense(&s1, &s2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn self_comparison_matches_all_arcs() {
        for seed in 0..15 {
            let s = generate::random_structure(50, 0.9, seed);
            assert_eq!(full_compressed(&s, &s), s.num_arcs(), "seed {seed}");
        }
    }

    #[test]
    fn score_bounded_by_smaller_structure() {
        for seed in 0..15 {
            let s1 = generate::random_structure(40, 0.9, seed);
            let s2 = generate::random_structure(30, 0.5, seed + 99);
            let v = full_compressed(&s1, &s2);
            assert!(v <= s1.num_arcs().min(s2.num_arcs()), "seed {seed}");
        }
    }

    #[test]
    fn cell_count_matches_window_product() {
        assert_eq!(cell_count((2, 5), (1, 7)), 18);
        assert_eq!(cell_count((2, 2), (1, 7)), 0);
    }

    #[test]
    fn tabulate_grid_shape() {
        let s = dot_bracket::parse("((.))").unwrap();
        let p = Preprocessed::build(&s);
        let g = tabulate_grid(&p, &p, p.full_range(), p.full_range(), |_, _| 0);
        assert_eq!(g.len(), 3 * 3);
        // With d2 forced to 0 the outer match cannot see the nested arc,
        // so the best is a single matched arc.
        assert_eq!(*g.last().unwrap(), 1);
    }

    #[test]
    fn grid_normalizes_empty_to_single_zero() {
        let s = dot_bracket::parse("...").unwrap();
        let p = Preprocessed::build(&s);
        let g = tabulate_grid(&p, &p, p.full_range(), p.full_range(), |_, _| 0);
        assert_eq!(g, vec![0]);
    }

    #[test]
    fn dense_empty_window() {
        let s = dot_bracket::parse("(.)").unwrap();
        // Inverted window encoded by j < i.
        assert_eq!(tabulate_dense(&s, &s, (2, 1), (0, 2), |_, _| 0), 0);
    }

    /// [`full_compressed`] rebuilt on [`tabulate_with_rows`].
    fn full_compressed_rows(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
        let p1 = Preprocessed::build(s1);
        let p2 = Preprocessed::build(s2);
        let cols = p2.num_arcs() as usize;
        let mut memo = vec![0u32; p1.num_arcs() as usize * cols];
        let (mut grid, mut d2_row) = (Vec::new(), Vec::new());
        for k1 in 0..p1.num_arcs() {
            for k2 in 0..p2.num_arcs() {
                let (lo2, hi2) = p2.under_range[k2 as usize];
                let v = tabulate_with_rows(
                    &p1,
                    &p2,
                    p1.under_range[k1 as usize],
                    p2.under_range[k2 as usize],
                    &mut grid,
                    &mut d2_row,
                    |g1, buf| {
                        let start = g1 as usize * cols;
                        buf.copy_from_slice(&memo[start + lo2 as usize..start + hi2 as usize]);
                    },
                );
                memo[k1 as usize * cols + k2 as usize] = v;
            }
        }
        let (lo2, hi2) = p2.full_range();
        tabulate_with_rows(
            &p1,
            &p2,
            p1.full_range(),
            p2.full_range(),
            &mut grid,
            &mut d2_row,
            |g1, buf| {
                let start = g1 as usize * cols;
                buf.copy_from_slice(&memo[start + lo2 as usize..start + hi2 as usize]);
            },
        )
    }

    #[test]
    fn rows_variant_matches_per_cell_variant() {
        for seed in 0..20 {
            let s1 = generate::random_structure(48, 0.85, seed);
            let s2 = generate::random_structure(44, 0.85, seed + 500);
            assert_eq!(
                full_compressed_rows(&s1, &s2),
                full_compressed(&s1, &s2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rows_variant_empty_window_skips_fill() {
        let s = dot_bracket::parse("(.)").unwrap();
        let p = Preprocessed::build(&s);
        let (mut grid, mut d2_row) = (Vec::new(), Vec::new());
        let v = tabulate_with_rows(&p, &p, (0, 0), (0, 1), &mut grid, &mut d2_row, |_, _| {
            panic!("fill_d2 must not run for an empty window")
        });
        assert_eq!(v, 0);
    }
}

//! SRNA1 (Algorithm 1 of the paper): bottom-up slice tabulation with
//! recursive, memoized child-slice spawning.
//!
//! SRNA1 tabulates the parent slice bottom-up; the first time a matched
//! arc pair is encountered whose child slice has not been memoized, the
//! child slice is *spawned* — tabulated by a recursive call — and its
//! final value stored in the memo table `M`. The conditional lookup
//! (`KEY_NOT_FOUND` check) executes inside the innermost loop, which is
//! exactly the `Θ(n²m²)` overhead SRNA2 removes.
//!
//! The paper proves the recursion depth never exceeds one when starting
//! from the parent slice: the arcs under a matched pair were all
//! encountered *earlier* in the spawning slice's own traversal (their
//! right endpoints are smaller), so every memo entry a spawned child
//! needs is already present. [`Outcome::counters`] records the observed
//! maximum depth so tests can assert this claim.

use rna_structure::ArcStructure;

use crate::counters::Counters;
use crate::kernel::{KernelKind, KernelScratch, SliceKernel};
use crate::memo::{MemoTable, NOT_FOUND};
use crate::preprocess::Preprocessed;
use crate::slice::ArcRange;

/// Result of an SRNA1 run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The MCOS score: maximum number of matched arcs.
    pub score: u32,
    /// The memoization table (arc-indexed; unspawned pairs keep
    /// [`NOT_FOUND`]).
    pub memo: MemoTable,
    /// Work counters, including the observed maximum spawn depth.
    pub counters: Counters,
}

struct Ctx<'a> {
    p1: &'a Preprocessed,
    p2: &'a Preprocessed,
    memo: MemoTable,
    counters: Counters,
    /// One scratch grid per recursion depth.
    scratch: Vec<Vec<u32>>,
    /// One kernel scratch per recursion depth (kernel-dispatched runs).
    kscratch: Vec<KernelScratch>,
}

impl Ctx<'_> {
    /// Tabulates the slice over `range1 × range2` at recursion `depth`,
    /// spawning child slices on memo misses.
    ///
    /// This reimplements the compressed-grid loop of
    /// [`slice::tabulate_with`](crate::slice::tabulate_with) inline
    /// because the d2 provider must recursively borrow the whole context.
    fn tabulate(&mut self, range1: ArcRange, range2: ArcRange, depth: usize) -> u32 {
        let (lo1, hi1) = range1;
        let (lo2, hi2) = range2;
        let a = (hi1 - lo1) as usize;
        let b = (hi2 - lo2) as usize;
        if a == 0 || b == 0 {
            return 0;
        }
        self.counters.slices += 1;
        self.counters.cells += (a * b) as u64;
        self.counters.max_spawn_depth = self.counters.max_spawn_depth.max(depth as u64);
        self.counters.max_cells_per_slice = self.counters.max_cells_per_slice.max((a * b) as u64);

        if self.scratch.len() <= depth {
            self.scratch.resize_with(depth + 1, Vec::new);
        }
        let mut grid = std::mem::take(&mut self.scratch[depth]);
        let width = b + 1;
        grid.clear();
        grid.resize((a + 1) * width, 0);

        for p in 0..a {
            let g1 = lo1 + p as u32;
            let r1 = (self.p1.rank_before_left[g1 as usize].max(lo1) - lo1) as usize;
            let row = (p + 1) * width;
            let prev = p * width;
            let d1_row = r1 * width;
            for q in 0..b {
                let g2 = lo2 + q as u32;
                let r2 = (self.p2.rank_before_left[g2 as usize].max(lo2) - lo2) as usize;
                let s = grid[prev + q + 1].max(grid[row + q]);
                let d1 = grid[d1_row + r2];
                // The SRNA1 signature move: conditional memo lookup with
                // spawn-on-miss, inside the innermost loop.
                let mut d2v = self.memo.get(g1, g2);
                if d2v == NOT_FOUND {
                    self.counters.memo_misses += 1;
                    let c1 = self.p1.under_range[g1 as usize];
                    let c2 = self.p2.under_range[g2 as usize];
                    d2v = self.tabulate(c1, c2, depth + 1);
                    self.memo.set(g1, g2, d2v);
                } else {
                    self.counters.memo_hits += 1;
                }
                grid[row + q + 1] = s.max(1 + d1 + d2v);
            }
        }
        let result = grid[(a + 1) * width - 1];
        self.scratch[depth] = grid;
        result
    }

    /// Kernel-dispatched variant of [`Ctx::tabulate`]: the per-cell
    /// conditional memo lookup becomes a per-row lookup-or-spawn fill
    /// that resolves the row's children *before* the kernel tabulates
    /// it. The lookup sequence is unchanged — one conditional lookup
    /// per cell, in the same `(p, q)` order — so hit/miss/spawn
    /// counters match the classic loop exactly.
    fn tabulate_kernel(
        &mut self,
        kernel: &dyn SliceKernel,
        range1: ArcRange,
        range2: ArcRange,
        depth: usize,
    ) -> u32 {
        let (lo1, hi1) = range1;
        let (lo2, hi2) = range2;
        let a = (hi1 - lo1) as usize;
        let b = (hi2 - lo2) as usize;
        if a == 0 || b == 0 {
            return 0;
        }
        self.counters.slices += 1;
        self.counters.cells += (a * b) as u64;
        self.counters.max_spawn_depth = self.counters.max_spawn_depth.max(depth as u64);
        self.counters.max_cells_per_slice = self.counters.max_cells_per_slice.max((a * b) as u64);

        if self.kscratch.len() <= depth {
            self.kscratch.resize_with(depth + 1, KernelScratch::default);
        }
        let mut scratch = std::mem::take(&mut self.kscratch[depth]);
        let (p1, p2) = (self.p1, self.p2);
        let v = kernel.tabulate(p1, p2, range1, range2, &mut scratch, &mut |g1, buf| {
            for (q, slot) in buf.iter_mut().enumerate() {
                let g2 = lo2 + q as u32;
                let mut d2v = self.memo.get(g1, g2);
                if d2v == NOT_FOUND {
                    self.counters.memo_misses += 1;
                    let c1 = p1.under_range[g1 as usize];
                    let c2 = p2.under_range[g2 as usize];
                    d2v = self.tabulate_kernel(kernel, c1, c2, depth + 1);
                    self.memo.set(g1, g2, d2v);
                } else {
                    self.counters.memo_hits += 1;
                }
                *slot = d2v;
            }
        });
        self.kscratch[depth] = scratch;
        v
    }
}

/// Runs SRNA1 on two structures.
pub fn run(s1: &ArcStructure, s2: &ArcStructure) -> Outcome {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    run_preprocessed(&p1, &p2)
}

/// Runs SRNA1 with caller-supplied preprocessing (for reuse across runs).
pub fn run_preprocessed(p1: &Preprocessed, p2: &Preprocessed) -> Outcome {
    let mut ctx = new_ctx(p1, p2);
    let score = ctx.tabulate(p1.full_range(), p2.full_range(), 0);
    Outcome {
        score,
        memo: ctx.memo,
        counters: ctx.counters,
    }
}

/// Runs SRNA1 through a selected
/// [`SliceKernel`](crate::kernel::SliceKernel): same spawning
/// discipline, same memo contents and counters, with the inner loop
/// swapped for the chosen kernel.
pub fn run_with_kernel(s1: &ArcStructure, s2: &ArcStructure, kernel: KernelKind) -> Outcome {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    run_preprocessed_with_kernel(&p1, &p2, kernel)
}

/// [`run_with_kernel`] over prebuilt preprocessing tables.
pub fn run_preprocessed_with_kernel(
    p1: &Preprocessed,
    p2: &Preprocessed,
    kernel: KernelKind,
) -> Outcome {
    let mut ctx = new_ctx(p1, p2);
    let score = ctx.tabulate_kernel(kernel.kernel(), p1.full_range(), p2.full_range(), 0);
    Outcome {
        score,
        memo: ctx.memo,
        counters: ctx.counters,
    }
}

fn new_ctx<'a>(p1: &'a Preprocessed, p2: &'a Preprocessed) -> Ctx<'a> {
    Ctx {
        p1,
        p2,
        memo: MemoTable::unset(p1.num_arcs(), p2.num_arcs()),
        counters: Counters::default(),
        scratch: Vec::new(),
        kscratch: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn tiny_cases() {
        let cases = [
            ("", "", 0u32),
            ("...", "...", 0),
            ("(.)", "(.)", 1),
            ("(.)", "...", 0),
            ("((.))", "((.))", 2),
            ("(.)(.)", "(.)(.)", 2),
            ("((.))", "(.)(.)", 1),
            ("(((...)))((...))", "((...))(((...)))", 4),
        ];
        for (a, b, want) in cases {
            let s1 = dot_bracket::parse(a).unwrap();
            let s2 = dot_bracket::parse(b).unwrap();
            assert_eq!(run(&s1, &s2).score, want, "{a} vs {b}");
            assert_eq!(run(&s2, &s1).score, want, "symmetric {b} vs {a}");
        }
    }

    #[test]
    fn self_comparison_matches_all_arcs() {
        for seed in 0..10 {
            let s = generate::random_structure(60, 0.9, seed);
            assert_eq!(run(&s, &s).score, s.num_arcs(), "seed {seed}");
        }
    }

    #[test]
    fn spawn_depth_never_exceeds_one() {
        // The paper's §IV-A claim: starting from the parent slice, every
        // memo entry a spawned child needs is already present, so the
        // recursion depth is at most 1 (depth 0 = parent slice).
        for seed in 0..20 {
            let s1 = generate::random_structure(80, 1.0, seed);
            let s2 = generate::random_structure(70, 1.0, seed + 500);
            let out = run(&s1, &s2);
            assert!(
                out.counters.max_spawn_depth <= 1,
                "seed {seed}: depth {}",
                out.counters.max_spawn_depth
            );
        }
        // Also on the contrived worst case, the most nested input.
        let w = generate::worst_case_nested(40);
        assert!(run(&w, &w).counters.max_spawn_depth <= 1);
    }

    #[test]
    fn worst_case_scores_match_arc_count() {
        let s = generate::worst_case_nested(25);
        let out = run(&s, &s);
        assert_eq!(out.score, 25);
        // Every arc pair spawns a child slice exactly once.
        assert_eq!(out.counters.memo_misses, 25 * 25);
    }

    #[test]
    fn memo_contains_child_slice_values() {
        // For the fully nested worst case, the child slice under arc pair
        // (k1, k2) (right-endpoint order) matches min(k1, k2) arcs.
        let s = generate::worst_case_nested(8);
        let out = run(&s, &s);
        for k1 in 0..8 {
            for k2 in 0..8 {
                assert_eq!(out.memo.get(k1, k2), k1.min(k2), "({k1},{k2})");
            }
        }
    }

    #[test]
    fn kernel_runs_match_classic_loop_exactly() {
        // Score, memo (including which pairs stay NOT_FOUND) and every
        // counter — the kernel path must not change what gets spawned.
        for seed in 0..10 {
            let s1 = generate::random_structure(56, 0.9, seed);
            let s2 = generate::random_structure(48, 0.8, seed + 900);
            let reference = run(&s1, &s2);
            for kernel in KernelKind::ALL {
                let out = run_with_kernel(&s1, &s2, kernel);
                assert_eq!(out.score, reference.score, "seed {seed} {}", kernel.name());
                assert_eq!(out.memo, reference.memo, "seed {seed} {}", kernel.name());
                assert_eq!(
                    out.counters,
                    reference.counters,
                    "counters diverged: seed {seed} {}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn different_lengths() {
        let s1 = dot_bracket::parse("((((....))))").unwrap();
        let s2 = dot_bracket::parse("((.))").unwrap();
        assert_eq!(run(&s1, &s2).score, 2);
    }
}

//! SRNA2 (Algorithms 2–3 of the paper): the two-stage, recursion-free
//! sequential algorithm, and the basis of the parallel algorithm PRNA.
//!
//! SRNA2 removes SRNA1's per-cell conditional memo lookup by *guaranteeing*
//! that every lookup hits:
//!
//! 1. **Stage one** tabulates the child slice of every arc pair, iterating
//!    both structures' arcs by increasing right endpoint. Any dynamic
//!    dependency of a child slice is a strictly nested arc pair, whose
//!    right endpoints are strictly smaller — hence already memoized.
//! 2. **Stage two** tabulates the parent slice with plain memo reads.
//!
//! The run reports per-stage wall-clock timings ([`StageTimings`]),
//! reproducing the paper's Table III instrumentation, and exact work
//! counters for the overtabulation ablation.

use std::time::{Duration, Instant};

use rna_structure::ArcStructure;

use crate::counters::Counters;
use crate::kernel::{KernelKind, KernelScratch};
use crate::memo::MemoTable;
use crate::preprocess::Preprocessed;
use crate::slice;

/// Wall-clock time spent in each phase of an SRNA2 run (Table III).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Preprocessing: building the per-structure index tables.
    pub preprocessing: Duration,
    /// Stage one: tabulation of all child slices.
    pub stage_one: Duration,
    /// Stage two: tabulation of the parent slice.
    pub stage_two: Duration,
}

impl StageTimings {
    /// Total of the three phases.
    pub fn total(&self) -> Duration {
        self.preprocessing + self.stage_one + self.stage_two
    }

    /// Percentage breakdown `(preprocessing, stage one, stage two)`;
    /// all zeros when the total is zero.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.preprocessing.as_secs_f64() / total,
            100.0 * self.stage_one.as_secs_f64() / total,
            100.0 * self.stage_two.as_secs_f64() / total,
        )
    }
}

/// Result of an SRNA2 run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The MCOS score: maximum number of matched arcs.
    pub score: u32,
    /// The fully populated child-slice memo table.
    pub memo: MemoTable,
    /// Work counters.
    pub counters: Counters,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

/// Runs SRNA2 on two structures.
pub fn run(s1: &ArcStructure, s2: &ArcStructure) -> Outcome {
    let t0 = Instant::now();
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let preprocessing = t0.elapsed();
    let mut out = run_preprocessed(&p1, &p2);
    out.timings.preprocessing = preprocessing;
    out
}

/// Runs stages one and two with caller-supplied preprocessing.
pub fn run_preprocessed(p1: &Preprocessed, p2: &Preprocessed) -> Outcome {
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let mut memo = MemoTable::zeroed(a1, a2);
    let mut counters = Counters::default();
    let mut grid = Vec::new();

    // Stage one: tabulate every child slice by increasing right endpoint
    // of both arcs (the arc index order).
    let t1 = Instant::now();
    for k1 in 0..a1 {
        let c1 = p1.under_range[k1 as usize];
        for k2 in 0..a2 {
            let c2 = p2.under_range[k2 as usize];
            let v = slice::tabulate_with(p1, p2, c1, c2, &mut grid, |g1, g2| memo.get(g1, g2));
            memo.set(k1, k2, v);
            let cells = slice::cell_count(c1, c2);
            counters.cells += cells;
            counters.slices += 1;
            counters.max_cells_per_slice = counters.max_cells_per_slice.max(cells);
        }
    }
    let stage_one = t1.elapsed();

    // Stage two: the parent slice.
    let t2 = Instant::now();
    let score = slice::tabulate_with(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        &mut grid,
        |g1, g2| memo.get(g1, g2),
    );
    let parent_cells = slice::cell_count(p1.full_range(), p2.full_range());
    counters.cells += parent_cells;
    counters.slices += 1;
    counters.max_cells_per_slice = counters.max_cells_per_slice.max(parent_cells);
    let stage_two = t2.elapsed();

    Outcome {
        score,
        memo,
        counters,
        timings: StageTimings {
            preprocessing: Duration::ZERO,
            stage_one,
            stage_two,
        },
    }
}

/// Runs SRNA2 through a selected [`SliceKernel`](crate::kernel::SliceKernel)
/// instead of the reference loop. Scores, memo tables and counters are
/// identical to [`run`] for every kernel (the kernel contract).
pub fn run_with_kernel(s1: &ArcStructure, s2: &ArcStructure, kernel: KernelKind) -> Outcome {
    let t0 = Instant::now();
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let preprocessing = t0.elapsed();
    let mut out = run_preprocessed_with_kernel(&p1, &p2, kernel);
    out.timings.preprocessing = preprocessing;
    out
}

/// [`run_with_kernel`] over prebuilt preprocessing tables.
pub fn run_preprocessed_with_kernel(
    p1: &Preprocessed,
    p2: &Preprocessed,
    kernel: KernelKind,
) -> Outcome {
    let k = kernel.kernel();
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let mut memo = MemoTable::zeroed(a1, a2);
    let mut counters = Counters::default();
    let mut scratch = KernelScratch::default();

    let t1 = Instant::now();
    for k1 in 0..a1 {
        let c1 = p1.under_range[k1 as usize];
        for k2 in 0..a2 {
            let c2 = p2.under_range[k2 as usize];
            let (lo2, hi2) = c2;
            let v = k.tabulate(p1, p2, c1, c2, &mut scratch, &mut |g1, buf| {
                buf.copy_from_slice(&memo.row(g1)[lo2 as usize..hi2 as usize]);
            });
            memo.set(k1, k2, v);
            let cells = slice::cell_count(c1, c2);
            counters.cells += cells;
            counters.slices += 1;
            counters.max_cells_per_slice = counters.max_cells_per_slice.max(cells);
        }
    }
    let stage_one = t1.elapsed();

    let t2 = Instant::now();
    let (lo2, hi2) = p2.full_range();
    let score = k.tabulate(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        &mut scratch,
        &mut |g1, buf| buf.copy_from_slice(&memo.row(g1)[lo2 as usize..hi2 as usize]),
    );
    let parent_cells = slice::cell_count(p1.full_range(), p2.full_range());
    counters.cells += parent_cells;
    counters.slices += 1;
    counters.max_cells_per_slice = counters.max_cells_per_slice.max(parent_cells);
    let stage_two = t2.elapsed();

    Outcome {
        score,
        memo,
        counters,
        timings: StageTimings {
            preprocessing: Duration::ZERO,
            stage_one,
            stage_two,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srna1;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn tiny_cases() {
        let cases = [
            ("", "", 0u32),
            ("...", "...", 0),
            ("(.)", "(.)", 1),
            ("((.))", "((.))", 2),
            ("(.)(.)", "((.))", 1),
            ("(((...)))((...))", "((...))(((...)))", 4),
        ];
        for (a, b, want) in cases {
            let s1 = dot_bracket::parse(a).unwrap();
            let s2 = dot_bracket::parse(b).unwrap();
            assert_eq!(run(&s1, &s2).score, want, "{a} vs {b}");
        }
    }

    #[test]
    fn agrees_with_srna1_on_random_structures() {
        for seed in 0..40 {
            let s1 = generate::random_structure(64, 0.9, seed);
            let s2 = generate::random_structure(56, 0.7, seed + 4000);
            let v1 = srna1::run(&s1, &s2);
            let v2 = run(&s1, &s2);
            assert_eq!(v1.score, v2.score, "seed {seed}");
            // SRNA1's memo is a subset: every spawned entry must agree.
            for k1 in 0..s1.num_arcs() {
                for k2 in 0..s2.num_arcs() {
                    let m1 = v1.memo.get(k1, k2);
                    if m1 != crate::memo::NOT_FOUND {
                        assert_eq!(m1, v2.memo.get(k1, k2), "seed {seed} ({k1},{k2})");
                    }
                }
            }
        }
    }

    #[test]
    fn stage_one_tabulates_every_arc_pair() {
        let s = generate::worst_case_nested(12);
        let out = run(&s, &s);
        // 12*12 child slices + 1 parent slice.
        assert_eq!(out.counters.slices, 145);
        // Child slice (k1,k2) costs k1*k2 cells; parent costs 12*12.
        let expected: u64 = (0..12u64)
            .flat_map(|a| (0..12u64).map(move |b| a * b))
            .sum::<u64>()
            + 144;
        assert_eq!(out.counters.cells, expected);
    }

    #[test]
    fn srna2_performs_no_conditional_lookups() {
        let s = generate::worst_case_nested(10);
        let out = run(&s, &s);
        assert_eq!(out.counters.memo_hits, 0);
        assert_eq!(out.counters.memo_misses, 0);
    }

    #[test]
    fn every_kernel_matches_reference_run() {
        use crate::kernel::KernelKind;
        for seed in 0..8 {
            let s1 = generate::random_structure(60, 0.9, seed);
            let s2 = generate::random_structure(52, 0.8, seed + 7000);
            let reference = run(&s1, &s2);
            for kernel in KernelKind::ALL {
                let out = run_with_kernel(&s1, &s2, kernel);
                assert_eq!(out.score, reference.score, "seed {seed} {}", kernel.name());
                assert_eq!(out.memo, reference.memo, "seed {seed} {}", kernel.name());
                assert_eq!(
                    out.counters,
                    reference.counters,
                    "counters diverged: seed {seed} {}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn timings_are_populated() {
        let s = generate::worst_case_nested(60);
        let out = run(&s, &s);
        assert!(out.timings.stage_one > Duration::ZERO);
        let (p, one, two) = out.timings.percentages();
        assert!((p + one + two - 100.0).abs() < 1e-6);
        // Stage one dominates (Table III shows > 99% at realistic sizes).
        assert!(one > 50.0, "stage one was only {one:.2}%");
    }

    #[test]
    fn percentages_of_zero_timings() {
        let t = StageTimings::default();
        assert_eq!(t.percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn memo_is_complete_after_stage_one() {
        let s = generate::worst_case_nested(8);
        let out = run(&s, &s);
        for k1 in 0..8 {
            for k2 in 0..8 {
                assert_eq!(out.memo.get(k1, k2), k1.min(k2));
            }
        }
    }

    #[test]
    fn asymmetric_structures() {
        let s1 = generate::hairpin_chain(3, 4, 2);
        let s2 = generate::worst_case_nested(6);
        // Best: align the deepest hairpin stem (4 nested arcs) against the
        // nest of 6.
        assert_eq!(run(&s1, &s2).score, 4);
        assert_eq!(run(&s2, &s1).score, 4);
    }
}

//! Execution tracing for dynamic happens-before checking of stage one.
//!
//! The wavefront backend (and every row-synchronized backend before it)
//! rests on a *prose* happens-before argument: each memo entry is
//! written exactly once, and every read of it is separated from the
//! write by a synchronizing edge (a thread join, a channel hand-off, a
//! row allreduce). This module makes that argument *checkable*: traced
//! executions record every memo access and every synchronizing edge
//! into a [`TraceLog`], and the vector-clock checker in the `analysis`
//! crate replays the log and reports any access pair that the recorded
//! edges do not order.
//!
//! # Event model
//!
//! A traced run is a set of *tasks* (logical threads: workers, ranks,
//! and the coordinator), each with its own logical clock. Six event
//! kinds capture everything the backends do:
//!
//! * [`TraceEvent::Fork`] / [`TraceEvent::Join`] — thread spawn/join
//!   edges (also used for `mpi-sim` rank launch and collection).
//! * [`TraceEvent::Arrive`] / [`TraceEvent::Leave`] — a named barrier:
//!   arriving contributes the task's history to the barrier, leaving
//!   acquires the history of everyone who arrived before the leave.
//!   This uniformly models the pool's per-row completion-marker
//!   hand-off, and the allreduce of the message-passing backends (an
//!   allreduce is semantically a barrier: no rank returns before every
//!   rank has contributed).
//! * [`TraceEvent::Read`] / [`TraceEvent::Write`] — memo-table
//!   accesses, tagged with the arc-pair entry and (for reads) the
//!   *owner* slice on whose behalf the read happens, so the checker can
//!   also validate the dependency-cone claim (a slice reads only arc
//!   pairs strictly nested under it).
//!
//! # Recording discipline
//!
//! The log is a single mutex-ordered sequence, so the *order in which
//! events are appended* is itself a witness. Traced executors follow a
//! conservative discipline that makes the logged order consistent with
//! the real one wherever it matters:
//!
//! * a `Write` is recorded **before** the value is published to the
//!   shared table (record-then-publish);
//! * a `Read` is recorded **after** the value is gathered
//!   (gather-then-record);
//! * an `Arrive` is recorded **before** the signal that releases other
//!   tasks (record-then-send);
//! * a `Leave` is recorded **after** the signal that releases this task
//!   (receive-then-record).
//!
//! Under this discipline, if a read could have observed a write in the
//! real execution, the write's record precedes the read's record in the
//! log, and every synchronizing edge claimed in the log corresponds to
//! a real one — so a clean replay verdict is meaningful and a violation
//! is a real schedule hole (no false negatives from logging skew;
//! spurious interleavings can only *add* violations, never mask them).
//!
//! Replication is not recorded: when a coordinator copies an
//! already-computed value into a snapshot or a replica (the wavefront
//! `settled` fold, the pool's write-lock install, the mpi row merge),
//! the *logical* write remains the one recorded by the computing task.
//! Coordinator copies that are later read are instead recorded as
//! coordinator `Read`s, so the HB chain still passes through the
//! barrier that made the copy sound.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::memo::AtomicMemoTable;

/// Identifies one logical task (worker thread, rank, or coordinator) in
/// a traced run. Allocated by [`TraceLog::alloc_task`].
pub type TaskId = u32;

/// Owner sentinel for reads made outside any child slice: the parent
/// slice of stage two, or coordinator snapshot folds. Such reads are
/// exempt from the dependency-cone check (the parent may read every
/// entry) but still subject to the happens-before check.
pub const PARENT_SLICE: (u32, u32) = (u32::MAX, u32::MAX);

/// One recorded event of a traced execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `parent` spawned `child`: everything `parent` did so far
    /// happens-before everything `child` does.
    Fork {
        /// Spawning task.
        parent: TaskId,
        /// Spawned task.
        child: TaskId,
    },
    /// `parent` joined `child`: everything `child` did happens-before
    /// everything `parent` does next.
    Join {
        /// Joining task.
        parent: TaskId,
        /// Joined task.
        child: TaskId,
    },
    /// `task` arrived at barrier `barrier`, contributing its history.
    Arrive {
        /// Arriving task.
        task: TaskId,
        /// Barrier identity (e.g. the row or level index).
        barrier: u32,
    },
    /// `task` left barrier `barrier`, acquiring the history of every
    /// task whose arrival was recorded before this leave.
    Leave {
        /// Leaving task.
        task: TaskId,
        /// Barrier identity.
        barrier: u32,
    },
    /// `task` read memo entry `(r, c)` while tabulating slice `owner`
    /// (or [`PARENT_SLICE`]).
    Read {
        /// Reading task.
        task: TaskId,
        /// Arc pair of the slice on whose behalf the read happens.
        owner: (u32, u32),
        /// Memo row (arc of `S₁`).
        r: u32,
        /// Memo column (arc of `S₂`).
        c: u32,
    },
    /// `task` wrote memo entry `(r, c)` (the slice it just tabulated).
    Write {
        /// Writing task.
        task: TaskId,
        /// Memo row.
        r: u32,
        /// Memo column.
        c: u32,
    },
}

/// Optional per-event delay hook (installed by the race detector to
/// perturb interleavings; see `par_sim::jitter`). Kept as a plain
/// closure so `mcos-core` does not depend on the simulator crate.
pub type DelayHook = Box<dyn Fn() + Send + Sync>;

/// A shared, append-only log of [`TraceEvent`]s plus a task-id
/// allocator.
///
/// One `TraceLog` covers one traced run. All methods take `&self`; the
/// log is shared by reference across the run's threads.
pub struct TraceLog {
    events: Mutex<Vec<TraceEvent>>,
    // ORDERING: Relaxed — the allocator only needs distinct ids; the
    // fork events recorded around task creation carry the ordering.
    next_task: AtomicU32,
    delay: Option<DelayHook>,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("events", &self.len())
            // ORDERING: Relaxed — diagnostic read of the id counter.
            .field("tasks", &self.next_task.load(Ordering::Relaxed))
            .field("delayed", &self.delay.is_some())
            .finish()
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceLog {
    /// Creates an empty log with no delay injection.
    pub fn new() -> Self {
        TraceLog {
            events: Mutex::new(Vec::new()),
            next_task: AtomicU32::new(0),
            delay: None,
        }
    }

    /// Creates an empty log that calls `hook` once per recorded event,
    /// *before* appending (and before the write/send the event
    /// witnesses), to shake thread interleavings.
    pub fn with_delay(hook: DelayHook) -> Self {
        TraceLog {
            events: Mutex::new(Vec::new()),
            next_task: AtomicU32::new(0),
            delay: Some(hook),
        }
    }

    /// Allocates a fresh task id.
    pub fn alloc_task(&self) -> TaskId {
        // ORDERING: Relaxed — ids only need to be distinct; the fork
        // events recorded around task creation carry the ordering.
        self.next_task.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates `n` consecutive task ids, returning the first.
    pub fn alloc_tasks(&self, n: u32) -> TaskId {
        // ORDERING: Relaxed — same as `alloc_task`; a single RMW hands
        // out a disjoint id block regardless of ordering.
        self.next_task.fetch_add(n, Ordering::Relaxed)
    }

    /// Number of task ids handed out so far.
    pub fn num_tasks(&self) -> u32 {
        // ORDERING: Relaxed — callers read this after the run's joins,
        // which already order every allocation before the load.
        self.next_task.load(Ordering::Relaxed)
    }

    /// Runs the delay hook (if any) without recording an event. Traced
    /// executors call this before bulk gathers so injected delays also
    /// land between a publisher's store and a reader's load.
    pub fn perturb(&self) {
        if let Some(hook) = &self.delay {
            hook();
        }
    }

    /// Appends one event (after running the delay hook, if installed).
    pub fn record(&self, ev: TraceEvent) {
        self.perturb();
        self.events.lock().expect("trace log poisoned").push(ev);
    }

    /// Records a [`TraceEvent::Fork`].
    pub fn fork(&self, parent: TaskId, child: TaskId) {
        self.record(TraceEvent::Fork { parent, child });
    }

    /// Records a [`TraceEvent::Join`].
    pub fn join(&self, parent: TaskId, child: TaskId) {
        self.record(TraceEvent::Join { parent, child });
    }

    /// Records a [`TraceEvent::Arrive`].
    pub fn arrive(&self, task: TaskId, barrier: u32) {
        self.record(TraceEvent::Arrive { task, barrier });
    }

    /// Records a [`TraceEvent::Leave`].
    pub fn leave(&self, task: TaskId, barrier: u32) {
        self.record(TraceEvent::Leave { task, barrier });
    }

    /// Records a [`TraceEvent::Read`].
    pub fn read(&self, task: TaskId, owner: (u32, u32), r: u32, c: u32) {
        self.record(TraceEvent::Read { task, owner, r, c });
    }

    /// Records a [`TraceEvent::Write`].
    pub fn write(&self, task: TaskId, r: u32, c: u32) {
        self.record(TraceEvent::Write { task, r, c });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace log poisoned").len()
    }

    /// Whether the log is still empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the recorded events (log becomes empty).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace log poisoned"))
    }
}

/// An [`AtomicMemoTable`] whose accesses are recorded into a
/// [`TraceLog`].
///
/// Writes follow record-then-publish, reads gather-then-record (see the
/// module docs), so the shared log order is a conservative witness of
/// the real access order.
#[derive(Debug)]
pub struct TracingMemoTable<'a> {
    inner: &'a AtomicMemoTable,
    log: &'a TraceLog,
}

impl<'a> TracingMemoTable<'a> {
    /// Wraps `inner` so its accesses are recorded into `log`.
    pub fn new(inner: &'a AtomicMemoTable, log: &'a TraceLog) -> Self {
        TracingMemoTable { inner, log }
    }

    /// Reads entry `(r, c)` on behalf of slice `owner`, recording the
    /// access after the physical load.
    pub fn get(&self, task: TaskId, owner: (u32, u32), r: u32, c: u32) -> u32 {
        let v = self.inner.get(r, c);
        self.log.read(task, owner, r, c);
        v
    }

    /// Writes entry `(r, c)`, recording the access before the physical
    /// store.
    pub fn set(&self, task: TaskId, r: u32, c: u32, v: u32) {
        self.log.write(task, r, c);
        self.inner.set(r, c, v);
    }

    /// The wrapped table.
    pub fn inner(&self) -> &AtomicMemoTable {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_are_distinct_and_consecutive() {
        let log = TraceLog::new();
        assert_eq!(log.alloc_task(), 0);
        assert_eq!(log.alloc_tasks(3), 1);
        assert_eq!(log.alloc_task(), 4);
        assert_eq!(log.num_tasks(), 5);
    }

    #[test]
    fn events_are_recorded_in_order() {
        let log = TraceLog::new();
        log.fork(0, 1);
        log.write(1, 2, 3);
        log.read(0, PARENT_SLICE, 2, 3);
        log.join(0, 1);
        assert_eq!(log.len(), 4);
        let events = log.take_events();
        assert!(log.is_empty());
        assert_eq!(
            events[0],
            TraceEvent::Fork {
                parent: 0,
                child: 1
            }
        );
        assert_eq!(
            events[1],
            TraceEvent::Write {
                task: 1,
                r: 2,
                c: 3
            }
        );
        assert_eq!(
            events[2],
            TraceEvent::Read {
                task: 0,
                owner: PARENT_SLICE,
                r: 2,
                c: 3
            }
        );
        assert_eq!(
            events[3],
            TraceEvent::Join {
                parent: 0,
                child: 1
            }
        );
    }

    #[test]
    fn delay_hook_fires_per_event() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let log = TraceLog::with_delay(Box::new(move || {
            hits2.fetch_add(1, Ordering::Relaxed);
        }));
        log.arrive(0, 0);
        log.leave(0, 0);
        log.perturb();
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn tracing_table_records_and_forwards() {
        let table = AtomicMemoTable::zeroed(2, 2);
        let log = TraceLog::new();
        let traced = TracingMemoTable::new(&table, &log);
        traced.set(7, 1, 0, 42);
        assert_eq!(traced.get(8, (1, 1), 1, 0), 42);
        assert_eq!(traced.inner().get(1, 0), 42);
        let events = log.take_events();
        assert_eq!(
            events[0],
            TraceEvent::Write {
                task: 7,
                r: 1,
                c: 0
            }
        );
        assert_eq!(
            events[1],
            TraceEvent::Read {
                task: 8,
                owner: (1, 1),
                r: 1,
                c: 0
            }
        );
    }
}

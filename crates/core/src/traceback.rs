//! Traceback: recovering the optimal arc mapping, not just its size.
//!
//! SRNA2 memoizes only the final value of each child slice (the paper
//! notes this suffices "unless we are interested in backtracing the
//! subproblem that spawned the child slice"). To produce the actual
//! common substructure we re-tabulate just the slices on the optimal
//! path — the parent slice plus one child slice per matched arc pair —
//! and walk each compressed grid backwards:
//!
//! * a cell equal to its upper or left neighbour is a static move
//!   (`s₁`/`s₂`): drop the last arc of one window;
//! * otherwise the cell was set by the match case `1 + d₁ + d₂`: record
//!   the arc pair, recurse into the child slice for the `d₂` part, and
//!   jump to the `d₁` cell.
//!
//! Cost: `O(k · W)` where `k` is the number of matched pairs and `W` the
//! largest slice, versus the full run's sum over *all* slices.
//!
//! # Hirschberg-style linear-space recovery
//!
//! The same walk doubles as a Hirschberg divide-and-conquer over the
//! slice DAG: each match case *is* the split point — the problem
//! divides into the child slice under the matched pair (the `d₂` part)
//! and the prefix window before it (the `d₁` jump), and the two
//! sub-problems are recovered independently. Nothing in the walk needs
//! the full memo at once: every read goes through a cell lookup, so
//! [`traceback_oracle`] can run against a *partially evicted* memo
//! whose lookup recomputes dead cells through the slice kernel
//! ([`crate::recompute::CellOracle`]). The score pass then only ever
//! holds the live-level window resident, and the traceback re-derives
//! the rest on demand — bit-identical to the dense walk because the
//! lookup returns bit-identical values.

use rna_structure::ArcStructure;

use crate::memo::MemoTable;
use crate::preprocess::Preprocessed;
use crate::slice::ArcRange;
use crate::srna2;

/// The optimal common substructure as matched arc index pairs
/// `(arc of S₁, arc of S₂)`, in the order the traceback discovers them
/// (outermost-last within each slice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Matched arc index pairs.
    pub pairs: Vec<(u32, u32)>,
}

impl Mapping {
    /// Number of matched arcs — by construction equal to the MCOS score.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if no arcs were matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Runs SRNA2 and then recovers an optimal arc mapping.
pub fn traceback(s1: &ArcStructure, s2: &ArcStructure) -> Mapping {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let out = srna2::run_preprocessed(&p1, &p2);
    traceback_with(&p1, &p2, &out.memo)
}

/// Recovers an optimal arc mapping from a completed SRNA2/PRNA memo table.
pub fn traceback_with(p1: &Preprocessed, p2: &Preprocessed, memo: &MemoTable) -> Mapping {
    traceback_weighted(p1, p2, memo, &crate::weighted::Uniform(1))
}

/// Recovers an optimal arc mapping from a completed **weighted** memo
/// table (see [`crate::weighted`]); with [`crate::weighted::Uniform`]`(1)`
/// this is exactly [`traceback_with`].
pub fn traceback_weighted<W: crate::weighted::ArcWeight>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    memo: &MemoTable,
    weights: &W,
) -> Mapping {
    traceback_oracle(p1, p2, weights, &mut |g1, g2| memo.get(g1, g2))
}

/// Recovers an optimal arc mapping reading memo cells through `lookup`
/// instead of a dense table.
///
/// This is the linear-space entry point: under a budgeted run the
/// lookup serves resident cells from the windowed store and recomputes
/// evicted ones, so the recovery never needs the full grid resident.
/// With `lookup = |g1, g2| memo.get(g1, g2)` it is exactly
/// [`traceback_weighted`].
pub fn traceback_oracle<W: crate::weighted::ArcWeight>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    weights: &W,
    lookup: &mut dyn FnMut(u32, u32) -> u32,
) -> Mapping {
    let mut pairs = Vec::new();
    trace_slice(
        p1,
        p2,
        lookup,
        weights,
        p1.full_range(),
        p2.full_range(),
        &mut pairs,
    );
    Mapping { pairs }
}

fn trace_slice<W: crate::weighted::ArcWeight>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    lookup: &mut dyn FnMut(u32, u32) -> u32,
    weights: &W,
    range1: ArcRange,
    range2: ArcRange,
    out: &mut Vec<(u32, u32)>,
) {
    let (lo1, hi1) = range1;
    let (lo2, hi2) = range2;
    let a = (hi1 - lo1) as usize;
    let b = (hi2 - lo2) as usize;
    if a == 0 || b == 0 {
        return;
    }
    let mut grid = Vec::new();
    crate::weighted::tabulate_weighted(p1, p2, range1, range2, weights, &mut grid, |g1, g2| {
        lookup(g1, g2)
    });
    if grid.is_empty() {
        return;
    }
    let width = b + 1;
    let (mut p, mut q) = (a, b);
    while p > 0 && q > 0 {
        let cur = grid[p * width + q];
        if cur == 0 {
            break;
        }
        if grid[(p - 1) * width + q] == cur {
            p -= 1;
            continue;
        }
        if grid[p * width + q - 1] == cur {
            q -= 1;
            continue;
        }
        // Match case: arcs at window offsets p-1, q-1.
        let g1 = lo1 + (p as u32 - 1);
        let g2 = lo2 + (q as u32 - 1);
        out.push((g1, g2));
        // d2: recurse into the child slice under the matched pair —
        // the Hirschberg split point.
        trace_slice(
            p1,
            p2,
            lookup,
            weights,
            p1.under_range[g1 as usize],
            p2.under_range[g2 as usize],
            out,
        );
        // d1: jump to the cell just before the matched arcs open.
        let r1 = (p1.rank_before_left[g1 as usize].max(lo1) - lo1) as usize;
        let r2 = (p2.rank_before_left[g2 as usize].max(lo2) - lo2) as usize;
        debug_assert!(r1 < p && r2 < q, "d1 jump must strictly decrease");
        p = r1;
        q = r2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn traceback_size_equals_score() {
        for seed in 0..30 {
            let s1 = generate::random_structure(60, 0.9, seed);
            let s2 = generate::random_structure(50, 0.8, seed + 1234);
            let score = crate::mcos_score(&s1, &s2);
            let m = traceback(&s1, &s2);
            assert_eq!(m.len() as u32, score, "seed {seed}");
        }
    }

    #[test]
    fn traceback_is_a_valid_mapping() {
        for seed in 0..30 {
            let s1 = generate::random_structure(56, 1.0, seed);
            let s2 = generate::random_structure(64, 0.7, seed + 777);
            let m = traceback(&s1, &s2);
            verify::check_mapping(&s1, &s2, &m.pairs).unwrap_or_else(|e| {
                panic!("seed {seed}: invalid mapping: {e}");
            });
        }
    }

    #[test]
    fn self_comparison_maps_every_arc() {
        let s = dot_bracket::parse("((..))(..)((.))").unwrap();
        let m = traceback(&s, &s);
        assert_eq!(m.len() as u32, s.num_arcs());
        // Self-comparison admits the identity mapping; the traceback must
        // produce exactly it (any other complete mapping would change some
        // arc's partner and violate structure preservation at full size).
        let mut pairs = m.pairs.clone();
        pairs.sort_unstable();
        let expected: Vec<(u32, u32)> = (0..s.num_arcs()).map(|k| (k, k)).collect();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn paper_example_mapping() {
        let s1 = dot_bracket::parse("(((...)))((...))").unwrap();
        let s2 = dot_bracket::parse("((...))(((...)))").unwrap();
        let m = traceback(&s1, &s2);
        assert_eq!(m.len(), 4);
        verify::check_mapping(&s1, &s2, &m.pairs).unwrap();
    }

    #[test]
    fn empty_inputs() {
        let e = rna_structure::ArcStructure::unpaired(4);
        let s = dot_bracket::parse("(.)").unwrap();
        assert!(traceback(&e, &s).is_empty());
        assert!(traceback(&s, &e).is_empty());
    }

    #[test]
    fn weighted_traceback_total_equals_weighted_score() {
        use crate::weighted::{self, WeightMatrix};
        for seed in 0..10 {
            let s1 = generate::random_structure(44, 1.0, seed);
            let s2 = generate::random_structure(40, 0.8, seed + 31);
            let p1 = Preprocessed::build(&s1);
            let p2 = Preprocessed::build(&s2);
            let w = WeightMatrix::from_fn(s1.num_arcs(), s2.num_arcs(), |k1, k2| {
                (k1 * 13 + k2 * 7) % 6 + 1
            });
            let out = weighted::run_preprocessed(&p1, &p2, &w);
            let m = traceback_weighted(&p1, &p2, &out.memo, &w);
            use crate::weighted::ArcWeight;
            let total: u32 = m.pairs.iter().map(|&(a, b)| w.weight(a, b)).sum();
            assert_eq!(total, out.score, "seed {seed}");
            verify::check_mapping(&s1, &s2, &m.pairs).unwrap();
        }
    }

    #[test]
    fn worst_case_traceback() {
        let s = generate::worst_case_nested(20);
        let m = traceback(&s, &s);
        assert_eq!(m.len(), 20);
        verify::check_mapping(&s, &s, &m.pairs).unwrap();
    }
}

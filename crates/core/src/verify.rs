//! Independent validation of a claimed common substructure.
//!
//! [`check_mapping`] re-derives, from first principles (the MCOS problem
//! statement of §III-A), whether a set of arc pairs is a valid common
//! ordered substructure — without using any of the DP machinery, so it can
//! catch bugs in the recurrence, the slices and the traceback alike.
//!
//! A mapping `{(a_i, b_i)}` is valid iff
//!
//! 1. every index refers to an existing arc and no arc is used twice on
//!    either side, and
//! 2. for every two pairs, the arcs relate identically in both
//!    structures: `a_i` before `a_j` ⇔ `b_i` before `b_j`, and `a_i` nests
//!    `a_j` ⇔ `b_i` nests `b_j`.
//!
//! Condition 2 is exactly what makes the induced position mapping
//! order-preserving: the four endpoint orderings of two non-crossing,
//! endpoint-disjoint arcs are determined by their nesting/sequential
//! relation.

use rna_structure::{Arc, ArcStructure};

/// The relation between two distinct arcs of one non-pseudoknot structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    /// The first arc ends before the second begins.
    Before,
    /// The first arc begins after the second ends.
    After,
    /// The first arc strictly encloses the second.
    Nests,
    /// The first arc is strictly enclosed by the second.
    NestedBy,
}

fn relation(a: Arc, b: Arc) -> Relation {
    if a.right < b.left {
        Relation::Before
    } else if b.right < a.left {
        Relation::After
    } else if a.nests(&b) {
        Relation::Nests
    } else {
        debug_assert!(b.nests(&a), "valid structures admit no other relation");
        Relation::NestedBy
    }
}

/// Checks that `pairs` is a valid common ordered substructure of
/// `(s1, s2)`. Returns a human-readable description of the first
/// violation found.
pub fn check_mapping(
    s1: &ArcStructure,
    s2: &ArcStructure,
    pairs: &[(u32, u32)],
) -> Result<(), String> {
    // Condition 1: indices in range, no reuse.
    let mut used1 = vec![false; s1.num_arcs() as usize];
    let mut used2 = vec![false; s2.num_arcs() as usize];
    for &(a, b) in pairs {
        if a >= s1.num_arcs() {
            return Err(format!("arc index {a} out of range for S1"));
        }
        if b >= s2.num_arcs() {
            return Err(format!("arc index {b} out of range for S2"));
        }
        if std::mem::replace(&mut used1[a as usize], true) {
            return Err(format!("arc {a} of S1 matched twice"));
        }
        if std::mem::replace(&mut used2[b as usize], true) {
            return Err(format!("arc {b} of S2 matched twice"));
        }
    }
    // Condition 2: pairwise relation preservation.
    for (i, &(a1, b1)) in pairs.iter().enumerate() {
        for &(a2, b2) in &pairs[i + 1..] {
            let r1 = relation(s1.arc(a1), s1.arc(a2));
            let r2 = relation(s2.arc(b1), s2.arc(b2));
            if r1 != r2 {
                return Err(format!(
                    "pairs ({a1},{b1}) and ({a2},{b2}) relate as {r1:?} in S1 but {r2:?} in S2"
                ));
            }
        }
    }
    Ok(())
}

/// `true` iff `pairs` is a valid common ordered substructure.
pub fn is_valid_mapping(s1: &ArcStructure, s2: &ArcStructure, pairs: &[(u32, u32)]) -> bool {
    check_mapping(s1, s2, pairs).is_ok()
}

/// Exhaustive MCOS by brute force: tries every subset of arc pairs (via
/// backtracking over pair lists) and returns the size of the largest
/// valid mapping. Exponential — strictly for cross-checking the DP on
/// tiny structures.
pub fn brute_force_mcos(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
    let a1 = s1.num_arcs();
    let a2 = s2.num_arcs();
    let mut best = 0u32;
    let mut chosen: Vec<(u32, u32)> = Vec::new();

    // Backtrack over arcs of S1 in index order; for each, either skip it
    // or match it to any unused arc of S2 consistent with the current set.
    #[allow(clippy::too_many_arguments)] // flat backtracking state beats a context struct here
    fn go(
        s1: &ArcStructure,
        s2: &ArcStructure,
        k1: u32,
        a1: u32,
        a2: u32,
        used2: &mut Vec<bool>,
        chosen: &mut Vec<(u32, u32)>,
        best: &mut u32,
    ) {
        // Bound: even matching every remaining arc cannot beat best.
        if chosen.len() as u32 + (a1 - k1) <= *best {
            return;
        }
        if k1 == a1 {
            *best = (*best).max(chosen.len() as u32);
            return;
        }
        for k2 in 0..a2 {
            if used2[k2 as usize] {
                continue;
            }
            let candidate = (k1, k2);
            let consistent = chosen.iter().all(|&(c1, c2)| {
                relation(s1.arc(c1), s1.arc(candidate.0))
                    == relation(s2.arc(c2), s2.arc(candidate.1))
            });
            if consistent {
                used2[k2 as usize] = true;
                chosen.push(candidate);
                go(s1, s2, k1 + 1, a1, a2, used2, chosen, best);
                chosen.pop();
                used2[k2 as usize] = false;
            }
        }
        // Skip arc k1.
        go(s1, s2, k1 + 1, a1, a2, used2, chosen, best);
    }

    let mut used2 = vec![false; a2 as usize];
    go(s1, s2, 0, a1, a2, &mut used2, &mut chosen, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn relation_cases() {
        assert_eq!(relation(Arc::new(0, 3), Arc::new(4, 7)), Relation::Before);
        assert_eq!(relation(Arc::new(4, 7), Arc::new(0, 3)), Relation::After);
        assert_eq!(relation(Arc::new(0, 7), Arc::new(2, 5)), Relation::Nests);
        assert_eq!(relation(Arc::new(2, 5), Arc::new(0, 7)), Relation::NestedBy);
    }

    #[test]
    fn accepts_identity_mapping() {
        let s = dot_bracket::parse("((.))(..)").unwrap();
        let pairs: Vec<(u32, u32)> = (0..s.num_arcs()).map(|k| (k, k)).collect();
        assert!(check_mapping(&s, &s, &pairs).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        let s = dot_bracket::parse("(.)").unwrap();
        assert!(check_mapping(&s, &s, &[(0, 5)]).is_err());
        assert!(check_mapping(&s, &s, &[(5, 0)]).is_err());
    }

    #[test]
    fn rejects_reuse() {
        let s = dot_bracket::parse("(.)(.)").unwrap();
        assert!(check_mapping(&s, &s, &[(0, 0), (0, 1)]).is_err());
        assert!(check_mapping(&s, &s, &[(0, 0), (1, 0)]).is_err());
    }

    #[test]
    fn rejects_order_violation() {
        // S1 arcs sequential, mapped crosswise => order flips.
        let s = dot_bracket::parse("(.)(.)").unwrap();
        assert!(check_mapping(&s, &s, &[(0, 1), (1, 0)]).is_err());
    }

    #[test]
    fn rejects_structure_violation() {
        // S1 nested pair mapped onto S2 sequential pair.
        let s1 = dot_bracket::parse("((.))").unwrap();
        let s2 = dot_bracket::parse("(.)(.)").unwrap();
        assert!(check_mapping(&s1, &s2, &[(0, 0), (1, 1)]).is_err());
    }

    #[test]
    fn empty_mapping_is_valid() {
        let s = dot_bracket::parse("(.)").unwrap();
        assert!(is_valid_mapping(&s, &s, &[]));
    }

    #[test]
    fn brute_force_agrees_with_dp_on_tiny_structures() {
        for seed in 0..20 {
            let s1 = generate::random_structure(18, 1.0, seed);
            let s2 = generate::random_structure(16, 1.0, seed + 333);
            let bf = brute_force_mcos(&s1, &s2);
            let dp = crate::mcos_score(&s1, &s2);
            assert_eq!(bf, dp, "seed {seed}: brute force {bf} vs DP {dp}");
        }
    }

    #[test]
    fn brute_force_paper_example() {
        let s1 = dot_bracket::parse("(((.)))((.))").unwrap();
        let s2 = dot_bracket::parse("((.))(((.)))").unwrap();
        assert_eq!(brute_force_mcos(&s1, &s2), 4);
    }
}

//! Weighted common substructures: the general Bafna-style similarity
//! model the paper's formulation derives from.
//!
//! The paper (§III-B) obtains its counting recurrence by *removing* the
//! weight functions from Bafna et al.'s RNA similarity formulation. This
//! module restores them: each matched arc pair `(a, b)` contributes a
//! caller-defined non-negative weight instead of 1, so the recurrence
//! computes
//!
//! ```text
//! F[i1,j1,i2,j2] = max(F[i1,j1-1,i2,j2], F[i1,j1,i2,j2-1],
//!                      w(a,b) + d1 + d2)        when arcs a,b end at j1,j2
//! ```
//!
//! With the uniform weight `w ≡ 1` this is exactly MCOS; with weights
//! derived from the underlying sequences it scores *similarity between
//! RNA strings* in Bafna's sense. The two-stage SRNA2 structure (and its
//! `Θ(nm)` space) carries over unchanged, because the memoized quantity is
//! still one value per arc pair.

use rna_structure::{ArcStructure, Sequence};

use crate::memo::MemoTable;
use crate::preprocess::Preprocessed;
use crate::slice::ArcRange;

/// A weight model: the score contributed by matching arc `k1` of `S₁`
/// with arc `k2` of `S₂` (indices in right-endpoint order).
pub trait ArcWeight {
    /// Weight of the arc pair; must be non-negative (u32) and should be
    /// bounded so scores cannot overflow (`total <= u32::MAX`).
    fn weight(&self, k1: u32, k2: u32) -> u32;
}

/// The uniform weight: every matched pair scores `w`. `Uniform(1)`
/// reproduces plain MCOS.
#[derive(Debug, Clone, Copy)]
pub struct Uniform(pub u32);

impl ArcWeight for Uniform {
    #[inline]
    fn weight(&self, _: u32, _: u32) -> u32 {
        self.0
    }
}

/// A dense precomputed weight matrix (`A₁ × A₂`, row-major).
#[derive(Debug, Clone)]
pub struct WeightMatrix {
    cols: usize,
    values: Vec<u32>,
}

impl WeightMatrix {
    /// Builds a matrix from a function of the arc index pair.
    pub fn from_fn(a1: u32, a2: u32, mut f: impl FnMut(u32, u32) -> u32) -> Self {
        let mut values = Vec::with_capacity(a1 as usize * a2 as usize);
        for k1 in 0..a1 {
            for k2 in 0..a2 {
                values.push(f(k1, k2));
            }
        }
        WeightMatrix {
            cols: a2 as usize,
            values,
        }
    }
}

impl ArcWeight for WeightMatrix {
    #[inline]
    fn weight(&self, k1: u32, k2: u32) -> u32 {
        self.values[k1 as usize * self.cols + k2 as usize]
    }
}

/// A sequence-aware weight in the spirit of Bafna's base-pair scoring:
/// a matched arc pair scores `arc_match` plus `base_bonus` for each
/// endpoint whose bases agree between the two sequences.
#[derive(Debug, Clone)]
pub struct SequenceWeight {
    bases1_left: Vec<u8>,
    bases1_right: Vec<u8>,
    bases2_left: Vec<u8>,
    bases2_right: Vec<u8>,
    /// Base score for any matched arc pair.
    pub arc_match: u32,
    /// Bonus per agreeing endpoint base (0, 1 or 2 apply per pair).
    pub base_bonus: u32,
}

impl SequenceWeight {
    /// Builds the weight model from the structures and their sequences.
    ///
    /// # Panics
    ///
    /// Panics if a sequence length does not match its structure.
    pub fn new(
        s1: &ArcStructure,
        q1: &Sequence,
        s2: &ArcStructure,
        q2: &Sequence,
        arc_match: u32,
        base_bonus: u32,
    ) -> Self {
        assert_eq!(s1.len() as usize, q1.len(), "S1 sequence length mismatch");
        assert_eq!(s2.len() as usize, q2.len(), "S2 sequence length mismatch");
        let grab = |s: &ArcStructure, q: &Sequence| -> (Vec<u8>, Vec<u8>) {
            s.arcs()
                .iter()
                .map(|a| {
                    (
                        q.base(a.left as usize).to_char() as u8,
                        q.base(a.right as usize).to_char() as u8,
                    )
                })
                .unzip()
        };
        let (bases1_left, bases1_right) = grab(s1, q1);
        let (bases2_left, bases2_right) = grab(s2, q2);
        SequenceWeight {
            bases1_left,
            bases1_right,
            bases2_left,
            bases2_right,
            arc_match,
            base_bonus,
        }
    }
}

impl ArcWeight for SequenceWeight {
    #[inline]
    fn weight(&self, k1: u32, k2: u32) -> u32 {
        let mut w = self.arc_match;
        if self.bases1_left[k1 as usize] == self.bases2_left[k2 as usize] {
            w += self.base_bonus;
        }
        if self.bases1_right[k1 as usize] == self.bases2_right[k2 as usize] {
            w += self.base_bonus;
        }
        w
    }
}

/// Result of a weighted run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Maximum total weight over common substructures.
    pub score: u32,
    /// The weighted child-slice memo table.
    pub memo: MemoTable,
}

/// Weighted slice tabulation on the compressed grid — identical to
/// [`crate::slice::tabulate_with`] except the match case contributes
/// `w(a, b)` instead of 1.
pub fn tabulate_weighted<W: ArcWeight, F>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: ArcRange,
    range2: ArcRange,
    weights: &W,
    grid: &mut Vec<u32>,
    mut d2: F,
) -> u32
where
    F: FnMut(u32, u32) -> u32,
{
    let (lo1, hi1) = range1;
    let (lo2, hi2) = range2;
    let a = (hi1 - lo1) as usize;
    let b = (hi2 - lo2) as usize;
    if a == 0 || b == 0 {
        return 0;
    }
    let width = b + 1;
    grid.clear();
    grid.resize((a + 1) * width, 0);
    for p in 0..a {
        let g1 = lo1 + p as u32;
        let r1 = (p1.rank_before_left[g1 as usize].max(lo1) - lo1) as usize;
        let row = (p + 1) * width;
        let prev = p * width;
        let d1_row = r1 * width;
        for q in 0..b {
            let g2 = lo2 + q as u32;
            let r2 = (p2.rank_before_left[g2 as usize].max(lo2) - lo2) as usize;
            let s = grid[prev + q + 1].max(grid[row + q]);
            let d1 = grid[d1_row + r2];
            let d2v = d2(g1, g2);
            grid[row + q + 1] = s.max(weights.weight(g1, g2) + d1 + d2v);
        }
    }
    grid[(a + 1) * width - 1]
}

/// Two-stage weighted SRNA2: stage one tabulates every weighted child
/// slice in increasing endpoint order, stage two the parent slice.
pub fn run<W: ArcWeight>(s1: &ArcStructure, s2: &ArcStructure, weights: &W) -> Outcome {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    run_preprocessed(&p1, &p2, weights)
}

/// Weighted SRNA2 with caller-supplied preprocessing.
pub fn run_preprocessed<W: ArcWeight>(
    p1: &Preprocessed,
    p2: &Preprocessed,
    weights: &W,
) -> Outcome {
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let mut memo = MemoTable::zeroed(a1, a2);
    let mut grid = Vec::new();
    for k1 in 0..a1 {
        let c1 = p1.under_range[k1 as usize];
        for k2 in 0..a2 {
            let c2 = p2.under_range[k2 as usize];
            let v = tabulate_weighted(p1, p2, c1, c2, weights, &mut grid, |g1, g2| {
                memo.get(g1, g2)
            });
            memo.set(k1, k2, v);
        }
    }
    let score = tabulate_weighted(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        weights,
        &mut grid,
        |g1, g2| memo.get(g1, g2),
    );
    Outcome { score, memo }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mcos_score, srna2};
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn uniform_one_equals_mcos() {
        for seed in 0..15 {
            let s1 = generate::random_structure(50, 0.9, seed);
            let s2 = generate::random_structure(44, 0.8, seed + 50);
            assert_eq!(
                run(&s1, &s2, &Uniform(1)).score,
                mcos_score(&s1, &s2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn uniform_memo_matches_srna2() {
        let s = generate::worst_case_nested(12);
        assert_eq!(run(&s, &s, &Uniform(1)).memo, srna2::run(&s, &s).memo);
    }

    #[test]
    fn uniform_k_scales_scores_on_worst_case() {
        // On the fully nested worst case every optimal solution matches
        // every arc, so Uniform(k) scores exactly k * arcs.
        let s = generate::worst_case_nested(10);
        assert_eq!(run(&s, &s, &Uniform(3)).score, 30);
    }

    #[test]
    fn weights_can_change_the_optimal_solution() {
        // One big arc vs. two sequential small ones: with uniform weights
        // matching the two smalls wins (2 > 1); if the big pair is worth
        // 5, matching it wins.
        let s1 = dot_bracket::parse("((.)(.))").unwrap(); // arcs: (1,3),(4,6),(0,7)
        let s2 = dot_bracket::parse("((.)(.))").unwrap();
        assert_eq!(run(&s1, &s2, &Uniform(1)).score, 3);
        let a1 = s1.num_arcs();
        let heavy_outer = WeightMatrix::from_fn(a1, a1, |k1, k2| {
            if k1 == 2 && k2 == 2 {
                100
            } else if k1 == k2 {
                1
            } else {
                0
            }
        });
        // Outer + both inners are compatible, so everything is taken.
        assert_eq!(run(&s1, &s2, &heavy_outer).score, 102);
    }

    #[test]
    fn zero_weights_give_zero() {
        let s = generate::worst_case_nested(8);
        assert_eq!(run(&s, &s, &Uniform(0)).score, 0);
    }

    #[test]
    fn self_comparison_at_least_identity_weight() {
        // The identity mapping is feasible, so the optimum is at least
        // the sum of diagonal weights.
        for seed in 0..8 {
            let s = generate::random_structure(40, 0.9, seed);
            let a = s.num_arcs();
            let w = WeightMatrix::from_fn(a, a, |k1, k2| ((k1 * 7 + k2 * 13) % 5) + 1);
            let diag: u32 = (0..a).map(|k| w.weight(k, k)).sum();
            let opt = run(&s, &s, &w).score;
            assert!(opt >= diag, "seed {seed}: opt {opt} < diagonal {diag}");
        }
    }

    #[test]
    fn monotone_in_weights() {
        // Raising one pair's weight never lowers the optimum.
        let s1 = generate::random_structure(36, 1.0, 3);
        let s2 = generate::random_structure(36, 1.0, 4);
        let base = run(&s1, &s2, &Uniform(2)).score;
        let a1 = s1.num_arcs();
        let a2 = s2.num_arcs();
        let boosted =
            WeightMatrix::from_fn(a1, a2, |k1, k2| 2 + u32::from(k1 == 0 && k2 == 0) * 10);
        assert!(run(&s1, &s2, &boosted).score >= base);
    }

    #[test]
    fn sequence_weight_scores_base_agreement() {
        let s = dot_bracket::parse("(.)").unwrap();
        let q1: Sequence = "GAC".parse().unwrap();
        let q2: Sequence = "GAC".parse().unwrap();
        let q3: Sequence = "AAU".parse().unwrap();
        let same = SequenceWeight::new(&s, &q1, &s, &q2, 1, 2);
        assert_eq!(run(&s, &s, &same).score, 1 + 2 + 2);
        let diff = SequenceWeight::new(&s, &q1, &s, &q3, 1, 2);
        assert_eq!(run(&s, &s, &diff).score, 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sequence_weight_rejects_mismatched_lengths() {
        let s = dot_bracket::parse("(.)").unwrap();
        let q: Sequence = "GACC".parse().unwrap();
        let _ = SequenceWeight::new(&s, &q, &s, &q, 1, 1);
    }
}

//! Child-slice work accounting (the paper's Figure 7) and the task
//! weights consumed by PRNA's static load balancer.
//!
//! Stage one's primitive task is one child slice; tabulating the slice
//! spawned by matching arcs `(a, b)` costs `under(a) × under(b)`
//! compressed subproblems. Viewed over the parent slice, the work of the
//! column owned by arc `b` of `S₂` is therefore proportional to
//! `under(b)` with the same per-row profile for every row — the paper's
//! observation that "the relative amount of work between the columns is
//! identical from row to row", which is what makes a *static*
//! distribution of columns effective.

use crate::preprocess::Preprocessed;

/// Cost model constant: fixed overhead charged per slice in addition to
/// its cells (loop setup, memoization store). Expressed in cell units.
pub const SLICE_OVERHEAD_CELLS: u64 = 4;

/// Number of compressed subproblems in the child slice of arc pair
/// `(k1, k2)`.
#[inline]
pub fn child_slice_cells(p1: &Preprocessed, p2: &Preprocessed, k1: u32, k2: u32) -> u64 {
    p1.under_count(k1) as u64 * p2.under_count(k2) as u64
}

/// The full work matrix: entry `(k1, k2)` is the number of subproblems in
/// the child slice spawned by matching arc `k1` of `S₁` with arc `k2` of
/// `S₂` — the quantity the paper visualizes in Figure 7. Row-major,
/// `A₁ × A₂`.
pub fn work_matrix(p1: &Preprocessed, p2: &Preprocessed) -> Vec<u64> {
    let a1 = p1.num_arcs() as usize;
    let a2 = p2.num_arcs() as usize;
    let mut m = Vec::with_capacity(a1 * a2);
    for k1 in 0..a1 as u32 {
        let u1 = p1.under_count(k1) as u64;
        for k2 in 0..a2 as u32 {
            m.push(u1 * p2.under_count(k2) as u64);
        }
    }
    m
}

/// Per-column task weights for PRNA's load balancer: column `k2` (an arc
/// of `S₂`) costs the sum over rows of its child-slice cells plus the
/// fixed per-slice overhead.
pub fn column_weights(p1: &Preprocessed, p2: &Preprocessed) -> Vec<u64> {
    let total_u1: u64 = (0..p1.num_arcs()).map(|k| p1.under_count(k) as u64).sum();
    let rows = p1.num_arcs() as u64;
    (0..p2.num_arcs())
        .map(|k2| total_u1 * p2.under_count(k2) as u64 + rows * SLICE_OVERHEAD_CELLS)
        .collect()
}

/// Total stage-one work (cells + per-slice overhead) — the sequential
/// execution-time proxy used by the parallel-execution simulator.
pub fn stage_one_work(p1: &Preprocessed, p2: &Preprocessed) -> u64 {
    column_weights(p1, p2).iter().sum()
}

/// Stage-two work: the parent slice covers every arc pair once.
pub fn stage_two_work(p1: &Preprocessed, p2: &Preprocessed) -> u64 {
    p1.num_arcs() as u64 * p2.num_arcs() as u64 + SLICE_OVERHEAD_CELLS
}

/// Renders the work matrix in the style of the paper's Figure 7: a grid
/// with empty cells where no work is spawned (leaf arc pairs) and the
/// cell count otherwise.
pub fn render_work_matrix(p1: &Preprocessed, p2: &Preprocessed) -> String {
    let a1 = p1.num_arcs() as usize;
    let a2 = p2.num_arcs() as usize;
    let m = work_matrix(p1, p2);
    let width = m
        .iter()
        .max()
        .copied()
        .unwrap_or(0)
        .to_string()
        .len()
        .max(2);
    let mut out = String::new();
    for k1 in 0..a1 {
        for k2 in 0..a2 {
            let w = m[k1 * a2 + k2];
            if w == 0 {
                out.push_str(&format!("{:>width$} ", ".", width = width));
            } else {
                out.push_str(&format!("{w:>width$} "));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::generate;

    fn prep(s: &rna_structure::ArcStructure) -> Preprocessed {
        Preprocessed::build(s)
    }

    #[test]
    fn worst_case_work_matrix() {
        let s = generate::worst_case_nested(4);
        let p = prep(&s);
        let m = work_matrix(&p, &p);
        // under counts are 0,1,2,3 in index order.
        let expected: Vec<u64> = (0..4u64)
            .flat_map(|a| (0..4u64).map(move |b| a * b))
            .collect();
        assert_eq!(m, expected);
    }

    #[test]
    fn column_weights_sum_matches_matrix_plus_overhead() {
        let s1 = generate::random_structure(50, 0.9, 1);
        let s2 = generate::random_structure(40, 0.9, 2);
        let (p1, p2) = (prep(&s1), prep(&s2));
        let matrix_total: u64 = work_matrix(&p1, &p2).iter().sum();
        let cols_total: u64 = column_weights(&p1, &p2).iter().sum();
        let overhead = p1.num_arcs() as u64 * p2.num_arcs() as u64 * SLICE_OVERHEAD_CELLS;
        assert_eq!(cols_total, matrix_total + overhead);
        assert_eq!(stage_one_work(&p1, &p2), cols_total);
    }

    #[test]
    fn stage_two_is_one_parent_slice() {
        let s = generate::worst_case_nested(7);
        let p = prep(&s);
        assert_eq!(stage_two_work(&p, &p), 49 + SLICE_OVERHEAD_CELLS);
    }

    #[test]
    fn render_marks_empty_cells() {
        let s = generate::worst_case_nested(3);
        let p = prep(&s);
        let text = render_work_matrix(&p, &p);
        assert!(text.contains('.'), "leaf pairs should render as '.'");
        assert!(text.contains('4'), "deepest pair spawns 2*2 cells");
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn hairpin_chain_has_uniform_columns() {
        // Every arc of a depth-2 hairpin chain has under-count 1 or 0;
        // columns alternate accordingly but each column is constant.
        let s = generate::hairpin_chain(3, 2, 2);
        let p = prep(&s);
        let w = column_weights(&p, &p);
        assert_eq!(w.len(), 6);
        // Outer arcs (under=1) all get the same weight; inner (under=0) too.
        let inner: Vec<u64> = (0..6)
            .filter(|&k| p.under_count(k) == 0)
            .map(|k| w[k as usize])
            .collect();
        assert!(inner.windows(2).all(|x| x[0] == x[1]));
    }
}

//! The kernel-layer equivalence suite: every [`SliceKernel`] must be
//! *bit-identical* — scores, memo tables, full grids — to the reference
//! loop (`slice::tabulate_with`) and to the dense positional oracle
//! (`slice::tabulate_dense`), on random structures and on every
//! degenerate window shape. The CI `kernel-smoke` job runs this suite
//! with the `simd` feature both off and on; the max-plus arithmetic is
//! exact integers, so the results must not differ by a single bit.

use mcos_core::kernel::{KernelKind, KernelScratch};
use mcos_core::preprocess::Preprocessed;
use mcos_core::{slice, srna1, srna2};
use proptest::prelude::*;
use rna_structure::formats::dot_bracket;
use rna_structure::{generate, ArcStructure};

/// Reference: full bottom-up run over the dense positional grids — the
/// direct transcription of the paper's Figure 2 recurrence.
fn full_dense(s1: &ArcStructure, s2: &ArcStructure) -> u32 {
    let cols = s2.num_arcs() as usize;
    let mut memo = vec![0u32; s1.num_arcs() as usize * cols];
    for k1 in 0..s1.num_arcs() {
        for k2 in 0..s2.num_arcs() {
            let a1 = s1.arc(k1);
            let a2 = s2.arc(k2);
            let v = slice::tabulate_dense(
                s1,
                s2,
                (a1.left + 1, a1.right.wrapping_sub(1)),
                (a2.left + 1, a2.right.wrapping_sub(1)),
                |g1, g2| memo[g1 as usize * cols + g2 as usize],
            );
            memo[k1 as usize * cols + k2 as usize] = v;
        }
    }
    slice::tabulate_dense(s1, s2, (0, s1.len() - 1), (0, s2.len() - 1), |g1, g2| {
        memo[g1 as usize * cols + g2 as usize]
    })
}

/// One slice through a kernel with `d2` forced to zero.
fn kernel_slice(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: slice::ArcRange,
    range2: slice::ArcRange,
    kind: KernelKind,
) -> u32 {
    let mut scratch = KernelScratch::default();
    kind.kernel()
        .tabulate(p1, p2, range1, range2, &mut scratch, &mut |_, buf| {
            buf.fill(0)
        })
}

/// The same slice through the reference loop.
fn reference_slice(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: slice::ArcRange,
    range2: slice::ArcRange,
) -> u32 {
    let mut grid = Vec::new();
    slice::tabulate_with(p1, p2, range1, range2, &mut grid, |_, _| 0)
}

#[test]
fn kernels_match_dense_oracle_on_random_structures() {
    for seed in 0..10 {
        let s1 = generate::random_structure(44, 0.85, seed);
        let s2 = generate::random_structure(40, 0.75, seed + 2000);
        let dense = full_dense(&s1, &s2);
        for kind in KernelKind::ALL {
            let out = srna2::run_with_kernel(&s1, &s2, kind);
            assert_eq!(out.score, dense, "seed {seed} kernel {}", kind.name());
        }
    }
}

#[test]
fn kernels_match_reference_memo_tables() {
    for seed in 0..10 {
        let s1 = generate::random_structure(60, 0.9, seed);
        let s2 = generate::random_structure(52, 0.8, seed + 3000);
        let reference = srna2::run(&s1, &s2);
        for kind in KernelKind::ALL {
            let out = srna2::run_with_kernel(&s1, &s2, kind);
            assert_eq!(out.score, reference.score, "seed {seed} {}", kind.name());
            assert_eq!(out.memo, reference.memo, "seed {seed} {}", kind.name());
        }
    }
}

#[test]
fn kernels_match_srna1_spawning_runs() {
    for seed in 0..6 {
        let s1 = generate::random_structure(48, 0.9, seed);
        let s2 = generate::random_structure(44, 0.8, seed + 4000);
        let reference = srna1::run(&s1, &s2);
        for kind in KernelKind::ALL {
            let out = srna1::run_with_kernel(&s1, &s2, kind);
            assert_eq!(out.score, reference.score, "seed {seed} {}", kind.name());
            assert_eq!(out.memo, reference.memo, "seed {seed} {}", kind.name());
            assert_eq!(
                out.counters,
                reference.counters,
                "seed {seed} {}",
                kind.name()
            );
        }
    }
}

#[test]
fn empty_windows_return_zero_without_filling() {
    let s = dot_bracket::parse("((.))(.)").unwrap();
    let p = Preprocessed::build(&s);
    let mut scratch = KernelScratch::default();
    for kind in KernelKind::ALL {
        for (r1, r2) in [((1, 1), (0, 3)), ((0, 3), (2, 2)), ((0, 0), (0, 0))] {
            let v = kind
                .kernel()
                .tabulate(&p, &p, r1, r2, &mut scratch, &mut |_, _| {
                    panic!("fill_d2 must not run for an empty window")
                });
            assert_eq!(v, 0, "{} on {r1:?}x{r2:?}", kind.name());
        }
    }
}

#[test]
fn one_by_one_window() {
    let s = dot_bracket::parse("(.)").unwrap();
    let p = Preprocessed::build(&s);
    for kind in KernelKind::ALL {
        assert_eq!(
            kernel_slice(&p, &p, (0, 1), (0, 1), kind),
            1,
            "{}",
            kind.name()
        );
    }
}

#[test]
fn single_row_and_single_column_windows() {
    // A structure with several sequential arcs gives wide full ranges.
    let s = dot_bracket::parse("(.)(.)((.))(.)(..)").unwrap();
    let p = Preprocessed::build(&s);
    let (lo, hi) = p.full_range();
    for kind in KernelKind::ALL {
        for k in lo..hi {
            // Single row: one S1 arc against the full S2 window.
            let row = ((k, k + 1), (lo, hi));
            // Single column: the full S1 window against one S2 arc.
            let col = ((lo, hi), (k, k + 1));
            for (r1, r2) in [row, col] {
                assert_eq!(
                    kernel_slice(&p, &p, r1, r2, kind),
                    reference_slice(&p, &p, r1, r2),
                    "{} on {r1:?}x{r2:?}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn all_child_windows_match_reference() {
    // Every under_range window of a nest-heavy structure, as the SRNA
    // drivers would enumerate them.
    let s = generate::random_structure(64, 1.0, 77);
    let p = Preprocessed::build(&s);
    for kind in KernelKind::ALL {
        for k1 in 0..p.num_arcs() {
            for k2 in 0..p.num_arcs() {
                let r1 = p.under_range[k1 as usize];
                let r2 = p.under_range[k2 as usize];
                assert_eq!(
                    kernel_slice(&p, &p, r1, r2, kind),
                    reference_slice(&p, &p, r1, r2),
                    "{} on ({k1},{k2})",
                    kind.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary structure pairs: every kernel reproduces the reference
    /// run bit-for-bit (score and full memo table).
    #[test]
    fn prop_kernels_bit_identical(
        seed in 0u64..100_000,
        len1 in 8u32..96,
        len2 in 8u32..96,
        density in 0.3f64..1.0,
    ) {
        let s1 = generate::random_structure(len1, density, seed);
        let s2 = generate::random_structure(len2, density, seed ^ 0x9e37);
        let reference = srna2::run(&s1, &s2);
        for kind in KernelKind::ALL {
            let out = srna2::run_with_kernel(&s1, &s2, kind);
            prop_assert_eq!(out.score, reference.score, "kernel {}", kind.name());
            prop_assert_eq!(&out.memo, &reference.memo, "kernel {}", kind.name());
        }
    }

    /// The worst-case fully nested family, where slice widths sweep
    /// every size from 0 to n-1 (exercises all tile/block tails).
    #[test]
    fn prop_worst_case_nested_all_kernels(n in 1u32..40) {
        let s = generate::worst_case_nested(n);
        for kind in KernelKind::ALL {
            let out = srna2::run_with_kernel(&s, &s, kind);
            prop_assert_eq!(out.score, n, "kernel {}", kind.name());
        }
    }
}

//! Exhaustive model checks of [`AtomicMemoTable`]'s settled-snapshot
//! discipline, run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p mcos-core --test loom_models
//! ```
//!
//! The table's contract (see `memo.rs`) is that `Relaxed` accesses are
//! sound because the *scheduler* provides the synchronization edge: a
//! reader must hold a happens-before path (join, channel handshake)
//! against every writer whose value it expects to see. These models
//! drive the real table through every interleaving the shim admits and
//! show (a) a handshake makes snapshots complete, (b) dropping the
//! handshake is caught as a concrete failing schedule, (c) same-level
//! disjoint writers never interfere.
#![cfg(loom)]

use loom::sync::{mpsc, Arc};
use mcos_core::memo::AtomicMemoTable;
use std::panic::catch_unwind;

/// Extracts the panic message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// A writer publishes two entries, then signals over a channel; the
/// reader receives before snapshotting. The channel edge settles the
/// writes, so the snapshot is complete in EVERY schedule.
#[test]
fn settled_snapshot_is_complete_after_handshake() {
    loom::model(|| {
        let table = Arc::new(AtomicMemoTable::zeroed(1, 2));
        let (tx, rx) = mpsc::channel::<()>();
        let t2 = table.clone();
        let writer = loom::thread::spawn(move || {
            t2.set(0, 0, 7);
            t2.set(0, 1, 9);
            tx.send(()).unwrap();
        });
        rx.recv().unwrap();
        let snap = table.freeze();
        assert_eq!(
            (snap.get(0, 0), snap.get(0, 1)),
            (7, 9),
            "snapshot missed a settled write"
        );
        writer.join().unwrap();
    });
}

/// The same shape WITHOUT the handshake: the snapshot races the
/// writer, and the model must produce the schedule where it misses
/// the write — the dynamic counterpart of the static prover's
/// `Unsettled` verdict.
#[test]
fn unsynchronized_snapshot_is_caught() {
    let result = catch_unwind(|| {
        loom::model(|| {
            let table = Arc::new(AtomicMemoTable::zeroed(1, 1));
            let t2 = table.clone();
            let writer = loom::thread::spawn(move || t2.set(0, 0, 7));
            // No handshake before the snapshot: racy read.
            let snap = table.freeze();
            assert_eq!(snap.get(0, 0), 7, "snapshot missed an unsettled write");
            writer.join().unwrap();
        })
    });
    let msg = panic_message(result.expect_err("model must catch the racy snapshot"));
    assert!(msg.contains("snapshot missed an unsettled write"), "{msg}");
}

/// Two same-level slices write disjoint entries concurrently — the
/// wavefront invariant. No interleaving loses either write, and the
/// joins settle both for the final fold.
#[test]
fn disjoint_same_level_writers_never_interfere() {
    loom::model(|| {
        let table = Arc::new(AtomicMemoTable::zeroed(1, 2));
        let writers: Vec<_> = (0..2u32)
            .map(|c| {
                let t = table.clone();
                loom::thread::spawn(move || t.set(0, c, c + 1))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let merged = table.freeze();
        assert_eq!((merged.get(0, 0), merged.get(0, 1)), (1, 2));
    });
}

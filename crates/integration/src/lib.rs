//! Anchor package for the workspace-level integration tests in `tests/`.
//!
//! Cargo requires integration tests to belong to a package; this crate
//! exists to own them (via `[[test]]` path entries) and to provide shared
//! helpers for cross-crate scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rna_structure::generate;
use rna_structure::ArcStructure;

/// A deterministic battery of structures covering the input shapes the
/// algorithms care about: empty, arcless, hairpins, nests, skew, random.
pub fn test_structures() -> Vec<(String, ArcStructure)> {
    let mut v: Vec<(String, ArcStructure)> = vec![
        ("empty".into(), ArcStructure::unpaired(0)),
        ("arcless".into(), ArcStructure::unpaired(12)),
        ("one-arc".into(), generate::worst_case_nested(1)),
        ("nest-10".into(), generate::worst_case_nested(10)),
        ("hairpins".into(), generate::hairpin_chain(4, 3, 3)),
        ("skewed".into(), generate::skewed_groups(4, 1, 2)),
        (
            "rrna-ish".into(),
            generate::rrna_like(
                &generate::RrnaConfig {
                    len: 160,
                    arcs: 30,
                    mean_stem: 5,
                    nest_bias: 0.5,
                },
                13,
            ),
        ),
    ];
    for seed in 0..4 {
        v.push((
            format!("random-{seed}"),
            generate::random_structure(48, 0.8, seed),
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn battery_is_diverse() {
        let b = super::test_structures();
        assert!(b.len() >= 10);
        assert!(b.iter().any(|(_, s)| s.num_arcs() == 0));
        assert!(b.iter().any(|(_, s)| s.max_depth() >= 10));
    }
}

//! A standalone tour of the mpi-sim substrate: SPMD ranks, point-to-point
//! messages, and the collectives PRNA is built on.
//!
//! Run with: `cargo run -p mpi-sim --release --example collectives_demo`

use std::sync::atomic::{AtomicU32, Ordering};

fn main() {
    const RANKS: u32 = 6;

    // Point-to-point ring: each rank passes a token to its right
    // neighbour, accumulating rank ids.
    let out = mpi_sim::run(RANKS, |mut comm| {
        let rank = comm.rank();
        let next = (rank + 1) % RANKS;
        let prev = (rank + RANKS - 1) % RANKS;
        if rank == 0 {
            comm.send(next, 1, vec![0u32]);
            let token = comm.recv(prev, 1);
            token.iter().sum::<u32>()
        } else {
            let mut token = comm.recv(prev, 1);
            token.push(rank);
            comm.send(next, 1, token);
            0
        }
    });
    println!("ring token sum at rank 0: {} (= 0+1+...+5)", out[0]);
    assert_eq!(out[0], 15);

    // The PRNA row synchronization pattern: replicated tables, each rank
    // fills a disjoint slice, Allreduce(MAX) assembles the full row.
    let rows = mpi_sim::run(RANKS, |mut comm| {
        let rank = comm.rank();
        let mut row = vec![0u32; 12];
        for (i, cell) in row.iter_mut().enumerate() {
            if i as u32 % RANKS == rank {
                *cell = 100 + i as u32; // "this rank's columns"
            }
        }
        comm.allreduce(row, |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x = (*x).max(*y);
            }
            a
        })
    });
    println!("allreduce(MAX) row on every rank: {:?}", rows[0]);
    assert!(rows.iter().all(|r| r == &rows[0]));
    assert!(rows[0]
        .iter()
        .enumerate()
        .all(|(i, &v)| v == 100 + i as u32));

    // Barrier semantics: nobody proceeds until everybody arrives.
    static ARRIVED: AtomicU32 = AtomicU32::new(0);
    mpi_sim::run::<u32, _, _>(RANKS, |mut comm| {
        ARRIVED.fetch_add(1, Ordering::SeqCst);
        comm.barrier();
        assert_eq!(ARRIVED.load(Ordering::SeqCst), RANKS);
    });
    println!("barrier: all {RANKS} ranks synchronized");

    // Ring vs tree allreduce: identical results, different message
    // schedules (O(P) vs O(log P) rounds).
    let both = mpi_sim::run(RANKS, |mut comm| {
        let v = comm.rank() * 7 + 1;
        let tree = comm.allreduce(v, |a, b| a + b);
        let ring = comm.allreduce_ring(v, |a, b| a + b);
        (tree, ring)
    });
    for (tree, ring) in &both {
        assert_eq!(tree, ring);
    }
    println!("tree and ring allreduce agree: sum = {}", both[0].0);
}

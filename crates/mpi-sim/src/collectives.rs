//! Collective operations, built from point-to-point messages.
//!
//! All ranks must call each collective in the same order with consistent
//! arguments (the MPI contract). Reductions require an **associative and
//! commutative** combiner — the binomial tree applies it in a
//! rank-dependent order.

use crate::comm::{Communicator, Tag, COLLECTIVE_TAG_BASE};

/// `ceil(log2 size)`: rounds of a binomial tree over `size` ranks.
fn ceil_log2(size: u32) -> u64 {
    match size {
        0 | 1 => 0,
        n => (32 - (n - 1).leading_zeros()) as u64,
    }
}

/// Collective op codes embedded in reserved tags.
#[derive(Clone, Copy)]
enum Op {
    Barrier = 0,
    Bcast = 1,
    Reduce = 2,
    Gather = 3,
    Scatter = 4,
    AllGather = 5,
    Ring = 6,
}

impl<T: Send> Communicator<T> {
    /// Builds the reserved tag for one round of one collective instance.
    fn coll_tag(&self, op: Op, round: u32) -> Tag {
        debug_assert!(round < 4096);
        COLLECTIVE_TAG_BASE + (self.collective_seq << 16) + ((op as Tag) << 12) + round as Tag
    }

    fn next_seq(&mut self) {
        self.collective_seq += 1;
    }

    /// Blocks until every rank has entered the barrier (dissemination
    /// algorithm: `⌈log₂ size⌉` rounds of control messages).
    pub fn barrier(&mut self) {
        let size = self.size();
        let rank = self.rank();
        let mut k = 0u32;
        let mut step = 1u32;
        while step < size {
            let tag = self.coll_tag(Op::Barrier, k);
            let dst = (rank + step) % size;
            let src = (rank + size - step % size) % size;
            self.send_raw(dst, tag, None);
            let _ = self.recv_raw(src, tag);
            step <<= 1;
            k += 1;
        }
        self.next_seq();
    }

    /// Broadcasts `root`'s value to every rank (binomial tree). Every
    /// rank passes its own `value`; non-root values are ignored and
    /// replaced by the root's.
    pub fn broadcast(&mut self, root: u32, value: T) -> T
    where
        T: Clone,
    {
        let size = self.size();
        let rank = self.rank();
        let rel = (rank + size - root) % size;
        let mut current = value;
        // Receive phase: rank `rel` receives from `rel - mask` in the
        // round where `mask <= rel < 2*mask`.
        let mut mask = 1u32;
        let mut round = 0u32;
        while mask < size {
            if rel >= mask && rel < 2 * mask {
                let tag = self.coll_tag(Op::Bcast, round);
                let src = (rel - mask + root) % size;
                current = self
                    .recv_raw(src, tag)
                    .expect("broadcast packets carry payloads");
            } else if rel < mask {
                let peer = rel + mask;
                if peer < size {
                    let tag = self.coll_tag(Op::Bcast, round);
                    let dst = (peer + root) % size;
                    self.send_raw(dst, tag, Some(current.clone()));
                }
            }
            mask <<= 1;
            round += 1;
        }
        self.next_seq();
        current
    }

    /// Reduces all ranks' values to `root` with `op` (binomial tree);
    /// returns `Some(result)` at the root and `None` elsewhere. `op` must
    /// be associative and commutative.
    pub fn reduce<F>(&mut self, root: u32, value: T, mut op: F) -> Option<T>
    where
        F: FnMut(T, T) -> T,
    {
        let size = self.size();
        let rank = self.rank();
        let rel = (rank + size - root) % size;
        let mut acc = Some(value);
        let mut mask = 1u32;
        let mut round = 0u32;
        while mask < size {
            let tag = self.coll_tag(Op::Reduce, round);
            if rel & mask == 0 {
                let peer = rel | mask;
                if peer < size {
                    let src = (peer + root) % size;
                    let other = self
                        .recv_raw(src, tag)
                        .expect("reduce packets carry payloads");
                    acc = Some(op(acc.take().expect("acc held until sent"), other));
                }
            } else {
                let dst = ((rel & !mask) + root) % size;
                self.send_raw(dst, tag, acc.take());
                // This rank's role in the reduction is finished.
                break;
            }
            mask <<= 1;
            round += 1;
        }
        self.next_seq();
        if rank == root {
            acc
        } else {
            None
        }
    }

    /// Reduce followed by broadcast: every rank receives the full
    /// reduction. `op` must be associative and commutative.
    pub fn allreduce<F>(&mut self, value: T, op: F) -> T
    where
        T: Clone,
        F: FnMut(T, T) -> T,
    {
        // One binomial-tree reduce plus one broadcast: 2 * ceil(log2 P)
        // message rounds. Counted once per collective, at rank 0, so the
        // totals are per world, not per participant.
        if self.rank() == 0 {
            self.recorder.count_allreduce(2 * ceil_log2(self.size()));
        }
        let reduced = self.reduce(0, value, op);
        // Only rank 0 holds the result; the others contribute a
        // placeholder that broadcast replaces. We ship the reduced value
        // through an Option-free path by sending rank 0's value.
        match reduced {
            Some(v) => self.broadcast(0, v),
            None => {
                // Non-root: receive the broadcast. Any placeholder would
                // do, but we have no T to hand — receive directly.
                self.broadcast_recv_only(0)
            }
        }
    }

    /// Ring allreduce: the value circulates `size - 1` hops around the
    /// ring, each rank folding in its neighbour's contribution, so every
    /// rank ends with the full reduction. `O(P)` rounds of small
    /// messages versus the tree's `O(log P)` — the classic trade-off
    /// when per-message latency dominates; both produce identical
    /// results for associative-commutative `op`.
    pub fn allreduce_ring<F>(&mut self, value: T, mut op: F) -> T
    where
        T: Clone,
        F: FnMut(T, T) -> T,
    {
        let size = self.size();
        let rank = self.rank();
        // The ring pays P - 1 rounds (vs the tree's 2 * ceil(log2 P)).
        if rank == 0 {
            self.recorder.count_allreduce(size.saturating_sub(1) as u64);
        }
        let mut acc = value.clone();
        let mut forward = value;
        for round in 0..size.saturating_sub(1) {
            let tag = self.coll_tag(Op::Ring, round);
            let dst = (rank + 1) % size;
            let src = (rank + size - 1) % size;
            self.send_raw(dst, tag, Some(forward));
            let incoming = self
                .recv_raw(src, tag)
                .expect("ring packets carry payloads");
            acc = op(acc, incoming.clone());
            // Pass the neighbour's original contribution onward so every
            // rank sees every contribution exactly once.
            forward = incoming;
        }
        self.next_seq();
        acc
    }

    /// Internal: participate in a broadcast as a guaranteed non-root.
    fn broadcast_recv_only(&mut self, root: u32) -> T
    where
        T: Clone,
    {
        let size = self.size();
        let rank = self.rank();
        let rel = (rank + size - root) % size;
        debug_assert_ne!(rel, 0, "root must call broadcast() with its value");
        let mut current: Option<T> = None;
        let mut mask = 1u32;
        let mut round = 0u32;
        while mask < size {
            if rel >= mask && rel < 2 * mask {
                let tag = self.coll_tag(Op::Bcast, round);
                let src = (rel - mask + root) % size;
                current = self.recv_raw(src, tag);
            } else if rel < mask {
                let peer = rel + mask;
                if peer < size {
                    let tag = self.coll_tag(Op::Bcast, round);
                    let dst = (peer + root) % size;
                    let v = current.clone().expect("received before forwarding");
                    self.send_raw(dst, tag, Some(v));
                }
            }
            mask <<= 1;
            round += 1;
        }
        self.next_seq();
        current.expect("every non-root receives exactly once")
    }

    /// Gathers every rank's value at `root` in rank order; `Some(values)`
    /// at the root, `None` elsewhere.
    pub fn gather(&mut self, root: u32, value: T) -> Option<Vec<T>> {
        let tag = self.coll_tag(Op::Gather, 0);
        let rank = self.rank();
        let size = self.size();
        let result = if rank == root {
            let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
            out[rank as usize] = Some(value);
            for src in 0..size {
                if src != rank {
                    out[src as usize] = Some(self.recv_raw(src, tag).expect("gather payload"));
                }
            }
            Some(out.into_iter().map(|v| v.expect("all gathered")).collect())
        } else {
            self.send_raw(root, tag, Some(value));
            None
        };
        self.next_seq();
        result
    }

    /// Distributes `values[r]` to rank `r` from `root`. Non-roots pass
    /// `None`; the root must pass exactly `size` values.
    pub fn scatter(&mut self, root: u32, values: Option<Vec<T>>) -> T {
        let tag = self.coll_tag(Op::Scatter, 0);
        let rank = self.rank();
        let size = self.size();
        let result = if rank == root {
            let values = values.expect("root must supply values");
            assert_eq!(values.len(), size as usize, "one value per rank");
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst as u32 == rank {
                    mine = Some(v);
                } else {
                    self.send_raw(dst as u32, tag, Some(v));
                }
            }
            mine.expect("root keeps its own value")
        } else {
            assert!(values.is_none(), "non-roots pass None");
            self.recv_raw(root, tag).expect("scatter payload")
        };
        self.next_seq();
        result
    }

    /// Every rank receives every rank's value, in rank order (direct
    /// exchange).
    pub fn allgather(&mut self, value: T) -> Vec<T>
    where
        T: Clone,
    {
        let tag = self.coll_tag(Op::AllGather, 0);
        let rank = self.rank();
        let size = self.size();
        for dst in 0..size {
            if dst != rank {
                self.send_raw(dst, tag, Some(value.clone()));
            }
        }
        let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
        out[rank as usize] = Some(value);
        for src in 0..size {
            if src != rank {
                out[src as usize] = Some(self.recv_raw(src, tag).expect("allgather payload"));
            }
        }
        self.next_seq();
        out.into_iter().map(|v| v.expect("all present")).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::run;

    #[test]
    fn barrier_completes_at_many_sizes() {
        for size in [1u32, 2, 3, 4, 5, 7, 8, 16] {
            run::<u32, _, _>(size, |mut comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let entered = AtomicU32::new(0);
        run::<u32, _, _>(6, |mut comm| {
            entered.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must have entered.
            assert_eq!(entered.load(Ordering::SeqCst), 6);
        });
    }

    #[test]
    fn broadcast_from_every_root() {
        for size in [1u32, 2, 3, 5, 8] {
            for root in 0..size {
                let out = run(size, |mut comm| {
                    let mine = if comm.rank() == root { 99u32 } else { 0 };
                    comm.broadcast(root, mine)
                });
                assert!(out.iter().all(|&v| v == 99), "size {size}, root {root}");
            }
        }
    }

    #[test]
    fn reduce_sum_at_every_root() {
        for size in [1u32, 2, 3, 6, 9] {
            for root in [0, size - 1] {
                let out = run(size, |mut comm| {
                    comm.reduce(root, comm.rank() + 1, |a, b| a + b)
                });
                let expected: u32 = (1..=size).sum();
                for (r, v) in out.iter().enumerate() {
                    if r as u32 == root {
                        assert_eq!(*v, Some(expected), "size {size}");
                    } else {
                        assert_eq!(*v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_max_vectors() {
        // The PRNA use case: element-wise max over row replicas.
        let out = run(5, |mut comm| {
            let r = comm.rank();
            // Rank r contributes a vector that is 0 except slot r.
            let mut v = vec![0u32; 5];
            v[r as usize] = r + 10;
            comm.allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| *x.max(y)).collect())
        });
        for v in out {
            assert_eq!(v, vec![10, 11, 12, 13, 14]);
        }
    }

    #[test]
    fn allreduce_on_single_rank() {
        let out = run(1, |mut comm| comm.allreduce(7u32, |a, b| a + b));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn gather_in_rank_order() {
        let out = run(4, |mut comm| comm.gather(2, comm.rank() * 11));
        assert_eq!(out[2], Some(vec![0, 11, 22, 33]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn scatter_delivers_per_rank_values() {
        let out = run(4, |mut comm| {
            let values = (comm.rank() == 1).then(|| vec![10u32, 11, 12, 13]);
            comm.scatter(1, values)
        });
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = run(5, |mut comm| comm.allgather(comm.rank() * 2));
        for v in out {
            assert_eq!(v, vec![0, 2, 4, 6, 8]);
        }
    }

    #[test]
    fn consecutive_mixed_collectives_do_not_interfere() {
        let out = run(4, |mut comm| {
            let a = comm.allreduce(comm.rank(), |x, y| x + y); // 6
            comm.barrier();
            let b = comm.broadcast(3, if comm.rank() == 3 { a * 2 } else { 0 });
            let c = comm.allgather(b + comm.rank());
            (a, b, c)
        });
        for (rank, (a, b, c)) in out.into_iter().enumerate() {
            assert_eq!(a, 6, "rank {rank}");
            assert_eq!(b, 12);
            assert_eq!(c, vec![12, 13, 14, 15]);
        }
    }

    #[test]
    fn ring_allreduce_matches_tree_allreduce() {
        for size in [1u32, 2, 3, 5, 8] {
            let out = run(size, |mut comm| {
                let mine = vec![comm.rank() * 3 + 1; 4];
                let tree = comm.allreduce(mine.clone(), |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x = (*x).max(*y);
                    }
                    a
                });
                let ring = comm.allreduce_ring(mine, |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x = (*x).max(*y);
                    }
                    a
                });
                (tree, ring)
            });
            for (rank, (tree, ring)) in out.into_iter().enumerate() {
                assert_eq!(tree, ring, "size {size}, rank {rank}");
                assert_eq!(tree, vec![(size - 1) * 3 + 1; 4]);
            }
        }
    }

    #[test]
    fn ring_allreduce_sum_counts_every_contribution_once() {
        let out = run(6, |mut comm| {
            comm.allreduce_ring(comm.rank() + 1, |a, b| a + b)
        });
        for v in out {
            assert_eq!(v, 21);
        }
    }

    #[test]
    fn reduce_is_correct_for_noncommutative_safe_op() {
        // max is idempotent/commutative — the documented contract.
        let out = run(7, |mut comm| comm.reduce(0, comm.rank(), |a, b| a.max(b)));
        assert_eq!(out[0], Some(6));
    }
}

//! The per-rank [`Communicator`]: tagged point-to-point messaging.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use mcos_telemetry::Recorder;

/// Message tag. User code may use any value below `1 << 60`; higher
/// values are reserved for the collective protocols.
pub type Tag = u64;

/// How long a blocking receive waits before concluding the program is
/// deadlocked and panicking with a diagnostic.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Base of the tag space reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BASE: Tag = 1 << 60;

pub(crate) struct Packet<T> {
    pub src: u32,
    pub tag: Tag,
    /// `None` for pure control packets (barrier).
    pub payload: Option<T>,
}

/// One rank's endpoint in the simulated communicator.
///
/// Methods taking `&mut self` reflect MPI's single-threaded-per-rank
/// usage; the communicator owns a pending-message buffer for `(src, tag)`
/// matching.
pub struct Communicator<T> {
    rank: u32,
    size: u32,
    senders: Arc<Vec<Sender<Packet<T>>>>,
    receiver: Receiver<Packet<T>>,
    pending: Vec<Packet<T>>,
    /// Sequence number embedded in collective tags so consecutive
    /// collectives cannot interfere.
    pub(crate) collective_seq: u64,
    /// Telemetry sink for collective accounting (disabled by default;
    /// see [`run_recorded`](crate::run_recorded)).
    pub(crate) recorder: Recorder,
}

impl<T: Send> Communicator<T> {
    pub(crate) fn new(
        rank: u32,
        size: u32,
        senders: Arc<Vec<Sender<Packet<T>>>>,
        receiver: Receiver<Packet<T>>,
        recorder: Recorder,
    ) -> Self {
        Communicator {
            rank,
            size,
            senders,
            receiver,
            pending: Vec::new(),
            collective_seq: 0,
            recorder,
        }
    }

    /// The telemetry recorder this communicator reports collectives to
    /// (disabled unless the world was started with
    /// [`run_recorded`](crate::run_recorded)).
    #[inline]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Sends `payload` to `dst` with `tag`. Asynchronous (buffered):
    /// never blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or `tag` is in the reserved
    /// collective range.
    pub fn send(&self, dst: u32, tag: Tag, payload: T) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.send_raw(dst, tag, Some(payload));
    }

    pub(crate) fn send_raw(&self, dst: u32, tag: Tag, payload: Option<T>) {
        assert!(dst < self.size, "destination rank {dst} out of range");
        self.senders[dst as usize]
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver thread alive for the duration of run()");
    }

    /// Receives the next message from `src` with `tag`, blocking until it
    /// arrives. Messages from other sources/tags arriving in the interim
    /// are buffered for later receives.
    ///
    /// # Panics
    ///
    /// Panics after [`RECV_TIMEOUT`] with a deadlock diagnostic.
    pub fn recv(&mut self, src: u32, tag: Tag) -> T {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.recv_raw(src, tag)
            .expect("data packet carries a payload")
    }

    /// Receives the next message with `tag` from **any** source (the
    /// `MPI_ANY_SOURCE` pattern), returning the sender's rank alongside
    /// the payload. Needed by manager/worker protocols where the manager
    /// cannot know which worker will request next.
    pub fn recv_any(&mut self, tag: Tag) -> (u32, T) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        if let Some(i) = self.pending.iter().position(|p| p.tag == tag) {
            let p = self.pending.swap_remove(i);
            return (p.src, p.payload.expect("data packet carries a payload"));
        }
        loop {
            match self.receiver.recv_timeout(RECV_TIMEOUT) {
                Ok(p) if p.tag == tag => {
                    return (p.src, p.payload.expect("data packet carries a payload"))
                }
                Ok(p) => self.pending.push(p),
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {} starved waiting for (any src, tag={tag:#x}) after {RECV_TIMEOUT:?}",
                    self.rank
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: all senders dropped", self.rank)
                }
            }
        }
    }

    pub(crate) fn recv_raw(&mut self, src: u32, tag: Tag) -> Option<T> {
        // Check the pending buffer first.
        if let Some(i) = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            return self.pending.swap_remove(i).payload;
        }
        loop {
            match self.receiver.recv_timeout(RECV_TIMEOUT) {
                Ok(p) if p.src == src && p.tag == tag => return p.payload,
                Ok(p) => self.pending.push(p),
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {} starved waiting for (src={src}, tag={tag:#x}) after {RECV_TIMEOUT:?} \
                     — collective order mismatch or missing send?",
                    self.rank
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: all senders dropped", self.rank)
                }
            }
        }
    }
}

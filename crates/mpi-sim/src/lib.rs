//! An in-process message-passing substrate with MPI-style semantics.
//!
//! The paper implements PRNA on top of MPI: every rank keeps a replica of
//! the memoization table `M` and synchronizes one row at a time with
//! `MPI_Allreduce(..., MPI_MAX)`. This crate reproduces that programming
//! model — SPMD ranks, tagged point-to-point messages, and collectives
//! built from them — inside a single process, with ranks running as
//! scoped threads.
//!
//! # Model
//!
//! * [`run`] launches `size` ranks, each receiving its own
//!   [`Communicator`]; the closure's return values are collected in rank
//!   order.
//! * Point-to-point: [`Communicator::send`] / [`Communicator::recv`] with
//!   `(source, tag)` matching; out-of-order arrivals are buffered, so a
//!   rank can run multiple protocols concurrently on distinct tags.
//! * Collectives: [`Communicator::barrier`] (dissemination),
//!   [`Communicator::broadcast`] (binomial tree),
//!   [`Communicator::reduce`] / [`Communicator::allreduce`]
//!   (binomial-tree reduce, then broadcast), [`Communicator::gather`],
//!   [`Communicator::allgather`] and [`Communicator::scatter`]. All ranks
//!   must invoke collectives in the same order (the usual MPI contract);
//!   an internal per-communicator sequence number keeps consecutive
//!   collectives from interfering.
//!
//! Receives carry a generous timeout (default 60 s) so protocol bugs
//! surface as a panic naming the starved rank rather than a silent hang.
//!
//! # Example
//!
//! ```
//! use mpi_sim::run;
//!
//! // Element-wise max allreduce across 4 ranks.
//! let results = run(4, |mut comm| {
//!     let mine = vec![comm.rank(); 3];
//!     comm.allreduce(mine, |a, b| a.iter().zip(&b).map(|(x, y)| *x.max(y)).collect())
//! });
//! assert!(results.iter().all(|r| r == &vec![3, 3, 3]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collectives;
mod comm;

pub use comm::{Communicator, Tag, RECV_TIMEOUT};

use crossbeam::channel;
use mcos_telemetry::Recorder;

/// Launches `size` ranks running `f` and returns their results in rank
/// order. Panics in any rank propagate after all threads join.
pub fn run<T, R, F>(size: u32, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send,
    F: Fn(Communicator<T>) -> R + Sync,
{
    run_recorded(size, &Recorder::disabled(), f)
}

/// Builds the `size` communicators of a world *without* launching any
/// threads, in rank order. For callers that embed ranks in their own
/// worker threads (e.g. an execution engine whose workers double as
/// ranks) instead of letting [`run`] spawn one thread per rank. Every
/// communicator reports collective accounting to `recorder`.
///
/// The usual MPI contract applies: each communicator must be driven by
/// exactly one thread, and all ranks must invoke collectives in the
/// same order.
pub fn world<T: Send>(size: u32, recorder: &Recorder) -> Vec<Communicator<T>> {
    assert!(size > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(size as usize);
    let mut receivers = Vec::with_capacity(size as usize);
    for _ in 0..size {
        let (s, r) = channel::unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let senders = std::sync::Arc::new(senders);
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| {
            Communicator::new(
                rank as u32,
                size,
                senders.clone(),
                receiver,
                recorder.clone(),
            )
        })
        .collect()
}

/// Like [`run`], but every rank's communicator reports collective
/// accounting (`Allreduce` calls, tree rounds) to `recorder`. With a
/// disabled recorder this is exactly [`run`].
pub fn run_recorded<T, R, F>(size: u32, recorder: &Recorder, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send,
    F: Fn(Communicator<T>) -> R + Sync,
{
    let comms: Vec<Communicator<T>> = world(size, recorder);

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run::<u32, _, _>(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42u32
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = run::<u32, _, _>(6, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run::<u32, _, _>(0, |_| ());
    }

    #[test]
    fn world_ranks_usable_from_caller_threads() {
        // `world` hands out communicators without spawning; embedding
        // them in caller-owned threads behaves exactly like `run`.
        let comms = world::<Vec<u32>>(3, &Recorder::disabled());
        std::thread::scope(|s| {
            for mut comm in comms {
                s.spawn(move || {
                    let merged = comm.allreduce(vec![comm.rank()], |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x = (*x).max(*y);
                        }
                        a
                    });
                    assert_eq!(merged, vec![2]);
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_world_rejected() {
        let _ = world::<u32>(0, &Recorder::disabled());
    }

    #[test]
    fn ping_pong() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1u32, 2, 3]);
                comm.recv(1, 8)
            } else {
                let v = comm.recv(0, 7);
                let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
                comm.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2, 4, 6]);
        assert_eq!(out[1], vec![2, 4, 6]);
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends two messages with different tags; rank 1 receives
        // them in the opposite order.
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 100, vec![100u32]);
                comm.send(1, 200, vec![200u32]);
                vec![]
            } else {
                let second = comm.recv(0, 200);
                let first = comm.recv(0, 100);
                vec![second[0], first[0]]
            }
        });
        assert_eq!(out[1], vec![200, 100]);
    }

    #[test]
    fn source_matching_buffers_other_sources() {
        let out = run(3, |mut comm| {
            match comm.rank() {
                0 => {
                    comm.send(2, 1, vec![0u32]);
                    0
                }
                1 => {
                    comm.send(2, 1, vec![11u32]);
                    0
                }
                _ => {
                    // Receive specifically from rank 1 first.
                    let a = comm.recv(1, 1);
                    let b = comm.recv(0, 1);
                    a[0] * 1000 + b[0]
                }
            }
        });
        assert_eq!(out[2], 11000);
    }

    #[test]
    fn recv_any_returns_source() {
        // A manager receives from whichever worker asks first, twice.
        let out = run::<Vec<u32>, _, _>(3, |mut comm| {
            if comm.rank() == 0 {
                let (s1, v1) = comm.recv_any(9);
                let (s2, v2) = comm.recv_any(9);
                let mut got = vec![(s1, v1[0]), (s2, v2[0])];
                got.sort_unstable();
                assert_eq!(got, vec![(1, 100), (2, 200)]);
                0
            } else {
                comm.send(0, 9, vec![comm.rank() * 100]);
                comm.rank()
            }
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn recv_any_respects_tag_and_buffers_rest() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![5u32]);
                comm.send(1, 6, vec![6u32]);
                0
            } else {
                // Ask for tag 6 first; tag 5 must be buffered, not lost.
                let (_, six) = comm.recv_any(6);
                let (_, five) = comm.recv_any(5);
                six[0] * 10 + five[0]
            }
        });
        assert_eq!(out[1], 65);
    }

    #[test]
    fn many_ranks_stress() {
        // Every rank sends its rank to every other rank and sums receipts.
        let n = 8u32;
        let out = run(n, |mut comm| {
            for dst in 0..n {
                if dst != comm.rank() {
                    comm.send(dst, 5, vec![comm.rank()]);
                }
            }
            let mut sum = 0;
            for src in 0..n {
                if src != comm.rank() {
                    sum += comm.recv(src, 5)[0];
                }
            }
            sum
        });
        for (rank, s) in out.iter().enumerate() {
            assert_eq!(*s, (0..n).sum::<u32>() - rank as u32);
        }
    }
}

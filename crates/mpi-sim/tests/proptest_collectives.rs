//! Property tests for the mpi-sim collectives: for arbitrary world
//! sizes, roots and payloads, the collectives must compute exactly what
//! their sequential definitions say.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_allreduce_max_vectors(size in 1u32..9, len in 0usize..32, seed in 0u64..10_000) {
        // Deterministic per-rank vectors derived from (seed, rank, slot).
        let expected: Vec<u32> = (0..len)
            .map(|i| (0..size).map(|r| value(seed, r, i)).max().unwrap())
            .collect();
        let out = mpi_sim::run(size, |mut comm| {
            let mine: Vec<u32> = (0..len).map(|i| value(seed, comm.rank(), i)).collect();
            comm.allreduce(mine, |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x = (*x).max(*y);
                }
                a
            })
        });
        for v in out {
            prop_assert_eq!(&v, &expected);
        }
    }

    #[test]
    fn prop_reduce_sum(size in 1u32..9, root_pick in 0u32..8, seed in 0u64..10_000) {
        let root = root_pick % size;
        let expected: u64 = (0..size).map(|r| value(seed, r, 0) as u64).sum();
        let out = mpi_sim::run(size, |mut comm| {
            comm.reduce(root, value(seed, comm.rank(), 0) as u64, |a, b| a + b)
        });
        for (rank, v) in out.into_iter().enumerate() {
            if rank as u32 == root {
                prop_assert_eq!(v, Some(expected));
            } else {
                prop_assert_eq!(v, None);
            }
        }
    }

    #[test]
    fn prop_broadcast_from_any_root(size in 1u32..9, root_pick in 0u32..8, payload in any::<u32>()) {
        let root = root_pick % size;
        let out = mpi_sim::run(size, |mut comm| {
            let mine = if comm.rank() == root { payload } else { 0 };
            comm.broadcast(root, mine)
        });
        prop_assert!(out.into_iter().all(|v| v == payload));
    }

    #[test]
    fn prop_gather_scatter_inverse(size in 1u32..8, seed in 0u64..10_000) {
        // scatter then gather returns the original vector at the root.
        let values: Vec<u32> = (0..size).map(|r| value(seed, r, 7)).collect();
        let out = mpi_sim::run(size, |mut comm| {
            let v = comm.scatter(0, (comm.rank() == 0).then(|| values.clone()));
            comm.gather(0, v)
        });
        prop_assert_eq!(out[0].as_ref(), Some(&values));
    }

    #[test]
    fn prop_allgather_order(size in 1u32..9, seed in 0u64..10_000) {
        let expected: Vec<u32> = (0..size).map(|r| value(seed, r, 3)).collect();
        let out = mpi_sim::run(size, |mut comm| comm.allgather(value(seed, comm.rank(), 3)));
        for v in out {
            prop_assert_eq!(&v, &expected);
        }
    }
}

/// Deterministic pseudo-random value per (seed, rank, slot).
fn value(seed: u64, rank: u32, slot: usize) -> u32 {
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(rank as u64)
        .wrapping_mul(0xBF58476D1CE4E5B9)
        .wrapping_add(slot as u64);
    x ^= x >> 31;
    (x & 0xFFFF) as u32
}

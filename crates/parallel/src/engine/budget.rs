//! The [`Budgeted`] store decorator: linear-space stage one under a
//! resident-cell budget.
//!
//! Wraps any [`MemoStore`] and drives the retention contract from a
//! [`RetentionPlan`]:
//!
//! * **Dead sweep** — after each step settles, every cell whose last
//!   stage-one reader just ran ([`RetentionPlan::for_dead_at`]) is
//!   evicted from the wrapped representation. With no budget pressure
//!   this alone pins the resident peak to the schedule's liveness
//!   floor.
//! * **Pressure eviction** — when the cells still live exceed
//!   `budget − cells_written_at(next step)`, whole write-steps are
//!   evicted oldest-first until the next step's writes fit. Evicted
//!   cells that still have readers are serviced on the next gather by
//!   recomputing them through the slice kernel
//!   ([`mcos_core::recompute::CellOracle`]) — the classic space/time
//!   trade.
//!
//! # Determinism
//!
//! Eviction decisions are a pure function of `(plan, settled step)` —
//! never of shared-bitmap outcomes or any cross-lane observation. The
//! replicated store runs one ledger per worker lane, and because every
//! lane evaluates the same plan over the same step sequence, all
//! replicas follow bit-identical residency trajectories; the shared
//! eviction bitmap a lane consults on its own gathers is therefore
//! always at least as current as that lane's own replica. Coordinated
//! stores run a single ledger on lane 0 (the settling coordinator),
//! ordered before the next step's views by the engine's hand-shake.
//!
//! The eviction *bitmap* is shared so a cell dropped anywhere resolves
//! as a recompute everywhere, and so `mcos.mem.evicted_cells` counts
//! each logical cell once no matter how many replicas dropped it.
//!
//! # Budget semantics
//!
//! The budget is a per-representation resident-cell target (each
//! replica of the replicated store individually honors it; the world
//! footprint is `workers × budget`). A step's own writes can never be
//! evicted while it runs, so the enforced invariant is
//! `resident_peak ≤ max(budget, max_s cells_written_at(s))`: budgets
//! below the widest single step degrade to that step frontier.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcos_core::kernel::SliceKernel;
use mcos_core::memo::MemoTable;
use mcos_core::preprocess::Preprocessed;
use mcos_core::recompute::CellOracle;
use mcos_telemetry::{Recorder, WorkerLog};
use parking_lot::Mutex;

use super::retention::RetentionPlan;
use super::schedule::Step;
use super::store::{MemoStore, StepView};

/// Cross-lane budget state: the eviction bitmap plus the run's
/// retention counters. Shared between the store, its views, and the
/// dispatcher that publishes the counters after the run.
pub struct BudgetShared {
    a2: u32,
    /// One bit per logical grid cell; set once when the cell is first
    /// evicted anywhere.
    bits: Vec<AtomicU64>,
    evicted_cells: AtomicU64,
    resident_cells_peak: AtomicU64,
    recompute_slices: AtomicU64,
    recompute_cells: AtomicU64,
}

impl BudgetShared {
    /// Fresh state for an `a1 × a2` grid.
    pub fn new(a1: u32, a2: u32) -> Self {
        let cells = u64::from(a1) * u64::from(a2);
        let words = cells.div_ceil(64) as usize;
        BudgetShared {
            a2,
            bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
            evicted_cells: AtomicU64::new(0),
            resident_cells_peak: AtomicU64::new(0),
            recompute_slices: AtomicU64::new(0),
            recompute_cells: AtomicU64::new(0),
        }
    }

    #[inline]
    fn slot(&self, g1: u32, g2: u32) -> (usize, u64) {
        let idx = u64::from(g1) * u64::from(self.a2) + u64::from(g2);
        ((idx / 64) as usize, 1u64 << (idx % 64))
    }

    /// Whether cell `(g1, g2)` has been evicted (anywhere).
    // ORDERING: Relaxed — a lane only depends on marks it set itself
    // (program order) or that were published before a step hand-shake
    // edge (channel send / allreduce), both of which already order the
    // load. A stale `true` merely recomputes the same value.
    #[inline]
    pub fn is_evicted(&self, g1: u32, g2: u32) -> bool {
        let (w, b) = self.slot(g1, g2);
        // ORDERING: Relaxed — see the method doc above; hand-shake
        // edges order the marks this load depends on.
        self.bits[w].load(Ordering::Relaxed) & b != 0
    }

    /// Marks the cell evicted; returns whether this call was the first
    /// to do so (the global once-per-cell eviction count).
    #[inline]
    fn mark(&self, g1: u32, g2: u32) -> bool {
        let (w, b) = self.slot(g1, g2);
        // ORDERING: Relaxed — the RMW is atomic on its own; readers
        // are ordered by the step hand-shake, not by this bit.
        self.bits[w].fetch_or(b, Ordering::Relaxed) & b == 0
    }

    fn count_recompute(&self, slices: u64, cells: u64) {
        // ORDERING: Relaxed — pure statistics, read after the run.
        self.recompute_slices.fetch_add(slices, Ordering::Relaxed);
        self.recompute_cells.fetch_add(cells, Ordering::Relaxed);
    }

    /// Logical cells evicted at least once.
    pub fn evicted_cells(&self) -> u64 {
        // ORDERING: Relaxed — statistic, read after the run settles.
        self.evicted_cells.load(Ordering::Relaxed)
    }

    /// Highest resident-cell count any single ledger observed (after a
    /// step's writes landed, before its sweeps ran).
    pub fn resident_cells_peak(&self) -> u64 {
        // ORDERING: Relaxed — statistic, read after the run settles.
        self.resident_cells_peak.load(Ordering::Relaxed)
    }

    /// Slices re-tabulated to service reads of evicted cells.
    pub fn recompute_slices(&self) -> u64 {
        // ORDERING: Relaxed — statistic, read after the run settles.
        self.recompute_slices.load(Ordering::Relaxed)
    }

    /// Cells tabulated during those recomputations.
    pub fn recompute_cells(&self) -> u64 {
        // ORDERING: Relaxed — statistic, read after the run settles.
        self.recompute_cells.load(Ordering::Relaxed)
    }

    /// Publishes the run's retention counters to `recorder`.
    pub fn publish(&self, recorder: &Recorder) {
        recorder.count_evicted_cells(self.evicted_cells());
        recorder.count_recompute(self.recompute_slices(), self.recompute_cells());
        recorder.record_resident_cells_peak(self.resident_cells_peak());
    }
}

/// One lane's residency ledger: the deterministic trajectory of cells
/// live in that lane's representation.
struct Ledger {
    /// First step whose settlement this ledger has not yet processed.
    next_step: u32,
    live: u64,
    /// Live cells grouped by write step (pressure evicts whole groups).
    live_by: Vec<u64>,
    /// Write steps force-evicted under pressure: their cells are
    /// already gone and marked, so the later dead sweep must not
    /// decrement them again.
    pressured: Vec<bool>,
    /// Pressure cursor: oldest write step that may still hold cells.
    oldest: u32,
    peak: u64,
}

impl Ledger {
    fn new(plan: &RetentionPlan) -> Self {
        let n = plan.num_steps() as usize;
        Ledger {
            next_step: 0,
            live: 0,
            live_by: vec![0; n],
            pressured: vec![false; n],
            oldest: 0,
            peak: 0,
        }
    }
}

/// The budget outcome a dispatcher hands to stage two: the plan plus
/// the shared bitmap/counters, so later reads of the (now partial)
/// memo can route misses through recomputation.
pub struct BudgetHandle {
    /// The retention plan the run was evicted under.
    pub plan: Arc<RetentionPlan>,
    /// Bitmap + counters (see [`BudgetShared`]).
    pub shared: Arc<BudgetShared>,
}

/// A [`MemoStore`] decorator enforcing a resident-cell budget via the
/// wrapped store's retention contract. See the module docs for the
/// eviction policy and determinism argument.
// POLICY: decorator — representation and synchronization are the
// wrapped store's; this layer only decides *which cells remain*.
pub struct Budgeted<'p, M> {
    inner: M,
    plan: Arc<RetentionPlan>,
    budget: u64,
    p1: &'p Preprocessed,
    p2: &'p Preprocessed,
    /// Kernel for servicing evicted reads by recomputation — the same
    /// kernel stage one tabulates with, so recomputed values are
    /// bit-identical.
    kernel: &'p dyn SliceKernel,
    shared: Arc<BudgetShared>,
    ledgers: Vec<Mutex<Ledger>>,
}

impl<'p, M: MemoStore> Budgeted<'p, M> {
    /// Wraps `inner` under `budget` resident cells. `lanes` is the
    /// number of worker lanes that synchronize the store themselves
    /// (the replicated world size); coordinated stores use lane 0
    /// only.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        inner: M,
        plan: Arc<RetentionPlan>,
        budget: u64,
        lanes: usize,
        p1: &'p Preprocessed,
        p2: &'p Preprocessed,
        kernel: &'p dyn SliceKernel,
        shared: Arc<BudgetShared>,
    ) -> Self {
        let ledgers = (0..lanes.max(1))
            .map(|_| Mutex::new(Ledger::new(&plan)))
            .collect();
        Budgeted {
            inner,
            plan,
            budget,
            p1,
            p2,
            kernel,
            shared,
            ledgers,
        }
    }

    /// Processes the settlement of every step through `index` on the
    /// given lane: land the writes, sweep the dead, pressure-evict
    /// until the next step's writes fit.
    fn after_settle(&self, who: Option<usize>, index: u32) {
        let plan = &*self.plan;
        debug_assert!(
            index < plan.num_steps(),
            "budgeted runs require sound (unmerged) schedules"
        );
        let mut led = self.ledgers[who.unwrap_or(0)].lock();
        let mut newly = 0u64;
        for s in led.next_step..=index {
            // Writes land; the peak is measured before any sweep, so
            // it is directly comparable to the liveness-floor model.
            let written = plan.cells_written_at(s);
            led.live += written;
            led.live_by[s as usize] += written;
            led.peak = led.peak.max(led.live);

            // Dead sweep: last readers of these cells settled at `s`.
            {
                let led = &mut *led;
                plan.for_dead_at(s, &mut |g, cols| {
                    self.inner.evict_cells(who, g, cols);
                    for &h in cols {
                        if self.shared.mark(g, h) {
                            newly += 1;
                        }
                        let ws = plan.write_step(g, h) as usize;
                        // Pressure already removed (and accounted) the
                        // whole write group; decrementing again would
                        // corrupt the ledger.
                        if !led.pressured[ws] {
                            led.live -= 1;
                            led.live_by[ws] -= 1;
                        }
                    }
                });
            }

            // Pressure: make room for the next step's writes by
            // evicting whole write-steps oldest-first. Evicted cells
            // with remaining readers recompute on demand.
            let target = self.budget.saturating_sub(plan.cells_written_at(s + 1));
            while led.live > target && led.oldest <= s {
                let w = led.oldest;
                led.oldest += 1;
                if led.live_by[w as usize] == 0 {
                    continue;
                }
                plan.for_written_at(w, &mut |g, cols| {
                    self.inner.evict_cells(who, g, cols);
                    for &h in cols {
                        if self.shared.mark(g, h) {
                            newly += 1;
                        }
                    }
                });
                led.live -= led.live_by[w as usize];
                led.live_by[w as usize] = 0;
                led.pressured[w as usize] = true;
            }
        }
        led.next_step = index + 1;
        // Advisory pin for stores that window internally.
        self.inner.retain_through(index + 1);
        self.shared
            .resident_cells_peak
            // ORDERING: Relaxed — statistics; the RMWs are atomic on
            // their own and are only read after the run settles.
            .fetch_max(led.peak, Ordering::Relaxed);
        if newly > 0 {
            // ORDERING: Relaxed — same statistics rationale as above.
            self.shared
                .evicted_cells
                .fetch_add(newly, Ordering::Relaxed);
        }
    }
}

/// The decorated view: gathers consult the eviction bitmap and route
/// misses through a [`CellOracle`] seeded with this view's recompute
/// cache (per-view, so the cache cannot silently regrow the table the
/// budget just shrank).
pub struct BudgetedView<'v, V> {
    inner: V,
    shared: &'v BudgetShared,
    p1: &'v Preprocessed,
    p2: &'v Preprocessed,
    kernel: &'v dyn SliceKernel,
    cache: HashMap<(u32, u32), u32>,
}

impl<V: StepView> StepView for BudgetedView<'_, V> {
    fn gather(&mut self, owner: (u32, u32), g1: u32, lo2: u32, hi2: u32, buf: &mut [u32]) {
        // Fast path: the whole row segment is resident.
        if (lo2..hi2).all(|c| !self.shared.is_evicted(g1, c)) {
            self.inner.gather(owner, g1, lo2, hi2, buf);
            return;
        }
        // Slow path: resolve cell by cell, recomputing evicted ones.
        let BudgetedView {
            inner,
            shared,
            p1,
            p2,
            kernel,
            cache,
        } = self;
        let base = |a: u32, b: u32| {
            if shared.is_evicted(a, b) {
                None
            } else {
                let mut one = [0u32];
                inner.gather(owner, a, b, b + 1, &mut one);
                Some(one[0])
            }
        };
        let mut oracle = CellOracle::seeded(p1, p2, *kernel, base, std::mem::take(cache));
        for (i, c) in (lo2..hi2).enumerate() {
            buf[i] = oracle.get(g1, c);
        }
        let (slices, cells) = (oracle.recompute_slices(), oracle.recompute_cells());
        *cache = oracle.into_cache();
        shared.count_recompute(slices, cells);
    }

    fn publish(&mut self, k1: u32, k2: u32, v: u32) {
        self.inner.publish(k1, k2, v);
    }
}

// POLICY: the decorator forwards the retention contract to the inner
// store verbatim; only gather/after_settle add behavior, so schedule
// soundness proven for the inner store carries over unchanged.
impl<'p, M: MemoStore> MemoStore for Budgeted<'p, M> {
    type View<'v>
        = BudgetedView<'v, M::View<'v>>
    where
        Self: 'v;

    fn name(&self) -> &'static str {
        // Keep the wrapped representation's label: telemetry reports
        // the budget through its own counters, not the store name.
        self.inner.name()
    }

    fn coordinated(&self) -> bool {
        self.inner.coordinated()
    }

    fn cells_allocated(&self) -> u64 {
        self.inner.cells_allocated()
    }

    fn begin_step(&self, w: usize) -> Self::View<'_> {
        BudgetedView {
            inner: self.inner.begin_step(w),
            shared: &self.shared,
            p1: self.p1,
            p2: self.p2,
            kernel: self.kernel,
            cache: HashMap::new(),
        }
    }

    fn worker_sync(&self, w: usize, step: &Step, log: &mut WorkerLog) {
        self.inner.worker_sync(w, step, log);
        // Self-synchronizing stores settle in every worker lane: each
        // replica runs its own (identical) eviction trajectory.
        if !self.inner.coordinated() {
            self.after_settle(Some(w), step.index);
        }
    }

    fn manager_sync(&self, step: &Step, log: &mut WorkerLog) {
        // The manager rank is memo-less: nothing to evict.
        self.inner.manager_sync(step, log);
    }

    fn retain_through(&self, step: u32) {
        self.inner.retain_through(step);
    }

    fn evict_cells(&self, w: Option<usize>, g1: u32, cols: &[u32]) -> u64 {
        self.inner.evict_cells(w, g1, cols)
    }

    fn settle(&self, step: &Step, recorder: &Recorder) {
        self.inner.settle(step, recorder);
        self.after_settle(None, step.index);
    }

    fn finish(self) -> MemoTable {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::schedule::{RowBarrier, Schedule};
    use crate::engine::store::{LockFreeAtomic, Replicated, SharedRwLock};
    use crate::engine::{run_stage_one, Distribution};
    use crate::ScheduleKind;
    use load_balance::Policy;
    use mcos_core::kernel::KernelKind;
    use mcos_core::{srna2, workload};
    use rna_structure::generate;

    /// Runs a budgeted row-schedule stage one and returns the (holey)
    /// memo plus the budget state.
    fn run_budgeted<M: MemoStore>(
        p1: &Preprocessed,
        p2: &Preprocessed,
        store: M,
        lanes: usize,
        budget: u64,
        dist: Distribution<'_>,
        workers: u32,
    ) -> (MemoTable, Arc<BudgetShared>, Arc<RetentionPlan>) {
        let plan = Arc::new(RetentionPlan::new(p1, p2, ScheduleKind::Row));
        let shared = Arc::new(BudgetShared::new(p1.num_arcs(), p2.num_arcs()));
        let kernel = KernelKind::Scalar;
        let store = Budgeted::new(
            store,
            plan.clone(),
            budget,
            lanes,
            p1,
            p2,
            kernel.kernel(),
            shared.clone(),
        );
        let memo = run_stage_one(
            &RowBarrier,
            store,
            dist,
            kernel,
            workers,
            p1,
            p2,
            &Recorder::disabled(),
        );
        (memo, shared, plan)
    }

    /// Every cell — resident or evicted — must resolve bit-identically
    /// to SRNA2 through the oracle over the holey memo.
    fn assert_oracle_equivalence(
        p1: &Preprocessed,
        p2: &Preprocessed,
        memo: &MemoTable,
        shared: &BudgetShared,
    ) {
        let reference = srna2::run_preprocessed(p1, p2).memo;
        let kernel = KernelKind::Scalar.kernel();
        let mut oracle = CellOracle::new(p1, p2, kernel, |a, b| {
            if shared.is_evicted(a, b) {
                None
            } else {
                Some(memo.get(a, b))
            }
        });
        for g1 in 0..p1.num_arcs() {
            for g2 in 0..p2.num_arcs() {
                assert_eq!(
                    oracle.get(g1, g2),
                    reference.get(g1, g2),
                    "cell ({g1}, {g2})"
                );
            }
        }
    }

    #[test]
    fn budget_pressure_stays_under_budget_and_resolves_bit_identically() {
        let s1 = generate::random_structure(52, 0.8, 11);
        let s2 = generate::random_structure(48, 0.8, 12);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let plan = RetentionPlan::new(&p1, &p2, ScheduleKind::Row);
        // Tight budget: well under the no-pressure floor, but at least
        // the widest single step (see module docs on the invariant).
        let widest = (0..plan.num_steps())
            .map(|s| plan.cells_written_at(s))
            .max()
            .unwrap();
        let floor = plan.liveness().floor_cells;
        let budget = (floor / 2).max(widest);
        assert!(budget < floor, "test wants real pressure");

        let steps = RowBarrier.steps(&p1, &p2);
        let store = SharedRwLock::new(p1.num_arcs(), p2.num_arcs(), &steps);
        let (memo, shared, _) = run_budgeted(&p1, &p2, store, 1, budget, Distribution::Claim, 3);

        assert!(shared.evicted_cells() > 0);
        assert!(
            shared.resident_cells_peak() <= budget.max(widest),
            "peak {} exceeds budget {budget} (widest step {widest})",
            shared.resident_cells_peak()
        );
        assert!(
            shared.recompute_slices() > 0,
            "pressure eviction must trigger recomputation"
        );
        assert_oracle_equivalence(&p1, &p2, &memo, &shared);
    }

    #[test]
    fn unpressured_budget_pins_the_peak_to_the_liveness_floor() {
        let s1 = generate::hairpin_chain(12, 3, 2);
        let s2 = generate::random_structure(40, 0.7, 13);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let steps = RowBarrier.steps(&p1, &p2);
        let store = SharedRwLock::new(p1.num_arcs(), p2.num_arcs(), &steps);
        // Budget = whole grid: the dead sweep alone decides residency.
        let budget = u64::from(p1.num_arcs()) * u64::from(p2.num_arcs());
        let (memo, shared, plan) = run_budgeted(&p1, &p2, store, 1, budget, Distribution::Claim, 2);

        let floor = plan.liveness().floor_cells;
        assert_eq!(
            shared.resident_cells_peak(),
            floor,
            "sweep-only trajectory must equal the plan's floor"
        );
        assert_eq!(shared.recompute_slices(), 0, "no pressure, no recompute");
        assert!(shared.evicted_cells() > 0);
        assert_oracle_equivalence(&p1, &p2, &memo, &shared);
    }

    #[test]
    fn replicated_lanes_follow_identical_trajectories() {
        let s1 = generate::random_structure(44, 0.8, 14);
        let s2 = generate::random_structure(40, 0.8, 15);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let plan = RetentionPlan::new(&p1, &p2, ScheduleKind::Row);
        let widest = (0..plan.num_steps())
            .map(|s| plan.cells_written_at(s))
            .max()
            .unwrap();
        let budget = (plan.liveness().floor_cells / 2).max(widest);

        let rec = Recorder::disabled();
        let workers = 2u32;
        let store = Replicated::new(p1.num_arcs(), p2.num_arcs(), workers, false, &rec);
        let (memo, shared, _) = run_budgeted(
            &p1,
            &p2,
            store,
            workers as usize,
            budget,
            Distribution::Claim,
            workers,
        );

        // The bitmap counts each logical cell once even though both
        // replicas evicted it.
        assert!(shared.evicted_cells() <= u64::from(p1.num_arcs()) * u64::from(p2.num_arcs()));
        assert!(shared.resident_cells_peak() <= budget.max(widest));
        assert_oracle_equivalence(&p1, &p2, &memo, &shared);
    }

    #[test]
    fn budgeted_static_lockfree_matches_on_the_resident_part() {
        let s1 = generate::random_structure(48, 0.9, 16);
        let s2 = generate::random_structure(44, 0.8, 17);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let weights = workload::column_weights(&p1, &p2);
        let assignment = Policy::Lpt.assign(&weights, 4);
        let plan = RetentionPlan::new(&p1, &p2, ScheduleKind::Row);
        let widest = (0..plan.num_steps())
            .map(|s| plan.cells_written_at(s))
            .max()
            .unwrap();
        let budget = (plan.liveness().floor_cells / 2).max(widest);
        let store = LockFreeAtomic::new(p1.num_arcs(), p2.num_arcs());
        let (memo, shared, _) = run_budgeted(
            &p1,
            &p2,
            store,
            1,
            budget,
            Distribution::Static(&assignment),
            4,
        );
        // Resident cells are exactly the reference values.
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        for g1 in 0..p1.num_arcs() {
            for g2 in 0..p2.num_arcs() {
                if !shared.is_evicted(g1, g2) {
                    assert_eq!(memo.get(g1, g2), reference.get(g1, g2));
                }
            }
        }
        assert_oracle_equivalence(&p1, &p2, &memo, &shared);
    }
}

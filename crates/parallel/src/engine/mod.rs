//! The generic stage-one execution engine: one orchestration loop,
//! parameterized by orthogonal policies.
//!
//! The paper's PRNA (§V) is a single orchestration idea — child slices
//! as primitive tasks, the memo table `M` synchronized in steps — that
//! the repo used to implement five times over. The engine factors the
//! loop into three independent axes:
//!
//! * a [`Schedule`] decides *when* `M` synchronizes
//!   ([`RowBarrier`] per arc of `S₁`, [`LevelWavefront`] per
//!   dependency level);
//! * a [`MemoStore`] decides *how* `M` is represented and merged
//!   ([`Replicated`] with `Allreduce(MAX)`, [`SharedRwLock`],
//!   [`LockFreeAtomic`], each optionally wrapped in the [`Tracing`]
//!   decorator for the race checker);
//! * a [`Distribution`] decides *who* runs each slice (static column
//!   ownership, dynamic claiming, or a manager handing out slices on
//!   request).
//!
//! [`run_stage_one`] owns everything the five bespoke backends used to
//! duplicate: worker spawning, deterministic lane ids (worker `w` is
//! lane `w + 1`, the coordinator lane 0), scratch reuse, slice-span
//! telemetry, and the step hand-shake. The legacy backends are thin
//! compositions over this loop (see [`crate::Backend`]), and new
//! combinations — wavefront × replicated, row-barrier × lock-free —
//! come for free.
//!
//! # Execution shapes
//!
//! Three loop shapes cover the policy matrix:
//!
//! * **free-running** (non-coordinated store, static/claimed slices):
//!   workers run the schedule in lockstep with no coordinator thread;
//!   the store's own synchronization (the allreduce) is the step
//!   barrier. This is the paper's SPMD shape.
//! * **coordinated** (store needs a settlement thread): workers are
//!   released into each step over go channels, report completion, and
//!   the coordinator settles the step — the shared-memory shape.
//! * **managed** (manager hands out slices): a coordinator thread
//!   serves slice requests heaviest-first, then joins the store's
//!   synchronization — the Snow-style related-work shape.

pub mod budget;
pub mod plan;
pub mod readiness;
pub mod retention;
pub mod schedule;
pub mod store;
pub mod tracing;

pub use budget::{BudgetHandle, BudgetShared, Budgeted};
pub use plan::{
    sync_plan, sync_plan_broken_wavefront, PlannedSlice, PlannedStep, SyncOp, SyncPlan,
};
pub use readiness::ReadinessProgram;
pub use retention::RetentionPlan;
pub use schedule::{LevelWavefront, RowBarrier, Schedule, SchedulePlan, Step};
pub use store::{LockFreeAtomic, MemoStore, Replicated, SharedRwLock, StepView};
pub use tracing::Tracing;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::bounded;
use load_balance::Assignment;
use mcos_core::kernel::{KernelKind, KernelScratch, SliceKernel};
use mcos_core::trace::{TaskId, TraceLog};
use mcos_core::{memo::MemoTable, preprocess::Preprocessed};
use mcos_telemetry::mem::{Arena, ArenaScope};
use mcos_telemetry::{BarrierKind, Recorder, WorkerLog};

use crate::{slice_detail, Backend, DistKind, ScheduleKind, StoreKind};

/// Who runs each slice of a step.
#[derive(Debug, Clone, Copy)]
pub enum Distribution<'a> {
    /// Static column ownership: worker `w` runs the slices whose `S₂`
    /// arc it owns under `assignment` (the paper's load balancer).
    Static(&'a Assignment),
    /// Dynamic claiming: workers pop slices off the step's list via a
    /// shared cursor (the rayon/wavefront discipline, sans rayon).
    Claim,
    /// A manager (the coordinator thread) hands out slices
    /// heaviest-first on request; costs one extra rank/lane.
    Managed,
}

/// Trace-edge recording for a traced run: the engine records the
/// synchronizing edges (fork/join/arrive/leave) here while the
/// [`Tracing`] store decorator records the memo accesses.
pub(crate) struct TraceHooks<'a> {
    /// Shared event log.
    pub(crate) log: &'a TraceLog,
    /// The coordinator / root task id.
    pub(crate) root: TaskId,
    /// Worker `w`'s task id.
    pub(crate) tasks: Vec<TaskId>,
}

/// Everything the loop bodies share read-only.
struct EngineCtx<'e> {
    p1: &'e Preprocessed,
    p2: &'e Preprocessed,
    workers: u32,
    /// The slice-tabulation kernel every worker runs.
    kernel: &'e dyn SliceKernel,
    recorder: &'e Recorder,
    hooks: Option<&'e TraceHooks<'e>>,
}

/// Runs stage one: partitions the child slices with `schedule`,
/// executes them on `workers` worker threads (lanes `1..=workers`;
/// the coordinator, when the composition needs one, is lane 0)
/// distributing per `dist`, tabulating each slice with `kernel`, and
/// synchronizes through `store`.
///
/// Returns the fully synchronized memo table. For a
/// [`SharedRwLock`] store, construct it from the same schedule's
/// steps so its result channel is sized for the largest step.
#[allow(clippy::too_many_arguments)]
pub fn run_stage_one<S: Schedule, M: MemoStore>(
    schedule: &S,
    store: M,
    dist: Distribution<'_>,
    kernel: KernelKind,
    workers: u32,
    p1: &Preprocessed,
    p2: &Preprocessed,
    recorder: &Recorder,
) -> MemoTable {
    let steps = schedule.steps(p1, p2);
    let ctx = EngineCtx {
        p1,
        p2,
        workers,
        kernel: kernel.kernel(),
        recorder,
        hooks: None,
    };
    run_steps(schedule, &steps, store, dist, &ctx)
}

/// The shared loop body: dispatches to one of the three execution
/// shapes, then collapses the store into the final table.
fn run_steps<S: Schedule, M: MemoStore>(
    schedule: &S,
    steps: &[Step],
    store: M,
    dist: Distribution<'_>,
    ctx: &EngineCtx<'_>,
) -> MemoTable {
    assert!(ctx.workers > 0, "need at least one worker");
    match dist {
        Distribution::Managed => run_managed(schedule, steps, &store, ctx),
        _ if store.coordinated() => run_coordinated(schedule, steps, &store, dist, ctx),
        _ => run_free(steps, &store, dist, ctx),
    }
    // Occupancy accounting: the store knows the physical cost of its
    // own representation (replicas, snapshots), counted once per run —
    // after the run, because row-lazy tables and windowed snapshots
    // only know their cumulative footprint once the steps have
    // settled.
    ctx.recorder
        .count_memo_cells_allocated(store.cells_allocated());
    if let Some(h) = ctx.hooks {
        for &t in &h.tasks {
            h.log.join(h.root, t);
        }
    }
    store.finish()
}

/// Tabulates one slice through the worker's step view: telemetry span,
/// kernel-dispatched row-hoisted gathers, publish. The single call site
/// that replaces every backend's bespoke `slice_detail`/
/// `tabulate_child` pairing.
fn run_slice<V: StepView>(
    ctx: &EngineCtx<'_>,
    k1: u32,
    k2: u32,
    view: &mut V,
    scratch: &mut KernelScratch,
    log: &mut WorkerLog,
) {
    let (p1, p2) = (ctx.p1, ctx.p2);
    let span = log.start();
    let range2 = p2.under_range[k2 as usize];
    let (lo2, hi2) = range2;
    let v = ctx.kernel.tabulate(
        p1,
        p2,
        p1.under_range[k1 as usize],
        range2,
        scratch,
        &mut |g1, buf| view.gather((k1, k2), g1, lo2, hi2, buf),
    );
    log.slice(span, k1, k2, || slice_detail(p1, p2, k1, k2));
    view.publish(k1, k2, v);
}

/// One claim cursor per step (empty for other distributions).
fn claim_cursors(steps: &[Step], dist: Distribution<'_>) -> Vec<AtomicUsize> {
    match dist {
        Distribution::Claim => steps.iter().map(|_| AtomicUsize::new(0)).collect(),
        _ => Vec::new(),
    }
}

/// Runs `f` on every slice of `step` that worker `w` is responsible
/// for, in the step's issue order.
fn for_owned_slices(
    pos: usize,
    step: &Step,
    w: u32,
    dist: Distribution<'_>,
    cursors: &[AtomicUsize],
    mut f: impl FnMut(u32, u32),
) {
    match dist {
        Distribution::Static(a) => {
            for &(k1, k2) in &step.slices {
                if a.owner[k2 as usize] == w {
                    f(k1, k2);
                }
            }
        }
        Distribution::Claim => loop {
            // ORDERING: Relaxed — the cursor only hands out distinct
            // indices; the step barrier orders the claimed work.
            let i = cursors[pos].fetch_add(1, Ordering::Relaxed);
            let Some(&(k1, k2)) = step.slices.get(i) else {
                break;
            };
            f(k1, k2);
        },
        Distribution::Managed => unreachable!("the managed loop hands out slices itself"),
    }
}

/// Free-running shape: no coordinator; workers walk the schedule in
/// lockstep and the store's `worker_sync` (the allreduce) is the step
/// barrier. Exactly the paper's SPMD loop.
fn run_free<M: MemoStore>(steps: &[Step], store: &M, dist: Distribution<'_>, ctx: &EngineCtx<'_>) {
    let cursors = claim_cursors(steps, dist);
    std::thread::scope(|scope| {
        for w in 0..ctx.workers {
            if let Some(h) = ctx.hooks {
                h.log.fork(h.root, h.tasks[w as usize]);
            }
            let mut log = ctx.recorder.lane(w + 1);
            let cursors = &cursors;
            scope.spawn(move || {
                let _arena = ArenaScope::enter(Arena::Scratch);
                let mut scratch = KernelScratch::default();
                for (pos, step) in steps.iter().enumerate() {
                    let mut view = store.begin_step(w as usize);
                    for_owned_slices(pos, step, w, dist, cursors, |k1, k2| {
                        run_slice(ctx, k1, k2, &mut view, &mut scratch, &mut log);
                    });
                    drop(view);
                    // The allreduce is semantically a barrier: arrive
                    // before contributing, leave after it returns.
                    if let Some(h) = ctx.hooks {
                        h.log.arrive(h.tasks[w as usize], step.index);
                    }
                    store.worker_sync(w as usize, step, &mut log);
                    if let Some(h) = ctx.hooks {
                        h.log.leave(h.tasks[w as usize], step.index);
                    }
                }
                log.scratch_peak(scratch.resident_bytes() as u64);
            });
        }
    });
}

/// Coordinated shape: the coordinator (lane 0) releases workers into
/// each step over go channels, waits for their completion reports, and
/// settles the store — the shared-memory install step.
fn run_coordinated<S: Schedule, M: MemoStore>(
    schedule: &S,
    steps: &[Step],
    store: &M,
    dist: Distribution<'_>,
    ctx: &EngineCtx<'_>,
) {
    let cursors = claim_cursors(steps, dist);
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = bounded::<u32>(ctx.workers as usize);
        let mut go_txs = Vec::with_capacity(ctx.workers as usize);
        for w in 0..ctx.workers {
            let (go_tx, go_rx) = bounded::<u32>(1);
            go_txs.push(go_tx);
            if let Some(h) = ctx.hooks {
                h.log.fork(h.root, h.tasks[w as usize]);
            }
            let done_tx = done_tx.clone();
            let mut log = ctx.recorder.lane(w + 1);
            let cursors = &cursors;
            scope.spawn(move || {
                let _arena = ArenaScope::enter(Arena::Scratch);
                let mut scratch = KernelScratch::default();
                let mut prev: Option<u32> = None;
                for (pos, step) in steps.iter().enumerate() {
                    let wait = log.start();
                    let index = go_rx.recv().expect("coordinator alive");
                    debug_assert_eq!(index, step.index, "go signals run in step order");
                    log.barrier(wait, schedule.wait_kind(), step.index);
                    // Receive-then-record: the go signal witnesses the
                    // settlement of the previous step.
                    if let (Some(h), Some(prev)) = (ctx.hooks, prev) {
                        h.log.leave(h.tasks[w as usize], prev);
                    }
                    let mut view = store.begin_step(w as usize);
                    for_owned_slices(pos, step, w, dist, cursors, |k1, k2| {
                        run_slice(ctx, k1, k2, &mut view, &mut scratch, &mut log);
                    });
                    drop(view);
                    // Record-then-send: the arrival precedes the signal
                    // that lets the coordinator settle.
                    if let Some(h) = ctx.hooks {
                        h.log.arrive(h.tasks[w as usize], step.index);
                    }
                    done_tx.send(w).expect("coordinator alive");
                    prev = Some(step.index);
                }
                log.scratch_peak(scratch.resident_bytes() as u64);
            });
        }

        let mut coord = ctx.recorder.lane(0);
        for step in steps {
            for tx in &go_txs {
                tx.send(step.index).expect("worker alive");
            }
            let span = coord.start();
            for _ in 0..ctx.workers {
                done_rx.recv().expect("workers alive");
            }
            if let Some(h) = ctx.hooks {
                h.log.leave(h.root, step.index);
            }
            store.settle(step, ctx.recorder);
            coord.barrier(span, schedule.settle_kind(), step.index);
        }
    });
}

/// Managed shape: the coordinator doubles as the manager, handing out
/// slice indices heaviest-first on request (one extra lane/rank), then
/// joins the store's synchronization for the step.
fn run_managed<S: Schedule, M: MemoStore>(
    schedule: &S,
    steps: &[Step],
    store: &M,
    ctx: &EngineCtx<'_>,
) {
    // Hand-out order per step: heaviest slices first, so the stragglers
    // start as early as possible (same greedy idea as LPT).
    let orders: Vec<Vec<u32>> = steps
        .iter()
        .map(|step| {
            let mut idx: Vec<u32> = (0..step.slices.len() as u32).collect();
            idx.sort_by_key(|&i| {
                let (k1, k2) = step.slices[i as usize];
                std::cmp::Reverse(ctx.p1.under_count(k1) as u64 * ctx.p2.under_count(k2) as u64)
            });
            idx
        })
        .collect();

    std::thread::scope(|scope| {
        // Requests carry the worker's step index: after receiving its
        // sentinel a worker immediately requests for the *next* step
        // (nothing blocks it under a coordinated store), and the
        // manager must not consume that early request while still
        // serving the current step — see `pending`/`early` below.
        let (req_tx, req_rx) = bounded::<(u32, u32)>(ctx.workers as usize);
        let (done_tx, done_rx) = bounded::<u32>(ctx.workers as usize);
        let mut assign_txs = Vec::with_capacity(ctx.workers as usize);
        for w in 0..ctx.workers {
            // Assignment sentinel `u32::MAX` means "step over".
            let (assign_tx, assign_rx) = bounded::<u32>(1);
            assign_txs.push(assign_tx);
            if let Some(h) = ctx.hooks {
                h.log.fork(h.root, h.tasks[w as usize]);
            }
            let req_tx = req_tx.clone();
            let done_tx = done_tx.clone();
            let mut log = ctx.recorder.lane(w + 1);
            scope.spawn(move || {
                let _arena = ArenaScope::enter(Arena::Scratch);
                let mut scratch = KernelScratch::default();
                let mut prev: Option<u32> = None;
                for step in steps {
                    // The view opens lazily, after the first assignment
                    // proves the previous step has settled — opening it
                    // earlier would read-lock a coordinated store while
                    // the coordinator still holds (or wants) the write
                    // lock.
                    let mut view = None;
                    let mut announced = false;
                    loop {
                        let span = log.start();
                        req_tx.send((step.index, w)).expect("manager alive");
                        let idx = assign_rx.recv().expect("manager alive");
                        // A wait that ends in the step-over sentinel is
                        // starvation (the queue was empty), not a
                        // dependency wait — `srna explain` tells them
                        // apart.
                        let wait_kind = if idx == u32::MAX {
                            BarrierKind::QueueEmpty
                        } else {
                            BarrierKind::TaskWait
                        };
                        log.barrier(span, wait_kind, step.index);
                        if !announced {
                            announced = true;
                            // Receive-then-record: the first answer of
                            // the step witnesses the previous step's
                            // settlement (coordinated stores only; the
                            // replicated barrier is the allreduce).
                            if store.coordinated() {
                                if let (Some(h), Some(prev)) = (ctx.hooks, prev) {
                                    h.log.leave(h.tasks[w as usize], prev);
                                }
                            }
                        }
                        if idx == u32::MAX {
                            break;
                        }
                        let v = view.get_or_insert_with(|| store.begin_step(w as usize));
                        let (k1, k2) = step.slices[idx as usize];
                        run_slice(ctx, k1, k2, v, &mut scratch, &mut log);
                    }
                    drop(view);
                    if let Some(h) = ctx.hooks {
                        h.log.arrive(h.tasks[w as usize], step.index);
                    }
                    if store.coordinated() {
                        done_tx.send(w).expect("coordinator alive");
                    } else {
                        store.worker_sync(w as usize, step, &mut log);
                        if let Some(h) = ctx.hooks {
                            h.log.leave(h.tasks[w as usize], step.index);
                        }
                    }
                    prev = Some(step.index);
                }
                log.scratch_peak(scratch.resident_bytes() as u64);
            });
        }

        let mut coord = ctx.recorder.lane(0);
        // Workers whose first request for the upcoming step arrived
        // while the previous one was still being served. A worker has
        // at most one request in flight and cannot pass a step without
        // a sentinel, so it runs at most one step ahead of the manager.
        let mut early: Vec<u32> = Vec::new();
        for (pos, step) in steps.iter().enumerate() {
            let mut pending: Vec<u32> = std::mem::take(&mut early);
            pending.reverse(); // serve in arrival order via pop()
            let mut next_requester = || loop {
                if let Some(w) = pending.pop() {
                    return w;
                }
                let (index, w) = req_rx.recv().expect("workers alive");
                if index == step.index {
                    return w;
                }
                debug_assert_eq!(index, steps[pos + 1].index, "one step ahead at most");
                early.push(w);
            };
            // The whole serving phase is coordinator overhead, recorded
            // as one span per step (closed before the settle span
            // opens, so lane 0's spans stay non-overlapping).
            let serve = coord.start();
            for &idx in &orders[pos] {
                let w = next_requester();
                assign_txs[w as usize].send(idx).expect("worker alive");
            }
            // Every worker asks once more and is waved off.
            for _ in 0..ctx.workers {
                let w = next_requester();
                assign_txs[w as usize].send(u32::MAX).expect("worker alive");
            }
            coord.barrier(serve, BarrierKind::CoordServe, step.index);
            if store.coordinated() {
                let span = coord.start();
                for _ in 0..ctx.workers {
                    done_rx.recv().expect("workers alive");
                }
                if let Some(h) = ctx.hooks {
                    h.log.leave(h.root, step.index);
                }
                store.settle(step, ctx.recorder);
                coord.barrier(span, schedule.settle_kind(), step.index);
            } else {
                // The manager rank joins the replicated merge,
                // contributing zeros for every entry.
                if let Some(h) = ctx.hooks {
                    h.log.arrive(h.root, step.index);
                }
                store.manager_sync(step, &mut coord);
                if let Some(h) = ctx.hooks {
                    h.log.leave(h.root, step.index);
                }
            }
        }
    });
}

/// Runs `backend` through the engine — the crate-internal entry point
/// behind [`crate::prna_recorded`] — with an optional resident-cell
/// budget: the store is wrapped in the [`Budgeted`] decorator and the
/// returned [`BudgetHandle`] carries the eviction bitmap stage two
/// needs to route reads of evicted cells through recomputation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_budgeted(
    backend: Backend,
    kernel: KernelKind,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
    recorder: &Recorder,
    budget: Option<u64>,
) -> (MemoTable, Option<BudgetHandle>) {
    run_backend(
        backend, kernel, false, p1, p2, assignment, recorder, None, budget,
    )
}

/// Like [`dispatch`], but wraps the store in the [`Tracing`] decorator
/// and records synchronizing edges through `hooks`. `broken_wavefront`
/// swaps in the deliberately unsound merged-level schedule for
/// detector self-tests.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_traced(
    backend: Backend,
    kernel: KernelKind,
    broken_wavefront: bool,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
    recorder: &Recorder,
    hooks: &TraceHooks<'_>,
) -> MemoTable {
    run_backend(
        backend,
        kernel,
        broken_wavefront,
        p1,
        p2,
        assignment,
        recorder,
        Some(hooks),
        None,
    )
    .0
}

#[allow(clippy::too_many_arguments)]
fn run_backend(
    backend: Backend,
    kernel: KernelKind,
    broken_wavefront: bool,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
    recorder: &Recorder,
    hooks: Option<&TraceHooks<'_>>,
    budget: Option<u64>,
) -> (MemoTable, Option<BudgetHandle>) {
    // Retention (the windowed snapshot, the budgeted decorator) keys
    // cell lifetimes off sound schedule step indices; traced runs and
    // the deliberately broken wavefront fall back to full retention.
    let retention_ok = hooks.is_none() && !broken_wavefront;
    match backend.schedule {
        ScheduleKind::Row => run_sched(
            &RowBarrier,
            backend,
            kernel,
            p1,
            p2,
            assignment,
            recorder,
            hooks,
            budget.filter(|_| retention_ok),
            retention_ok,
        ),
        ScheduleKind::Level if broken_wavefront => run_sched(
            &LevelWavefront::broken(),
            backend,
            kernel,
            p1,
            p2,
            assignment,
            recorder,
            hooks,
            None,
            false,
        ),
        ScheduleKind::Level => run_sched(
            &LevelWavefront::new(),
            backend,
            kernel,
            p1,
            p2,
            assignment,
            recorder,
            hooks,
            budget.filter(|_| retention_ok),
            retention_ok,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sched<S: Schedule>(
    schedule: &S,
    backend: Backend,
    kernel: KernelKind,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
    recorder: &Recorder,
    hooks: Option<&TraceHooks<'_>>,
    budget: Option<u64>,
    retention_ok: bool,
) -> (MemoTable, Option<BudgetHandle>) {
    let steps = schedule.steps(p1, p2);
    let workers = assignment.processors();
    let dist = match backend.dist {
        DistKind::Static => Distribution::Static(assignment),
        DistKind::Claim => Distribution::Claim,
        DistKind::Managed => Distribution::Managed,
    };
    let ctx = EngineCtx {
        p1,
        p2,
        workers,
        kernel: kernel.kernel(),
        recorder,
        hooks,
    };
    let (a1, a2) = (p1.num_arcs(), p2.num_arcs());
    // One plan serves both retention consumers: the lock-free store's
    // level-windowed snapshot and the budgeted decorator.
    let plan: Option<Arc<RetentionPlan>> = (retention_ok
        && (budget.is_some() || matches!(backend.store, StoreKind::LockFreeAtomic)))
    .then(|| Arc::new(RetentionPlan::new(p1, p2, backend.schedule)));
    // Tag the table construction so a `mem-profile` build attributes
    // the grid allocations to the memo arena.
    let memo_arena = ArenaScope::enter(Arena::Memo);
    match backend.store {
        StoreKind::Replicated => {
            let managed = matches!(backend.dist, DistKind::Managed);
            let store = Replicated::new(a1, a2, workers, managed, recorder);
            drop(memo_arena);
            run_wrapped(schedule, &steps, store, dist, &ctx, kernel, budget, plan)
        }
        StoreKind::SharedRwLock => {
            let store = SharedRwLock::new(a1, a2, &steps);
            drop(memo_arena);
            run_wrapped(schedule, &steps, store, dist, &ctx, kernel, budget, plan)
        }
        StoreKind::LockFreeAtomic => {
            let store = match &plan {
                Some(plan) => LockFreeAtomic::with_retention(a1, a2, plan.clone()),
                None => LockFreeAtomic::new(a1, a2),
            };
            drop(memo_arena);
            run_wrapped(schedule, &steps, store, dist, &ctx, kernel, budget, plan)
        }
    }
}

/// Wraps `store` in the [`Budgeted`] decorator when a budget is set
/// (publishing the retention counters after the run), otherwise runs
/// it plain or traced.
#[allow(clippy::too_many_arguments)]
fn run_wrapped<S: Schedule, M: MemoStore>(
    schedule: &S,
    steps: &[Step],
    store: M,
    dist: Distribution<'_>,
    ctx: &EngineCtx<'_>,
    kernel: KernelKind,
    budget: Option<u64>,
    plan: Option<Arc<RetentionPlan>>,
) -> (MemoTable, Option<BudgetHandle>) {
    match budget {
        Some(cells) => {
            let plan = plan.expect("a budget always comes with a plan");
            debug_assert!(ctx.hooks.is_none(), "budgeted runs are never traced");
            let shared = Arc::new(BudgetShared::new(ctx.p1.num_arcs(), ctx.p2.num_arcs()));
            let store = Budgeted::new(
                store,
                plan.clone(),
                cells,
                ctx.workers as usize,
                ctx.p1,
                ctx.p2,
                kernel.kernel(),
                shared.clone(),
            );
            let memo = run_steps(schedule, steps, store, dist, ctx);
            shared.publish(ctx.recorder);
            (memo, Some(BudgetHandle { plan, shared }))
        }
        None => (run_maybe_traced(schedule, steps, store, dist, ctx), None),
    }
}

fn run_maybe_traced<S: Schedule, M: MemoStore>(
    schedule: &S,
    steps: &[Step],
    store: M,
    dist: Distribution<'_>,
    ctx: &EngineCtx<'_>,
) -> MemoTable {
    match ctx.hooks {
        Some(h) => run_steps(
            schedule,
            steps,
            Tracing::new(store, h.log, h.root, h.tasks.clone()),
            dist,
            ctx,
        ),
        None => run_steps(schedule, steps, store, dist, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use load_balance::Policy;
    use mcos_core::{srna2, workload};
    use rna_structure::generate;

    fn prep(seed: u64) -> (Preprocessed, Preprocessed) {
        let s1 = generate::random_structure(56, 0.9, seed);
        let s2 = generate::random_structure(48, 0.8, seed + 100);
        (Preprocessed::build(&s1), Preprocessed::build(&s2))
    }

    #[test]
    fn wavefront_replicated_matches_srna2() {
        // A combination no bespoke backend ever offered: dependency-
        // level steps merged with Allreduce(MAX).
        let (p1, p2) = prep(3);
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        let rec = Recorder::disabled();
        for workers in [1u32, 3] {
            let sched = LevelWavefront::new();
            let store = Replicated::new(p1.num_arcs(), p2.num_arcs(), workers, false, &rec);
            let memo = run_stage_one(
                &sched,
                store,
                Distribution::Claim,
                KernelKind::default(),
                workers,
                &p1,
                &p2,
                &rec,
            );
            assert_eq!(memo, reference, "workers {workers}");
        }
    }

    #[test]
    fn managed_rwlock_matches_srna2() {
        // Manager-distributed slices over the shared rwlock store —
        // also brand new.
        let (p1, p2) = prep(4);
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        let rec = Recorder::disabled();
        let sched = RowBarrier;
        let steps = sched.steps(&p1, &p2);
        let store = SharedRwLock::new(p1.num_arcs(), p2.num_arcs(), &steps);
        let memo = run_stage_one(
            &sched,
            store,
            Distribution::Managed,
            KernelKind::default(),
            3,
            &p1,
            &p2,
            &rec,
        );
        assert_eq!(memo, reference);
    }

    #[test]
    fn static_lockfree_matches_srna2() {
        let (p1, p2) = prep(5);
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        let rec = Recorder::disabled();
        let weights = workload::column_weights(&p1, &p2);
        let assignment = Policy::Lpt.assign(&weights, 4);
        let sched = RowBarrier;
        let store = LockFreeAtomic::new(p1.num_arcs(), p2.num_arcs());
        let memo = run_stage_one(
            &sched,
            store,
            Distribution::Static(&assignment),
            KernelKind::default(),
            4,
            &p1,
            &p2,
            &rec,
        );
        assert_eq!(memo, reference);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let (p1, p2) = prep(6);
        let store = LockFreeAtomic::new(p1.num_arcs(), p2.num_arcs());
        let _ = run_stage_one(
            &RowBarrier,
            store,
            Distribution::Claim,
            KernelKind::default(),
            0,
            &p1,
            &p2,
            &Recorder::disabled(),
        );
    }
}

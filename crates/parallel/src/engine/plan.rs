//! Symbolic synchronization plans: the engine's happens-before
//! skeleton as data.
//!
//! [`sync_plan`] composes the three policy axes of a [`Backend`] —
//! [`Schedule::sync_plan`] for the step/readiness structure,
//! [`Distribution::plan_step`] for the planned issue order and static
//! ownership, and the store kind for settlement semantics and own-write
//! visibility — into one [`SyncPlan`], without running any slice work.
//! The plan mirrors, op for op, what the engine's three execution
//! shapes actually do: fork the workers, run each step, settle it,
//! join. The static prover in the `analysis` crate walks a plan and
//! checks that every edge of the slice dependency DAG is covered by a
//! synchronization path; see `analysis::prove`.
//!
//! Faithfulness is the whole game: every claim a plan makes corresponds
//! to a synchronization the engine really performs.
//!
//! * A [`SyncOp::Settle`] for step `s` before a [`SyncOp::Work`] for
//!   step `t` claims that every write of `s` is visible to every read
//!   of `t`. The free-running shape's allreduce, the coordinated
//!   shape's go-channel release after `MemoStore::settle`, and the
//!   managed shape's sentinel hand-shake all provide exactly this.
//! * `owner` is `Some(w)` only for a static distribution, where
//!   `Assignment` pins every slice of a column to one worker — the
//!   only case in which *program order within a step* is a real edge
//!   at any thread count.
//! * [`SyncPlan::own_step_writes_visible`] is true only for the
//!   replicated store: a worker gathers from its own replica, so its
//!   own un-settled publishes are visible to itself. The rwlock store
//!   buffers publishes in a channel and the lock-free store reads from
//!   the settled snapshot, so under those stores not even the writing
//!   worker sees an un-settled value — intra-step program order covers
//!   nothing.

use load_balance::Assignment;
use mcos_core::preprocess::Preprocessed;

use super::schedule::{LevelWavefront, RowBarrier, Schedule, Step};
use super::Distribution;
use crate::{Backend, DistKind, ScheduleKind, StoreKind};

/// How a step's writes become visible to later steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleKind {
    /// Replicated store: `Allreduce(MAX)` merges every rank's replica;
    /// the collective doubles as the step barrier.
    Allreduce,
    /// Shared-rwlock store: the coordinator drains the step's result
    /// channel and installs under the write lock.
    CoordinatorInstall,
    /// Lock-free store: the coordinator folds the step's atomic
    /// publishes into the settled snapshot.
    SnapshotFold,
}

/// One entry in a plan's linearized synchronization skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// The coordinator forks the worker threads (or ranks).
    Fork {
        /// Number of workers forked.
        workers: u32,
    },
    /// The workers run the slices of step `step` (a position into
    /// [`SyncPlan::steps`]).
    Work {
        /// Step position.
        step: u32,
    },
    /// Step `step`'s writes are settled: visible to every read issued
    /// by any `Work` op appearing later in the sequence.
    Settle {
        /// Step position.
        step: u32,
        /// The settlement mechanism (informational; any kind settles).
        kind: SettleKind,
    },
    /// The coordinator joins the worker threads.
    Join {
        /// Number of workers joined.
        workers: u32,
    },
}

/// A slice as planned: its position in [`PlannedStep::slices`] is the
/// planned issue order, and `owner` pins it to a worker when the
/// distribution decides ownership statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedSlice {
    /// The arc pair `(k1, k2)`.
    pub slice: (u32, u32),
    /// The worker that will run the slice, when statically known.
    /// `None` under dynamic claiming or a managed distribution, where
    /// any worker may pick it up.
    pub owner: Option<u32>,
}

/// One step of a plan: the schedule's step with the distribution's
/// issue order and ownership applied.
#[derive(Debug, Clone)]
pub struct PlannedStep {
    /// The schedule's step ordinal (barrier id in traces/telemetry).
    pub index: u32,
    /// Slices in planned issue order.
    pub slices: Vec<PlannedSlice>,
}

/// The happens-before skeleton of one engine composition at one
/// thread count, as data.
#[derive(Debug, Clone)]
pub struct SyncPlan {
    /// Display name of the planned composition.
    pub name: String,
    /// Worker threads the plan is for (managed distributions add one
    /// manager lane on top, which runs no slices).
    pub workers: u32,
    /// The planned steps, in execution order.
    pub steps: Vec<PlannedStep>,
    /// Point-to-point readiness edges `(writer slice, reader slice)`
    /// from the schedule, if it synchronizes through flags.
    pub readiness: Vec<((u32, u32), (u32, u32))>,
    /// Whether a worker's *own* un-settled publishes are visible to its
    /// own later gathers within a step (true only for the replicated
    /// store; see the module docs).
    pub own_step_writes_visible: bool,
    /// The linearized synchronization skeleton.
    pub ops: Vec<SyncOp>,
}

impl Distribution<'_> {
    /// The symbolic half of the distribution axis: annotates one
    /// schedule step with the planned issue order and (when statically
    /// decided) per-slice ownership, without running anything.
    ///
    /// * `Static` keeps the schedule's order and pins each slice to the
    ///   assignment's owner of its `S₂` column — every worker walks the
    ///   step in order, filtered to its own columns.
    /// * `Claim` keeps the schedule's order with no owner: workers pop
    ///   the list front to back through the shared cursor.
    /// * `Managed` reorders heaviest-first — the manager's hand-out
    ///   order, the same greedy key `run_managed` uses — with no owner.
    pub fn plan_step(&self, step: &Step, p1: &Preprocessed, p2: &Preprocessed) -> PlannedStep {
        let planned = |owner_of: &dyn Fn(u32) -> Option<u32>| {
            step.slices
                .iter()
                .map(|&(k1, k2)| PlannedSlice {
                    slice: (k1, k2),
                    owner: owner_of(k2),
                })
                .collect()
        };
        let slices = match self {
            Distribution::Static(a) => planned(&|k2| Some(a.owner[k2 as usize])),
            Distribution::Claim => planned(&|_| None),
            Distribution::Managed => {
                // Mirror run_managed's hand-out order exactly: stable
                // sort of the step's slice indices, heaviest first.
                let mut idx: Vec<u32> = (0..step.slices.len() as u32).collect();
                idx.sort_by_key(|&i| {
                    let (k1, k2) = step.slices[i as usize];
                    std::cmp::Reverse(p1.under_count(k1) as u64 * p2.under_count(k2) as u64)
                });
                idx.iter()
                    .map(|&i| PlannedSlice {
                        slice: step.slices[i as usize],
                        owner: None,
                    })
                    .collect()
            }
        };
        PlannedStep {
            index: step.index,
            slices,
        }
    }
}

/// Emits the happens-before skeleton of `backend` at `workers` worker
/// threads, composed from the same schedule, store, and distribution
/// the engine would execute. `assignment` is consulted only by a
/// static distribution (pass the same one the run would use).
pub fn sync_plan(
    backend: Backend,
    workers: u32,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
) -> SyncPlan {
    match backend.schedule {
        ScheduleKind::Row => plan_sched(&RowBarrier, backend, workers, p1, p2, assignment),
        ScheduleKind::Level => {
            plan_sched(&LevelWavefront::new(), backend, workers, p1, p2, assignment)
        }
    }
}

/// [`sync_plan`] for the deliberately *broken* wavefront schedule (the
/// first two dependency levels merged into one step). Kept so the
/// static prover can demonstrate the uncovered-edge counterexample it
/// reports for a schedule with a real happens-before hole; requires a
/// level backend.
pub fn sync_plan_broken_wavefront(
    backend: Backend,
    workers: u32,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
) -> SyncPlan {
    assert!(
        matches!(backend.schedule, ScheduleKind::Level),
        "the broken schedule is a wavefront variant"
    );
    let mut plan = plan_sched(
        &LevelWavefront::broken(),
        backend,
        workers,
        p1,
        p2,
        assignment,
    );
    plan.name = format!("{}+merged-levels", backend.name());
    plan
}

fn plan_sched<S: Schedule>(
    schedule: &S,
    backend: Backend,
    workers: u32,
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
) -> SyncPlan {
    assert!(workers > 0, "need at least one worker");
    let sp = schedule.sync_plan(p1, p2);
    let dist = match backend.dist {
        DistKind::Static => Distribution::Static(assignment),
        DistKind::Claim => Distribution::Claim,
        DistKind::Managed => Distribution::Managed,
    };
    let steps: Vec<PlannedStep> = sp
        .steps
        .iter()
        .map(|step| dist.plan_step(step, p1, p2))
        .collect();
    let settle = match backend.store {
        StoreKind::Replicated => SettleKind::Allreduce,
        StoreKind::SharedRwLock => SettleKind::CoordinatorInstall,
        StoreKind::LockFreeAtomic => SettleKind::SnapshotFold,
    };
    // All three execution shapes share one skeleton: fork, then for
    // every step work-then-settle (the allreduce, the coordinator
    // install, or the snapshot fold — each a barrier no worker passes
    // before the step's writes are visible), then join.
    let mut ops = Vec::with_capacity(steps.len() * 2 + 2);
    ops.push(SyncOp::Fork { workers });
    for pos in 0..steps.len() as u32 {
        ops.push(SyncOp::Work { step: pos });
        ops.push(SyncOp::Settle {
            step: pos,
            kind: settle,
        });
    }
    ops.push(SyncOp::Join { workers });
    SyncPlan {
        name: backend.name().to_string(),
        workers,
        steps,
        readiness: sp.readiness,
        own_step_writes_visible: matches!(backend.store, StoreKind::Replicated),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use load_balance::Policy;
    use mcos_core::workload;
    use rna_structure::generate;

    fn prep() -> (Preprocessed, Preprocessed) {
        let s1 = generate::random_structure(40, 0.9, 21);
        let s2 = generate::random_structure(36, 0.8, 22);
        (Preprocessed::build(&s1), Preprocessed::build(&s2))
    }

    fn greedy(p1: &Preprocessed, p2: &Preprocessed, workers: u32) -> Assignment {
        let weights = workload::column_weights(p1, p2);
        Policy::Greedy.assign(&weights, workers)
    }

    #[test]
    fn plan_slices_match_schedule_steps() {
        let (p1, p2) = prep();
        let assignment = greedy(&p1, &p2, 3);
        for backend in Backend::MATRIX {
            let plan = sync_plan(backend, 3, &p1, &p2, &assignment);
            // Same step partition as the executable schedule, as sets.
            let steps = match backend.schedule {
                ScheduleKind::Row => RowBarrier.steps(&p1, &p2),
                ScheduleKind::Level => LevelWavefront::new().steps(&p1, &p2),
            };
            assert_eq!(plan.steps.len(), steps.len(), "{}", backend.name());
            for (planned, step) in plan.steps.iter().zip(&steps) {
                assert_eq!(planned.index, step.index);
                let mut got: Vec<_> = planned.slices.iter().map(|s| s.slice).collect();
                let mut want = step.slices.clone();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "{} step {}", backend.name(), step.index);
            }
        }
    }

    #[test]
    fn ownership_is_static_exactly_for_static_distributions() {
        let (p1, p2) = prep();
        let assignment = greedy(&p1, &p2, 4);
        for backend in Backend::MATRIX {
            let plan = sync_plan(backend, 4, &p1, &p2, &assignment);
            for step in &plan.steps {
                for s in &step.slices {
                    match backend.dist {
                        DistKind::Static => assert_eq!(
                            s.owner,
                            Some(assignment.owner[s.slice.1 as usize]),
                            "{}",
                            backend.name()
                        ),
                        _ => assert_eq!(s.owner, None, "{}", backend.name()),
                    }
                }
            }
        }
    }

    #[test]
    fn own_writes_visible_only_for_replicated() {
        let (p1, p2) = prep();
        let assignment = greedy(&p1, &p2, 2);
        for backend in Backend::MATRIX {
            let plan = sync_plan(backend, 2, &p1, &p2, &assignment);
            assert_eq!(
                plan.own_step_writes_visible,
                matches!(backend.store, StoreKind::Replicated),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn ops_settle_every_step_in_order() {
        let (p1, p2) = prep();
        let assignment = greedy(&p1, &p2, 2);
        let plan = sync_plan(Backend::WAVEFRONT, 2, &p1, &p2, &assignment);
        assert_eq!(plan.ops.first(), Some(&SyncOp::Fork { workers: 2 }));
        assert_eq!(plan.ops.last(), Some(&SyncOp::Join { workers: 2 }));
        for (pos, pair) in plan.ops[1..plan.ops.len() - 1].chunks(2).enumerate() {
            assert_eq!(pair[0], SyncOp::Work { step: pos as u32 });
            assert!(
                matches!(pair[1], SyncOp::Settle { step, .. } if step == pos as u32),
                "step {pos} not settled in place"
            );
        }
    }

    #[test]
    fn broken_plan_merges_levels_and_keeps_name() {
        let s = generate::worst_case_nested(6);
        let p = Preprocessed::build(&s);
        let assignment = greedy(&p, &p, 2);
        let good = sync_plan(Backend::WAVEFRONT, 2, &p, &p, &assignment);
        let bad = sync_plan_broken_wavefront(Backend::WAVEFRONT, 2, &p, &p, &assignment);
        assert_eq!(bad.steps.len(), good.steps.len() - 1);
        assert!(bad.name.contains("merged-levels"));
    }

    #[test]
    #[should_panic(expected = "wavefront variant")]
    fn broken_plan_rejects_row_schedules() {
        let s = generate::worst_case_nested(3);
        let p = Preprocessed::build(&s);
        let assignment = greedy(&p, &p, 1);
        let _ = sync_plan_broken_wavefront(Backend::MPI_SIM, 1, &p, &p, &assignment);
    }
}

//! A compiled readiness-flag schedule: stage one with *no barriers at
//! all* — the only synchronization is one point-to-point flag per
//! slice (ROADMAP item 2's static compiled schedule, in its first
//! verifiable form).
//!
//! [`ReadinessProgram::compile`] fixes a claim order over all child
//! slices (dependency level ascending, LPT within a level — a
//! topological order of the slice DAG, since `max(depth₁, depth₂)`
//! strictly decreases along every dependency edge) and records, per
//! slice, the exact set of slices whose entries it gathers. At run
//! time workers claim slices off a shared cursor; before tabulating a
//! slice they spin on the readiness flags of its dependencies, and
//! after publishing they release their own flag. Writes and gathers go
//! straight to one shared [`AtomicMemoTable`] — there is no settled
//! snapshot, no allreduce, no coordinator.
//!
//! # Why this cannot deadlock
//!
//! Every flag a slice waits on belongs to a slice strictly earlier in
//! the claim order. Induction over claim positions: consider the
//! earliest claimed-but-unfinished slice; all its dependencies sit at
//! earlier positions, are therefore finished, and their flags are set —
//! so it progresses. (The broken variant only *drops* waits, which can
//! skip synchronization but never block.)
//!
//! # The broken variant
//!
//! [`ReadinessProgram::compile_broken`] drops every readiness edge
//! into the level-1 slices *and* hoists those slices to the front of
//! the claim order. The hole is then present at every thread count —
//! even one worker reads a level-0 entry before program order has
//! written it. Note the *values* still come out right: a level-0
//! entry's correct value is always zero (its child window is empty),
//! so the premature read of the zeroed table is numerically invisible
//! — precisely the silent-unsettled-read failure mode the paper warns
//! about, and why rejection must come from the happens-before checkers
//! rather than an output comparison. The static prover reports exactly
//! the dropped edges as uncovered, and the dynamic checker flags the
//! traced run; both are asserted in the `analysis` crate's negative
//! tests.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use mcos_core::kernel::{KernelKind, KernelScratch};
use mcos_core::memo::{AtomicMemoTable, MemoTable};
use mcos_core::preprocess::Preprocessed;
use mcos_core::trace::{TraceLog, TracingMemoTable};

use super::plan::{PlannedSlice, PlannedStep, SyncOp, SyncPlan};

/// A compiled readiness-flag schedule for one structure pair.
#[derive(Debug, Clone)]
pub struct ReadinessProgram {
    a2: u32,
    /// All child slices in claim order (topological for the correct
    /// program; deliberately not for the broken one).
    order: Vec<(u32, u32)>,
    /// `waits[slice_id]` = ids of the slices whose flags the slice
    /// blocks on before gathering (its direct dependencies).
    waits: Vec<Vec<u32>>,
    broken: bool,
}

impl ReadinessProgram {
    /// Compiles the correct program: topological claim order, one wait
    /// per dependency edge.
    pub fn compile(p1: &Preprocessed, p2: &Preprocessed) -> Self {
        Self::compile_inner(p1, p2, false)
    }

    /// Compiles the deliberately broken program: the level-1 slices
    /// lose all their waits and jump the claim order (see the module
    /// docs). Never use its results.
    pub fn compile_broken(p1: &Preprocessed, p2: &Preprocessed) -> Self {
        Self::compile_inner(p1, p2, true)
    }

    fn compile_inner(p1: &Preprocessed, p2: &Preprocessed, broken: bool) -> Self {
        let (a1, a2) = (p1.num_arcs(), p2.num_arcs());
        let level = |k1: u32, k2: u32| p1.level_of(k1).max(p2.level_of(k2));
        let mut order: Vec<(u32, u32)> = (0..a1)
            .flat_map(|k1| (0..a2).map(move |k2| (k1, k2)))
            .collect();
        // Level-ascending is the topological claim order; LPT within a
        // level starts the heavy slices (the likely spin targets of the
        // next level) as early as possible.
        order.sort_by_key(|&(k1, k2)| {
            let hoisted = broken && level(k1, k2) == 1;
            (
                !hoisted,
                level(k1, k2),
                std::cmp::Reverse(p1.under_count(k1) as u64 * p2.under_count(k2) as u64),
            )
        });
        let mut waits = vec![Vec::new(); (a1 * a2) as usize];
        for k1 in 0..a1 {
            let (lo1, hi1) = p1.under_range[k1 as usize];
            for k2 in 0..a2 {
                if broken && level(k1, k2) == 1 {
                    continue;
                }
                let (lo2, hi2) = p2.under_range[k2 as usize];
                let deps = &mut waits[(k1 * a2 + k2) as usize];
                for c1 in lo1..hi1 {
                    for c2 in lo2..hi2 {
                        deps.push(c1 * a2 + c2);
                    }
                }
            }
        }
        ReadinessProgram {
            a2,
            order,
            waits,
            broken,
        }
    }

    /// Whether this is the deliberately broken variant.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The program's happens-before skeleton for the static prover:
    /// one giant step (no settlement barriers at all) whose only
    /// synchronization is the readiness edge set.
    pub fn sync_plan(&self, workers: u32) -> SyncPlan {
        let decode = |id: u32| (id / self.a2, id % self.a2);
        let readiness = self
            .waits
            .iter()
            .enumerate()
            .flat_map(|(reader, deps)| {
                deps.iter()
                    .map(move |&dep| (decode(dep), decode(reader as u32)))
            })
            .collect();
        SyncPlan {
            name: if self.broken {
                "readiness-flags+dropped-edges".to_string()
            } else {
                "readiness-flags".to_string()
            },
            workers,
            steps: vec![PlannedStep {
                index: 0,
                slices: self
                    .order
                    .iter()
                    .map(|&slice| PlannedSlice { slice, owner: None })
                    .collect(),
            }],
            readiness,
            // Workers gather straight from the shared atomic table, so
            // a worker's own publishes are visible to its later claims.
            own_step_writes_visible: true,
            ops: vec![
                SyncOp::Fork { workers },
                SyncOp::Work { step: 0 },
                SyncOp::Join { workers },
            ],
        }
    }

    /// Runs the program on `workers` threads. Returns the finished
    /// stage-one memo table (garbage for the broken variant).
    pub fn run(
        &self,
        workers: u32,
        kernel: KernelKind,
        p1: &Preprocessed,
        p2: &Preprocessed,
    ) -> MemoTable {
        self.run_inner(workers, kernel, p1, p2, None)
    }

    /// Runs the program with every memo access and synchronizing edge
    /// recorded into `log` for the dynamic checker: flag releases as
    /// `Arrive(slice_id)` (record-then-publish), flag acquisitions as
    /// `Leave(slice_id)` (observe-then-record), per the discipline in
    /// [`mcos_core::trace`].
    pub fn run_traced(
        &self,
        workers: u32,
        kernel: KernelKind,
        p1: &Preprocessed,
        p2: &Preprocessed,
        log: &TraceLog,
    ) -> MemoTable {
        self.run_inner(workers, kernel, p1, p2, Some(log))
    }

    fn run_inner(
        &self,
        workers: u32,
        kernel: KernelKind,
        p1: &Preprocessed,
        p2: &Preprocessed,
        log: Option<&TraceLog>,
    ) -> MemoTable {
        assert!(workers > 0, "need at least one worker");
        let a2 = self.a2;
        let table = AtomicMemoTable::zeroed(p1.num_arcs(), a2);
        let flags: Vec<AtomicU32> = self.order.iter().map(|_| AtomicU32::new(0)).collect();
        let cursor = AtomicUsize::new(0);
        let hooks = log.map(|log| {
            let root = log.alloc_task();
            let base = log.alloc_tasks(workers);
            (log, root, base)
        });
        std::thread::scope(|scope| {
            for w in 0..workers {
                if let Some((log, root, base)) = hooks {
                    log.fork(root, base + w);
                }
                let (table, flags, cursor) = (&table, &flags, &cursor);
                scope.spawn(move || {
                    let task = hooks.map(|(log, _, base)| (log, base + w));
                    let mut scratch = KernelScratch::default();
                    loop {
                        // ORDERING: Relaxed — the cursor only hands out
                        // distinct positions; the readiness flags order
                        // the claimed work.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(k1, k2)) = self.order.get(i) else {
                            break;
                        };
                        let id = k1 * a2 + k2;
                        for &dep in &self.waits[id as usize] {
                            // ORDERING: Acquire — pairs with the Release
                            // flag store below; observing the flag makes
                            // the dependency's Relaxed publish visible.
                            while flags[dep as usize].load(Ordering::Acquire) == 0 {
                                std::thread::yield_now();
                            }
                            if let Some((log, task)) = task {
                                // Observe-then-record: the leave
                                // witnesses the writer's arrive.
                                log.leave(task, dep);
                            }
                        }
                        let v = tabulate(kernel, p1, p2, k1, k2, table, &mut scratch, task);
                        match task {
                            Some((log, t)) => {
                                let traced = TracingMemoTable::new(table, log);
                                traced.set(t, k1, k2, v);
                                // Record-then-publish: the arrive
                                // precedes the flag store it describes.
                                log.arrive(t, id);
                            }
                            None => table.set(k1, k2, v),
                        }
                        // ORDERING: Release — publishes the slice's
                        // Relaxed table store to whoever Acquires this
                        // flag above.
                        flags[id as usize].store(1, Ordering::Release);
                    }
                });
            }
        });
        if let Some((log, root, base)) = hooks {
            for w in 0..workers {
                log.join(root, base + w);
            }
        }
        table.into_inner()
    }
}

/// Tabulates one slice, gathering directly from the shared atomic
/// table (recorded gather-then-record when traced).
#[allow(clippy::too_many_arguments)]
fn tabulate(
    kernel: KernelKind,
    p1: &Preprocessed,
    p2: &Preprocessed,
    k1: u32,
    k2: u32,
    table: &AtomicMemoTable,
    scratch: &mut KernelScratch,
    task: Option<(&TraceLog, u32)>,
) -> u32 {
    let range2 = p2.under_range[k2 as usize];
    let (lo2, hi2) = range2;
    kernel.kernel().tabulate(
        p1,
        p2,
        p1.under_range[k1 as usize],
        range2,
        scratch,
        &mut |g1, buf| match task {
            Some((log, t)) => {
                log.perturb();
                let traced = TracingMemoTable::new(table, log);
                for (j, c) in (lo2..hi2).enumerate() {
                    buf[j] = traced.get(t, (k1, k2), g1, c);
                }
            }
            None => {
                for (j, c) in (lo2..hi2).enumerate() {
                    buf[j] = table.get(g1, c);
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    #[test]
    fn readiness_program_matches_srna2() {
        for seed in [1u64, 9] {
            let s1 = generate::random_structure(48, 0.9, seed);
            let s2 = generate::random_structure(40, 0.8, seed + 50);
            let p1 = Preprocessed::build(&s1);
            let p2 = Preprocessed::build(&s2);
            let reference = srna2::run_preprocessed(&p1, &p2).memo;
            let program = ReadinessProgram::compile(&p1, &p2);
            for workers in [1u32, 2, 4] {
                let memo = program.run(workers, KernelKind::default(), &p1, &p2);
                assert_eq!(memo, reference, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn claim_order_is_topological() {
        let s = generate::hairpin_chain(8, 3, 2);
        let p = Preprocessed::build(&s);
        let program = ReadinessProgram::compile(&p, &p);
        let pos: std::collections::HashMap<(u32, u32), usize> = program
            .order
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        for (reader, deps) in program.waits.iter().enumerate() {
            let reader = (reader as u32 / program.a2, reader as u32 % program.a2);
            for &dep in deps {
                let dep = (dep / program.a2, dep % program.a2);
                assert!(
                    pos[&dep] < pos[&reader],
                    "{dep:?} claimed after its reader {reader:?}"
                );
            }
        }
    }

    #[test]
    fn broken_program_reads_before_writes_even_single_threaded() {
        // The dropped waits plus the hoisted claim order make even the
        // 1-worker run read level-0 entries before they are written —
        // visible in the recorded event order (the values still come
        // out right, because a level-0 entry's correct value is zero;
        // see the module docs).
        use mcos_core::trace::TraceEvent;
        let premature_read = |events: &[TraceEvent]| {
            let mut written = std::collections::HashSet::new();
            events.iter().any(|ev| match *ev {
                TraceEvent::Write { r, c, .. } => {
                    written.insert((r, c));
                    false
                }
                TraceEvent::Read { r, c, .. } => !written.contains(&(r, c)),
                _ => false,
            })
        };
        let s = generate::worst_case_nested(8);
        let p = Preprocessed::build(&s);
        let broken = ReadinessProgram::compile_broken(&p, &p);
        assert!(broken.is_broken());
        let log = TraceLog::new();
        let _ = broken.run_traced(1, KernelKind::default(), &p, &p, &log);
        assert!(
            premature_read(&log.take_events()),
            "broken program recorded no premature read"
        );
        let good = ReadinessProgram::compile(&p, &p);
        let log = TraceLog::new();
        let _ = good.run_traced(1, KernelKind::default(), &p, &p, &log);
        assert!(!premature_read(&log.take_events()));
    }

    #[test]
    fn traced_run_matches_untraced() {
        let s = generate::random_structure(36, 0.9, 4);
        let p = Preprocessed::build(&s);
        let program = ReadinessProgram::compile(&p, &p);
        let log = TraceLog::new();
        let traced = program.run_traced(2, KernelKind::default(), &p, &p, &log);
        let plain = program.run(2, KernelKind::default(), &p, &p);
        assert_eq!(traced, plain);
        assert!(!log.is_empty());
    }

    #[test]
    fn sync_plan_lists_every_dependency_edge() {
        let s = generate::hairpin_chain(5, 3, 2);
        let p = Preprocessed::build(&s);
        let program = ReadinessProgram::compile(&p, &p);
        let plan = program.sync_plan(3);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(
            plan.steps[0].slices.len(),
            (p.num_arcs() * p.num_arcs()) as usize
        );
        let total_waits: usize = program.waits.iter().map(Vec::len).sum();
        assert_eq!(plan.readiness.len(), total_waits);
        assert!(plan.own_step_writes_visible);
    }
}

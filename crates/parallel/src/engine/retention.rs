//! The retention plan: per-cell last-reader steps, derived from the
//! schedule, in `O(A₁ + A₂)` space.
//!
//! Stage one reads memo cell `(g₁, g₂)` only from slices `(K₁, K₂)`
//! where `K₁` is an ancestor of `g₁` *and* `K₂` is an ancestor of `g₂`
//! (`run_slice` gathers `under(K₁) × under(K₂)`). Both schedules place
//! a slice's step at a per-arc maximum — the row index of `K₁`
//! (row-barrier) or `max(depth(K₁), depth(K₂))` (wavefront) — and a
//! step contribution grows strictly toward the outermost ancestor, so
//! the *last* reader of a cell is always determined by the two
//! outermost ancestors alone. A cell with a top-level arc on either
//! side has no stage-one reader at all and dies the moment its own
//! step settles.
//!
//! That factorization is the whole trick: instead of a per-cell table
//! (which would be as large as the memo it's meant to shrink), the
//! plan keeps four per-arc arrays — own-step and outermost-ancestor
//! contributions for each side — and combines them on demand:
//!
//! ```text
//! write_step(g₁, g₂) = max(own₁[g₁], own₂[g₂])
//! last_step(g₁, g₂)  = max(outer₁[g₁], outer₂[g₂])  if both sides have ancestors
//!                    = write_step(g₁, g₂)            otherwise (no reader)
//! ```
//!
//! The row-barrier schedule is the same formula with the second-side
//! contributions pinned to zero (a row step depends only on the `S₁`
//! arc). Death and write *enumeration* (which the eviction sweeps
//! need) comes from bucketing each side's arcs by step and walking the
//! cross products `{x = s} × {y ≤ s}` ∪ `{x < s} × {y = s}` — every
//! cell is enumerated exactly once across the run, so the sweep cost
//! is `O(grid)` aggregate, the same order as tabulating it.

use mcos_core::preprocess::Preprocessed;
use mcos_telemetry::liveness::LevelLiveness;

use crate::ScheduleKind;

/// Arcs of one side grouped by a step value: `items` sorted (stably)
/// by step, `offsets[s]..offsets[s + 1]` delimiting step `s`.
#[derive(Debug, Clone, Default)]
struct StepBuckets {
    items: Vec<u32>,
    offsets: Vec<usize>,
}

impl StepBuckets {
    fn build(num_steps: u32, arcs: impl Iterator<Item = (u32, u32)>) -> Self {
        let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); num_steps as usize];
        for (arc, step) in arcs {
            grouped[step as usize].push(arc);
        }
        let mut items = Vec::new();
        let mut offsets = Vec::with_capacity(num_steps as usize + 1);
        offsets.push(0);
        for bucket in grouped {
            items.extend(bucket);
            offsets.push(items.len());
        }
        StepBuckets { items, offsets }
    }

    /// Arcs whose step is exactly `s`.
    fn at(&self, s: u32) -> &[u32] {
        &self.items[self.offsets[s as usize]..self.offsets[s as usize + 1]]
    }

    /// Arcs whose step is `< s`.
    fn below(&self, s: u32) -> &[u32] {
        &self.items[..self.offsets[s as usize]]
    }

    /// Arcs whose step is `≤ s`.
    fn through(&self, s: u32) -> &[u32] {
        &self.items[..self.offsets[s as usize + 1]]
    }
}

/// Per-cell write and last-reader steps for one schedule, in
/// `O(A₁ + A₂)` space. See the module docs for the combine rule.
#[derive(Debug, Clone)]
pub struct RetentionPlan {
    num_steps: u32,
    a1: u32,
    a2: u32,
    own1: Vec<u32>,
    own2: Vec<u32>,
    /// Outermost-ancestor step contribution; `None` for top-level arcs.
    outer1: Vec<Option<u32>>,
    outer2: Vec<Option<u32>>,
    /// All arcs of each side bucketed by own step.
    all1: StepBuckets,
    all2: StepBuckets,
    /// Top-level arcs (no ancestor) bucketed by own step.
    top1: StepBuckets,
    top2: StepBuckets,
    /// Arcs *with* an ancestor, bucketed by own step (side 1 only;
    /// the `A₁ × T₂` death arm needs it).
    anc1_by_own: StepBuckets,
    /// Top-level arcs of side 2 bucketed by own step (the `A₁ × T₂`
    /// arm's column sets).
    anc1_by_outer: StepBuckets,
    /// Arcs with an ancestor bucketed by outer step.
    anc2_by_outer: StepBuckets,
}

/// Outermost-ancestor index per arc: walking arcs in increasing
/// right-endpoint order, every arc strictly under `k` gets `k` as its
/// (so-far) outermost ancestor; the last assignment wins and is the
/// true outermost because ancestors carry larger indexes.
fn outermost(p: &Preprocessed) -> Vec<Option<u32>> {
    let mut outer = vec![None; p.num_arcs() as usize];
    for k in 0..p.num_arcs() {
        let (lo, hi) = p.under_range[k as usize];
        for g in lo..hi {
            outer[g as usize] = Some(k);
        }
    }
    outer
}

impl RetentionPlan {
    /// Builds the plan for `schedule` over the two structures.
    pub fn new(p1: &Preprocessed, p2: &Preprocessed, schedule: ScheduleKind) -> Self {
        let a1 = p1.num_arcs();
        let a2 = p2.num_arcs();
        let (own1, own2, outer1, outer2, num_steps) = match schedule {
            ScheduleKind::Row => {
                // A row step depends only on the S₁ arc: side 2
                // contributes zero everywhere, and only the *presence*
                // of an S₂ ancestor matters for readability.
                let own1: Vec<u32> = (0..a1).collect();
                let own2 = vec![0u32; a2 as usize];
                let outer1 = outermost(p1);
                let outer2: Vec<Option<u32>> =
                    outermost(p2).into_iter().map(|o| o.map(|_| 0)).collect();
                (own1, own2, outer1, outer2, a1.max(1))
            }
            ScheduleKind::Level => {
                let own1: Vec<u32> = (0..a1).map(|g| p1.level_of(g)).collect();
                let own2: Vec<u32> = (0..a2).map(|h| p2.level_of(h)).collect();
                let outer1: Vec<Option<u32>> = outermost(p1)
                    .into_iter()
                    .map(|o| o.map(|k| p1.level_of(k)))
                    .collect();
                let outer2: Vec<Option<u32>> = outermost(p2)
                    .into_iter()
                    .map(|o| o.map(|k| p2.level_of(k)))
                    .collect();
                let steps = own1.iter().chain(&own2).copied().max().unwrap_or(0) + 1;
                (own1, own2, outer1, outer2, steps)
            }
        };
        let all1 = StepBuckets::build(num_steps, own1.iter().copied().enumerate().map(to_arc));
        let all2 = StepBuckets::build(num_steps, own2.iter().copied().enumerate().map(to_arc));
        let top1 = StepBuckets::build(num_steps, own_of_class(&own1, &outer1, false));
        let top2 = StepBuckets::build(num_steps, own_of_class(&own2, &outer2, false));
        let anc1_by_own = StepBuckets::build(num_steps, own_of_class(&own1, &outer1, true));
        let anc1_by_outer = StepBuckets::build(
            num_steps,
            outer1
                .iter()
                .enumerate()
                .filter_map(|(g, o)| o.map(|s| (g as u32, s))),
        );
        let anc2_by_outer = StepBuckets::build(
            num_steps,
            outer2
                .iter()
                .enumerate()
                .filter_map(|(h, o)| o.map(|s| (h as u32, s))),
        );
        RetentionPlan {
            num_steps,
            a1,
            a2,
            own1,
            own2,
            outer1,
            outer2,
            all1,
            all2,
            top1,
            top2,
            anc1_by_own,
            anc1_by_outer,
            anc2_by_outer,
        }
    }

    /// Number of schedule steps covered.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Logical grid size.
    pub fn grid_cells(&self) -> u64 {
        u64::from(self.a1) * u64::from(self.a2)
    }

    /// The step that writes cell `(g1, g2)`.
    #[inline]
    pub fn write_step(&self, g1: u32, g2: u32) -> u32 {
        self.own1[g1 as usize].max(self.own2[g2 as usize])
    }

    /// The step after which cell `(g1, g2)` has no stage-one reader.
    #[inline]
    pub fn last_step(&self, g1: u32, g2: u32) -> u32 {
        match (self.outer1[g1 as usize], self.outer2[g2 as usize]) {
            (Some(o1), Some(o2)) => o1.max(o2),
            _ => self.write_step(g1, g2),
        }
    }

    /// Cells written while step `s` runs.
    pub fn cells_written_at(&self, s: u32) -> u64 {
        if s >= self.num_steps {
            return 0;
        }
        self.all1.at(s).len() as u64 * self.all2.through(s).len() as u64
            + self.all1.below(s).len() as u64 * self.all2.at(s).len() as u64
    }

    /// Calls `f(row, cols)` once per row group of the cells *written*
    /// at step `s` (the pressure-eviction enumeration).
    pub fn for_written_at(&self, s: u32, f: &mut dyn FnMut(u32, &[u32])) {
        if s >= self.num_steps {
            return;
        }
        for &g in self.all1.at(s) {
            emit(g, self.all2.through(s), f);
        }
        for &g in self.all1.below(s) {
            emit(g, self.all2.at(s), f);
        }
    }

    /// Calls `f(row, cols)` once per row group of the cells whose last
    /// reader settles at step `s` (the dead-cell enumeration). Across
    /// `s = 0..num_steps` every cell is emitted exactly once.
    pub fn for_dead_at(&self, s: u32, f: &mut dyn FnMut(u32, &[u32])) {
        if s >= self.num_steps {
            return;
        }
        // Cells with ancestors on both sides die at max(outer₁, outer₂).
        for &g in self.anc1_by_outer.at(s) {
            emit(g, self.anc2_by_outer.through(s), f);
        }
        for &g in self.anc1_by_outer.below(s) {
            emit(g, self.anc2_by_outer.at(s), f);
        }
        // Readerless cells die at their own write step
        // max(own₁, own₂); partitioned as (T₁ × all) ∪ (A₁ × T₂).
        for &g in self.top1.at(s) {
            emit(g, self.all2.through(s), f);
        }
        for &g in self.top1.below(s) {
            emit(g, self.all2.at(s), f);
        }
        for &g in self.anc1_by_own.at(s) {
            emit(g, self.top2.through(s), f);
        }
        for &g in self.anc1_by_own.below(s) {
            emit(g, self.top2.at(s), f);
        }
    }

    /// The resident-cell trajectory an evicting store follows when it
    /// drops every cell as its last reader settles (no budget
    /// pressure): cells written through each step minus cells dead
    /// strictly below it. The maximum is the schedule's liveness
    /// floor, directly comparable to the telemetry model
    /// ([`mcos_telemetry::liveness::level_liveness`]).
    pub fn liveness(&self) -> LevelLiveness {
        if self.grid_cells() == 0 {
            return LevelLiveness::default();
        }
        let mut resident = Vec::with_capacity(self.num_steps as usize);
        let mut live = 0u64;
        for s in 0..self.num_steps {
            live += self.cells_written_at(s);
            resident.push(live);
            live -= self.cells_dead_at(s);
        }
        debug_assert_eq!(live, 0, "every cell must die by the final step");
        let (floor_level, floor_cells) = resident
            .iter()
            .enumerate()
            .max_by_key(|&(i, &r)| (r, std::cmp::Reverse(i)))
            .map(|(i, &r)| (i as u32, r))
            .unwrap_or((0, 0));
        LevelLiveness {
            levels: self.num_steps,
            cells: self.grid_cells(),
            resident,
            floor_cells,
            floor_level,
        }
    }

    /// Cells whose last reader settles at step `s` (count form of
    /// [`RetentionPlan::for_dead_at`]).
    pub fn cells_dead_at(&self, s: u32) -> u64 {
        if s >= self.num_steps {
            return 0;
        }
        let cross = |xa: &[u32], xb: &[u32]| xa.len() as u64 * xb.len() as u64;
        cross(self.anc1_by_outer.at(s), self.anc2_by_outer.through(s))
            + cross(self.anc1_by_outer.below(s), self.anc2_by_outer.at(s))
            + cross(self.top1.at(s), self.all2.through(s))
            + cross(self.top1.below(s), self.all2.at(s))
            + cross(self.anc1_by_own.at(s), self.top2.through(s))
            + cross(self.anc1_by_own.below(s), self.top2.at(s))
    }
}

#[inline]
fn emit(g: u32, cols: &[u32], f: &mut dyn FnMut(u32, &[u32])) {
    if !cols.is_empty() {
        f(g, cols);
    }
}

fn to_arc((i, s): (usize, u32)) -> (u32, u32) {
    (i as u32, s)
}

/// Arcs of one class (with / without an ancestor) paired with their
/// own step.
fn own_of_class<'a>(
    own: &'a [u32],
    outer: &'a [Option<u32>],
    with_ancestor: bool,
) -> impl Iterator<Item = (u32, u32)> + 'a {
    own.iter()
        .zip(outer)
        .enumerate()
        .filter(move |(_, (_, o))| o.is_some() == with_ancestor)
        .map(|(g, (&s, _))| (g as u32, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_telemetry::liveness::{level_liveness, SliceNode};
    use rna_structure::generate;
    use std::collections::HashSet;

    fn plans_for(
        s1: &rna_structure::ArcStructure,
        s2: &rna_structure::ArcStructure,
    ) -> Vec<(ScheduleKind, RetentionPlan, Preprocessed, Preprocessed)> {
        let p1 = Preprocessed::build(s1);
        let p2 = Preprocessed::build(s2);
        [ScheduleKind::Row, ScheduleKind::Level]
            .into_iter()
            .map(|k| {
                (
                    k,
                    RetentionPlan::new(&p1, &p2, k),
                    Preprocessed::build(s1),
                    Preprocessed::build(s2),
                )
            })
            .collect()
    }

    /// Brute-force last reader: max step over all ancestor pairs, or
    /// the write step when a side has no ancestor.
    fn brute_last(
        plan: &RetentionPlan,
        p1: &Preprocessed,
        p2: &Preprocessed,
        g1: u32,
        g2: u32,
    ) -> u32 {
        let anc = |p: &Preprocessed, g: u32| -> Vec<u32> {
            (0..p.num_arcs())
                .filter(|&k| {
                    let (lo, hi) = p.under_range[k as usize];
                    lo <= g && g < hi
                })
                .collect()
        };
        let mut last = plan.write_step(g1, g2);
        for &k1 in &anc(p1, g1) {
            for &k2 in &anc(p2, g2) {
                last = last.max(plan.write_step(k1, k2));
            }
        }
        last
    }

    #[test]
    fn last_step_equals_the_brute_force_reader_maximum() {
        let s1 = generate::random_structure(44, 0.8, 5);
        let s2 = generate::hairpin_chain(5, 3, 2);
        for (kind, plan, p1, p2) in plans_for(&s1, &s2) {
            for g1 in 0..p1.num_arcs() {
                for g2 in 0..p2.num_arcs() {
                    assert_eq!(
                        plan.last_step(g1, g2),
                        brute_last(&plan, &p1, &p2, g1, g2),
                        "{kind:?} cell ({g1}, {g2})"
                    );
                }
            }
        }
    }

    #[test]
    fn death_and_write_enumerations_cover_every_cell_exactly_once() {
        let s1 = generate::random_structure(40, 0.7, 11);
        let s2 = generate::skewed_groups(3, 2, 3);
        for (kind, plan, p1, p2) in plans_for(&s1, &s2) {
            for (name, enumerate, step_of) in [
                (
                    "dead",
                    (|plan: &RetentionPlan, s, f: &mut dyn FnMut(u32, &[u32])| {
                        plan.for_dead_at(s, f)
                    }) as fn(&RetentionPlan, u32, &mut dyn FnMut(u32, &[u32])),
                    (|plan: &RetentionPlan, g1, g2| plan.last_step(g1, g2))
                        as fn(&RetentionPlan, u32, u32) -> u32,
                ),
                (
                    "written",
                    |plan, s, f| plan.for_written_at(s, f),
                    |plan, g1, g2| plan.write_step(g1, g2),
                ),
            ] {
                let mut seen = HashSet::new();
                for s in 0..plan.num_steps() {
                    enumerate(&plan, s, &mut |g, cols| {
                        for &h in cols {
                            assert!(
                                seen.insert((g, h)),
                                "{kind:?} {name}: cell ({g}, {h}) emitted twice"
                            );
                            assert_eq!(step_of(&plan, g, h), s, "{kind:?} {name}");
                        }
                    });
                }
                assert_eq!(
                    seen.len() as u64,
                    u64::from(p1.num_arcs()) * u64::from(p2.num_arcs()),
                    "{kind:?} {name}: every cell exactly once"
                );
            }
        }
    }

    #[test]
    fn liveness_matches_the_telemetry_model_on_the_slice_dag() {
        let s1 = generate::hairpin_chain(4, 3, 2);
        let s2 = generate::random_structure(36, 0.8, 3);
        for (kind, plan, p1, p2) in plans_for(&s1, &s2) {
            let nodes: Vec<SliceNode> = (0..p1.num_arcs())
                .flat_map(|k1| (0..p2.num_arcs()).map(move |k2| (k1, k2)))
                .map(|(k1, k2)| SliceNode {
                    k1,
                    k2,
                    level: plan.write_step(k1, k2),
                })
                .collect();
            let model = level_liveness(&nodes, |k1, k2, sink| {
                let (lo1, hi1) = p1.under_range[k1 as usize];
                let (lo2, hi2) = p2.under_range[k2 as usize];
                for d1 in lo1..hi1 {
                    for d2 in lo2..hi2 {
                        sink(d1, d2);
                    }
                }
            });
            assert_eq!(plan.liveness(), model, "{kind:?}");
        }
    }

    #[test]
    fn sparse_inputs_admit_floors_far_below_the_grid() {
        // A chromosome-scale hairpin chain under the row schedule:
        // every cell's readers sit within the same few-arc stem, so
        // only a handful of rows are ever live at once.
        let s = generate::hairpin_chain(40, 3, 2);
        let p = Preprocessed::build(&s);
        let plan = RetentionPlan::new(&p, &p, ScheduleKind::Row);
        let lv = plan.liveness();
        assert_eq!(lv.cells, 14400);
        assert!(
            lv.floor_cells * 10 <= lv.cells,
            "row-schedule floor {} should be ≪ grid {}",
            lv.floor_cells,
            lv.cells
        );
    }

    /// Golden liveness floors for the chromosome-scale generators: the
    /// exact floors are pinned so a retention-analysis regression that
    /// silently inflates (or deflates) the floor is caught, and each
    /// floor is asserted to be a vanishing fraction of the grid — the
    /// premise of running these shapes under `--mem-budget`.
    #[test]
    fn chromosome_scale_floors_are_golden_and_tiny() {
        let field = generate::sparse_hairpin_field(2900, 145, 3, 4, 7);
        let skewed = generate::sparse_skewed_families(3000, 16, 2, 1, 9);
        for (name, s, want_floor, factor) in [
            ("sparse-hairpin-field", &field, 1015u64, 100u64),
            ("sparse-skewed-families", &skewed, 2328u64, 8u64),
        ] {
            let p = Preprocessed::build(s);
            let plan = RetentionPlan::new(&p, &p, ScheduleKind::Row);
            let lv = plan.liveness();
            assert_eq!(
                lv.floor_cells, want_floor,
                "{name}: golden floor moved (grid {})",
                lv.cells
            );
            assert!(
                lv.floor_cells * factor <= lv.cells,
                "{name}: floor {} is not ≪ grid {}",
                lv.floor_cells,
                lv.cells
            );
        }
    }

    #[test]
    fn empty_structures_yield_a_degenerate_plan() {
        let e = rna_structure::ArcStructure::unpaired(4);
        let p = Preprocessed::build(&e);
        for kind in [ScheduleKind::Row, ScheduleKind::Level] {
            let plan = RetentionPlan::new(&p, &p, kind);
            assert_eq!(plan.grid_cells(), 0);
            assert_eq!(plan.liveness(), LevelLiveness::default());
        }
    }
}

//! Schedule policies: *when* the memo table is synchronized.
//!
//! A schedule partitions the child slices (all arc pairs of
//! `S₁ × S₂`) into an ordered sequence of [`Step`]s. The engine
//! guarantees that every slice of step `s` observes every slice of
//! steps `< s` as settled, and nothing else; a schedule is correct iff
//! every dependency of a slice lands in a strictly earlier step.
//!
//! Two disciplines exist:
//!
//! * [`RowBarrier`] — the paper's §V schedule: one step per arc of
//!   `S₁`, in increasing right-endpoint order. A slice `(k1, k2)` only
//!   reads strictly nested pairs, whose `S₁` arcs have strictly
//!   smaller right endpoints, i.e. earlier rows.
//! * [`LevelWavefront`] — PR 1's dependency-level schedule: one step
//!   per nesting level `max(depth₁(k1), depth₂(k2))`, which strictly
//!   decreases along every dependency edge (see
//!   [`crate::wavefront`]). `max_depth + 1` steps instead of `A₁`.

use mcos_core::preprocess::Preprocessed;
use mcos_telemetry::BarrierKind;

use crate::wavefront::level_buckets;

/// One synchronization step: the slices that may run concurrently
/// between two table settlements.
#[derive(Debug, Clone)]
pub struct Step {
    /// Ordinal of the step (row index, level index, …); doubles as the
    /// barrier id in telemetry spans and race traces.
    pub index: u32,
    /// The arc pairs tabulated in this step. Order is the schedule's
    /// preferred issue order (statically owned workers walk it in
    /// order; dynamic claiming pops it front to back).
    pub slices: Vec<(u32, u32)>,
}

/// The symbolic half of a schedule: its happens-before skeleton as
/// data, emitted without executing any slice work.
///
/// Two synchronization currencies exist. Every boundary between
/// consecutive [`Step`]s is a *settlement barrier* (the engine settles
/// the step's writes before releasing the next step), and a schedule
/// may additionally promise *point-to-point readiness edges*: a
/// `(writer, reader)` pair means the reader slice waits on a flag the
/// writer slice releases after publishing. Barrier-only schedules
/// (both built-ins) leave `readiness` empty; the readiness-flag
/// schedule of [`crate::engine::readiness`] lives entirely in it.
///
/// The static prover in the `analysis` crate consumes this (composed
/// with the store and distribution axes into a
/// [`super::plan::SyncPlan`]) to check that every slice-DAG dependency
/// edge is covered by a synchronization path before anything runs.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// The ordered steps, exactly as [`Schedule::steps`] returns them;
    /// each step boundary is a settlement barrier.
    pub steps: Vec<Step>,
    /// Point-to-point readiness edges `(writer slice, reader slice)`:
    /// the reader blocks on a flag the writer sets after publishing.
    pub readiness: Vec<((u32, u32), (u32, u32))>,
}

/// A synchronization discipline for stage one.
pub trait Schedule: Sync {
    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Partitions all child slices into ordered steps. Every
    /// dependency of a slice must land in a strictly earlier step.
    fn steps(&self, p1: &Preprocessed, p2: &Preprocessed) -> Vec<Step>;

    /// Emits the schedule's synchronization structure as data, without
    /// executing any slice work. The default covers barrier-only
    /// schedules: the steps themselves (each boundary is a settlement
    /// barrier) and no point-to-point readiness edges. Schedules that
    /// synchronize through readiness flags must override this so the
    /// static prover can see their edges.
    fn sync_plan(&self, p1: &Preprocessed, p2: &Preprocessed) -> SchedulePlan {
        SchedulePlan {
            steps: self.steps(p1, p2),
            readiness: Vec::new(),
        }
    }

    /// Telemetry span kind for a worker waiting on a step release.
    fn wait_kind(&self) -> BarrierKind;

    /// Telemetry span kind for the coordinator settling a step.
    fn settle_kind(&self) -> BarrierKind;
}

/// The paper's per-row synchronization (§V): step `k1` is row `k1`,
/// columns in ascending `k2` order.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowBarrier;

// POLICY: one step per arc of S₁ in right-endpoint order; correct
// because nested pairs always sit in strictly earlier rows.
impl Schedule for RowBarrier {
    fn name(&self) -> &'static str {
        "row"
    }

    fn steps(&self, p1: &Preprocessed, p2: &Preprocessed) -> Vec<Step> {
        let a2 = p2.num_arcs();
        (0..p1.num_arcs())
            .map(|k1| Step {
                index: k1,
                slices: (0..a2).map(|k2| (k1, k2)).collect(),
            })
            .collect()
    }

    fn wait_kind(&self) -> BarrierKind {
        BarrierKind::RowWait
    }

    fn settle_kind(&self) -> BarrierKind {
        BarrierKind::RowInstall
    }
}

/// Dependency-level synchronization: step `l` holds every slice with
/// `max(depth₁(k1), depth₂(k2)) == l`, LPT-sorted (largest slices
/// first) so stragglers start early.
#[derive(Debug, Clone, Copy, Default)]
pub struct LevelWavefront {
    merge_first_levels: bool,
}

impl LevelWavefront {
    /// The correct wavefront schedule.
    pub fn new() -> Self {
        LevelWavefront {
            merge_first_levels: false,
        }
    }

    /// A deliberately *broken* wavefront that merges the first two
    /// dependency levels into one step — i.e. skips one barrier. Kept
    /// so the race detector can prove it detects the resulting
    /// happens-before hole; never use its results.
    pub(crate) fn broken() -> Self {
        LevelWavefront {
            merge_first_levels: true,
        }
    }
}

// POLICY: one step per dependency level; correct because max(depth₁,
// depth₂) strictly decreases along every dependency edge (proof in the
// `wavefront` module docs). `broken()` violates this on purpose.
impl Schedule for LevelWavefront {
    fn name(&self) -> &'static str {
        "wavefront"
    }

    fn steps(&self, p1: &Preprocessed, p2: &Preprocessed) -> Vec<Step> {
        let mut buckets = level_buckets(p1, p2);
        if self.merge_first_levels && buckets.len() >= 2 {
            let second = buckets.remove(1);
            buckets[0].extend(second);
        }
        for bucket in &mut buckets {
            // Largest slices first (LPT order): a level's work is
            // often dominated by a few deep pairs, and scheduling
            // those before the swarm of small ones keeps the barrier
            // from waiting on a straggler that started last.
            bucket.sort_by_key(|&(k1, k2)| {
                std::cmp::Reverse(p1.under_count(k1) as u64 * p2.under_count(k2) as u64)
            });
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(level, slices)| Step {
                index: level as u32,
                slices,
            })
            .collect()
    }

    fn wait_kind(&self) -> BarrierKind {
        BarrierKind::LevelWait
    }

    fn settle_kind(&self) -> BarrierKind {
        BarrierKind::LevelJoin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::generate;

    #[test]
    fn row_steps_enumerate_every_pair_in_order() {
        let s1 = generate::random_structure(40, 0.9, 1);
        let s2 = generate::random_structure(36, 0.8, 2);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let steps = RowBarrier.steps(&p1, &p2);
        assert_eq!(steps.len(), p1.num_arcs() as usize);
        for (k1, step) in steps.iter().enumerate() {
            assert_eq!(step.index, k1 as u32);
            let expect: Vec<(u32, u32)> = (0..p2.num_arcs()).map(|k2| (k1 as u32, k2)).collect();
            assert_eq!(step.slices, expect);
        }
    }

    #[test]
    fn wavefront_steps_partition_by_level() {
        let s = generate::hairpin_chain(8, 3, 2);
        let p = Preprocessed::build(&s);
        let steps = LevelWavefront::new().steps(&p, &p);
        assert_eq!(steps.len(), crate::wavefront::num_levels(&p, &p) as usize);
        let total: usize = steps.iter().map(|s| s.slices.len()).sum();
        assert_eq!(total, (p.num_arcs() * p.num_arcs()) as usize);
        for step in &steps {
            for &(k1, k2) in &step.slices {
                assert_eq!(p.level_of(k1).max(p.level_of(k2)), step.index);
            }
        }
    }

    #[test]
    fn default_sync_plan_is_barrier_only() {
        let s = generate::hairpin_chain(6, 3, 2);
        let p = Preprocessed::build(&s);
        for schedule in [&RowBarrier as &dyn Schedule, &LevelWavefront::new()] {
            let plan = schedule.sync_plan(&p, &p);
            assert!(plan.readiness.is_empty(), "{}", schedule.name());
            let steps = schedule.steps(&p, &p);
            assert_eq!(plan.steps.len(), steps.len(), "{}", schedule.name());
            for (a, b) in plan.steps.iter().zip(&steps) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.slices, b.slices);
            }
        }
    }

    #[test]
    fn broken_wavefront_merges_one_barrier() {
        let s = generate::worst_case_nested(6);
        let p = Preprocessed::build(&s);
        let good = LevelWavefront::new().steps(&p, &p);
        let bad = LevelWavefront::broken().steps(&p, &p);
        assert_eq!(bad.len(), good.len() - 1);
        assert_eq!(
            bad[0].slices.len(),
            good[0].slices.len() + good[1].slices.len()
        );
    }
}

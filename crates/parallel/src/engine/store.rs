//! Memo-store policies: *how* the memoization table `M` is
//! represented and synchronized.
//!
//! A store is shared by every worker of a [`run_stage_one`] run. Per
//! step, worker `w` opens a [`StepView`] — the read/publish capability
//! for that step — tabulates its share of slices through it, drops
//! it, and then either synchronizes itself ([`MemoStore::worker_sync`]
//! — the replicated/allreduce discipline, where there is no
//! coordinator) or hands off to the coordinator
//! ([`MemoStore::settle`] — the shared-table disciplines, where one
//! thread installs or snapshots the step).
//!
//! The engine guarantees views of step `s + 1` are only opened after
//! step `s` has fully settled, so gathers never race publishes.
//!
//! [`run_stage_one`]: super::run_stage_one

use std::sync;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use mcos_core::memo::{AtomicMemoTable, MemoTable, PartialMemo};
use mcos_telemetry::{Recorder, WorkerLog};
use mpi_sim::Communicator;
use parking_lot::{Mutex, RwLock};

use super::retention::RetentionPlan;
use super::schedule::Step;

/// A memoization-table representation + synchronization discipline.
pub trait MemoStore: Sync + Sized {
    /// The per-step worker capability (reads + result publication).
    type View<'v>: StepView
    where
        Self: 'v;

    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Whether step settlement needs the coordinator thread
    /// ([`MemoStore::settle`]); replicated stores synchronize inside
    /// [`MemoStore::worker_sync`] instead and run coordinator-free.
    fn coordinated(&self) -> bool;

    /// Total memo cells this store allocated across all of its tables
    /// and replicas (the `mcos.mem.memo.cells_allocated` figure; the
    /// physical cost of the representation, not the logical `a₁ × a₂`
    /// grid size).
    fn cells_allocated(&self) -> u64;

    /// Opens worker `w`'s view for the current step.
    fn begin_step(&self, w: usize) -> Self::View<'_>;

    /// Worker-side synchronization after `w`'s share of `step` (the
    /// view is already dropped). Replicated stores merge the step
    /// across ranks here; coordinated stores do nothing.
    fn worker_sync(&self, w: usize, step: &Step, log: &mut WorkerLog);

    /// Coordinator-side participation in `step`'s synchronization
    /// under the managed distribution (the manager joins the
    /// replicated allreduce, contributing zeros). No-op for
    /// coordinated stores, which use [`MemoStore::settle`] instead.
    fn manager_sync(&self, step: &Step, log: &mut WorkerLog);

    /// Coordinator-side settlement of `step`: install or snapshot the
    /// step's results so the next step's views observe them. Called
    /// only when [`MemoStore::coordinated`] is true, strictly after
    /// every worker has finished the step.
    fn settle(&self, step: &Step, recorder: &Recorder);

    /// Retention contract, part 1: an advisory pin — the caller
    /// promises that cells whose [`RetentionPlan::last_step`] is
    /// `>= step` are still going to be read. Stores that window
    /// internally must not drop past this mark. Default: no-op.
    fn retain_through(&self, _step: u32) {}

    /// Retention contract, part 2: drops the given cells of row `g1`
    /// from the representation worker `w` reads (`None` = the
    /// coordinator's shared table). Returns the cells actually
    /// removed from that representation. Callers are responsible for
    /// only evicting cells that are dead (per the retention plan) or
    /// whose future reads they can service by recomputation. Default:
    /// the store keeps everything.
    fn evict_cells(&self, _w: Option<usize>, _g1: u32, _cols: &[u32]) -> u64 {
        0
    }

    /// Consumes the store, returning the fully synchronized table.
    fn finish(self) -> MemoTable;
}

/// A worker's read/publish capability for one step. Holding the view
/// pins whatever the store needs for consistent reads (a read guard, a
/// replica lock); the engine drops it before the step synchronizes.
pub trait StepView {
    /// Copies memo row `g1`, columns `lo2..hi2`, into `buf` — the
    /// row-hoisted `d₂` gather — on behalf of slice `owner`.
    fn gather(&mut self, owner: (u32, u32), g1: u32, lo2: u32, hi2: u32, buf: &mut [u32]);

    /// Publishes the tabulated value of slice `(k1, k2)`.
    fn publish(&mut self, k1: u32, k2: u32, v: u32);
}

/// One rank's state in the [`Replicated`] store.
struct Replica {
    /// `None` for the manager rank: it joins every collective
    /// (contributing zeros) but never gathers from `M`, so
    /// materializing a full per-rank copy for it would be pure waste —
    /// the world's physical footprint is `workers × grid`, not
    /// `ranks × grid`. This is also what makes a one-worker world hold
    /// exactly one copy.
    memo: Option<PartialMemo>,
    comm: Communicator<Vec<u32>>,
    /// Reused per-step payload buffer: the merged vector returned by
    /// the collective is recycled as the next step's gather buffer, so
    /// steady-state merges allocate nothing on this rank.
    scratch: Vec<u32>,
}

impl Replica {
    fn merge_step(&mut self, step: &Step, log: &mut WorkerLog) {
        // Gather this rank's entries for the step (unowned entries are
        // still zero; scores are non-negative, so element-wise max
        // assembles the true values on every rank), merge, scatter
        // back. Under the row schedule this is exactly the paper's
        // per-row `Allreduce(MAX)` payload.
        let mut mine = std::mem::take(&mut self.scratch);
        let cap_before = mine.capacity();
        mine.clear();
        match &self.memo {
            Some(memo) => mine.extend(step.slices.iter().map(|&(k1, k2)| memo.get(k1, k2))),
            // The memo-less manager rank contributes the identity.
            None => mine.resize(step.slices.len(), 0),
        }
        if mine.capacity() > cap_before {
            log.scratch_alloc(1);
        }
        log.scratch_peak((mine.capacity() * std::mem::size_of::<u32>()) as u64);
        let n = mine.len() as u64;
        let span = log.start();
        let merged = self.comm.allreduce(mine, |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x = (*x).max(*y);
            }
            a
        });
        log.allreduce(span, n, n * 4);
        if let Some(memo) = &mut self.memo {
            for (&(k1, k2), &v) in step.slices.iter().zip(&merged) {
                memo.set(k1, k2, v);
            }
            // Every memo-holding rank installs the whole step into its
            // replica, so the store's physical write count is
            // `workers × cells` — the publishes merged away above are
            // not counted separately.
            log.memo_writes(step.slices.len() as u64);
        }
        self.scratch = merged;
    }
}

/// The paper's store (§V, Algorithm 4): every worker rank holds a
/// replica of `M` and the step is merged with `Allreduce(MAX)` over
/// the `mpi-sim` substrate. Coordinator-free: ranks run the schedule
/// in lockstep, the collective itself is the barrier. Replicas are
/// row-lazy [`PartialMemo`] tables, so rows evicted by the retention
/// contract actually return their memory.
pub struct Replicated {
    workers: Vec<Mutex<Replica>>,
    /// The memo-less leading rank when the managed distribution adds
    /// a dedicated manager to the world.
    manager: Option<Mutex<Replica>>,
}

impl Replicated {
    /// Builds the replicated world: one rank per worker, plus a
    /// leading memo-less manager rank when `managed`. Collective
    /// accounting is reported to `recorder`.
    pub fn new(a1: u32, a2: u32, workers: u32, managed: bool, recorder: &Recorder) -> Self {
        let mut comms = mpi_sim::world::<Vec<u32>>(workers + managed as u32, recorder);
        let manager = managed.then(|| {
            Mutex::new(Replica {
                memo: None,
                comm: comms.remove(0),
                scratch: Vec::new(),
            })
        });
        Replicated {
            workers: comms
                .into_iter()
                .map(|comm| {
                    Mutex::new(Replica {
                        memo: Some(PartialMemo::new(a1, a2)),
                        comm,
                        scratch: Vec::new(),
                    })
                })
                .collect(),
            manager,
        }
    }
}

/// View over worker `w`'s own replica.
pub struct ReplicatedView<'a> {
    replica: sync::MutexGuard<'a, Replica>,
}

impl StepView for ReplicatedView<'_> {
    fn gather(&mut self, _owner: (u32, u32), g1: u32, lo2: u32, hi2: u32, buf: &mut [u32]) {
        self.replica
            .memo
            .as_ref()
            .expect("only memo-holding worker ranks open views")
            .gather_into(g1, lo2, hi2, buf);
    }

    fn publish(&mut self, k1: u32, k2: u32, v: u32) {
        self.replica
            .memo
            .as_mut()
            .expect("only memo-holding worker ranks open views")
            .set(k1, k2, v);
    }
}

// POLICY: replicated tables, merged per step with Allreduce(MAX);
// coordinator-free (worker_sync is the barrier), manager rank joins
// the collective contributing zeros under the managed distribution.
impl MemoStore for Replicated {
    type View<'v> = ReplicatedView<'v>;

    fn name(&self) -> &'static str {
        "replicated"
    }

    fn coordinated(&self) -> bool {
        false
    }

    fn cells_allocated(&self) -> u64 {
        // Cells each worker rank ever materialized (the manager rank
        // holds no memo). Replicas are identical, so this is
        // `workers × per-replica`, but summing keeps it honest.
        self.workers
            .iter()
            .map(|w| {
                w.lock()
                    .memo
                    .as_ref()
                    .map_or(0, |memo| memo.cells_allocated())
            })
            .sum()
    }

    fn begin_step(&self, w: usize) -> ReplicatedView<'_> {
        // Uncontended: worker `w` is the only thread touching replica
        // `w`; the mutex only carries the state across step
        // boundaries.
        ReplicatedView {
            replica: self.workers[w].lock(),
        }
    }

    fn worker_sync(&self, w: usize, step: &Step, log: &mut WorkerLog) {
        self.workers[w].lock().merge_step(step, log);
    }

    fn manager_sync(&self, step: &Step, log: &mut WorkerLog) {
        let manager = self
            .manager
            .as_ref()
            .expect("manager_sync requires a managed world");
        manager.lock().merge_step(step, log);
    }

    fn settle(&self, _step: &Step, _recorder: &Recorder) {
        // Coordinator-free: synchronization happened in worker_sync.
    }

    fn evict_cells(&self, w: Option<usize>, g1: u32, cols: &[u32]) -> u64 {
        // Each worker evicts its own replica (a central evictor would
        // deadlock against the replica mutex the worker's view holds
        // for the whole step); the memo-less manager has nothing to
        // drop.
        let Some(w) = w else { return 0 };
        self.workers[w]
            .lock()
            .memo
            .as_mut()
            .map_or(0, |memo| memo.evict_cells(g1, cols))
    }

    fn finish(self) -> MemoTable {
        // Every worker rank holds the merged table; return worker 0's
        // copy (the manager rank is memo-less).
        self.workers
            .into_iter()
            .next()
            .expect("at least one worker")
            .into_inner()
            .memo
            .expect("worker ranks hold a replica")
            .into_table()
    }
}

/// One shared `M` behind a readers-writer lock: workers tabulate
/// against a read-locked table and ship `(k1, k2, v)` triples over a
/// channel; the coordinator installs the step under the write lock —
/// the shared-memory analogue of the per-step `Allreduce`.
pub struct SharedRwLock {
    memo: RwLock<PartialMemo>,
    results_tx: Sender<(u32, u32, u32)>,
    /// Drained only by the coordinator inside [`MemoStore::settle`];
    /// the mutex makes the receiver shareable, not contended.
    results_rx: Mutex<Receiver<(u32, u32, u32)>>,
    /// Reused settle staging buffer (grows once to the largest step
    /// instead of allocating per settle). Coordinator-only, like
    /// `results_rx`.
    staging: Mutex<Vec<(u32, u32, u32)>>,
}

impl SharedRwLock {
    /// Builds the store with the result channel sized for the largest
    /// step of `steps` — never for the whole run — so a worker can
    /// always complete every `publish` of a step without blocking,
    /// even though the coordinator only drains after the step's last
    /// result is in.
    pub fn new(a1: u32, a2: u32, steps: &[Step]) -> Self {
        let capacity = Self::step_capacity(steps);
        let (results_tx, results_rx) = bounded(capacity);
        SharedRwLock {
            memo: RwLock::new(PartialMemo::new(a1, a2)),
            results_tx,
            results_rx: Mutex::new(results_rx),
            staging: Mutex::new(Vec::new()),
        }
    }

    /// Result-channel capacity for `steps`: the largest single step.
    /// At most `step.slices.len()` publishes happen between two
    /// settlements, so this bounds the in-flight triples exactly.
    pub(crate) fn step_capacity(steps: &[Step]) -> usize {
        steps
            .iter()
            .map(|s| s.slices.len())
            .max()
            .unwrap_or(0)
            .max(1)
    }
}

/// View holding the shared read guard for one step.
pub struct RwLockView<'a> {
    guard: sync::RwLockReadGuard<'a, PartialMemo>,
    results_tx: &'a Sender<(u32, u32, u32)>,
}

impl StepView for RwLockView<'_> {
    fn gather(&mut self, _owner: (u32, u32), g1: u32, lo2: u32, hi2: u32, buf: &mut [u32]) {
        self.guard.gather_into(g1, lo2, hi2, buf);
    }

    fn publish(&mut self, k1: u32, k2: u32, v: u32) {
        self.results_tx
            .send((k1, k2, v))
            .expect("coordinator alive");
    }
}

// POLICY: one shared table behind a readers-writer lock; workers read
// under the shared guard, the coordinator installs each step under
// the write lock after every worker has finished it.
impl MemoStore for SharedRwLock {
    type View<'v> = RwLockView<'v>;

    fn name(&self) -> &'static str {
        "rwlock"
    }

    fn coordinated(&self) -> bool {
        true
    }

    fn cells_allocated(&self) -> u64 {
        // Cells the single shared table ever materialized.
        self.memo.read().cells_allocated()
    }

    fn begin_step(&self, _w: usize) -> RwLockView<'_> {
        RwLockView {
            guard: self.memo.read(),
            results_tx: &self.results_tx,
        }
    }

    fn worker_sync(&self, _w: usize, _step: &Step, _log: &mut WorkerLog) {}

    fn manager_sync(&self, _step: &Step, _log: &mut WorkerLog) {}

    fn settle(&self, step: &Step, recorder: &Recorder) {
        // Exactly one triple per slice of the step is in flight; every
        // worker has already finished, so the drain never blocks.
        let rx = self.results_rx.lock();
        let mut staged = self.staging.lock();
        let cap_before = staged.capacity();
        staged.clear();
        for _ in 0..step.slices.len() {
            staged.push(rx.recv().expect("workers published the whole step"));
        }
        drop(rx);
        if staged.capacity() > cap_before {
            recorder.count_scratch_allocs(1);
        }
        recorder.record_scratch_peak(
            (staged.capacity() * std::mem::size_of::<(u32, u32, u32)>()) as u64,
        );
        let mut guard = self.memo.write();
        for &(k1, k2, v) in staged.iter() {
            guard.set(k1, k2, v);
        }
        // Each cell lands in the shared table exactly once.
        recorder.count_memo_cells_written(staged.len() as u64);
    }

    fn evict_cells(&self, _w: Option<usize>, g1: u32, cols: &[u32]) -> u64 {
        // The coordinator evicts between steps; the write lock is
        // free (no view is open across a settlement boundary).
        self.memo.write().evict_cells(g1, cols)
    }

    fn finish(self) -> MemoTable {
        self.memo.into_inner().into_table()
    }
}

/// Lock-free publication over [`AtomicMemoTable`] with a settled
/// snapshot for reads: workers publish with relaxed atomic stores
/// (every slice writes a distinct entry) and gather from a row-lazy
/// [`PartialMemo`] snapshot of fully settled steps, keeping the hot
/// `d₂` gather a plain row copy. The coordinator folds each step into
/// the snapshot after it joins — one relaxed load per just-finished
/// slice, counted as `settled_reads`.
///
/// With a [`RetentionPlan`] attached ([`LockFreeAtomic::with_retention`])
/// the snapshot is *level-windowed*: a settling cell is only folded in
/// when some later step still reads it, and cells whose last reader
/// just settled are dropped — the snapshot holds the live window, not
/// a second full grid. The atomic grid itself still retains every
/// value, so [`MemoStore::finish`] and stage two are unaffected.
pub struct LockFreeAtomic {
    atomic: AtomicMemoTable,
    settled: RwLock<PartialMemo>,
    retention: Option<Arc<RetentionPlan>>,
}

impl LockFreeAtomic {
    /// Builds the store with a full (unwindowed) snapshot.
    pub fn new(a1: u32, a2: u32) -> Self {
        LockFreeAtomic {
            atomic: AtomicMemoTable::zeroed(a1, a2),
            settled: RwLock::new(PartialMemo::new(a1, a2)),
            retention: None,
        }
    }

    /// Builds the store with a level-windowed snapshot driven by
    /// `plan` (which must be built from the same schedule the run
    /// uses — step indexes are matched against [`Step::index`]).
    pub fn with_retention(a1: u32, a2: u32, plan: Arc<RetentionPlan>) -> Self {
        LockFreeAtomic {
            atomic: AtomicMemoTable::zeroed(a1, a2),
            settled: RwLock::new(PartialMemo::new(a1, a2)),
            retention: Some(plan),
        }
    }
}

/// View pinning the settled snapshot for one step.
pub struct LockFreeView<'a> {
    settled: sync::RwLockReadGuard<'a, PartialMemo>,
    atomic: &'a AtomicMemoTable,
}

impl StepView for LockFreeView<'_> {
    fn gather(&mut self, _owner: (u32, u32), g1: u32, lo2: u32, hi2: u32, buf: &mut [u32]) {
        self.settled.gather_into(g1, lo2, hi2, buf);
    }

    fn publish(&mut self, k1: u32, k2: u32, v: u32) {
        self.atomic.set(k1, k2, v);
    }
}

// POLICY: lock-free atomic publication + settled-snapshot reads; the
// coordinator's fold between steps is the only synchronization the
// table itself needs (the engine's step barrier orders it).
impl MemoStore for LockFreeAtomic {
    type View<'v> = LockFreeView<'v>;

    fn name(&self) -> &'static str {
        "lockfree"
    }

    fn coordinated(&self) -> bool {
        true
    }

    fn cells_allocated(&self) -> u64 {
        // The atomic grid plus whatever the settled snapshot ever
        // materialized (the full grid again when unwindowed; only the
        // live window's rows under a retention plan).
        self.atomic.cell_count() + self.settled.read().cells_allocated()
    }

    fn begin_step(&self, _w: usize) -> LockFreeView<'_> {
        LockFreeView {
            settled: self.settled.read(),
            atomic: &self.atomic,
        }
    }

    fn worker_sync(&self, _w: usize, _step: &Step, _log: &mut WorkerLog) {}

    fn manager_sync(&self, _step: &Step, _log: &mut WorkerLog) {}

    fn settle(&self, step: &Step, recorder: &Recorder) {
        // Fold the joined step into the snapshot (O(step) — over the
        // whole run this copies each entry at most once).
        let mut settled = self.settled.write();
        match &self.retention {
            None => {
                for &(k1, k2) in &step.slices {
                    settled.set(k1, k2, self.atomic.get(k1, k2));
                }
                recorder.count_settled_reads(step.slices.len() as u64);
                // Each cell is written twice: the worker's atomic
                // publish and this fold into the settled snapshot.
                recorder.count_memo_cells_written(2 * step.slices.len() as u64);
            }
            Some(plan) => {
                // Windowed: fold only cells some later step reads;
                // drop cells whose last reader is this very step. The
                // engine settles steps in increasing index order, so
                // sweeping exactly `step.index` visits each dead set
                // once.
                let mut folded = 0u64;
                for &(k1, k2) in &step.slices {
                    if plan.last_step(k1, k2) > step.index {
                        settled.set(k1, k2, self.atomic.get(k1, k2));
                        folded += 1;
                    }
                }
                plan.for_dead_at(step.index, &mut |g1, cols| {
                    settled.evict_cells(g1, cols);
                });
                recorder.count_settled_reads(folded);
                recorder.count_memo_cells_written(step.slices.len() as u64 + folded);
            }
        }
    }

    fn evict_cells(&self, _w: Option<usize>, g1: u32, cols: &[u32]) -> u64 {
        // Zero the atomic cells (so `finish` reflects the eviction
        // loudly) and drop them from the snapshot window.
        for &c in cols {
            self.atomic.set(g1, c, 0);
        }
        self.settled.write().evict_cells(g1, cols);
        cols.len() as u64
    }

    fn finish(self) -> MemoTable {
        self.atomic.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps(sizes: &[usize]) -> Vec<Step> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Step {
                index: i as u32,
                slices: (0..n).map(|k2| (i as u32, k2 as u32)).collect(),
            })
            .collect()
    }

    #[test]
    fn cells_allocated_reflects_the_representation() {
        let rec = Recorder::disabled();
        let all = steps(&[4]);
        // Replicated, managed: the manager rank is memo-less and the
        // worker replicas materialize rows lazily as merges install
        // them.
        let store = Replicated::new(3, 4, 2, true, &rec);
        assert_eq!(store.cells_allocated(), 0, "replicas are row-lazy");
        std::thread::scope(|s| {
            for w in 0..2usize {
                let (store, all, rec) = (&store, &all, &rec);
                s.spawn(move || store.worker_sync(w, &all[0], &mut rec.lane(w as u32 + 1)));
            }
            store.manager_sync(&all[0], &mut rec.lane(0));
        });
        // Row 0 landed on both worker ranks and nowhere on the manager.
        assert_eq!(store.cells_allocated(), 8);
        // RwLock: the single shared table, rows materialized at settle.
        let store = SharedRwLock::new(3, 4, &all);
        assert_eq!(store.cells_allocated(), 0);
        let mut view = store.begin_step(0);
        for &(k1, k2) in &all[0].slices {
            view.publish(k1, k2, 1);
        }
        drop(view);
        store.settle(&all[0], &rec);
        assert_eq!(store.cells_allocated(), 4);
        // Lock-free: the atomic grid is dense; the snapshot is lazy.
        let store = LockFreeAtomic::new(3, 4);
        assert_eq!(store.cells_allocated(), 12);
        store.settle(&all[0], &rec);
        assert_eq!(store.cells_allocated(), 16);
    }

    #[test]
    fn evicted_cells_leave_the_store_and_read_back_as_zero() {
        let all = steps(&[3]);
        let rec = Recorder::disabled();
        let store = SharedRwLock::new(1, 3, &all);
        let mut view = store.begin_step(0);
        for &(k1, k2) in &all[0].slices {
            view.publish(k1, k2, k2 + 7);
        }
        drop(view);
        store.settle(&all[0], &rec);
        assert_eq!(store.evict_cells(None, 0, &[0, 2]), 2);
        assert_eq!(
            store.evict_cells(None, 0, &[0]),
            0,
            "re-eviction is a no-op"
        );
        let mut buf = [99u32; 3];
        store.begin_step(0).gather((0, 0), 0, 0, 3, &mut buf);
        assert_eq!(buf, [0, 8, 0], "evicted cells read back as zero");

        // Replicated: each worker drops from its own replica; the
        // coordinator arm (None) is a no-op because the manager rank
        // holds no memo.
        let store = Replicated::new(1, 4, 2, false, &rec);
        std::thread::scope(|s| {
            for w in 0..2usize {
                let store = &store;
                let rec = &rec;
                s.spawn(move || {
                    let mut view = store.begin_step(w);
                    for k2 in 0..4u32 {
                        if k2 as usize % 2 == w {
                            view.publish(0, k2, 10 + k2);
                        }
                    }
                    drop(view);
                    let merge = Step {
                        index: 0,
                        slices: (0..4).map(|k2| (0, k2)).collect(),
                    };
                    store.worker_sync(w, &merge, &mut rec.lane(w as u32 + 1));
                });
            }
        });
        assert_eq!(
            store.evict_cells(None, 0, &[1]),
            0,
            "manager arm is memo-less"
        );
        assert_eq!(store.evict_cells(Some(0), 0, &[1, 3]), 2);
        assert_eq!(store.finish().row(0), &[10, 0, 12, 0]);
    }

    #[test]
    fn windowed_snapshot_holds_only_the_live_window() {
        use super::super::schedule::{RowBarrier, Schedule};
        use mcos_core::preprocess::Preprocessed;
        use rna_structure::generate;

        let s = generate::hairpin_chain(2, 2, 2);
        let p = Preprocessed::build(&s);
        let a = p.num_arcs();
        let plan = Arc::new(RetentionPlan::new(&p, &p, crate::ScheduleKind::Row));
        let rec = Recorder::disabled();
        let store = LockFreeAtomic::with_retention(a, a, plan);
        for step in RowBarrier.steps(&p, &p) {
            let mut view = store.begin_step(0);
            for &(k1, k2) in &step.slices {
                view.publish(k1, k2, k1 + k2 + 1);
            }
            drop(view);
            store.settle(&step, &rec);
        }
        // Every cell's last reader has settled: the window is empty,
        // and it never materialized the readerless (top-level) rows.
        assert_eq!(store.settled.read().cells_resident(), 0);
        assert!(
            store.cells_allocated() < 2 * u64::from(a) * u64::from(a),
            "the windowed snapshot must not re-materialize the grid"
        );
        // The atomic grid still holds every value for stage two.
        let memo = store.finish();
        assert_eq!(memo.get(a - 1, a - 1), 2 * a - 1);
    }

    #[test]
    fn settle_counts_written_cells_and_scratch() {
        let all = steps(&[3]);
        let rec = Recorder::enabled();
        let store = SharedRwLock::new(1, 3, &all);
        let mut view = store.begin_step(0);
        for &(k1, k2) in &all[0].slices {
            view.publish(k1, k2, 1);
        }
        drop(view);
        store.settle(&all[0], &rec);
        let c = rec.counters();
        assert_eq!(c.memo_cells_written, 3);
        assert_eq!(c.scratch_allocs, 1, "first settle grows the staging buffer");
        assert!(c.scratch_bytes_peak >= 3 * 12);

        let rec = Recorder::enabled();
        let store = LockFreeAtomic::new(1, 3);
        let mut view = store.begin_step(0);
        for &(k1, k2) in &all[0].slices {
            view.publish(k1, k2, 1);
        }
        drop(view);
        store.settle(&all[0], &rec);
        assert_eq!(rec.counters().memo_cells_written, 6, "publish + fold");
    }

    #[test]
    fn rwlock_capacity_is_the_largest_step() {
        assert_eq!(SharedRwLock::step_capacity(&steps(&[3, 7, 2])), 7);
        assert_eq!(SharedRwLock::step_capacity(&steps(&[])), 1);
        assert_eq!(SharedRwLock::step_capacity(&steps(&[0])), 1);
    }

    /// Regression for the pool backend's original whole-run channel:
    /// a worker must be able to publish its *entire* share of a step
    /// while holding the read guard, with no coordinator draining
    /// concurrently, and never block on `send`.
    #[test]
    fn worker_never_blocks_on_publish_while_holding_the_read_lock() {
        let all = steps(&[40]);
        let store = SharedRwLock::new(1, 40, &all);
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut view = store.begin_step(0);
                for &(k1, k2) in &all[0].slices {
                    view.publish(k1, k2, k2 + 1);
                }
                drop(view);
                done_tx.send(()).expect("main thread alive");
            });
            // No settle() runs until the worker finished the step; if
            // publish ever blocks the step never completes.
            done_rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("publish must not block while the read guard is held");
        });
        store.settle(&all[0], &Recorder::disabled());
        let memo = store.finish();
        assert_eq!(memo.get(0, 39), 40);
    }

    #[test]
    fn replicated_merges_across_ranks() {
        let all = steps(&[4]);
        let rec = Recorder::disabled();
        let store = Replicated::new(1, 4, 2, false, &rec);
        std::thread::scope(|s| {
            for w in 0..2usize {
                let store = &store;
                let all = &all;
                let rec = &rec;
                s.spawn(move || {
                    let mut view = store.begin_step(w);
                    // Rank w owns columns of its parity.
                    for &(k1, k2) in &all[0].slices {
                        if k2 as usize % 2 == w {
                            view.publish(k1, k2, 10 + k2);
                        }
                    }
                    drop(view);
                    store.worker_sync(w, &all[0], &mut rec.lane(w as u32 + 1));
                });
            }
        });
        let memo = store.finish();
        assert_eq!(memo.row(0), &[10, 11, 12, 13]);
    }

    #[test]
    fn lockfree_settle_publishes_to_snapshot() {
        let all = steps(&[2, 2]);
        let store = LockFreeAtomic::new(2, 2);
        let mut view = store.begin_step(0);
        view.publish(0, 0, 5);
        view.publish(0, 1, 6);
        // Unsettled publishes are invisible to gathers.
        let mut buf = [99u32; 2];
        view.gather((1, 0), 0, 0, 2, &mut buf);
        assert_eq!(buf, [0, 0]);
        drop(view);
        store.settle(&all[0], &Recorder::disabled());
        let mut view = store.begin_step(1);
        view.gather((1, 0), 0, 0, 2, &mut buf);
        assert_eq!(buf, [5, 6]);
        drop(view);
        assert_eq!(store.finish().row(0), &[5, 6]);
    }
}

//! A [`MemoStore`] decorator that records every memo access into a
//! [`TraceLog`] for the happens-before checker.
//!
//! Wrapping is all it takes to trace a store: the engine's execution
//! loops record the synchronizing edges (forks, joins, barrier
//! arrive/leave) via [`TraceHooks`], and this decorator records the
//! access events, following the discipline of [`mcos_core::trace`]:
//! writes are recorded *before* publication, reads *after* the gather,
//! so the shared log order is a conservative witness of the real
//! access order.
//!
//! Coordinator settlement copies (the rwlock install, the lock-free
//! snapshot fold) are recorded as coordinator [`PARENT_SLICE`] reads,
//! not as writes — the logical write remains the computing worker's —
//! exactly as the bespoke traced twins did before this decorator
//! replaced them.
//!
//! [`TraceHooks`]: super::TraceHooks

use mcos_core::memo::MemoTable;
use mcos_core::trace::{TaskId, TraceLog, PARENT_SLICE};
use mcos_telemetry::{Recorder, WorkerLog};

use super::schedule::Step;
use super::store::{MemoStore, StepView};

/// Wraps any [`MemoStore`] so all memo accesses are recorded into a
/// [`TraceLog`]. Synchronizing edges are *not* recorded here — the
/// engine loops record those, keeping the decorator purely about data
/// accesses.
pub struct Tracing<'t, M> {
    inner: M,
    log: &'t TraceLog,
    /// Coordinator task (records settlement reads).
    root: TaskId,
    /// Worker `w`'s task id.
    tasks: Vec<TaskId>,
}

impl<'t, M> Tracing<'t, M> {
    /// Decorates `inner`; `tasks[w]` is worker `w`'s task id and
    /// `root` the coordinator's.
    pub fn new(inner: M, log: &'t TraceLog, root: TaskId, tasks: Vec<TaskId>) -> Self {
        Tracing {
            inner,
            log,
            root,
            tasks,
        }
    }
}

/// The decorated per-step view: forwards to the wrapped view and
/// records one event per element accessed.
pub struct TracingView<'t, V> {
    inner: V,
    log: &'t TraceLog,
    task: TaskId,
}

impl<V: StepView> StepView for TracingView<'_, V> {
    fn gather(&mut self, owner: (u32, u32), g1: u32, lo2: u32, hi2: u32, buf: &mut [u32]) {
        // Perturb before the bulk gather so injected delays also land
        // between a publisher's store and this reader's load, then
        // record each element read (gather-then-record).
        self.log.perturb();
        self.inner.gather(owner, g1, lo2, hi2, buf);
        for c in lo2..hi2 {
            self.log.read(self.task, owner, g1, c);
        }
    }

    fn publish(&mut self, k1: u32, k2: u32, v: u32) {
        // Record-then-publish: the write record precedes any read that
        // could observe the published value.
        self.log.write(self.task, k1, k2);
        self.inner.publish(k1, k2, v);
    }
}

// POLICY: decorator — inherits the wrapped store's discipline and adds
// access recording only; synchronizing edges are the engine's job.
impl<'t, M: MemoStore> MemoStore for Tracing<'t, M> {
    type View<'v>
        = TracingView<'t, M::View<'v>>
    where
        Self: 'v;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn coordinated(&self) -> bool {
        self.inner.coordinated()
    }

    fn cells_allocated(&self) -> u64 {
        self.inner.cells_allocated()
    }

    fn begin_step(&self, w: usize) -> Self::View<'_> {
        TracingView {
            inner: self.inner.begin_step(w),
            log: self.log,
            task: self.tasks[w],
        }
    }

    fn worker_sync(&self, w: usize, step: &Step, log: &mut WorkerLog) {
        self.inner.worker_sync(w, step, log);
    }

    fn manager_sync(&self, step: &Step, log: &mut WorkerLog) {
        self.inner.manager_sync(step, log);
    }

    fn retain_through(&self, step: u32) {
        self.inner.retain_through(step);
    }

    fn evict_cells(&self, w: Option<usize>, g1: u32, cols: &[u32]) -> u64 {
        // Evictions are not memo accesses (nothing reads the dropped
        // value); forward without recording.
        self.inner.evict_cells(w, g1, cols)
    }

    fn settle(&self, step: &Step, recorder: &Recorder) {
        self.inner.settle(step, recorder);
        // The settlement copy reads each just-computed entry on the
        // coordinator; the logical write stays with the worker that
        // published it (see module docs).
        for &(k1, k2) in &step.slices {
            self.log.read(self.root, PARENT_SLICE, k1, k2);
        }
    }

    fn finish(self) -> MemoTable {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::store::SharedRwLock;
    use mcos_core::trace::TraceEvent;

    #[test]
    fn decorator_records_writes_then_reads_and_forwards() {
        let steps = vec![Step {
            index: 0,
            slices: vec![(0, 0), (0, 1)],
        }];
        let log = TraceLog::new();
        let root = log.alloc_task();
        let base = log.alloc_tasks(1);
        let store = Tracing::new(SharedRwLock::new(1, 2, &steps), &log, root, vec![base]);
        assert_eq!(store.name(), "rwlock");
        assert!(store.coordinated());
        let mut view = store.begin_step(0);
        view.publish(0, 0, 3);
        view.publish(0, 1, 4);
        drop(view);
        store.settle(&steps[0], &Recorder::disabled());
        let mut view = store.begin_step(0);
        let mut buf = [0u32; 2];
        view.gather((9, 9), 0, 0, 2, &mut buf);
        assert_eq!(buf, [3, 4]);
        drop(view);
        let memo = store.finish();
        assert_eq!(memo.row(0), &[3, 4]);

        let events = log.take_events();
        let writes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Write { .. }))
            .collect();
        assert_eq!(writes.len(), 2);
        // Two settlement reads by the coordinator, two gather reads by
        // the worker.
        let reads: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Read { task, owner, .. } => Some((*task, *owner)),
                _ => None,
            })
            .collect();
        assert_eq!(
            reads,
            vec![
                (root, PARENT_SLICE),
                (root, PARENT_SLICE),
                (base, (9, 9)),
                (base, (9, 9)),
            ]
        );
    }
}

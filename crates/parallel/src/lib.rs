//! PRNA: the parallel algorithm for finding common RNA secondary
//! structures (§V of the paper), over three interchangeable backends.
//!
//! PRNA parallelizes **stage one** of SRNA2 — the tabulation of child
//! slices, which accounts for over 99% of sequential execution
//! (Table III). Child slices are primitive tasks; the columns of the
//! parent slice (the arcs of `S₂`) are distributed across processors with
//! a static load balancer (Graham's greedy algorithm over the per-column
//! work determined in preprocessing), and the memoization table `M` is
//! synchronized after every row (arc of `S₁`). Stage two (the parent
//! slice) is sequential, exactly as in the paper.
//!
//! The correctness argument mirrors the sequential one: a child slice in
//! row `r` only reads `M` entries of strictly nested arc pairs, whose
//! `S₁` arcs have strictly smaller right endpoints — i.e. earlier rows,
//! already synchronized. No slice ever depends on its own row.
//!
//! # Backends
//!
//! * [`Backend::MpiSim`] — faithful to the paper's MPI implementation:
//!   every rank owns a full replica of `M`, tabulates its columns, and
//!   the row is merged with `Allreduce(MAX)` (over the `mpi-sim`
//!   substrate).
//! * [`Backend::WorkerPool`] — persistent worker threads share one `M`
//!   behind a readers-writer lock; workers compute their owned columns of
//!   a row against a read-locked `M`, the coordinator merges results and
//!   releases the next row. Static ownership, shared memory.
//! * [`Backend::Rayon`] — each row's columns are scheduled dynamically by
//!   a rayon pool (`par_iter` over columns); the implicit join at the end
//!   of each row is the row barrier. This is the "dynamic scheduling"
//!   ablation contrast to the paper's static distribution.
//! * [`Backend::Wavefront`] — synchronizes by **dependency level**
//!   instead of by row: slice `(k1, k2)` is scheduled at level
//!   `max(depth(k1), depth(k2))` (arc nesting depth, precomputed), all
//!   slices of one level run concurrently against a lock-free
//!   [`mcos_core::memo::AtomicMemoTable`], and the only barrier is the
//!   join between levels. The barrier count drops from `A₁` (rows) to
//!   `max_depth + 1` — see the [`wavefront`] module for the correctness
//!   argument.
//!
//! All backends produce bit-identical memo tables and scores to SRNA2;
//! the test suite asserts this.
//!
//! Two related-work schemes are implemented for comparison (the paper
//! discusses both in §II):
//!
//! * [`manager_worker`] — a dedicated manager rank hands out columns on
//!   request (Snow et al., HiCOMB 2009);
//! * [`topdown_shared`] — shared-memoization randomized top-down
//!   (Stivala et al., JPDC 2010), whose duplicated-work metric
//!   quantifies why the paper rejects that approach for this problem.
//!
//! ```
//! use mcos_parallel::{prna, PrnaConfig, Backend};
//! use load_balance::Policy;
//! use rna_structure::generate;
//!
//! let s = generate::worst_case_nested(12);
//! let out = prna(&s, &s, &PrnaConfig {
//!     processors: 3,
//!     policy: Policy::Greedy,
//!     backend: Backend::MpiSim,
//! });
//! assert_eq!(out.score, 12); // self-comparison matches every arc
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager_worker;
mod mpi_backend;
pub mod pairwise;
mod pool;
mod rayon_backend;
pub mod topdown_shared;
pub mod traced;
pub mod wavefront;

pub use manager_worker::prna_manager_worker;
pub use topdown_shared::{parallel_top_down, TopDownOutcome};
pub use traced::{prna_traced, TracedBackend, TracedOutcome};

use std::time::{Duration, Instant};

use load_balance::Policy;
use mcos_core::{memo::MemoTable, preprocess::Preprocessed, slice, workload};
use mcos_telemetry::{Phase, Recorder};
use rna_structure::ArcStructure;

/// Which execution engine runs stage one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Message-passing ranks with replicated `M` and per-row
    /// `Allreduce(MAX)` (the paper's design).
    MpiSim,
    /// Persistent shared-memory worker pool with static column ownership.
    WorkerPool,
    /// Rayon pool with per-row dynamic scheduling.
    Rayon,
    /// Dependency-level wavefront scheduling over a lock-free memo table
    /// (barrier per nesting level instead of per row).
    Wavefront,
}

impl Backend {
    /// All backends, for sweeps.
    pub const ALL: [Backend; 4] = [
        Backend::MpiSim,
        Backend::WorkerPool,
        Backend::Rayon,
        Backend::Wavefront,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::MpiSim => "mpi-sim",
            Backend::WorkerPool => "worker-pool",
            Backend::Rayon => "rayon",
            Backend::Wavefront => "wavefront",
        }
    }

    /// Parses a backend from its [`Backend::name`] (or common aliases),
    /// case-insensitively. Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.to_ascii_lowercase().as_str() {
            "mpi-sim" | "mpi" => Some(Backend::MpiSim),
            "worker-pool" | "pool" => Some(Backend::WorkerPool),
            "rayon" => Some(Backend::Rayon),
            "wavefront" => Some(Backend::Wavefront),
            _ => None,
        }
    }
}

/// PRNA configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrnaConfig {
    /// Number of processors (ranks / worker threads).
    pub processors: u32,
    /// Static column-distribution policy (ignored by [`Backend::Rayon`]
    /// and [`Backend::Wavefront`], which schedule dynamically).
    pub policy: Policy,
    /// Execution engine.
    pub backend: Backend,
}

impl Default for PrnaConfig {
    fn default() -> Self {
        PrnaConfig {
            processors: 2,
            policy: Policy::Greedy,
            backend: Backend::WorkerPool,
        }
    }
}

/// Result of a PRNA run.
#[derive(Debug, Clone)]
pub struct PrnaOutcome {
    /// The MCOS score.
    pub score: u32,
    /// The fully synchronized child-slice memo table.
    pub memo: MemoTable,
    /// Wall-clock duration of the preprocessing phase.
    pub preprocessing: Duration,
    /// Wall-clock duration of (parallel) stage one.
    pub stage_one: Duration,
    /// Wall-clock duration of (sequential) stage two.
    pub stage_two: Duration,
}

impl PrnaOutcome {
    /// Total wall-clock time across phases.
    pub fn total(&self) -> Duration {
        self.preprocessing + self.stage_one + self.stage_two
    }
}

/// Runs PRNA on two structures.
pub fn prna(s1: &ArcStructure, s2: &ArcStructure, config: &PrnaConfig) -> PrnaOutcome {
    prna_recorded(s1, s2, config, &Recorder::disabled())
}

/// Runs PRNA with telemetry: phase spans land on lane 0, each backend
/// records per-worker slice/barrier spans on lanes `1..=p`, and the
/// recorder's counters accumulate work totals. With a disabled recorder
/// this is exactly [`prna`] (the instrumentation reduces to a branch).
pub fn prna_recorded(
    s1: &ArcStructure,
    s2: &ArcStructure,
    config: &PrnaConfig,
    recorder: &Recorder,
) -> PrnaOutcome {
    assert!(config.processors > 0, "need at least one processor");
    let mut log = recorder.lane(0);
    let span = log.start();
    let t0 = Instant::now();
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    // Column ownership from the preprocessing-stage work estimates.
    let weights = workload::column_weights(&p1, &p2);
    let assignment = config.policy.assign(&weights, config.processors);
    let preprocessing = t0.elapsed();
    log.phase(span, Phase::Preprocess);

    let span = log.start();
    let t1 = Instant::now();
    let memo = match config.backend {
        Backend::MpiSim => mpi_backend::stage_one(&p1, &p2, &assignment, recorder),
        Backend::WorkerPool => pool::stage_one(&p1, &p2, &assignment, recorder),
        Backend::Rayon => rayon_backend::stage_one(&p1, &p2, config.processors, recorder),
        Backend::Wavefront => wavefront::stage_one(&p1, &p2, config.processors, recorder),
    };
    let stage_one = t1.elapsed();
    log.phase(span, Phase::StageOne);

    let span = log.start();
    let t2 = Instant::now();
    let score = stage_two(&p1, &p2, &memo);
    let stage_two_d = t2.elapsed();
    log.phase(span, Phase::StageTwo);
    // Flush now so callers can read a complete event log on return
    // (worker lanes flushed when their threads joined inside stage one).
    log.flush();

    PrnaOutcome {
        score,
        memo,
        preprocessing,
        stage_one,
        stage_two: stage_two_d,
    }
}

/// Telemetry detail for the child slice of `(k1, k2)`: its wavefront
/// dependency level and cell count. Only evaluated when recording.
#[inline]
pub(crate) fn slice_detail(
    p1: &Preprocessed,
    p2: &Preprocessed,
    k1: u32,
    k2: u32,
) -> (u32, u64) {
    (
        p1.level_of(k1).max(p2.level_of(k2)),
        slice::cell_count(p1.under_range[k1 as usize], p2.under_range[k2 as usize]),
    )
}

/// Reusable per-thread scratch for slice tabulation: the compressed grid
/// plus the row-hoisted `d₂` buffer of
/// [`slice::tabulate_with_rows`]. One per worker, reused across slices.
#[derive(Debug, Default)]
pub(crate) struct SliceScratch {
    grid: Vec<u32>,
    d2_row: Vec<u32>,
}

/// Stage two: sequential tabulation of the parent slice against a
/// complete memo table (shared by all backends).
pub(crate) fn stage_two(p1: &Preprocessed, p2: &Preprocessed, memo: &MemoTable) -> u32 {
    let mut scratch = SliceScratch::default();
    tabulate_ranges(p1, p2, p1.full_range(), p2.full_range(), memo, &mut scratch)
}

/// Tabulates the child slice of arc pair `(k1, k2)` against `memo`
/// (shared by every row-synchronized backend; the wavefront backend has
/// an atomic-table twin in [`wavefront`]).
#[inline]
pub(crate) fn tabulate_child(
    p1: &Preprocessed,
    p2: &Preprocessed,
    k1: u32,
    k2: u32,
    memo: &MemoTable,
    scratch: &mut SliceScratch,
) -> u32 {
    tabulate_ranges(
        p1,
        p2,
        p1.under_range[k1 as usize],
        p2.under_range[k2 as usize],
        memo,
        scratch,
    )
}

/// Row-hoisted tabulation over arbitrary arc ranges: the `d₂` reads for
/// each fixed `g1` are one contiguous segment of memo row `g1`, copied
/// into the scratch buffer once per row.
#[inline]
fn tabulate_ranges(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: slice::ArcRange,
    range2: slice::ArcRange,
    memo: &MemoTable,
    scratch: &mut SliceScratch,
) -> u32 {
    let (lo2, hi2) = range2;
    slice::tabulate_with_rows(
        p1,
        p2,
        range1,
        range2,
        &mut scratch.grid,
        &mut scratch.d2_row,
        |g1, buf| buf.copy_from_slice(&memo.row(g1)[lo2 as usize..hi2 as usize]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    fn all_configs(p: u32) -> Vec<PrnaConfig> {
        Backend::ALL
            .into_iter()
            .map(|backend| PrnaConfig {
                processors: p,
                policy: Policy::Greedy,
                backend,
            })
            .collect()
    }

    #[test]
    fn every_backend_matches_srna2_scores_and_memo() {
        for seed in 0..6 {
            let s1 = generate::random_structure(70, 0.9, seed);
            let s2 = generate::random_structure(60, 0.8, seed + 42);
            let reference = srna2::run(&s1, &s2);
            for p in [1u32, 2, 3, 5] {
                for config in all_configs(p) {
                    let out = prna(&s1, &s2, &config);
                    assert_eq!(
                        out.score,
                        reference.score,
                        "seed {seed}, p {p}, backend {}",
                        config.backend.name()
                    );
                    assert_eq!(
                        out.memo,
                        reference.memo,
                        "memo mismatch: seed {seed}, p {p}, backend {}",
                        config.backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_parallel() {
        let s = generate::worst_case_nested(30);
        for config in all_configs(4) {
            let out = prna(&s, &s, &config);
            assert_eq!(out.score, 30, "backend {}", config.backend.name());
        }
    }

    #[test]
    fn empty_structures() {
        let e = ArcStructure::unpaired(5);
        let s = generate::worst_case_nested(3);
        for config in all_configs(2) {
            assert_eq!(prna(&e, &s, &config).score, 0);
            assert_eq!(prna(&s, &e, &config).score, 0);
            assert_eq!(prna(&e, &e, &config).score, 0);
        }
    }

    #[test]
    fn more_processors_than_columns() {
        let s = generate::worst_case_nested(4); // 4 columns
        for config in all_configs(16) {
            let out = prna(&s, &s, &config);
            assert_eq!(out.score, 4, "backend {}", config.backend.name());
        }
    }

    #[test]
    fn all_policies_agree() {
        let s1 = generate::rrna_like(
            &generate::RrnaConfig {
                len: 300,
                arcs: 60,
                mean_stem: 6,
                nest_bias: 0.5,
            },
            9,
        );
        let reference = srna2::run(&s1, &s1).score;
        for policy in Policy::ALL {
            let config = PrnaConfig {
                processors: 3,
                policy,
                backend: Backend::MpiSim,
            };
            assert_eq!(
                prna(&s1, &s1, &config).score,
                reference,
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let s = generate::worst_case_nested(2);
        let config = PrnaConfig {
            processors: 0,
            ..PrnaConfig::default()
        };
        let _ = prna(&s, &s, &config);
    }

    use rna_structure::ArcStructure;
}

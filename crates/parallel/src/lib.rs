//! PRNA: the parallel algorithm for finding common RNA secondary
//! structures (§V of the paper), over one generic execution engine.
//!
//! PRNA parallelizes **stage one** of SRNA2 — the tabulation of child
//! slices, which accounts for over 99% of sequential execution
//! (Table III). Child slices are primitive tasks; the memoization table
//! `M` is synchronized in steps. Stage two (the parent slice) is
//! sequential, exactly as in the paper.
//!
//! The correctness argument mirrors the sequential one: a child slice
//! only reads `M` entries of strictly nested arc pairs, which every
//! schedule places in strictly earlier steps — already synchronized
//! when the slice runs.
//!
//! # The backend matrix
//!
//! Since the [`engine`] refactor a backend is not a monolith but a
//! composition of three orthogonal policies — a *schedule* (when `M`
//! synchronizes), a *memo store* (how `M` is represented and merged),
//! and a *distribution* (who runs each slice):
//!
//! | axis | options |
//! |------|---------|
//! | schedule | `row` (per arc of `S₁`, §V) · `wavefront` (per dependency level, PR 1) |
//! | store | `replicated` (`Allreduce(MAX)` over mpi-sim) · `rwlock` (shared table, coordinator installs) · `lockfree` (atomic publishes, settled snapshot) |
//! | distribution | `static` (owned columns, Graham's greedy) · `claim` (shared cursor) · `managed` (manager hands out slices) |
//!
//! Any of the 18 combinations runs through the same engine loop. The
//! five historical backends are just named points in the matrix, kept
//! as [`Backend`] constants and name aliases:
//!
//! * [`Backend::MPI_SIM`] = row × replicated × static — the paper's
//!   MPI design.
//! * [`Backend::WORKER_POOL`] = row × rwlock × static — persistent
//!   shared-memory workers.
//! * [`Backend::RAYON`] = row × rwlock × claim — per-row dynamic
//!   scheduling (the historical rayon backend, now rayon-free).
//! * [`Backend::WAVEFRONT`] = wavefront × lockfree × claim — the
//!   dependency-level backend of PR 1.
//! * [`Backend::MANAGER_WORKER`] = row × replicated × managed — the
//!   Snow-style related-work scheme (§II); the manager occupies one
//!   extra lane/rank beyond `processors`.
//!
//! All combinations produce bit-identical memo tables and scores to
//! SRNA2; the test suite asserts the full matrix.
//!
//! One related-work scheme lives outside the matrix because it is not
//! a step-synchronized recurrence at all: [`topdown_shared`]
//! (Stivala et al., JPDC 2010), the shared-memoization randomized
//! top-down contrast.
//!
//! ```
//! use mcos_parallel::{prna, PrnaConfig, Backend};
//! use load_balance::Policy;
//! use rna_structure::generate;
//!
//! let s = generate::worst_case_nested(12);
//! let out = prna(&s, &s, &PrnaConfig {
//!     processors: 3,
//!     backend: Backend::MPI_SIM,
//!     ..PrnaConfig::default()
//! });
//! assert_eq!(out.score, 12); // self-comparison matches every arc
//! ```
//!
//! Orthogonal to all three engine axes, the *kernel* axis
//! ([`KernelKind`], from `mcos-core`) selects the slice-tabulation
//! inner loop every backend runs; all kernels are bit-identical, so
//! any kernel composes with any backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod manager_worker;
mod mpi_backend;
pub mod pairwise;
mod pool;
mod rayon_backend;
pub mod topdown_shared;
pub mod traced;
pub mod wavefront;

pub use manager_worker::prna_manager_worker;
pub use topdown_shared::{parallel_top_down, TopDownOutcome};
pub use traced::{prna_traced, TracedOutcome};

use std::time::{Duration, Instant};

use load_balance::Policy;
use mcos_core::kernel::KernelScratch;
use mcos_core::recompute::CellOracle;
use mcos_core::traceback::Mapping;
use mcos_core::{memo::MemoTable, preprocess::Preprocessed, slice, workload};
use mcos_telemetry::{Phase, Recorder};
use rna_structure::ArcStructure;

pub use mcos_core::kernel::KernelKind;

/// When the memo table synchronizes (the engine's [`engine::Schedule`]
/// axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// One step per arc of `S₁` (the paper's per-row barrier).
    Row,
    /// One step per dependency level (the wavefront barrier).
    Level,
}

/// How the memo table is represented and merged (the engine's
/// [`engine::MemoStore`] axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Per-rank replicas merged with `Allreduce(MAX)` over mpi-sim.
    Replicated,
    /// One shared table behind a readers-writer lock; the coordinator
    /// installs each step under the write lock.
    SharedRwLock,
    /// Lock-free atomic publishes with a settled snapshot for reads.
    LockFreeAtomic,
}

/// Who runs each slice of a step (the engine's
/// [`engine::Distribution`] axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// Static column ownership from the load balancer.
    Static,
    /// Dynamic claiming off a shared per-step cursor.
    Claim,
    /// A manager hands out slices on request (one extra lane/rank).
    Managed,
}

/// A stage-one backend: one point in the schedule × store ×
/// distribution matrix, executed by [`engine::run_stage_one`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// When `M` synchronizes.
    pub schedule: ScheduleKind,
    /// How `M` is represented and merged.
    pub store: StoreKind,
    /// Who runs each slice.
    pub dist: DistKind,
}

impl Backend {
    /// The paper's MPI design: row barrier, replicated tables, static
    /// column ownership.
    pub const MPI_SIM: Backend = Backend {
        schedule: ScheduleKind::Row,
        store: StoreKind::Replicated,
        dist: DistKind::Static,
    };

    /// Persistent shared-memory worker pool: row barrier, shared
    /// rwlock table, static column ownership.
    pub const WORKER_POOL: Backend = Backend {
        schedule: ScheduleKind::Row,
        store: StoreKind::SharedRwLock,
        dist: DistKind::Static,
    };

    /// Per-row dynamic scheduling (the historical rayon backend): row
    /// barrier, shared rwlock table, claimed slices.
    pub const RAYON: Backend = Backend {
        schedule: ScheduleKind::Row,
        store: StoreKind::SharedRwLock,
        dist: DistKind::Claim,
    };

    /// The dependency-level backend of PR 1: wavefront barrier,
    /// lock-free table, claimed slices.
    pub const WAVEFRONT: Backend = Backend {
        schedule: ScheduleKind::Level,
        store: StoreKind::LockFreeAtomic,
        dist: DistKind::Claim,
    };

    /// The Snow-style manager/worker scheme (§II): row barrier,
    /// replicated tables, manager-distributed slices.
    pub const MANAGER_WORKER: Backend = Backend {
        schedule: ScheduleKind::Row,
        store: StoreKind::Replicated,
        dist: DistKind::Managed,
    };

    /// The five historical backends, for sweeps (legacy order, with
    /// manager-worker appended).
    pub const ALL: [Backend; 5] = [
        Backend::MPI_SIM,
        Backend::WORKER_POOL,
        Backend::RAYON,
        Backend::WAVEFRONT,
        Backend::MANAGER_WORKER,
    ];

    /// Every schedule × store × distribution combination.
    pub const MATRIX: [Backend; 18] = {
        let mut all = [Backend::MPI_SIM; 18];
        let schedules = [ScheduleKind::Row, ScheduleKind::Level];
        let stores = [
            StoreKind::Replicated,
            StoreKind::SharedRwLock,
            StoreKind::LockFreeAtomic,
        ];
        let dists = [DistKind::Static, DistKind::Claim, DistKind::Managed];
        let mut i = 0;
        while i < 18 {
            all[i] = Backend {
                schedule: schedules[i / 9],
                store: stores[(i / 3) % 3],
                dist: dists[i % 3],
            };
            i += 1;
        }
        all
    };

    /// Short display name. The five historical compositions keep
    /// their legacy names; the rest compose as
    /// `<schedule>-<store>[-<dist>]` (static distribution implied).
    pub fn name(self) -> &'static str {
        use DistKind as D;
        use ScheduleKind as S;
        use StoreKind as M;
        match (self.schedule, self.store, self.dist) {
            (S::Row, M::Replicated, D::Static) => "mpi-sim",
            (S::Row, M::Replicated, D::Claim) => "row-replicated-claim",
            (S::Row, M::Replicated, D::Managed) => "manager-worker",
            (S::Row, M::SharedRwLock, D::Static) => "worker-pool",
            (S::Row, M::SharedRwLock, D::Claim) => "rayon",
            (S::Row, M::SharedRwLock, D::Managed) => "row-rwlock-managed",
            (S::Row, M::LockFreeAtomic, D::Static) => "row-lockfree",
            (S::Row, M::LockFreeAtomic, D::Claim) => "row-lockfree-claim",
            (S::Row, M::LockFreeAtomic, D::Managed) => "row-lockfree-managed",
            (S::Level, M::Replicated, D::Static) => "wavefront-replicated",
            (S::Level, M::Replicated, D::Claim) => "wavefront-replicated-claim",
            (S::Level, M::Replicated, D::Managed) => "wavefront-replicated-managed",
            (S::Level, M::SharedRwLock, D::Static) => "wavefront-rwlock",
            (S::Level, M::SharedRwLock, D::Claim) => "wavefront-rwlock-claim",
            (S::Level, M::SharedRwLock, D::Managed) => "wavefront-rwlock-managed",
            (S::Level, M::LockFreeAtomic, D::Static) => "wavefront-lockfree",
            (S::Level, M::LockFreeAtomic, D::Claim) => "wavefront",
            (S::Level, M::LockFreeAtomic, D::Managed) => "wavefront-lockfree-managed",
        }
    }

    /// Parses a backend from its [`Backend::name`], a legacy alias
    /// (`mpi`, `pool`, `manager`), or the general
    /// `<schedule>-<store>[-<dist>]` grammar, case-insensitively.
    /// Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Backend> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "mpi-sim" | "mpi" => return Some(Backend::MPI_SIM),
            "worker-pool" | "pool" => return Some(Backend::WORKER_POOL),
            "rayon" => return Some(Backend::RAYON),
            "wavefront" => return Some(Backend::WAVEFRONT),
            "manager-worker" | "manager" => return Some(Backend::MANAGER_WORKER),
            _ => {}
        }
        let mut parts = lower.split('-');
        let schedule = match parts.next()? {
            "row" => ScheduleKind::Row,
            "wavefront" | "level" => ScheduleKind::Level,
            _ => return None,
        };
        let store = match parts.next()? {
            "replicated" => StoreKind::Replicated,
            "rwlock" => StoreKind::SharedRwLock,
            "lockfree" => StoreKind::LockFreeAtomic,
            _ => return None,
        };
        let dist = match parts.next() {
            None | Some("static") => DistKind::Static,
            Some("claim") => DistKind::Claim,
            Some("managed") => DistKind::Managed,
            Some(_) => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(Backend {
            schedule,
            store,
            dist,
        })
    }
}

/// PRNA configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrnaConfig {
    /// Number of worker processors (ranks / worker threads). A managed
    /// distribution adds one manager lane/rank on top.
    pub processors: u32,
    /// Static column-distribution policy (only consulted by backends
    /// with a [`DistKind::Static`] distribution).
    pub policy: Policy,
    /// Execution backend (a schedule × store × distribution point).
    pub backend: Backend,
    /// Slice-tabulation kernel every worker (and stage two) runs.
    pub kernel: KernelKind,
    /// Resident-cell budget for the memo table (in cells, per
    /// representation — each replica of a replicated store honors it
    /// individually). `None` keeps the full grid resident. With a
    /// budget set, stage one evicts cells per the retention plan
    /// (recomputing any that are still needed), stage two and the
    /// traceback route reads of evicted cells through the
    /// [`mcos_core::recompute::CellOracle`], and the returned
    /// [`PrnaOutcome::memo`] is **partial**: evicted cells read as
    /// zero. Scores and mappings stay bit-identical to the unbudgeted
    /// run.
    pub mem_budget: Option<u64>,
}

impl Default for PrnaConfig {
    fn default() -> Self {
        PrnaConfig {
            processors: 2,
            policy: Policy::Greedy,
            backend: Backend::WORKER_POOL,
            kernel: KernelKind::default(),
            mem_budget: None,
        }
    }
}

/// Result of a PRNA run.
#[derive(Debug, Clone)]
pub struct PrnaOutcome {
    /// The MCOS score.
    pub score: u32,
    /// The fully synchronized child-slice memo table.
    pub memo: MemoTable,
    /// Wall-clock duration of the preprocessing phase.
    pub preprocessing: Duration,
    /// Wall-clock duration of (parallel) stage one.
    pub stage_one: Duration,
    /// Wall-clock duration of (sequential) stage two.
    pub stage_two: Duration,
}

impl PrnaOutcome {
    /// Total wall-clock time across phases.
    pub fn total(&self) -> Duration {
        self.preprocessing + self.stage_one + self.stage_two
    }
}

/// Runs PRNA on two structures.
pub fn prna(s1: &ArcStructure, s2: &ArcStructure, config: &PrnaConfig) -> PrnaOutcome {
    prna_recorded(s1, s2, config, &Recorder::disabled())
}

/// Runs PRNA with telemetry: phase spans land on lane 0, the engine
/// records per-worker slice/barrier spans on lanes `1..=p`, and the
/// recorder's counters accumulate work totals. With a disabled recorder
/// this is exactly [`prna`] (the instrumentation reduces to a branch).
pub fn prna_recorded(
    s1: &ArcStructure,
    s2: &ArcStructure,
    config: &PrnaConfig,
    recorder: &Recorder,
) -> PrnaOutcome {
    assert!(config.processors > 0, "need at least one processor");
    let mut log = recorder.lane(0);
    let span = log.start();
    let t0 = Instant::now();
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    // Column ownership from the preprocessing-stage work estimates.
    let weights = workload::column_weights(&p1, &p2);
    let assignment = config.policy.assign(&weights, config.processors);
    let preprocessing = t0.elapsed();
    log.phase(span, Phase::Preprocess);

    let span = log.start();
    let t1 = Instant::now();
    let (memo, budget) = engine::dispatch_budgeted(
        config.backend,
        config.kernel,
        &p1,
        &p2,
        &assignment,
        recorder,
        config.mem_budget,
    );
    let stage_one = t1.elapsed();
    log.phase(span, Phase::StageOne);

    let span = log.start();
    let t2 = Instant::now();
    let score = match &budget {
        None => stage_two(&p1, &p2, &memo, config.kernel),
        Some(handle) => stage_two_budgeted(
            &p1,
            &p2,
            &memo,
            config.kernel,
            handle,
            oracle_cap(config.mem_budget),
            recorder,
        ),
    };
    let stage_two_d = t2.elapsed();
    log.phase(span, Phase::StageTwo);
    // Flush now so callers can read a complete event log on return
    // (worker lanes flushed when their threads joined inside stage one).
    log.flush();

    PrnaOutcome {
        score,
        memo,
        preprocessing,
        stage_one,
        stage_two: stage_two_d,
    }
}

/// Runs PRNA and recovers the optimal arc mapping (the stage-two
/// traceback), in one call. This is the entry point budgeted callers
/// should use for recovery: with [`PrnaConfig::mem_budget`] set, the
/// returned [`PrnaOutcome::memo`] is partial, and this function routes
/// the traceback's reads of evicted cells through recomputation —
/// the plain [`mcos_core::traceback::traceback_with`] over a partial
/// memo would silently read zeros.
pub fn prna_aligned(
    s1: &ArcStructure,
    s2: &ArcStructure,
    config: &PrnaConfig,
    recorder: &Recorder,
) -> (PrnaOutcome, Mapping) {
    assert!(config.processors > 0, "need at least one processor");
    let tp = Instant::now();
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let weights = workload::column_weights(&p1, &p2);
    let assignment = config.policy.assign(&weights, config.processors);
    let preprocessing = tp.elapsed();
    let t0 = Instant::now();
    let (memo, budget) = engine::dispatch_budgeted(
        config.backend,
        config.kernel,
        &p1,
        &p2,
        &assignment,
        recorder,
        config.mem_budget,
    );
    let stage_one = t0.elapsed();
    let t2 = Instant::now();
    let uniform = mcos_core::weighted::Uniform(1);
    let (score, mapping) = match &budget {
        None => (
            stage_two(&p1, &p2, &memo, config.kernel),
            mcos_core::traceback::traceback_with(&p1, &p2, &memo),
        ),
        Some(handle) => {
            // One oracle serves both the score pass and the recovery
            // walk, so children forced for the score are not re-forced
            // by the traceback.
            let shared = &*handle.shared;
            let kernel = config.kernel.kernel();
            let mut oracle = CellOracle::new(&p1, &p2, kernel, |a, b| {
                if shared.is_evicted(a, b) {
                    None
                } else {
                    Some(memo.get(a, b))
                }
            })
            .with_cap(oracle_cap(config.mem_budget));
            let score = tabulate_parent(&p1, &p2, config.kernel, &mut |g1, c2| oracle.get(g1, c2));
            let mapping =
                mcos_core::traceback::traceback_oracle(&p1, &p2, &uniform, &mut |g1, g2| {
                    oracle.get(g1, g2)
                });
            recorder.count_recompute(oracle.recompute_slices(), oracle.recompute_cells());
            (score, mapping)
        }
    };
    let stage_two_d = t2.elapsed();
    (
        PrnaOutcome {
            score,
            memo,
            preprocessing,
            stage_one,
            stage_two: stage_two_d,
        },
        mapping,
    )
}

/// Telemetry detail for the child slice of `(k1, k2)`: its wavefront
/// dependency level and cell count. Only evaluated when recording.
#[inline]
pub(crate) fn slice_detail(p1: &Preprocessed, p2: &Preprocessed, k1: u32, k2: u32) -> (u32, u64) {
    (
        p1.level_of(k1).max(p2.level_of(k2)),
        slice::cell_count(p1.under_range[k1 as usize], p2.under_range[k2 as usize]),
    )
}

/// Stage two: sequential tabulation of the parent slice against a
/// complete memo table (shared by all backends), through the same
/// kernel stage one used.
pub(crate) fn stage_two(
    p1: &Preprocessed,
    p2: &Preprocessed,
    memo: &MemoTable,
    kernel: KernelKind,
) -> u32 {
    let mut scratch = KernelScratch::default();
    let (lo2, hi2) = p2.full_range();
    kernel.kernel().tabulate(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        &mut scratch,
        &mut |g1, buf| buf.copy_from_slice(&memo.row(g1)[lo2 as usize..hi2 as usize]),
    )
}

/// Cache cap for the recovery oracles: the budget itself, floored at
/// 4096 entries so a tiny budget does not thrash the cache into
/// quadratic re-forcing. Unbudgeted callers get an unbounded cache.
fn oracle_cap(budget: Option<u64>) -> usize {
    budget.map_or(usize::MAX, |b| b.max(4096).min(usize::MAX as u64) as usize)
}

/// Stage two against a budget-evicted memo: reads route through a
/// [`CellOracle`] so evicted cells are recomputed instead of read as
/// zero, keeping the score bit-identical to the unbudgeted run. The
/// oracle's cache is capped near the run's budget — stage two scans
/// every grid cell, so an unbounded cache would accumulate the whole
/// recomputation closure and regrow the quadratic footprint eviction
/// freed; the cap trades extra re-forcing of shared children for a
/// resident set that honours the budget.
#[allow(clippy::too_many_arguments)]
fn stage_two_budgeted(
    p1: &Preprocessed,
    p2: &Preprocessed,
    memo: &MemoTable,
    kernel: KernelKind,
    handle: &engine::BudgetHandle,
    cap: usize,
    recorder: &Recorder,
) -> u32 {
    let shared = &*handle.shared;
    let mut oracle = CellOracle::new(p1, p2, kernel.kernel(), |a, b| {
        if shared.is_evicted(a, b) {
            None
        } else {
            Some(memo.get(a, b))
        }
    })
    .with_cap(cap);
    let score = tabulate_parent(p1, p2, kernel, &mut |g1, c2| oracle.get(g1, c2));
    recorder.count_recompute(oracle.recompute_slices(), oracle.recompute_cells());
    score
}

/// Tabulates the parent slice through `kernel`, pulling memo cells
/// from `cell` — the one stage-two loop both the dense and the
/// budgeted paths share.
fn tabulate_parent(
    p1: &Preprocessed,
    p2: &Preprocessed,
    kernel: KernelKind,
    cell: &mut dyn FnMut(u32, u32) -> u32,
) -> u32 {
    let mut scratch = KernelScratch::default();
    let (lo2, hi2) = p2.full_range();
    kernel.kernel().tabulate(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        &mut scratch,
        &mut |g1, buf| {
            for (i, c2) in (lo2..hi2).enumerate() {
                buf[i] = cell(g1, c2);
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    fn all_configs(p: u32) -> Vec<PrnaConfig> {
        Backend::ALL
            .into_iter()
            .map(|backend| PrnaConfig {
                processors: p,
                backend,
                ..PrnaConfig::default()
            })
            .collect()
    }

    #[test]
    fn every_kernel_matches_srna2_on_every_legacy_backend() {
        let s1 = generate::random_structure(64, 0.9, 11);
        let s2 = generate::random_structure(56, 0.8, 53);
        let reference = srna2::run(&s1, &s2);
        for kernel in KernelKind::ALL {
            for backend in Backend::ALL {
                let config = PrnaConfig {
                    processors: 3,
                    backend,
                    kernel,
                    ..PrnaConfig::default()
                };
                let out = prna(&s1, &s2, &config);
                assert_eq!(
                    out.score,
                    reference.score,
                    "{} kernel {}",
                    backend.name(),
                    kernel.name()
                );
                assert_eq!(
                    out.memo,
                    reference.memo,
                    "memo mismatch: {} kernel {}",
                    backend.name(),
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn every_backend_matches_srna2_scores_and_memo() {
        for seed in 0..6 {
            let s1 = generate::random_structure(70, 0.9, seed);
            let s2 = generate::random_structure(60, 0.8, seed + 42);
            let reference = srna2::run(&s1, &s2);
            for p in [1u32, 2, 3, 5] {
                for config in all_configs(p) {
                    let out = prna(&s1, &s2, &config);
                    assert_eq!(
                        out.score,
                        reference.score,
                        "seed {seed}, p {p}, backend {}",
                        config.backend.name()
                    );
                    assert_eq!(
                        out.memo,
                        reference.memo,
                        "memo mismatch: seed {seed}, p {p}, backend {}",
                        config.backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_parallel() {
        let s = generate::worst_case_nested(30);
        for config in all_configs(4) {
            let out = prna(&s, &s, &config);
            assert_eq!(out.score, 30, "backend {}", config.backend.name());
        }
    }

    #[test]
    fn empty_structures() {
        let e = ArcStructure::unpaired(5);
        let s = generate::worst_case_nested(3);
        for config in all_configs(2) {
            assert_eq!(prna(&e, &s, &config).score, 0);
            assert_eq!(prna(&s, &e, &config).score, 0);
            assert_eq!(prna(&e, &e, &config).score, 0);
        }
    }

    #[test]
    fn more_processors_than_columns() {
        let s = generate::worst_case_nested(4); // 4 columns
        for config in all_configs(16) {
            let out = prna(&s, &s, &config);
            assert_eq!(out.score, 4, "backend {}", config.backend.name());
        }
    }

    #[test]
    fn all_policies_agree() {
        let s1 = generate::rrna_like(
            &generate::RrnaConfig {
                len: 300,
                arcs: 60,
                mean_stem: 6,
                nest_bias: 0.5,
            },
            9,
        );
        let reference = srna2::run(&s1, &s1).score;
        for policy in Policy::ALL {
            let config = PrnaConfig {
                processors: 3,
                policy,
                backend: Backend::MPI_SIM,
                ..PrnaConfig::default()
            };
            assert_eq!(
                prna(&s1, &s1, &config).score,
                reference,
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn legacy_names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(Backend::from_name(backend.name()), Some(backend));
        }
        assert_eq!(Backend::from_name("mpi"), Some(Backend::MPI_SIM));
        assert_eq!(Backend::from_name("pool"), Some(Backend::WORKER_POOL));
        assert_eq!(Backend::from_name("manager"), Some(Backend::MANAGER_WORKER));
        assert_eq!(Backend::from_name("POOL"), Some(Backend::WORKER_POOL));
        assert_eq!(Backend::from_name("no-such"), None);
        assert_eq!(Backend::from_name("row-rwlock-bogus"), None);
        assert_eq!(Backend::from_name("row"), None);
    }

    #[test]
    fn matrix_names_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for backend in Backend::MATRIX {
            assert!(seen.insert(backend.name()), "duplicate {}", backend.name());
            assert_eq!(
                Backend::from_name(backend.name()),
                Some(backend),
                "{} does not round-trip",
                backend.name()
            );
        }
        assert_eq!(seen.len(), 18);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let s = generate::worst_case_nested(2);
        let config = PrnaConfig {
            processors: 0,
            ..PrnaConfig::default()
        };
        let _ = prna(&s, &s, &config);
    }

    use rna_structure::ArcStructure;
}

//! Manager–worker PRNA: the dynamic load-balancing scheme of the related
//! work the paper contrasts with (Snow, Aubanel & Evans, HiCOMB 2009 —
//! reference \[7\]), as an engine composition.
//!
//! [`crate::Backend::MANAGER_WORKER`] = row schedule × replicated store
//! × managed distribution: a dedicated manager (lane/rank 0) holds the
//! slice queue of the current row (heaviest first); workers request one
//! slice at a time, so per-row imbalance is absorbed dynamically at the
//! price of one request/assign round trip per task and a rank that does
//! no tabulation. After each row the replicas are merged with the same
//! `Allreduce(MAX)` as static PRNA, the manager included (contributing
//! zeros).
//!
//! The public entry points keep the historical rank-oriented interface:
//! `ranks` counts the manager plus the workers, so the engine runs with
//! `ranks - 1` worker processors.

use load_balance::Policy;
use mcos_telemetry::Recorder;

use crate::{prna_recorded, Backend, PrnaConfig, PrnaOutcome};

/// Public entry point mirroring [`crate::prna`] for the manager-worker
/// scheme: preprocessing, dynamic stage one, sequential stage two.
///
/// # Panics
///
/// Panics if `ranks < 2` (a dedicated manager needs at least one worker).
pub fn prna_manager_worker(
    s1: &rna_structure::ArcStructure,
    s2: &rna_structure::ArcStructure,
    ranks: u32,
) -> PrnaOutcome {
    prna_manager_worker_recorded(s1, s2, ranks, &Recorder::disabled())
}

/// Like [`prna_manager_worker`], with phase and per-rank telemetry spans
/// reported to `recorder`. With a disabled recorder this is exactly
/// [`prna_manager_worker`].
pub fn prna_manager_worker_recorded(
    s1: &rna_structure::ArcStructure,
    s2: &rna_structure::ArcStructure,
    ranks: u32,
    recorder: &Recorder,
) -> PrnaOutcome {
    assert!(ranks >= 2, "manager-worker needs at least 2 ranks");
    prna_recorded(
        s1,
        s2,
        &PrnaConfig {
            processors: ranks - 1,
            policy: Policy::Greedy,
            backend: Backend::MANAGER_WORKER,
            ..PrnaConfig::default()
        },
        recorder,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    #[test]
    fn manager_worker_matches_sequential() {
        for seed in 0..4 {
            let s1 = generate::random_structure(56, 1.0, seed);
            let s2 = generate::random_structure(48, 0.8, seed + 60);
            let reference = srna2::run(&s1, &s2);
            for ranks in [2u32, 3, 5] {
                let out = prna_manager_worker(&s1, &s2, ranks);
                assert_eq!(out.score, reference.score, "seed {seed} ranks {ranks}");
                assert_eq!(out.memo, reference.memo, "seed {seed} ranks {ranks}");
            }
        }
    }

    #[test]
    fn manager_worker_on_worst_case() {
        let s = generate::worst_case_nested(25);
        let out = prna_manager_worker(&s, &s, 4);
        assert_eq!(out.score, 25);
    }

    #[test]
    fn manager_worker_empty_structures() {
        let e = rna_structure::ArcStructure::unpaired(4);
        let out = prna_manager_worker(&e, &e, 2);
        assert_eq!(out.score, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn manager_worker_rejects_single_rank() {
        let s = generate::worst_case_nested(3);
        let _ = prna_manager_worker(&s, &s, 1);
    }
}

//! Manager–worker PRNA: the dynamic load-balancing scheme of the related
//! work the paper contrasts with (Snow, Aubanel & Evans, HiCOMB 2009 —
//! reference \[7\]), recreated on the row-synchronized slice schedule.
//!
//! Rank 0 is a dedicated manager holding the column queue of the current
//! row (heaviest first); workers request one column at a time and
//! tabulate its child slice, so per-row imbalance is absorbed
//! dynamically at the price of one request/assign round trip per task
//! and a rank that does no tabulation. After each row the memo table is
//! merged with the same `Allreduce(MAX)` as static PRNA.

use mcos_core::{memo::MemoTable, preprocess::Preprocessed, workload};
use mcos_telemetry::{BarrierKind, Phase, Recorder, WorkerLog};
use mpi_sim::Communicator;

use crate::{slice_detail, tabulate_child, SliceScratch};

/// Tag for worker→manager work requests (payload: empty vec).
pub(crate) const TAG_REQUEST: u64 = 0x10;
/// Tag for manager→worker assignments (payload: `[k2]`, or empty = row
/// finished).
pub(crate) const TAG_ASSIGN: u64 = 0x11;

/// Runs stage one with `ranks` ranks (1 manager + `ranks - 1` workers).
///
/// # Panics
///
/// Panics if `ranks < 2` (a dedicated manager needs at least one worker).
pub(crate) fn stage_one(
    p1: &Preprocessed,
    p2: &Preprocessed,
    ranks: u32,
    recorder: &Recorder,
) -> MemoTable {
    assert!(ranks >= 2, "manager-worker needs at least 2 ranks");
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    // Column order: heaviest first (LPT-like), fixed for every row since
    // the relative weights are row-independent.
    let weights = workload::column_weights(p1, p2);
    let mut order: Vec<u32> = (0..a2).collect();
    order.sort_by_key(|&k2| std::cmp::Reverse(weights[k2 as usize]));

    let mut tables = mpi_sim::run_recorded(ranks, recorder, |mut comm: Communicator<Vec<u32>>| {
        let rank = comm.rank();
        // The manager does no tabulation — it is the natural lane-0
        // coordinator; worker rank `r` keeps lane `r`.
        let mut log = recorder.lane(rank);
        let mut memo = MemoTable::zeroed(a1, a2);
        let mut scratch = SliceScratch::default();

        for k1 in 0..a1 {
            if rank == 0 {
                manage_row(&mut comm, &order, ranks - 1);
            } else {
                work_row(&mut comm, p1, p2, k1, &mut memo, &mut scratch, &mut log);
            }
            // Row synchronization, manager included (contributes zeros).
            let span = log.start();
            let merged = comm.allreduce(memo.row(k1).to_vec(), |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x = (*x).max(*y);
                }
                a
            });
            log.allreduce(span, a2 as u64, a2 as u64 * 4);
            memo.row_mut(k1).copy_from_slice(&merged);
        }
        log.flush();
        memo
    });
    // Every rank holds the merged table; return the manager's copy.
    tables.swap_remove(0)
}

/// Manager side of one row: hand out columns on request, then send one
/// empty "row done" reply to each worker.
pub(crate) fn manage_row(comm: &mut Communicator<Vec<u32>>, order: &[u32], workers: u32) {
    let mut next = 0usize;
    let mut done = 0u32;
    while done < workers {
        let (src, _) = comm.recv_any(TAG_REQUEST);
        if next < order.len() {
            comm.send(src, TAG_ASSIGN, vec![order[next]]);
            next += 1;
        } else {
            comm.send(src, TAG_ASSIGN, vec![]);
            done += 1;
        }
    }
}

/// Worker side of one row: request columns until the manager says the
/// row is finished.
fn work_row(
    comm: &mut Communicator<Vec<u32>>,
    p1: &Preprocessed,
    p2: &Preprocessed,
    k1: u32,
    memo: &mut MemoTable,
    scratch: &mut SliceScratch,
    log: &mut WorkerLog,
) {
    loop {
        // Request/assign round trip — the dynamic scheme's per-task tax.
        let wait = log.start();
        comm.send(0, TAG_REQUEST, vec![]);
        let assignment = comm.recv(0, TAG_ASSIGN);
        log.barrier(wait, BarrierKind::TaskWait, k1);
        match assignment.first() {
            Some(&k2) => {
                let span = log.start();
                let v = tabulate_child(p1, p2, k1, k2, memo, scratch);
                memo.set(k1, k2, v);
                log.slice(span, k1, k2, || slice_detail(p1, p2, k1, k2));
            }
            None => break,
        }
    }
}

/// Public entry point mirroring [`crate::prna`] for the manager-worker
/// scheme: preprocessing, dynamic stage one, sequential stage two.
pub fn prna_manager_worker(
    s1: &rna_structure::ArcStructure,
    s2: &rna_structure::ArcStructure,
    ranks: u32,
) -> crate::PrnaOutcome {
    prna_manager_worker_recorded(s1, s2, ranks, &Recorder::disabled())
}

/// Like [`prna_manager_worker`], with phase and per-rank telemetry spans
/// reported to `recorder`. With a disabled recorder this is exactly
/// [`prna_manager_worker`].
pub fn prna_manager_worker_recorded(
    s1: &rna_structure::ArcStructure,
    s2: &rna_structure::ArcStructure,
    ranks: u32,
    recorder: &Recorder,
) -> crate::PrnaOutcome {
    use std::time::Instant;
    let mut log = recorder.lane(0);

    let span = log.start();
    let t0 = Instant::now();
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let preprocessing = t0.elapsed();
    log.phase(span, Phase::Preprocess);

    let span = log.start();
    let t1 = Instant::now();
    let memo = stage_one(&p1, &p2, ranks, recorder);
    let stage_one_d = t1.elapsed();
    log.phase(span, Phase::StageOne);

    let span = log.start();
    let t2 = Instant::now();
    let score = crate::stage_two(&p1, &p2, &memo);
    let stage_two_d = t2.elapsed();
    log.phase(span, Phase::StageTwo);
    log.flush();

    crate::PrnaOutcome {
        score,
        memo,
        preprocessing,
        stage_one: stage_one_d,
        stage_two: stage_two_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    #[test]
    fn manager_worker_matches_sequential() {
        for seed in 0..4 {
            let s1 = generate::random_structure(56, 1.0, seed);
            let s2 = generate::random_structure(48, 0.8, seed + 60);
            let reference = srna2::run(&s1, &s2);
            for ranks in [2u32, 3, 5] {
                let out = prna_manager_worker(&s1, &s2, ranks);
                assert_eq!(out.score, reference.score, "seed {seed} ranks {ranks}");
                assert_eq!(out.memo, reference.memo, "seed {seed} ranks {ranks}");
            }
        }
    }

    #[test]
    fn manager_worker_on_worst_case() {
        let s = generate::worst_case_nested(25);
        let out = prna_manager_worker(&s, &s, 4);
        assert_eq!(out.score, 25);
    }

    #[test]
    fn manager_worker_empty_structures() {
        let e = rna_structure::ArcStructure::unpaired(4);
        let out = prna_manager_worker(&e, &e, 2);
        assert_eq!(out.score, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn manager_worker_rejects_single_rank() {
        let s = generate::worst_case_nested(3);
        let p = Preprocessed::build(&s);
        let _ = stage_one(&p, &p, 1, &Recorder::disabled());
    }
}

//! The message-passing PRNA backend — Algorithm 4 of the paper — as an
//! engine composition.
//!
//! [`crate::Backend::MPI_SIM`] = row schedule × replicated store ×
//! static distribution: every rank holds a full replica of the
//! memoization table `M`, initialized to zero. In stage one the ranks
//! sweep the rows (arcs of `S₁`, by increasing right endpoint) in
//! lockstep: each rank tabulates the child slices of the columns it
//! owns, then the row is merged across ranks with `Allreduce(MAX)` —
//! the exact structure of the paper's MPI implementation
//! (`MPI_Allreduce` with `MPI_MAX` over the completed row). Because
//! unowned entries are zero and scores are non-negative, the
//! element-wise max assembles the true row on every rank.
//!
//! The engine runs this free-running (no coordinator thread): the
//! collective itself is the barrier, exactly as in the paper's SPMD
//! loop. See [`Replicated`](crate::engine::Replicated) for the store,
//! [`RowBarrier`](crate::engine::RowBarrier) for the schedule.

#[cfg(test)]
mod tests {
    use crate::{prna, Backend, PrnaConfig};
    use load_balance::Policy;
    use mcos_core::{memo::MemoTable, preprocess::Preprocessed, srna2};
    use rna_structure::generate;

    fn config(ranks: u32) -> PrnaConfig {
        PrnaConfig {
            processors: ranks,
            policy: Policy::Greedy,
            backend: Backend::MPI_SIM,
            ..PrnaConfig::default()
        }
    }

    fn reference_memo(
        s1: &rna_structure::ArcStructure,
        s2: &rna_structure::ArcStructure,
    ) -> MemoTable {
        srna2::run(s1, s2).memo
    }

    #[test]
    fn replicated_tables_converge() {
        let s1 = generate::random_structure(60, 1.0, 5);
        let s2 = generate::random_structure(50, 0.9, 6);
        let reference = reference_memo(&s1, &s2);
        for ranks in [1u32, 2, 4, 7] {
            assert_eq!(
                prna(&s1, &s2, &config(ranks)).memo,
                reference,
                "ranks {ranks}"
            );
        }
    }

    #[test]
    fn single_rank_equals_sequential_stage_one() {
        let s = generate::worst_case_nested(15);
        assert_eq!(prna(&s, &s, &config(1)).memo, reference_memo(&s, &s));
    }

    #[test]
    fn no_arcs_yields_empty_table() {
        let s = rna_structure::ArcStructure::unpaired(10);
        let p = Preprocessed::build(&s);
        assert_eq!(p.num_arcs(), 0);
        let memo = prna(&s, &s, &config(3)).memo;
        assert_eq!(memo.rows(), 0);
    }
}

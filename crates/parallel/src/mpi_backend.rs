//! The message-passing PRNA backend — Algorithm 4 of the paper.
//!
//! Every rank holds a full replica of the memoization table `M`,
//! initialized to zero. In stage one the ranks sweep the rows (arcs of
//! `S₁`, by increasing right endpoint) in lockstep: each rank tabulates
//! the child slices of the columns it owns, then the row is merged across
//! ranks with `Allreduce(MAX)` — the exact structure of the paper's MPI
//! implementation (`MPI_Allreduce` with `MPI_MAX` over the completed
//! row). Because unowned entries are zero and scores are non-negative,
//! the element-wise max assembles the true row on every rank.

use load_balance::Assignment;
use mcos_core::{memo::MemoTable, preprocess::Preprocessed};
use mcos_telemetry::Recorder;

use crate::{slice_detail, tabulate_child, SliceScratch};

/// Runs stage one over `assignment.processors()` simulated ranks and
/// returns the fully synchronized memo table.
pub(crate) fn stage_one(
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
    recorder: &Recorder,
) -> MemoTable {
    let ranks = assignment.processors();
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();

    let mut tables = mpi_sim::run_recorded(ranks, recorder, |mut comm| {
        let rank = comm.rank();
        // Rank `r` is trace lane `r + 1`; lane 0 stays free for the
        // caller's coordinator spans.
        let mut log = recorder.lane(rank + 1);
        let mut memo = MemoTable::zeroed(a1, a2);
        let my_columns: Vec<u32> = (0..a2)
            .filter(|&k2| assignment.owner[k2 as usize] == rank)
            .collect();
        let mut scratch = SliceScratch::default();

        for k1 in 0..a1 {
            // Child slices of this row, owned columns only — spawned "in
            // parallel" across ranks.
            for &k2 in &my_columns {
                let span = log.start();
                let v = tabulate_child(p1, p2, k1, k2, &memo, &mut scratch);
                memo.set(k1, k2, v);
                log.slice(span, k1, k2, || slice_detail(p1, p2, k1, k2));
            }
            // Synchronize row k1 across all ranks. The span covers this
            // rank's wait for stragglers plus the merge itself; bytes are
            // the payload this rank contributes to the collective.
            let span = log.start();
            let merged = comm.allreduce(memo.row(k1).to_vec(), |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x = (*x).max(*y);
                }
                a
            });
            log.allreduce(span, a2 as u64, a2 as u64 * 4);
            memo.row_mut(k1).copy_from_slice(&merged);
        }
        log.flush();
        memo
    });
    tables.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use load_balance::Policy;
    use mcos_core::{srna2, workload};
    use rna_structure::generate;

    fn reference_memo(p1: &Preprocessed, p2: &Preprocessed) -> MemoTable {
        srna2::run_preprocessed(p1, p2).memo
    }

    #[test]
    fn replicated_tables_converge() {
        let s1 = generate::random_structure(60, 1.0, 5);
        let s2 = generate::random_structure(50, 0.9, 6);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let weights = workload::column_weights(&p1, &p2);
        for ranks in [1u32, 2, 4, 7] {
            let a = Policy::Greedy.assign(&weights, ranks);
            let memo = stage_one(&p1, &p2, &a, &Recorder::disabled());
            assert_eq!(memo, reference_memo(&p1, &p2), "ranks {ranks}");
        }
    }

    #[test]
    fn single_rank_equals_sequential_stage_one() {
        let s = generate::worst_case_nested(15);
        let p = Preprocessed::build(&s);
        let weights = workload::column_weights(&p, &p);
        let a = Policy::Greedy.assign(&weights, 1);
        assert_eq!(stage_one(&p, &p, &a, &Recorder::disabled()), reference_memo(&p, &p));
    }

    #[test]
    fn no_arcs_yields_empty_table() {
        let s = rna_structure::ArcStructure::unpaired(10);
        let p = Preprocessed::build(&s);
        let a = Policy::Greedy.assign(&[], 3);
        let memo = stage_one(&p, &p, &a, &Recorder::disabled());
        assert_eq!(memo.rows(), 0);
    }
}

//! All-pairs MCOS comparison of a structure collection.
//!
//! The downstream use case the paper's introduction motivates: given a
//! family of RNA secondary structures, quantify how much architecture
//! every pair shares. Scores are normalized into a similarity in
//! `[0, 1]` (matched arcs over the smaller arc count), and the pair jobs
//! are distributed over a rayon pool — the comparisons are independent,
//! so this is embarrassingly parallel (in contrast to the *intra*-
//! comparison parallelism of PRNA).

use mcos_core::{preprocess::Preprocessed, srna2};
use rayon::prelude::*;
use rna_structure::ArcStructure;

/// A symmetric matrix of pairwise results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreMatrix {
    n: usize,
    /// Row-major `n × n` matched-arc counts.
    scores: Vec<u32>,
    /// Arc count of each input structure.
    arcs: Vec<u32>,
}

impl ScoreMatrix {
    /// Number of structures compared.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty collection.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Matched-arc count between structures `i` and `j`.
    pub fn score(&self, i: usize, j: usize) -> u32 {
        self.scores[i * self.n + j]
    }

    /// Similarity in `[0, 1]`: matched arcs over the smaller arc count
    /// (1.0 when either structure is arcless — nothing to miss).
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        let denom = self.arcs[i].min(self.arcs[j]);
        if denom == 0 {
            1.0
        } else {
            self.score(i, j) as f64 / denom as f64
        }
    }

    /// The most similar pair `(i, j, similarity)` with `i < j`, if any.
    pub fn most_similar_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.n {
            for j in i + 1..self.n {
                let s = self.similarity(i, j);
                if best.is_none() || s > best.unwrap().2 {
                    best = Some((i, j, s));
                }
            }
        }
        best
    }

    /// Greedy single-linkage grouping: pairs with similarity at or above
    /// `threshold` fall into the same cluster. Returns per-structure
    /// cluster ids, numbered in first-appearance order.
    pub fn cluster(&self, threshold: f64) -> Vec<usize> {
        // Union-find over the n structures.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for i in 0..self.n {
            for j in i + 1..self.n {
                if self.similarity(i, j) >= threshold {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        // Renumber roots in first-appearance order.
        let mut ids = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut out = Vec::with_capacity(self.n);
        for x in 0..self.n {
            let root = find(&mut parent, x);
            if ids[root] == usize::MAX {
                ids[root] = next;
                next += 1;
            }
            out.push(ids[root]);
        }
        out
    }
}

/// Compares every pair of structures on a rayon pool of `threads`
/// threads and returns the symmetric score matrix. Self-comparisons are
/// filled analytically (`score(i, i) = arcs(i)`).
pub fn score_matrix(structures: &[ArcStructure], threads: u32) -> ScoreMatrix {
    let n = structures.len();
    let preprocessed: Vec<Preprocessed> = structures.iter().map(Preprocessed::build).collect();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads as usize)
        .build()
        .expect("rayon pool construction");
    let results: Vec<((usize, usize), u32)> = pool.install(|| {
        pairs
            .par_iter()
            .map(|&(i, j)| {
                let score = srna2::run_preprocessed(&preprocessed[i], &preprocessed[j]).score;
                ((i, j), score)
            })
            .collect()
    });
    let mut scores = vec![0u32; n * n];
    for (i, s) in structures.iter().enumerate() {
        scores[i * n + i] = s.num_arcs();
    }
    for ((i, j), score) in results {
        scores[i * n + j] = score;
        scores[j * n + i] = score;
    }
    ScoreMatrix {
        n,
        scores,
        arcs: structures.iter().map(|s| s.num_arcs()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rna_structure::generate;
    use rna_structure::mutate::{mutate, MutationConfig};

    #[test]
    fn diagonal_is_arc_count_and_matrix_is_symmetric() {
        let structures: Vec<ArcStructure> = (0..5)
            .map(|seed| generate::random_structure(50, 0.9, seed))
            .collect();
        let m = score_matrix(&structures, 2);
        for (i, s) in structures.iter().enumerate() {
            assert_eq!(m.score(i, i), s.num_arcs());
            assert!((m.similarity(i, i) - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert_eq!(m.score(i, j), m.score(j, i));
            }
        }
    }

    #[test]
    fn mutants_are_more_similar_to_their_template_than_to_strangers() {
        let template = generate::rrna_like(
            &generate::RrnaConfig {
                len: 200,
                arcs: 40,
                mean_stem: 6,
                nest_bias: 0.5,
            },
            7,
        );
        let mutant = mutate(&template, &MutationConfig::default(), 1);
        let stranger = generate::random_structure(200, 0.4, 999);
        let m = score_matrix(&[template, mutant, stranger], 1);
        assert!(
            m.similarity(0, 1) > m.similarity(0, 2),
            "template-mutant {:.2} vs template-stranger {:.2}",
            m.similarity(0, 1),
            m.similarity(0, 2)
        );
    }

    #[test]
    fn clustering_separates_two_families() {
        let fam_a = generate::worst_case_nested(20);
        let fam_b = generate::hairpin_chain(10, 2, 4);
        let structures = vec![
            fam_a.clone(),
            mutate(&fam_a, &MutationConfig::default(), 1),
            mutate(&fam_a, &MutationConfig::default(), 2),
            fam_b.clone(),
            mutate(&fam_b, &MutationConfig::default(), 3),
        ];
        let m = score_matrix(&structures, 2);
        let clusters = m.cluster(0.6);
        assert_eq!(clusters[0], clusters[1]);
        assert_eq!(clusters[0], clusters[2]);
        assert_eq!(clusters[3], clusters[4]);
        assert_ne!(clusters[0], clusters[3]);
    }

    #[test]
    fn empty_and_single_collections() {
        let m = score_matrix(&[], 1);
        assert!(m.is_empty());
        assert_eq!(m.most_similar_pair(), None);
        let one = score_matrix(&[generate::worst_case_nested(3)], 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one.most_similar_pair(), None);
    }

    #[test]
    fn most_similar_pair_finds_the_clones() {
        let a = generate::worst_case_nested(12);
        let b = generate::hairpin_chain(6, 2, 3);
        let structures = vec![b.clone(), a.clone(), a.clone()];
        let m = score_matrix(&structures, 1);
        let (i, j, s) = m.most_similar_pair().unwrap();
        assert_eq!((i, j), (1, 2));
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arcless_structures_have_similarity_one() {
        let u = ArcStructure::unpaired(10);
        let a = generate::worst_case_nested(4);
        let m = score_matrix(&[u, a], 1);
        assert_eq!(m.score(0, 1), 0);
        assert!((m.similarity(0, 1) - 1.0).abs() < 1e-12);
    }
}

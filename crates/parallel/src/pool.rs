//! The shared-memory worker-pool backend, as an engine composition.
//!
//! [`crate::Backend::WORKER_POOL`] = row schedule × shared-rwlock store
//! × static distribution: one memo table lives behind a readers-writer
//! lock; persistent workers (one per processor, spawned by the engine)
//! are released row by row, each tabulating the child slices of its
//! owned columns against the read-locked table and shipping
//! `(k1, k2, v)` results back; the coordinator write-locks `M` and
//! installs the row. The write lock is the shared-memory analogue of
//! the paper's per-row `Allreduce` — same schedule, no replication.
//!
//! Historically this module carried its own spawn/channel loop with a
//! result channel sized `a2 + 1` *for the whole run* — a latent
//! capacity bug once completion markers shared the channel. The engine
//! sizes the channel per step
//! ([`SharedRwLock::new`](crate::engine::SharedRwLock)) and moves
//! completion signalling to a separate done channel, so a worker can
//! never block on `send` while holding the read lock (regression test
//! in `engine::store`).

#[cfg(test)]
mod tests {
    use crate::{prna, Backend, PrnaConfig};
    use load_balance::Policy;
    use mcos_core::{preprocess::Preprocessed, srna2};
    use rna_structure::generate;

    fn config(workers: u32, policy: Policy) -> PrnaConfig {
        PrnaConfig {
            processors: workers,
            policy,
            backend: Backend::WORKER_POOL,
            ..PrnaConfig::default()
        }
    }

    #[test]
    fn pool_matches_sequential_stage_one() {
        let s1 = generate::random_structure(64, 1.0, 11);
        let s2 = generate::random_structure(48, 0.8, 12);
        let reference = srna2::run(&s1, &s2).memo;
        for workers in [1u32, 2, 3, 8] {
            assert_eq!(
                prna(&s1, &s2, &config(workers, Policy::Lpt)).memo,
                reference,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn pool_handles_empty_structures() {
        let s = rna_structure::ArcStructure::unpaired(6);
        let p = Preprocessed::build(&s);
        assert_eq!(p.num_arcs(), 0);
        let out = prna(&s, &s, &config(2, Policy::Greedy));
        assert_eq!(out.memo.rows(), 0);
        assert_eq!(out.memo.cols(), 0);
    }

    #[test]
    fn pool_with_idle_workers() {
        // More workers than columns: extras are released into every row
        // and own nothing.
        let s = generate::worst_case_nested(3);
        let reference = srna2::run(&s, &s).memo;
        assert_eq!(prna(&s, &s, &config(9, Policy::Greedy)).memo, reference);
    }
}

//! The shared-memory worker-pool PRNA backend.
//!
//! One memo table lives behind a readers-writer lock. Persistent workers
//! (one per processor) are driven row by row over crossbeam channels:
//! each worker read-locks `M`, tabulates the child slices of its owned
//! columns, and ships `(column, value)` results back; the coordinator
//! write-locks `M`, installs the row, and releases the next one. The
//! write lock is the shared-memory analogue of the paper's per-row
//! `Allreduce` — same schedule, no replication.

use crossbeam::channel::{bounded, Sender};
use load_balance::Assignment;
use mcos_core::{memo::MemoTable, preprocess::Preprocessed};
use mcos_telemetry::{BarrierKind, Recorder};
use parking_lot::RwLock;

use crate::{slice_detail, tabulate_child, SliceScratch};

/// Runs stage one on a pool of `assignment.processors()` worker threads.
pub(crate) fn stage_one(
    p1: &Preprocessed,
    p2: &Preprocessed,
    assignment: &Assignment,
    recorder: &Recorder,
) -> MemoTable {
    let workers = assignment.processors();
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let memo = RwLock::new(MemoTable::zeroed(a1, a2));

    std::thread::scope(|scope| {
        // Per-worker command channels and one shared result channel.
        let (result_tx, result_rx) = bounded::<(u32, u32, u32)>(a2 as usize + 1);
        let mut row_txs: Vec<Sender<u32>> = Vec::with_capacity(workers as usize);
        for w in 0..workers {
            let (tx, rx) = bounded::<u32>(1);
            row_txs.push(tx);
            let result_tx = result_tx.clone();
            let my_columns: Vec<u32> = (0..a2)
                .filter(|&k2| assignment.owner[k2 as usize] == w)
                .collect();
            let memo = &memo;
            // Lane ids are deterministic: worker `w` is always lane
            // `w + 1`, independent of spawn/scheduling order.
            let mut log = recorder.lane(w + 1);
            scope.spawn(move || {
                let mut scratch = SliceScratch::default();
                // Each received row index is a go signal; channel close
                // ends the worker.
                loop {
                    let wait = log.start();
                    let Ok(k1) = rx.recv() else { break };
                    log.barrier(wait, BarrierKind::RowWait, k1);
                    let guard = memo.read();
                    for &k2 in &my_columns {
                        let span = log.start();
                        let v = tabulate_child(p1, p2, k1, k2, &guard, &mut scratch);
                        log.slice(span, k1, k2, || slice_detail(p1, p2, k1, k2));
                        result_tx.send((k1, k2, v)).expect("coordinator alive");
                    }
                    drop(guard);
                    // Per-row completion marker (column sentinel).
                    result_tx
                        .send((k1, u32::MAX, w))
                        .expect("coordinator alive");
                }
            });
        }
        drop(result_tx);

        let mut coord = recorder.lane(0);
        for k1 in 0..a1 {
            for tx in &row_txs {
                tx.send(k1).expect("worker alive");
            }
            // Collect until every worker has posted its completion marker.
            let install = coord.start();
            let mut done = 0u32;
            let mut staged: Vec<(u32, u32)> = Vec::new();
            while done < workers {
                let (row, k2, v) = result_rx.recv().expect("workers alive");
                debug_assert_eq!(row, k1, "workers run in row lockstep");
                if k2 == u32::MAX {
                    done += 1;
                } else {
                    staged.push((k2, v));
                }
            }
            // Install the completed row — the "synchronize row k1" step.
            let mut guard = memo.write();
            for (k2, v) in staged {
                guard.set(k1, k2, v);
            }
            drop(guard);
            coord.barrier(install, BarrierKind::RowInstall, k1);
        }
        drop(row_txs); // close channels; workers exit
    });
    memo.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use load_balance::Policy;
    use mcos_core::{srna2, workload};
    use rna_structure::generate;

    #[test]
    fn pool_matches_sequential_stage_one() {
        let s1 = generate::random_structure(64, 1.0, 11);
        let s2 = generate::random_structure(48, 0.8, 12);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        let weights = workload::column_weights(&p1, &p2);
        for workers in [1u32, 2, 3, 8] {
            let a = Policy::Lpt.assign(&weights, workers);
            assert_eq!(stage_one(&p1, &p2, &a, &Recorder::disabled()), reference, "workers {workers}");
        }
    }

    #[test]
    fn pool_handles_empty_structures() {
        let s = rna_structure::ArcStructure::unpaired(6);
        let p = Preprocessed::build(&s);
        let a = Policy::Greedy.assign(&[], 2);
        let memo = stage_one(&p, &p, &a, &Recorder::disabled());
        assert_eq!(memo.rows(), 0);
        assert_eq!(memo.cols(), 0);
    }

    #[test]
    fn pool_with_idle_workers() {
        // More workers than columns: extras receive rows and immediately
        // post completion markers.
        let s = generate::worst_case_nested(3);
        let p = Preprocessed::build(&s);
        let weights = workload::column_weights(&p, &p);
        let a = Policy::Greedy.assign(&weights, 9);
        let reference = srna2::run_preprocessed(&p, &p).memo;
        assert_eq!(stage_one(&p, &p, &a, &Recorder::disabled()), reference);
    }
}

//! The rayon PRNA backend: per-row dynamic scheduling.
//!
//! Instead of the paper's static column ownership, each row's child
//! slices are submitted to a rayon pool and work-stolen dynamically; the
//! implicit join of `par_iter` at the end of the row is the row barrier.
//! `M` is read-shared during the row and written once between rows, so no
//! locking is required at all.
//!
//! This backend is the "dynamic scheduling" arm of the ablation in
//! `mcos-bench`: on uniform worst-case inputs static ownership matches
//! it, while on skewed structures dynamic scheduling absorbs per-row
//! imbalance at the cost of scheduler overhead per task.

use std::sync::atomic::{AtomicU32, Ordering};

use mcos_core::{memo::MemoTable, preprocess::Preprocessed};
use mcos_telemetry::{BarrierKind, Recorder};
use rayon::prelude::*;

use crate::{slice_detail, tabulate_child, SliceScratch};

/// Runs stage one on a dedicated rayon pool of `threads` threads.
pub(crate) fn stage_one(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    recorder: &Recorder,
) -> MemoTable {
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads as usize)
        .build()
        .expect("rayon pool construction");
    let mut memo = MemoTable::zeroed(a1, a2);
    let mut row_buf: Vec<u32> = Vec::with_capacity(a2 as usize);
    let mut coord = recorder.lane(0);

    for k1 in 0..a1 {
        let join = coord.start();
        // Worker lanes restart at 1 every row so a pool participant
        // keeps a stable trace lane regardless of scheduling order.
        let lanes = AtomicU32::new(1);
        pool.install(|| {
            (0..a2)
                .into_par_iter()
                .map_init(
                    || {
                        // ORDERING: the counter only hands out distinct
                        // lane ids for labelling; no memory is published
                        // through it.
                        let lane = lanes.fetch_add(1, Ordering::Relaxed);
                        (recorder.lane(lane), SliceScratch::default())
                    },
                    |(log, scratch), k2| {
                        let span = log.start();
                        let v = tabulate_child(p1, p2, k1, k2, &memo, scratch);
                        log.slice(span, k1, k2, || slice_detail(p1, p2, k1, k2));
                        v
                    },
                )
                .collect_into_vec(&mut row_buf);
        });
        memo.row_mut(k1).copy_from_slice(&row_buf);
        // The coordinator is parked for the whole fork/join; the span is
        // the per-row barrier cost as seen from lane 0.
        coord.barrier(join, BarrierKind::RowJoin, k1);
    }
    memo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    #[test]
    fn rayon_matches_sequential_stage_one() {
        let s1 = generate::random_structure(64, 0.9, 21);
        let s2 = generate::random_structure(60, 1.0, 22);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        for threads in [1u32, 2, 4] {
            assert_eq!(stage_one(&p1, &p2, threads, &Recorder::disabled()), reference, "threads {threads}");
        }
    }

    #[test]
    fn rayon_skewed_structures() {
        let s = generate::skewed_groups(4, 2, 4);
        let p = Preprocessed::build(&s);
        let reference = srna2::run_preprocessed(&p, &p).memo;
        assert_eq!(stage_one(&p, &p, 3, &Recorder::disabled()), reference);
    }
}

//! The per-row dynamic-scheduling backend (historically built on
//! rayon), as an engine composition.
//!
//! [`crate::Backend::RAYON`] = row schedule × shared-rwlock store ×
//! claimed distribution: instead of the paper's static column
//! ownership, each row's child slices are claimed dynamically off a
//! shared cursor by the engine's persistent workers, and the
//! coordinator installs the completed row — the row barrier. The name
//! survives from the rayon `par_iter` implementation this composition
//! replaced (work-stealing and a claim cursor absorb per-row imbalance
//! the same way; the engine's workers are plain scoped threads).
//!
//! This backend is the "dynamic scheduling" arm of the ablation in
//! `mcos-bench`: on uniform worst-case inputs static ownership matches
//! it, while on skewed structures dynamic claiming absorbs per-row
//! imbalance at the cost of scheduler overhead per task.

#[cfg(test)]
mod tests {
    use crate::{prna, Backend, PrnaConfig};
    use load_balance::Policy;
    use mcos_core::srna2;
    use rna_structure::generate;

    fn config(threads: u32) -> PrnaConfig {
        PrnaConfig {
            processors: threads,
            policy: Policy::Greedy,
            backend: Backend::RAYON,
            ..PrnaConfig::default()
        }
    }

    #[test]
    fn rayon_matches_sequential_stage_one() {
        let s1 = generate::random_structure(56, 0.9, 21);
        let s2 = generate::random_structure(44, 1.0, 22);
        let reference = srna2::run(&s1, &s2).memo;
        for threads in [1u32, 2, 4] {
            assert_eq!(
                prna(&s1, &s2, &config(threads)).memo,
                reference,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn rayon_skewed_structures() {
        // Column weights differ wildly; dynamic claiming must still
        // produce the exact table.
        let s = generate::skewed_groups(5, 2, 5);
        let reference = srna2::run(&s, &s).memo;
        assert_eq!(prna(&s, &s, &config(3)).memo, reference);
    }
}

//! Shared-memoization parallel top-down dynamic programming — the
//! approach of Stivala et al., "Lock-free Parallel Dynamic Programming"
//! (JPDC 2010), which the paper discusses as the general-purpose
//! alternative (§II, reference \[8\]).
//!
//! Every thread evaluates the same problem top-down against one shared,
//! lock-free memoization table; parallelism comes from *randomizing* the
//! order in which each thread descends into subproblems, so threads tend
//! to populate different regions of the table. Threads may duplicate
//! work when they race to the same unmemoized subproblem — both compute
//! it (the values agree, so last-write-wins is harmless) — and the
//! paper's critique is precisely that this duplication grows with the
//! thread count. [`TopDownOutcome::duplicated`] measures it.
//!
//! The memoized unit here is the child slice of an arc pair (the same
//! granularity as SRNA1's memo), stored in a table of `AtomicU32`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use mcos_core::{preprocess::Preprocessed, slice};
use mcos_telemetry::Recorder;
use rna_structure::ArcStructure;

/// Sentinel for "not yet memoized".
const EMPTY: u32 = u32::MAX;

/// Result of a shared-memo parallel top-down run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopDownOutcome {
    /// The MCOS score.
    pub score: u32,
    /// Total slice tabulations performed across all threads.
    pub computed_slices: u64,
    /// Distinct subproblems (arc pairs with non-trivial slices plus the
    /// final parent slice).
    pub distinct_slices: u64,
    /// Redundant tabulations: `computed - distinct`. Zero on one thread;
    /// tends to grow with the thread count — the scalability limit the
    /// paper attributes to this approach.
    pub duplicated: u64,
}

/// Deterministic splitmix64, used to give every thread its own
/// subproblem visiting order without pulling in a rand dependency here.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle driven by splitmix64.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

struct Shared<'a> {
    p1: &'a Preprocessed,
    p2: &'a Preprocessed,
    memo: Vec<AtomicU32>,
    cols: usize,
    // ORDERING: both counters are accounting-only and use Relaxed
    // everywhere. That is *exact*, not approximate: `fetch_add` is an
    // atomic read-modify-write, so increments are never lost at any
    // ordering, and the final loads happen after `thread::scope` joins
    // every incrementing thread — the join edge, not the counter
    // ordering, is what makes all increments visible. Exactness of the
    // *values* follows from the memo swap below: per entry, exactly one
    // swap observes EMPTY, so `computed - duplicated` is exactly the
    // number of distinct entries. Tested by
    // `computed_count_is_exact_under_concurrency`.
    computed: AtomicU64,
    duplicated: AtomicU64,
}

impl Shared<'_> {
    /// Ensures the child-slice value of arc pair `(k1, k2)` is memoized,
    /// computing it (and, recursively, its dependencies) if needed.
    /// Races are benign: the recurrence is deterministic, so concurrent
    /// writers store the same value.
    /// `hits` is a plain per-thread tally of fast-path memo hits — kept
    /// off the shared cache lines on purpose, and summed after join.
    fn ensure(&self, k1: u32, k2: u32, grid: &mut Vec<u32>, hits: &mut u64) -> u32 {
        let idx = k1 as usize * self.cols + k2 as usize;
        // ORDERING: Acquire pairs with the AcqRel swap that published
        // the value; the payload is the single u32 itself, so Relaxed
        // would also be sound — Acquire keeps the idiom legible.
        let current = self.memo[idx].load(Ordering::Acquire);
        if current != EMPTY {
            *hits += 1;
            return current;
        }
        // Depth-first: resolve every nested dependency, then tabulate.
        let (lo1, hi1) = self.p1.under_range[k1 as usize];
        let (lo2, hi2) = self.p2.under_range[k2 as usize];
        for c1 in lo1..hi1 {
            for c2 in lo2..hi2 {
                // Recursion populates the memo; the value is re-read
                // during tabulation below. The scratch grid is free to
                // reuse here — this slice's own tabulation only starts
                // after all dependencies resolve.
                self.ensure(c1, c2, grid, hits);
            }
        }
        let v = slice::tabulate_with(self.p1, self.p2, (lo1, hi1), (lo2, hi2), grid, |g1, g2| {
            // ORDERING: Acquire — same published-value pairing as the
            // fast-path load above; the recursive `ensure` calls have
            // already guaranteed every dependency is memoized.
            self.memo[g1 as usize * self.cols + g2 as usize].load(Ordering::Acquire)
        });
        // ORDERING: Relaxed — accounting only; see the field comment on
        // `Shared` for why this is nevertheless exact.
        self.computed.fetch_add(1, Ordering::Relaxed);
        // ORDERING: AcqRel — release publishes `v` to the Acquire loads
        // above; as a read-modify-write, swaps on one entry are totally
        // ordered at any ordering, so exactly one observes EMPTY.
        let prev = self.memo[idx].swap(v, Ordering::AcqRel);
        if prev != EMPTY {
            debug_assert_eq!(prev, v, "deterministic recurrence");
            // ORDERING: Relaxed — accounting only, as above.
            self.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        v
    }
}

/// Runs the shared-memo parallel top-down algorithm with `threads`
/// threads, each descending into the arc pairs in its own random order
/// derived from `seed`.
pub fn parallel_top_down(
    s1: &ArcStructure,
    s2: &ArcStructure,
    threads: u32,
    seed: u64,
) -> TopDownOutcome {
    parallel_top_down_recorded(s1, s2, threads, seed, &Recorder::disabled())
}

/// Like [`parallel_top_down`], reporting memo hit/miss totals to
/// `recorder` (hits: fast-path reads of an already-memoized slice;
/// misses: tabulations, including duplicates). With a disabled recorder
/// this is exactly [`parallel_top_down`].
pub fn parallel_top_down_recorded(
    s1: &ArcStructure,
    s2: &ArcStructure,
    threads: u32,
    seed: u64,
    recorder: &Recorder,
) -> TopDownOutcome {
    assert!(threads > 0, "need at least one thread");
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let shared = Shared {
        p1: &p1,
        p2: &p2,
        memo: (0..a1 as usize * a2 as usize)
            .map(|_| AtomicU32::new(EMPTY))
            .collect(),
        cols: a2 as usize,
        computed: AtomicU64::new(0),
        duplicated: AtomicU64::new(0),
    };

    let hits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let shared = &shared;
                scope.spawn(move || {
                    let mut pairs: Vec<(u32, u32)> = (0..a1)
                        .flat_map(|k1| (0..a2).map(move |k2| (k1, k2)))
                        .collect();
                    shuffle(
                        &mut pairs,
                        seed ^ (t as u64).wrapping_mul(0xA5A5_5A5A_DEAD_BEEF),
                    );
                    let mut grid = Vec::new();
                    let mut hits = 0u64;
                    for (k1, k2) in pairs {
                        shared.ensure(k1, k2, &mut grid, &mut hits);
                    }
                    hits
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("top-down worker panicked"))
            .sum()
    });

    // Final (parent) slice against the fully populated memo.
    let mut grid = Vec::new();
    let score = slice::tabulate_with(
        &p1,
        &p2,
        p1.full_range(),
        p2.full_range(),
        &mut grid,
        // ORDERING: Acquire — published-value pairing with the AcqRel
        // swap in `ensure`; every slice is memoized before this runs.
        |g1, g2| shared.memo[g1 as usize * shared.cols + g2 as usize].load(Ordering::Acquire),
    );
    // ORDERING: Relaxed — `thread::scope` has joined every incrementing
    // thread, so the counts are complete and exact (see `Shared`).
    let computed = shared.computed.load(Ordering::Relaxed) + 1; // + parent
    let duplicated = shared.duplicated.load(Ordering::Relaxed);
    let distinct = a1 as u64 * a2 as u64 + 1;
    debug_assert_eq!(
        computed - duplicated,
        distinct,
        "swap atomicity guarantees exactly one non-duplicate per entry"
    );
    recorder.count_memo(hits, computed);
    TopDownOutcome {
        score,
        computed_slices: computed,
        distinct_slices: distinct,
        duplicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::generate;

    #[test]
    fn matches_sequential_scores() {
        for seed in 0..5 {
            let s1 = generate::random_structure(50, 1.0, seed);
            let s2 = generate::random_structure(44, 0.9, seed + 11);
            let reference = srna2::run(&s1, &s2).score;
            for threads in [1u32, 2, 4] {
                let out = parallel_top_down(&s1, &s2, threads, seed);
                assert_eq!(out.score, reference, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn single_thread_never_duplicates() {
        let s = generate::worst_case_nested(20);
        let out = parallel_top_down(&s, &s, 1, 7);
        assert_eq!(out.duplicated, 0);
        assert_eq!(out.computed_slices, out.distinct_slices);
    }

    #[test]
    fn multi_thread_duplication_is_bounded_and_counted() {
        let s = generate::worst_case_nested(24);
        let out = parallel_top_down(&s, &s, 4, 3);
        assert_eq!(out.score, 24);
        // Duplication can occur but never exceeds (threads-1) x distinct.
        assert!(out.duplicated <= 3 * out.distinct_slices);
        assert_eq!(out.computed_slices - out.duplicated, out.distinct_slices);
    }

    #[test]
    fn computed_count_is_exact_under_concurrency() {
        // The Relaxed counters are exact, not approximate: across seeds
        // and thread counts, computed − duplicated must equal the
        // distinct subproblem count to the digit (fetch_add never loses
        // increments; exactly one swap per entry sees EMPTY).
        let s1 = generate::random_structure(60, 0.9, 2);
        let s2 = generate::random_structure(52, 0.8, 3);
        let distinct = s1.num_arcs() as u64 * s2.num_arcs() as u64 + 1;
        for seed in 0..6 {
            for threads in [2u32, 4, 8] {
                let out = parallel_top_down(&s1, &s2, threads, seed);
                assert_eq!(out.distinct_slices, distinct);
                assert_eq!(
                    out.computed_slices - out.duplicated,
                    out.distinct_slices,
                    "seed {seed} threads {threads}"
                );
                assert!(out.computed_slices >= out.distinct_slices);
            }
        }
    }

    #[test]
    fn deterministic_shuffle() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..50).collect();
        shuffle(&mut c, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_structures() {
        let e = rna_structure::ArcStructure::unpaired(3);
        let out = parallel_top_down(&e, &e, 2, 0);
        assert_eq!(out.score, 0);
    }
}

//! Traced PRNA runs, for dynamic race detection.
//!
//! A traced run is the *same* engine composition as the production
//! backend — same [`Schedule`](crate::engine::Schedule), same
//! [`MemoStore`](crate::engine::MemoStore), same
//! [`Distribution`](crate::engine::Distribution) — with the store
//! wrapped in the [`Tracing`](crate::engine::Tracing) decorator and the
//! engine's trace hooks armed. The decorator records every memo access
//! (write record-then-publish, read gather-then-record) and the engine
//! records every synchronizing edge (fork/join at spawn, arrive
//! record-then-send, leave receive-then-record) into a [`TraceLog`].
//! The vector-clock checker in the `analysis` crate then replays the
//! log and verifies the happens-before claims the production schedule
//! relies on. Because there is no bespoke "traced twin" to drift out of
//! sync, a clean replay is a sound verdict on the schedule the
//! production backend actually runs.
//!
//! The recording discipline is documented in [`mcos_core::trace`].
//!
//! [`wavefront_traced_without_level_barrier`] swaps in a deliberately
//! broken schedule — the first two dependency levels merged into one
//! step — kept as a self-test that the checker has teeth.

use load_balance::Policy;
use mcos_core::memo::MemoTable;
use mcos_core::preprocess::Preprocessed;
use mcos_core::slice;
use mcos_core::trace::{TaskId, TraceLog, PARENT_SLICE};
use mcos_core::workload;
use mcos_telemetry::Recorder;
use rna_structure::ArcStructure;

use crate::engine::{self, TraceHooks};
use crate::{Backend, KernelKind};

/// Result of a traced PRNA run.
#[derive(Debug, Clone)]
pub struct TracedOutcome {
    /// The MCOS score.
    pub score: u32,
    /// The fully synchronized stage-one memo table.
    pub memo: MemoTable,
}

/// Runs a traced PRNA (stage one on `backend`, sequential stage two),
/// recording into `log`. The log may carry a delay hook for
/// interleaving perturbation.
pub fn prna_traced(
    s1: &ArcStructure,
    s2: &ArcStructure,
    backend: Backend,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    prna_traced_preprocessed(&p1, &p2, backend, threads, log)
}

/// [`prna_traced`] over prebuilt preprocessing tables.
pub fn prna_traced_preprocessed(
    p1: &Preprocessed,
    p2: &Preprocessed,
    backend: Backend,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    run_traced(p1, p2, backend, false, threads, log)
}

/// The wavefront schedule with the first two dependency levels merged
/// into a single step — i.e. with one level barrier deliberately
/// skipped. Exists so the race detector can prove it *detects* the
/// resulting happens-before hole (the level-1 slices read level-0
/// entries that no synchronizing edge orders); never use its results.
pub fn wavefront_traced_without_level_barrier(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    run_traced(p1, p2, Backend::WAVEFRONT, true, threads, log)
}

/// Shared body: arm the trace hooks, run stage one through the engine
/// with the store wrapped in [`engine::Tracing`], then the sequential
/// stage two with its parent-slice reads recorded.
fn run_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    backend: Backend,
    broken_wavefront: bool,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    assert!(threads > 0, "need at least one thread");
    let root = log.alloc_task();
    let base = log.alloc_tasks(threads);
    let hooks = TraceHooks {
        log,
        root,
        tasks: (0..threads).map(|w| base + w).collect(),
    };
    let weights = workload::column_weights(p1, p2);
    let assignment = Policy::Greedy.assign(&weights, threads);
    // Traced runs exercise the synchronization, not the inner loop;
    // they run the production default kernel (all kernels share the
    // same gather/publish pattern, so the recorded access set is
    // kernel-independent).
    let memo = engine::dispatch_traced(
        backend,
        KernelKind::default(),
        broken_wavefront,
        p1,
        p2,
        &assignment,
        &Recorder::disabled(),
        &hooks,
    );
    finish_stage_two(p1, p2, memo, log, root)
}

/// Sequential stage two with parent-slice reads recorded against
/// [`PARENT_SLICE`] (gather-then-record; a `perturb` before the copy
/// lets injected delays land between a publisher's store and this
/// load).
fn finish_stage_two(
    p1: &Preprocessed,
    p2: &Preprocessed,
    memo: MemoTable,
    log: &TraceLog,
    root: TaskId,
) -> TracedOutcome {
    let (mut grid, mut d2_row) = (Vec::new(), Vec::new());
    let (lo2, hi2) = p2.full_range();
    let score = slice::tabulate_with_rows(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        &mut grid,
        &mut d2_row,
        |g1, buf| {
            log.perturb();
            buf.copy_from_slice(&memo.row(g1)[lo2 as usize..hi2 as usize]);
            for c in lo2..hi2 {
                log.read(root, PARENT_SLICE, g1, c);
            }
        },
    );
    TracedOutcome { score, memo }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use mcos_core::trace::TraceEvent;
    use rna_structure::generate;

    #[test]
    fn traced_backends_match_srna2() {
        let s1 = generate::random_structure(48, 0.9, 5);
        let s2 = generate::random_structure(44, 0.8, 6);
        let reference = srna2::run(&s1, &s2);
        for backend in Backend::ALL {
            for threads in [1u32, 3] {
                let log = TraceLog::new();
                let out = prna_traced(&s1, &s2, backend, threads, &log);
                assert_eq!(
                    out.score,
                    reference.score,
                    "{} threads {threads}",
                    backend.name()
                );
                assert_eq!(
                    out.memo,
                    reference.memo,
                    "memo mismatch: {} threads {threads}",
                    backend.name()
                );
                assert!(!log.is_empty(), "{} recorded nothing", backend.name());
            }
        }
    }

    #[test]
    fn traced_run_records_every_logical_write_once() {
        let s = generate::random_structure(40, 0.9, 9);
        let p = Preprocessed::build(&s);
        let pairs = (p.num_arcs() * p.num_arcs()) as usize;
        for backend in Backend::ALL {
            let log = TraceLog::new();
            let _ = prna_traced(&s, &s, backend, 2, &log);
            let writes = log
                .take_events()
                .into_iter()
                .filter(|e| matches!(e, TraceEvent::Write { .. }))
                .count();
            assert_eq!(writes, pairs, "{}", backend.name());
        }
    }

    #[test]
    fn traced_empty_structures() {
        let e = ArcStructure::unpaired(5);
        for backend in Backend::ALL {
            let log = TraceLog::new();
            let out = prna_traced(&e, &e, backend, 2, &log);
            assert_eq!(out.score, 0, "{}", backend.name());
        }
    }

    #[test]
    fn broken_wavefront_still_completes() {
        // The deliberately broken schedule must still terminate and
        // record a full write set (the *checker* is what flags it).
        let s = generate::worst_case_nested(6);
        let p = Preprocessed::build(&s);
        let log = TraceLog::new();
        let out = wavefront_traced_without_level_barrier(&p, &p, 2, &log);
        assert_eq!(out.memo.rows(), 6);
        let writes = log
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::Write { .. }))
            .count();
        assert_eq!(writes, 36);
    }
}

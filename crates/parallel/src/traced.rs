//! Traced twins of the stage-one backends, for dynamic race detection.
//!
//! Each backend here re-runs the *same schedule* as its production
//! counterpart — same channel protocol as [`crate::Backend::WorkerPool`],
//! same per-row dynamic claiming as [`crate::Backend::Rayon`] (the rayon
//! shim's scheduler is itself an atomic-cursor chunk claimer over scoped
//! threads, which is exactly what these executors hand-roll), same
//! level buckets and settled snapshot as [`crate::Backend::Wavefront`],
//! and the same `mpi-sim` request/assign protocol as
//! [`crate::manager_worker`] — while recording every memo access and
//! every synchronizing edge into a [`TraceLog`]. The vector-clock
//! checker in the `analysis` crate then replays the log and verifies
//! the happens-before claims the production backends rely on.
//!
//! The recording discipline (write record-then-publish, read
//! gather-then-record, barrier arrive record-then-send / leave
//! receive-then-record) is documented in [`mcos_core::trace`]; every
//! executor below follows it, so a clean replay is a sound verdict on
//! this schedule's dependency structure.
//!
//! [`wavefront_traced_without_level_barrier`] is a deliberately broken
//! schedule — it merges the first two dependency levels into one
//! fork — kept as a self-test that the checker has teeth.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::channel::{bounded, Sender};
use load_balance::Policy;
use mcos_core::memo::{AtomicMemoTable, MemoTable};
use mcos_core::preprocess::Preprocessed;
use mcos_core::slice;
use mcos_core::trace::{TaskId, TraceLog, TracingMemoTable, PARENT_SLICE};
use mcos_core::workload;
use mpi_sim::Communicator;
use parking_lot::RwLock;
use rna_structure::ArcStructure;

use crate::{manager_worker, wavefront, SliceScratch};

/// The stage-one schedules the race detector exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracedBackend {
    /// Persistent worker pool, static column ownership, per-row
    /// completion-marker barrier (twin of [`crate::Backend::WorkerPool`]).
    WorkerPool,
    /// Per-row dynamic column claiming with a fork/join per row (twin
    /// of [`crate::Backend::Rayon`]).
    Rayon,
    /// Dependency-level wavefront over the atomic memo table with a
    /// fork/join per level (twin of [`crate::Backend::Wavefront`]).
    Wavefront,
    /// Dedicated manager rank handing out columns over `mpi-sim`, row
    /// allreduce barrier (twin of [`crate::manager_worker`]).
    ManagerWorker,
}

impl TracedBackend {
    /// All traced backends, for detector sweeps.
    pub const ALL: [TracedBackend; 4] = [
        TracedBackend::WorkerPool,
        TracedBackend::Rayon,
        TracedBackend::Wavefront,
        TracedBackend::ManagerWorker,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            TracedBackend::WorkerPool => "worker-pool",
            TracedBackend::Rayon => "rayon",
            TracedBackend::Wavefront => "wavefront",
            TracedBackend::ManagerWorker => "manager-worker",
        }
    }
}

/// Result of a traced PRNA run.
#[derive(Debug, Clone)]
pub struct TracedOutcome {
    /// The MCOS score.
    pub score: u32,
    /// The fully synchronized stage-one memo table.
    pub memo: MemoTable,
}

/// Per-slice tracing context: which task is reading, on behalf of which
/// slice.
#[derive(Clone, Copy)]
struct Tr<'a> {
    log: &'a TraceLog,
    task: TaskId,
    owner: (u32, u32),
}

/// Row-hoisted tabulation over arbitrary ranges with every `d₂` gather
/// recorded as a `Read` (gather-then-record; a `perturb` before the
/// copy lets injected delays land between a publisher's store and this
/// load).
fn tabulate_ranges_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    range1: slice::ArcRange,
    range2: slice::ArcRange,
    memo: &MemoTable,
    scratch: &mut SliceScratch,
    tr: Tr<'_>,
) -> u32 {
    let (lo2, hi2) = range2;
    slice::tabulate_with_rows(
        p1,
        p2,
        range1,
        range2,
        &mut scratch.grid,
        &mut scratch.d2_row,
        |g1, buf| {
            tr.log.perturb();
            buf.copy_from_slice(&memo.row(g1)[lo2 as usize..hi2 as usize]);
            for c in lo2..hi2 {
                tr.log.read(tr.task, tr.owner, g1, c);
            }
        },
    )
}

/// Traced twin of [`crate::tabulate_child`].
#[allow(clippy::too_many_arguments)] // mirrors `tabulate_child` plus the (log, task) pair
fn tabulate_child_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    k1: u32,
    k2: u32,
    memo: &MemoTable,
    scratch: &mut SliceScratch,
    log: &TraceLog,
    task: TaskId,
) -> u32 {
    tabulate_ranges_traced(
        p1,
        p2,
        p1.under_range[k1 as usize],
        p2.under_range[k2 as usize],
        memo,
        scratch,
        Tr {
            log,
            task,
            owner: (k1, k2),
        },
    )
}

/// Runs a traced PRNA (stage one on `backend`, sequential stage two),
/// recording into `log`. The log may carry a delay hook for
/// interleaving perturbation.
pub fn prna_traced(
    s1: &ArcStructure,
    s2: &ArcStructure,
    backend: TracedBackend,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    let p1 = Preprocessed::build(s1);
    let p2 = Preprocessed::build(s2);
    prna_traced_preprocessed(&p1, &p2, backend, threads, log)
}

/// [`prna_traced`] over prebuilt preprocessing tables.
pub fn prna_traced_preprocessed(
    p1: &Preprocessed,
    p2: &Preprocessed,
    backend: TracedBackend,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    assert!(threads > 0, "need at least one thread");
    let root = log.alloc_task();
    let memo = match backend {
        TracedBackend::WorkerPool => pool_traced(p1, p2, threads, log, root),
        TracedBackend::Rayon => rayon_traced(p1, p2, threads, log, root),
        TracedBackend::Wavefront => wavefront_traced(p1, p2, threads, log, root, false),
        TracedBackend::ManagerWorker => manager_worker_traced(p1, p2, threads, log, root),
    };
    finish_stage_two(p1, p2, memo, log, root)
}

/// The wavefront schedule with the first two dependency levels merged
/// into a single fork — i.e. with one level barrier deliberately
/// skipped. Exists so the race detector can prove it *detects* the
/// resulting happens-before hole (the level-1 slices read level-0
/// entries that no synchronizing edge orders); never use its results.
pub fn wavefront_traced_without_level_barrier(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    log: &TraceLog,
) -> TracedOutcome {
    assert!(threads > 0, "need at least one thread");
    let root = log.alloc_task();
    let memo = wavefront_traced(p1, p2, threads, log, root, true);
    finish_stage_two(p1, p2, memo, log, root)
}

/// Sequential stage two with parent-slice reads recorded against
/// [`PARENT_SLICE`].
fn finish_stage_two(
    p1: &Preprocessed,
    p2: &Preprocessed,
    memo: MemoTable,
    log: &TraceLog,
    root: TaskId,
) -> TracedOutcome {
    let mut scratch = SliceScratch::default();
    let score = tabulate_ranges_traced(
        p1,
        p2,
        p1.full_range(),
        p2.full_range(),
        &memo,
        &mut scratch,
        Tr {
            log,
            task: root,
            owner: PARENT_SLICE,
        },
    );
    TracedOutcome { score, memo }
}

/// Traced twin of `wavefront::stage_one`. With `merge_first_levels` the
/// first two non-empty level buckets run under one fork (the broken
/// schedule of [`wavefront_traced_without_level_barrier`]).
fn wavefront_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    log: &TraceLog,
    root: TaskId,
    merge_first_levels: bool,
) -> MemoTable {
    let atomic = AtomicMemoTable::zeroed(p1.num_arcs(), p2.num_arcs());
    let mut settled = MemoTable::zeroed(p1.num_arcs(), p2.num_arcs());
    let mut buckets = wavefront::level_buckets(p1, p2);
    if merge_first_levels && buckets.len() >= 2 {
        let second = buckets.remove(1);
        buckets[0].extend(second);
    }
    let traced = TracingMemoTable::new(&atomic, log);
    for mut bucket in buckets {
        // Same LPT order as the production wavefront.
        bucket.sort_by_key(|&(k1, k2)| {
            std::cmp::Reverse(p1.under_count(k1) as u64 * p2.under_count(k2) as u64)
        });
        let workers = (threads as usize).min(bucket.len()).max(1) as u32;
        let base = log.alloc_tasks(workers);
        for i in 0..workers {
            log.fork(root, base + i);
        }
        // Dynamic claiming, as in the rayon shim's scheduler.
        let cursor = AtomicUsize::new(0);
        let bucket_ref = &bucket;
        let settled_ref = &settled;
        let traced_ref = &traced;
        let cursor_ref = &cursor;
        std::thread::scope(|s| {
            for i in 0..workers {
                let task = base + i;
                s.spawn(move || {
                    let mut scratch = SliceScratch::default();
                    loop {
                        // ORDERING: Relaxed — the cursor only has to hand
                        // out each index once; slice independence within
                        // a level means no ordering rides on the claim.
                        let idx = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if idx >= bucket_ref.len() {
                            break;
                        }
                        let (k1, k2) = bucket_ref[idx];
                        let v = tabulate_child_traced(
                            p1,
                            p2,
                            k1,
                            k2,
                            settled_ref,
                            &mut scratch,
                            log,
                            task,
                        );
                        traced_ref.set(task, k1, k2, v);
                    }
                });
            }
        });
        for i in 0..workers {
            log.join(root, base + i);
        }
        // Fold the joined level into the snapshot; these coordinator
        // reads are recorded (owner = parent sentinel), the snapshot
        // stores are replication and are not.
        for &(k1, k2) in &bucket {
            settled.set(k1, k2, traced.get(root, PARENT_SLICE, k1, k2));
        }
    }
    atomic.into_inner()
}

/// Traced twin of `rayon_backend::stage_one`: per-row fork of `threads`
/// claimer tasks, join at end of row, coordinator installs the row.
fn rayon_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    log: &TraceLog,
    root: TaskId,
) -> MemoTable {
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let mut memo = MemoTable::zeroed(a1, a2);
    for k1 in 0..a1 {
        let workers = threads.min(a2).max(1);
        let base = log.alloc_tasks(workers);
        for i in 0..workers {
            log.fork(root, base + i);
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::with_capacity(a2 as usize));
        let memo_ref = &memo;
        let cursor_ref = &cursor;
        let results_ref = &results;
        std::thread::scope(|s| {
            for i in 0..workers {
                let task = base + i;
                s.spawn(move || {
                    let mut scratch = SliceScratch::default();
                    let mut local: Vec<(u32, u32)> = Vec::new();
                    loop {
                        // ORDERING: Relaxed — claim counter only; see the
                        // wavefront cursor above.
                        let k2 = cursor_ref.fetch_add(1, Ordering::Relaxed) as u32;
                        if k2 >= a2 {
                            break;
                        }
                        let v = tabulate_child_traced(
                            p1,
                            p2,
                            k1,
                            k2,
                            memo_ref,
                            &mut scratch,
                            log,
                            task,
                        );
                        // Record-then-publish: publication is the
                        // coordinator's install after the row join.
                        log.write(task, k1, k2);
                        local.push((k2, v));
                    }
                    results_ref
                        .lock()
                        .expect("no panics hold the results lock")
                        .extend(local);
                });
            }
        });
        for i in 0..workers {
            log.join(root, base + i);
        }
        let staged = std::mem::take(&mut *results.lock().expect("workers joined"));
        for (k2, v) in staged {
            memo.set(k1, k2, v); // replication of the recorded writes
        }
    }
    memo
}

/// Traced twin of `pool::stage_one`: persistent workers, per-worker go
/// channels, shared result channel with completion markers, the memo
/// behind a readers-writer lock. Row `k1` is barrier id `k1`.
fn pool_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    log: &TraceLog,
    root: TaskId,
) -> MemoTable {
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let weights = workload::column_weights(p1, p2);
    let assignment = Policy::Greedy.assign(&weights, threads);
    let workers = assignment.processors();
    let memo = RwLock::new(MemoTable::zeroed(a1, a2));
    let base = log.alloc_tasks(workers);

    std::thread::scope(|scope| {
        let (result_tx, result_rx) = bounded::<(u32, u32, u32)>(a2 as usize + 1);
        let mut row_txs: Vec<Sender<u32>> = Vec::with_capacity(workers as usize);
        for w in 0..workers {
            let (tx, rx) = bounded::<u32>(1);
            row_txs.push(tx);
            let result_tx = result_tx.clone();
            let my_columns: Vec<u32> = (0..a2)
                .filter(|&k2| assignment.owner[k2 as usize] == w)
                .collect();
            let memo = &memo;
            let task = base + w;
            log.fork(root, task);
            scope.spawn(move || {
                let mut scratch = SliceScratch::default();
                let mut prev_row: Option<u32> = None;
                while let Ok(k1) = rx.recv() {
                    // Receive-then-record: the go signal for this row is
                    // what releases the previous row's barrier.
                    if let Some(prev) = prev_row {
                        log.leave(task, prev);
                    }
                    let guard = memo.read();
                    for &k2 in &my_columns {
                        let v =
                            tabulate_child_traced(p1, p2, k1, k2, &guard, &mut scratch, log, task);
                        // Record-then-publish: publication is the result
                        // send the coordinator installs from.
                        log.write(task, k1, k2);
                        result_tx.send((k1, k2, v)).expect("coordinator alive");
                    }
                    drop(guard);
                    // Record-then-send: the completion marker is this
                    // task's arrival at the row barrier.
                    log.arrive(task, k1);
                    result_tx
                        .send((k1, u32::MAX, w))
                        .expect("coordinator alive");
                    prev_row = Some(k1);
                }
            });
        }
        drop(result_tx);

        for k1 in 0..a1 {
            for tx in &row_txs {
                tx.send(k1).expect("worker alive");
            }
            let mut done = 0u32;
            let mut staged: Vec<(u32, u32)> = Vec::new();
            while done < workers {
                let (row, k2, v) = result_rx.recv().expect("workers alive");
                debug_assert_eq!(row, k1, "workers run in row lockstep");
                if k2 == u32::MAX {
                    done += 1;
                } else {
                    staged.push((k2, v));
                }
            }
            let mut guard = memo.write();
            for (k2, v) in staged {
                guard.set(k1, k2, v); // replication of the recorded writes
            }
        }
        drop(row_txs);
    });
    for w in 0..workers {
        log.join(root, base + w);
    }
    memo.into_inner()
}

/// Traced twin of `manager_worker::stage_one` with `threads` workers
/// plus the dedicated manager rank. The per-row allreduce is recorded
/// as barrier `k1`: no rank's allreduce returns before every rank has
/// contributed, so arrive-before-allreduce / leave-after-allreduce is
/// the faithful edge set.
fn manager_worker_traced(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    log: &TraceLog,
    root: TaskId,
) -> MemoTable {
    let ranks = threads + 1;
    let a1 = p1.num_arcs();
    let a2 = p2.num_arcs();
    let weights = workload::column_weights(p1, p2);
    let mut order: Vec<u32> = (0..a2).collect();
    order.sort_by_key(|&k2| std::cmp::Reverse(weights[k2 as usize]));
    let order = &order;

    let base = log.alloc_tasks(ranks);
    for r in 0..ranks {
        log.fork(root, base + r);
    }
    let mut tables = mpi_sim::run(ranks, |mut comm: Communicator<Vec<u32>>| {
        let rank = comm.rank();
        let task = base + rank;
        let mut memo = MemoTable::zeroed(a1, a2);
        let mut scratch = SliceScratch::default();
        for k1 in 0..a1 {
            if rank == 0 {
                manager_worker::manage_row(&mut comm, order, ranks - 1);
            } else {
                // Worker side of the request/assign protocol, with the
                // replica accesses recorded.
                loop {
                    comm.send(0, manager_worker::TAG_REQUEST, vec![]);
                    let assignment = comm.recv(0, manager_worker::TAG_ASSIGN);
                    match assignment.first() {
                        Some(&k2) => {
                            let v = tabulate_child_traced(
                                p1,
                                p2,
                                k1,
                                k2,
                                &memo,
                                &mut scratch,
                                log,
                                task,
                            );
                            // Record-then-publish: publication is the
                            // row allreduce below.
                            log.write(task, k1, k2);
                            memo.set(k1, k2, v);
                        }
                        None => break,
                    }
                }
            }
            // Record-then-send / receive-then-record around the
            // allreduce (a barrier: it cannot return anywhere before
            // every rank has entered).
            log.arrive(task, k1);
            let merged = comm.allreduce(memo.row(k1).to_vec(), |mut acc, other| {
                for (x, y) in acc.iter_mut().zip(&other) {
                    *x = (*x).max(*y);
                }
                acc
            });
            log.leave(task, k1);
            memo.row_mut(k1).copy_from_slice(&merged); // replication
        }
        memo
    });
    for r in 0..ranks {
        log.join(root, base + r);
    }
    tables.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use mcos_core::trace::TraceEvent;
    use rna_structure::generate;

    #[test]
    fn traced_backends_match_srna2() {
        let s1 = generate::random_structure(48, 0.9, 5);
        let s2 = generate::random_structure(44, 0.8, 6);
        let reference = srna2::run(&s1, &s2);
        for backend in TracedBackend::ALL {
            for threads in [1u32, 3] {
                let log = TraceLog::new();
                let out = prna_traced(&s1, &s2, backend, threads, &log);
                assert_eq!(
                    out.score,
                    reference.score,
                    "{} threads {threads}",
                    backend.name()
                );
                assert_eq!(
                    out.memo,
                    reference.memo,
                    "memo mismatch: {} threads {threads}",
                    backend.name()
                );
                assert!(!log.is_empty(), "{} recorded nothing", backend.name());
            }
        }
    }

    #[test]
    fn traced_run_records_every_logical_write_once() {
        let s = generate::random_structure(40, 0.9, 9);
        let p = Preprocessed::build(&s);
        let pairs = (p.num_arcs() * p.num_arcs()) as usize;
        for backend in TracedBackend::ALL {
            let log = TraceLog::new();
            let _ = prna_traced(&s, &s, backend, 2, &log);
            let writes = log
                .take_events()
                .into_iter()
                .filter(|e| matches!(e, TraceEvent::Write { .. }))
                .count();
            assert_eq!(writes, pairs, "{}", backend.name());
        }
    }

    #[test]
    fn traced_empty_structures() {
        let e = ArcStructure::unpaired(5);
        for backend in TracedBackend::ALL {
            let log = TraceLog::new();
            let out = prna_traced(&e, &e, backend, 2, &log);
            assert_eq!(out.score, 0, "{}", backend.name());
        }
    }

    #[test]
    fn broken_wavefront_still_completes() {
        // The deliberately broken schedule must still terminate and
        // record a full write set (the *checker* is what flags it).
        let s = generate::worst_case_nested(6);
        let p = Preprocessed::build(&s);
        let log = TraceLog::new();
        let out = wavefront_traced_without_level_barrier(&p, &p, 2, &log);
        assert_eq!(out.memo.rows(), 6);
        let writes = log
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::Write { .. }))
            .count();
        assert_eq!(writes, 36);
    }
}

//! Dependency-level wavefront scheduling of stage one.
//!
//! Every row-synchronized backend inherits the paper's schedule: tabulate
//! row `k1`, barrier, tabulate row `k1+1`, … — `A₁` synchronization
//! points, one per arc of `S₁`. That schedule is *sufficient* for
//! correctness but far from *necessary*: slice `(k1, k2)` reads only the
//! memo entries of arc pairs `(c1, c2)` with `c1` strictly nested under
//! `k1` **and** `c2` strictly nested under `k2` (the `d₂` dependency —
//! see `under_range` in preprocessing). Rows encode the first half of
//! that condition conservatively (nested ⇒ earlier right endpoint ⇒
//! earlier row) and ignore the second half entirely.
//!
//! The wavefront schedule uses the dependency structure itself. Define
//!
//! ```text
//! level(k1, k2) = max(depth₁(k1), depth₂(k2))
//! ```
//!
//! where `depth` is the arc nesting depth precomputed in
//! [`Preprocessed::build`](mcos_core::preprocess::Preprocessed) (hairpins
//! are 0). **Along every dependency edge the level strictly decreases**:
//! if `(c1, c2)` is read by `(k1, k2)` then `c1` is strictly under `k1`
//! and `c2` strictly under `k2`, so `depth₁(c1) < depth₁(k1)` and
//! `depth₂(c2) < depth₂(k2)`, hence
//! `max(depth₁(c1), depth₂(c2)) < max(depth₁(k1), depth₂(k2))`. All
//! slices of one level are therefore mutually independent and may run
//! concurrently once every lower level has completed.
//!
//! The executor materializes this directly: slices are bucketed by level
//! ([`level_buckets`]), each bucket fans out over a rayon pool against a
//! lock-free [`AtomicMemoTable`], and the only synchronization is the
//! fork/join around each bucket — `max_depth + 1` barriers total instead
//! of `A₁`. On a chain of `h` hairpin groups the row schedule pays `A₁`
//! barriers for a dependency graph that is only `stem_depth` levels deep;
//! on the fully nested worst case (`depth(k) = k`) the two schedules
//! coincide and wavefront costs nothing extra.
//!
//! Two tables carry the schedule. Workers publish results into a
//! lock-free [`AtomicMemoTable`] with `Relaxed` stores — every slice
//! writes a distinct entry, so a whole level writes concurrently with no
//! locking at all. Reads, however, never target the atomic table: a
//! slice only depends on *settled* levels, so workers read from a plain
//! [`MemoTable`] snapshot that the coordinator refreshes (one `Relaxed`
//! load per just-finished slice) after each level joins. This keeps the
//! hot `d₂` row gather a plain `copy_from_slice` — the same memcpy the
//! row-barrier backends enjoy — instead of per-element atomic loads,
//! which the compiler may not vectorize and which measurably lag under
//! the memory-bandwidth pressure of high thread counts. The pool join
//! between buckets is the only synchronization: join is a synchronizing
//! operation, so every level-`l` store *happens-before* the coordinator's
//! snapshot update and every level-`l+1` read.

use std::sync::atomic::{AtomicU32, Ordering};

use mcos_core::memo::{AtomicMemoTable, MemoTable};
use mcos_core::preprocess::Preprocessed;
use mcos_telemetry::{BarrierKind, Recorder};
use rayon::prelude::*;

/// Groups all child slices (arc pairs) by scheduling level:
/// `buckets[l]` holds every pair `(k1, k2)` with
/// `max(depth₁(k1), depth₂(k2)) == l`. Returns an empty vector when
/// either structure has no arcs (stage one is then empty). When both
/// have arcs, every bucket `0..=max_depth` is non-empty, so
/// `buckets.len()` is exactly the number of synchronization points the
/// wavefront schedule pays.
pub fn level_buckets(p1: &Preprocessed, p2: &Preprocessed) -> Vec<Vec<(u32, u32)>> {
    let (d1, d2) = match (p1.max_depth(), p2.max_depth()) {
        (Some(d1), Some(d2)) => (d1, d2),
        _ => return Vec::new(),
    };
    let mut buckets = vec![Vec::new(); d1.max(d2) as usize + 1];
    for k1 in 0..p1.num_arcs() {
        let l1 = p1.level_of(k1);
        for k2 in 0..p2.num_arcs() {
            let level = l1.max(p2.level_of(k2));
            buckets[level as usize].push((k1, k2));
        }
    }
    buckets
}

/// Number of synchronization points the wavefront schedule pays for this
/// structure pair (`max(max_depth₁, max_depth₂) + 1`, or 0 without
/// arcs). The row schedules pay `A₁` for the same work.
pub fn num_levels(p1: &Preprocessed, p2: &Preprocessed) -> u32 {
    match (p1.max_depth(), p2.max_depth()) {
        (Some(d1), Some(d2)) => d1.max(d2) + 1,
        _ => 0,
    }
}

/// Runs stage one level by level on a rayon pool of `threads` threads.
pub(crate) fn stage_one(
    p1: &Preprocessed,
    p2: &Preprocessed,
    threads: u32,
    recorder: &Recorder,
) -> MemoTable {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads as usize)
        .build()
        .expect("rayon pool construction");
    let memo = AtomicMemoTable::zeroed(p1.num_arcs(), p2.num_arcs());
    // Snapshot of every settled level; what the workers actually read.
    // Trailing (unwritten) entries are zero in both tables, and the
    // kernel only ever reads strictly-lower levels, so the snapshot is
    // always exact where it matters.
    let mut settled = MemoTable::zeroed(p1.num_arcs(), p2.num_arcs());
    let mut coord = recorder.lane(0);

    for (level, mut bucket) in level_buckets(p1, p2).into_iter().enumerate() {
        // Largest slices first (LPT order): a level's work is often
        // dominated by a few deep pairs, and scheduling those before the
        // swarm of small ones keeps the join from waiting on a straggler
        // that started last.
        bucket.sort_by_key(|&(k1, k2)| {
            std::cmp::Reverse(p1.under_count(k1) as u64 * p2.under_count(k2) as u64)
        });
        // All slices of one level: independent of each other, dependent
        // only on already-joined lower levels (read via `settled`).
        let settled_ref = &settled;
        let join = coord.start();
        // Worker lanes restart at 1 every level so a pool participant
        // keeps a stable trace lane regardless of scheduling order.
        let lanes = AtomicU32::new(1);
        pool.install(|| {
            bucket.par_iter().for_each_init(
                || {
                    // ORDERING: the counter only hands out distinct lane
                    // ids for labelling; no memory is published through
                    // it.
                    let lane = lanes.fetch_add(1, Ordering::Relaxed);
                    (recorder.lane(lane), crate::SliceScratch::default())
                },
                |(log, scratch), &(k1, k2)| {
                    let span = log.start();
                    let v = crate::tabulate_child(p1, p2, k1, k2, settled_ref, scratch);
                    memo.set(k1, k2, v);
                    log.slice(span, k1, k2, || crate::slice_detail(p1, p2, k1, k2));
                },
            );
        });
        // The join above settles this level: fold it into the snapshot
        // (O(bucket) — over the whole run this copies each entry once).
        for &(k1, k2) in &bucket {
            settled.set(k1, k2, memo.get(k1, k2));
        }
        recorder.count_settled_reads(bucket.len() as u64);
        // The coordinator is parked for the whole fork/join plus the
        // snapshot fold; the span is the per-level barrier cost.
        coord.barrier(join, BarrierKind::LevelJoin, level as u32);
    }
    memo.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcos_core::srna2;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    #[test]
    fn buckets_partition_all_pairs_by_level() {
        let s1 = generate::random_structure(60, 0.9, 3);
        let s2 = generate::random_structure(50, 0.8, 4);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let buckets = level_buckets(&p1, &p2);
        assert_eq!(buckets.len(), num_levels(&p1, &p2) as usize);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, (p1.num_arcs() * p2.num_arcs()) as usize);
        for (l, bucket) in buckets.iter().enumerate() {
            assert!(!bucket.is_empty(), "level {l} empty");
            for &(k1, k2) in bucket {
                assert_eq!(p1.level_of(k1).max(p2.level_of(k2)), l as u32);
            }
        }
    }

    #[test]
    fn dependencies_strictly_drop_levels() {
        // The load-bearing invariant, checked against under_range itself.
        let s = generate::rrna_like(
            &generate::RrnaConfig {
                len: 200,
                arcs: 40,
                mean_stem: 5,
                nest_bias: 0.6,
            },
            17,
        );
        let p = Preprocessed::build(&s);
        for k1 in 0..p.num_arcs() {
            let (lo1, hi1) = p.under_range[k1 as usize];
            for k2 in 0..p.num_arcs() {
                let (lo2, hi2) = p.under_range[k2 as usize];
                let level = p.level_of(k1).max(p.level_of(k2));
                for c1 in lo1..hi1 {
                    for c2 in lo2..hi2 {
                        assert!(p.level_of(c1).max(p.level_of(c2)) < level);
                    }
                }
            }
        }
    }

    #[test]
    fn hairpin_chain_has_few_levels() {
        // 20 hairpin groups of stem depth 3: rows = 60, levels = 3.
        let s = generate::hairpin_chain(20, 3, 2);
        let p = Preprocessed::build(&s);
        assert_eq!(p.num_arcs(), 60);
        assert_eq!(num_levels(&p, &p), 3);
    }

    #[test]
    fn fully_nested_levels_equal_rows() {
        let s = generate::worst_case_nested(12);
        let p = Preprocessed::build(&s);
        assert_eq!(num_levels(&p, &p), 12);
    }

    #[test]
    fn wavefront_matches_sequential_stage_one() {
        let s1 = generate::random_structure(64, 0.9, 31);
        let s2 = generate::random_structure(60, 1.0, 32);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let reference = srna2::run_preprocessed(&p1, &p2).memo;
        for threads in [1u32, 2, 4, 8] {
            assert_eq!(stage_one(&p1, &p2, threads, &Recorder::disabled()), reference, "threads {threads}");
        }
    }

    #[test]
    fn wavefront_skewed_and_chained_structures() {
        for s in [
            generate::skewed_groups(4, 2, 4),
            generate::hairpin_chain(10, 4, 3),
        ] {
            let p = Preprocessed::build(&s);
            let reference = srna2::run_preprocessed(&p, &p).memo;
            assert_eq!(stage_one(&p, &p, 4, &Recorder::disabled()), reference);
        }
    }

    #[test]
    fn wavefront_empty_structures() {
        let p = Preprocessed::build(&dot_bracket::parse("....").unwrap());
        assert!(level_buckets(&p, &p).is_empty());
        assert_eq!(num_levels(&p, &p), 0);
        let memo = stage_one(&p, &p, 4, &Recorder::disabled());
        assert_eq!(memo.rows(), 0);
    }
}

//! Dependency-level wavefront scheduling of stage one.
//!
//! Every row-synchronized backend inherits the paper's schedule: tabulate
//! row `k1`, barrier, tabulate row `k1+1`, … — `A₁` synchronization
//! points, one per arc of `S₁`. That schedule is *sufficient* for
//! correctness but far from *necessary*: slice `(k1, k2)` reads only the
//! memo entries of arc pairs `(c1, c2)` with `c1` strictly nested under
//! `k1` **and** `c2` strictly nested under `k2` (the `d₂` dependency —
//! see `under_range` in preprocessing). Rows encode the first half of
//! that condition conservatively (nested ⇒ earlier right endpoint ⇒
//! earlier row) and ignore the second half entirely.
//!
//! The wavefront schedule uses the dependency structure itself. Define
//!
//! ```text
//! level(k1, k2) = max(depth₁(k1), depth₂(k2))
//! ```
//!
//! where `depth` is the arc nesting depth precomputed in
//! [`Preprocessed::build`](mcos_core::preprocess::Preprocessed) (hairpins
//! are 0). **Along every dependency edge the level strictly decreases**:
//! if `(c1, c2)` is read by `(k1, k2)` then `c1` is strictly under `k1`
//! and `c2` strictly under `k2`, so `depth₁(c1) < depth₁(k1)` and
//! `depth₂(c2) < depth₂(k2)`, hence
//! `max(depth₁(c1), depth₂(c2)) < max(depth₁(k1), depth₂(k2))`. All
//! slices of one level are therefore mutually independent and may run
//! concurrently once every lower level has completed — `max_depth + 1`
//! synchronization points instead of `A₁`. On a chain of `h` hairpin
//! groups the row schedule pays `A₁` barriers for a dependency graph
//! that is only `stem_depth` levels deep; on the fully nested worst case
//! (`depth(k) = k`) the two schedules coincide and wavefront costs
//! nothing extra.
//!
//! This module owns the level *bucketing* ([`level_buckets`],
//! [`num_levels`]); the execution itself is the engine composition
//! [`crate::Backend::WAVEFRONT`] = wavefront schedule × lock-free
//! store × claimed distribution
//! ([`LevelWavefront`](crate::engine::LevelWavefront) ×
//! [`LockFreeAtomic`](crate::engine::LockFreeAtomic)): workers publish
//! into the atomic table with `Relaxed` stores (every slice writes a
//! distinct entry), read from a plain settled snapshot — keeping the
//! hot `d₂` gather a plain `copy_from_slice` — and the coordinator
//! folds each level into the snapshot after it joins.

use mcos_core::preprocess::Preprocessed;

/// Groups all child slices (arc pairs) by scheduling level:
/// `buckets[l]` holds every pair `(k1, k2)` with
/// `max(depth₁(k1), depth₂(k2)) == l`. Returns an empty vector when
/// either structure has no arcs (stage one is then empty). When both
/// have arcs, every bucket `0..=max_depth` is non-empty, so
/// `buckets.len()` is exactly the number of synchronization points the
/// wavefront schedule pays.
pub fn level_buckets(p1: &Preprocessed, p2: &Preprocessed) -> Vec<Vec<(u32, u32)>> {
    let (d1, d2) = match (p1.max_depth(), p2.max_depth()) {
        (Some(d1), Some(d2)) => (d1, d2),
        _ => return Vec::new(),
    };
    let mut buckets = vec![Vec::new(); d1.max(d2) as usize + 1];
    for k1 in 0..p1.num_arcs() {
        let l1 = p1.level_of(k1);
        for k2 in 0..p2.num_arcs() {
            let level = l1.max(p2.level_of(k2));
            buckets[level as usize].push((k1, k2));
        }
    }
    buckets
}

/// Number of synchronization points the wavefront schedule pays for this
/// structure pair (`max(max_depth₁, max_depth₂) + 1`, or 0 without
/// arcs). The row schedules pay `A₁` for the same work.
pub fn num_levels(p1: &Preprocessed, p2: &Preprocessed) -> u32 {
    match (p1.max_depth(), p2.max_depth()) {
        (Some(d1), Some(d2)) => d1.max(d2) + 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prna, Backend, PrnaConfig};
    use load_balance::Policy;
    use mcos_core::srna2;
    use rna_structure::formats::dot_bracket;
    use rna_structure::generate;

    fn config(threads: u32) -> PrnaConfig {
        PrnaConfig {
            processors: threads,
            policy: Policy::Greedy,
            backend: Backend::WAVEFRONT,
            ..PrnaConfig::default()
        }
    }

    #[test]
    fn buckets_partition_all_pairs_by_level() {
        let s1 = generate::random_structure(60, 0.9, 3);
        let s2 = generate::random_structure(50, 0.8, 4);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let buckets = level_buckets(&p1, &p2);
        assert_eq!(buckets.len(), num_levels(&p1, &p2) as usize);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, (p1.num_arcs() * p2.num_arcs()) as usize);
        for (l, bucket) in buckets.iter().enumerate() {
            assert!(!bucket.is_empty(), "level {l} empty");
            for &(k1, k2) in bucket {
                assert_eq!(p1.level_of(k1).max(p2.level_of(k2)), l as u32);
            }
        }
    }

    #[test]
    fn dependencies_strictly_drop_levels() {
        // The load-bearing invariant, checked against under_range itself.
        let s = generate::rrna_like(
            &generate::RrnaConfig {
                len: 200,
                arcs: 40,
                mean_stem: 5,
                nest_bias: 0.6,
            },
            17,
        );
        let p = Preprocessed::build(&s);
        for k1 in 0..p.num_arcs() {
            let (lo1, hi1) = p.under_range[k1 as usize];
            for k2 in 0..p.num_arcs() {
                let (lo2, hi2) = p.under_range[k2 as usize];
                let level = p.level_of(k1).max(p.level_of(k2));
                for c1 in lo1..hi1 {
                    for c2 in lo2..hi2 {
                        assert!(p.level_of(c1).max(p.level_of(c2)) < level);
                    }
                }
            }
        }
    }

    #[test]
    fn hairpin_chain_has_few_levels() {
        // 20 hairpin groups of stem depth 3: rows = 60, levels = 3.
        let s = generate::hairpin_chain(20, 3, 2);
        let p = Preprocessed::build(&s);
        assert_eq!(p.num_arcs(), 60);
        assert_eq!(num_levels(&p, &p), 3);
    }

    #[test]
    fn fully_nested_levels_equal_rows() {
        let s = generate::worst_case_nested(12);
        let p = Preprocessed::build(&s);
        assert_eq!(num_levels(&p, &p), 12);
    }

    #[test]
    fn wavefront_matches_sequential_stage_one() {
        let s1 = generate::random_structure(64, 0.9, 31);
        let s2 = generate::random_structure(60, 1.0, 32);
        let reference = srna2::run(&s1, &s2).memo;
        for threads in [1u32, 2, 4, 8] {
            assert_eq!(
                prna(&s1, &s2, &config(threads)).memo,
                reference,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn wavefront_skewed_and_chained_structures() {
        for s in [
            generate::skewed_groups(4, 2, 4),
            generate::hairpin_chain(10, 4, 3),
        ] {
            let reference = srna2::run(&s, &s).memo;
            assert_eq!(prna(&s, &s, &config(4)).memo, reference);
        }
    }

    #[test]
    fn wavefront_empty_structures() {
        let s = dot_bracket::parse("....").unwrap();
        let p = Preprocessed::build(&s);
        assert!(level_buckets(&p, &p).is_empty());
        assert_eq!(num_levels(&p, &p), 0);
        let out = prna(&s, &s, &config(4));
        assert_eq!(out.memo.rows(), 0);
        assert_eq!(out.score, 0);
    }
}

//! The execution-engine acceptance matrix: every schedule × store ×
//! distribution composition must produce bit-identical results to the
//! sequential SRNA2 reference at every thread count, and wrapping any
//! composition in the `Tracing` decorator must not change its output.

use load_balance::Policy;
use mcos_core::srna2;
use mcos_core::trace::TraceLog;
use mcos_parallel::{prna, prna_traced, Backend, KernelKind, PrnaConfig};
use rna_structure::generate;

fn config(backend: Backend, processors: u32) -> PrnaConfig {
    PrnaConfig {
        processors,
        policy: Policy::Lpt,
        backend,
        ..PrnaConfig::default()
    }
}

/// Every composition in the full 2×3×3 matrix is bit-identical to the
/// sequential reference — memo table and score — at 1, 2, 4, and 8
/// threads.
#[test]
fn full_matrix_matches_srna2_at_every_thread_count() {
    let s1 = generate::random_structure(52, 0.9, 41);
    let s2 = generate::random_structure(44, 0.8, 42);
    let reference = srna2::run(&s1, &s2);
    assert!(reference.score > 0, "degenerate input");
    for backend in Backend::MATRIX {
        for threads in [1u32, 2, 4, 8] {
            let out = prna(&s1, &s2, &config(backend, threads));
            assert_eq!(
                out.score,
                reference.score,
                "{} threads {threads}",
                backend.name()
            );
            assert_eq!(
                out.memo,
                reference.memo,
                "memo mismatch: {} threads {threads}",
                backend.name()
            );
        }
    }
}

/// The matrix also agrees on structures chosen to stress the schedules:
/// a hairpin chain (many rows, few levels) and a skewed staircase
/// (strong per-row imbalance).
#[test]
fn full_matrix_agrees_on_adversarial_shapes() {
    for s in [
        generate::hairpin_chain(8, 3, 2),
        generate::skewed_groups(4, 2, 4),
    ] {
        let reference = srna2::run(&s, &s);
        for backend in Backend::MATRIX {
            let out = prna(&s, &s, &config(backend, 3));
            assert_eq!(out.memo, reference.memo, "{}", backend.name());
        }
    }
}

/// A `Tracing`-decorated run is observationally identical to the
/// undecorated composition: same score, same memo, for every legacy
/// backend the detector sweeps.
#[test]
fn tracing_decorator_does_not_change_results() {
    let s1 = generate::random_structure(48, 0.9, 43);
    let s2 = generate::random_structure(40, 0.8, 44);
    for backend in Backend::ALL {
        for threads in [1u32, 2, 4] {
            let log = TraceLog::new();
            let decorated = prna_traced(&s1, &s2, backend, threads, &log);
            let undecorated = prna(&s1, &s2, &config(backend, threads));
            assert_eq!(
                decorated.score,
                undecorated.score,
                "{} threads {threads}",
                backend.name()
            );
            assert_eq!(
                decorated.memo,
                undecorated.memo,
                "memo mismatch: {} threads {threads}",
                backend.name()
            );
            assert!(!log.is_empty(), "{} recorded nothing", backend.name());
        }
    }
}

/// A deliberately small full-matrix sweep for instrumented builds: the
/// ThreadSanitizer CI job runs exactly this test (TSan slows execution
/// 10-20×, so the big equivalence sweeps above are out of budget). It
/// still crosses every store's synchronization path with 2 and 4
/// threads, which is what a data-race checker needs to see.
#[test]
fn matrix_smoke_for_sanitizers() {
    let s1 = generate::random_structure(30, 0.9, 45);
    let s2 = generate::random_structure(26, 0.8, 46);
    let reference = srna2::run(&s1, &s2);
    for backend in Backend::MATRIX {
        for threads in [2u32, 4] {
            let out = prna(&s1, &s2, &config(backend, threads));
            assert_eq!(
                out.memo,
                reference.memo,
                "{} threads {threads}",
                backend.name()
            );
        }
    }
}

/// The kernel axis composes with the engine matrix: every kernel ×
/// every composition in the full 2×3×3 matrix stays bit-identical to
/// the sequential reference. The kernel only swaps the inner loop, so
/// the schedule/store/distribution choice must be invisible to it.
#[test]
fn every_kernel_composes_with_the_full_matrix() {
    let s1 = generate::random_structure(48, 0.9, 47);
    let s2 = generate::random_structure(42, 0.8, 48);
    let reference = srna2::run(&s1, &s2);
    for kernel in KernelKind::ALL {
        for backend in Backend::MATRIX {
            let cfg = PrnaConfig {
                kernel,
                ..config(backend, 3)
            };
            let out = prna(&s1, &s2, &cfg);
            assert_eq!(
                out.score,
                reference.score,
                "{} kernel {}",
                backend.name(),
                kernel.name()
            );
            assert_eq!(
                out.memo,
                reference.memo,
                "memo mismatch: {} kernel {}",
                backend.name(),
                kernel.name()
            );
        }
    }
}

/// Compositions no bespoke backend ever offered are reachable from the
/// CLI grammar and correct.
#[test]
fn new_combinations_are_reachable_by_name() {
    let s1 = generate::random_structure(48, 0.9, 45);
    let s2 = generate::random_structure(44, 0.9, 46);
    let reference = srna2::run(&s1, &s2);
    for name in [
        "wavefront-replicated",
        "row-lockfree",
        "wavefront-rwlock-managed",
        "row-replicated-claim",
    ] {
        let backend = Backend::from_name(name).expect(name);
        assert_eq!(backend.name(), name);
        assert!(
            !Backend::ALL.contains(&backend),
            "{name} is supposed to be a new combination"
        );
        let out = prna(&s1, &s2, &config(backend, 4));
        assert_eq!(out.score, reference.score, "{name}");
        assert_eq!(out.memo, reference.memo, "{name}");
    }
}

//! The execution-engine acceptance matrix: every schedule × store ×
//! distribution composition must produce bit-identical results to the
//! sequential SRNA2 reference at every thread count, and wrapping any
//! composition in the `Tracing` decorator must not change its output.

use load_balance::Policy;
use mcos_core::trace::TraceLog;
use mcos_core::{srna2, traceback};
use mcos_parallel::engine::RetentionPlan;
use mcos_parallel::{
    prna, prna_aligned, prna_recorded, prna_traced, Backend, KernelKind, PrnaConfig,
};
use mcos_telemetry::Recorder;
use rna_structure::generate;

fn config(backend: Backend, processors: u32) -> PrnaConfig {
    PrnaConfig {
        processors,
        policy: Policy::Lpt,
        backend,
        ..PrnaConfig::default()
    }
}

/// Every composition in the full 2×3×3 matrix is bit-identical to the
/// sequential reference — memo table and score — at 1, 2, 4, and 8
/// threads.
#[test]
fn full_matrix_matches_srna2_at_every_thread_count() {
    let s1 = generate::random_structure(52, 0.9, 41);
    let s2 = generate::random_structure(44, 0.8, 42);
    let reference = srna2::run(&s1, &s2);
    assert!(reference.score > 0, "degenerate input");
    for backend in Backend::MATRIX {
        for threads in [1u32, 2, 4, 8] {
            let out = prna(&s1, &s2, &config(backend, threads));
            assert_eq!(
                out.score,
                reference.score,
                "{} threads {threads}",
                backend.name()
            );
            assert_eq!(
                out.memo,
                reference.memo,
                "memo mismatch: {} threads {threads}",
                backend.name()
            );
        }
    }
}

/// The matrix also agrees on structures chosen to stress the schedules:
/// a hairpin chain (many rows, few levels) and a skewed staircase
/// (strong per-row imbalance).
#[test]
fn full_matrix_agrees_on_adversarial_shapes() {
    for s in [
        generate::hairpin_chain(8, 3, 2),
        generate::skewed_groups(4, 2, 4),
    ] {
        let reference = srna2::run(&s, &s);
        for backend in Backend::MATRIX {
            let out = prna(&s, &s, &config(backend, 3));
            assert_eq!(out.memo, reference.memo, "{}", backend.name());
        }
    }
}

/// A `Tracing`-decorated run is observationally identical to the
/// undecorated composition: same score, same memo, for every legacy
/// backend the detector sweeps.
#[test]
fn tracing_decorator_does_not_change_results() {
    let s1 = generate::random_structure(48, 0.9, 43);
    let s2 = generate::random_structure(40, 0.8, 44);
    for backend in Backend::ALL {
        for threads in [1u32, 2, 4] {
            let log = TraceLog::new();
            let decorated = prna_traced(&s1, &s2, backend, threads, &log);
            let undecorated = prna(&s1, &s2, &config(backend, threads));
            assert_eq!(
                decorated.score,
                undecorated.score,
                "{} threads {threads}",
                backend.name()
            );
            assert_eq!(
                decorated.memo,
                undecorated.memo,
                "memo mismatch: {} threads {threads}",
                backend.name()
            );
            assert!(!log.is_empty(), "{} recorded nothing", backend.name());
        }
    }
}

/// A deliberately small full-matrix sweep for instrumented builds: the
/// ThreadSanitizer CI job runs exactly this test (TSan slows execution
/// 10-20×, so the big equivalence sweeps above are out of budget). It
/// still crosses every store's synchronization path with 2 and 4
/// threads, which is what a data-race checker needs to see.
#[test]
fn matrix_smoke_for_sanitizers() {
    let s1 = generate::random_structure(30, 0.9, 45);
    let s2 = generate::random_structure(26, 0.8, 46);
    let reference = srna2::run(&s1, &s2);
    for backend in Backend::MATRIX {
        for threads in [2u32, 4] {
            let out = prna(&s1, &s2, &config(backend, threads));
            assert_eq!(
                out.memo,
                reference.memo,
                "{} threads {threads}",
                backend.name()
            );
        }
    }
}

/// The kernel axis composes with the engine matrix: every kernel ×
/// every composition in the full 2×3×3 matrix stays bit-identical to
/// the sequential reference. The kernel only swaps the inner loop, so
/// the schedule/store/distribution choice must be invisible to it.
#[test]
fn every_kernel_composes_with_the_full_matrix() {
    let s1 = generate::random_structure(48, 0.9, 47);
    let s2 = generate::random_structure(42, 0.8, 48);
    let reference = srna2::run(&s1, &s2);
    for kernel in KernelKind::ALL {
        for backend in Backend::MATRIX {
            let cfg = PrnaConfig {
                kernel,
                ..config(backend, 3)
            };
            let out = prna(&s1, &s2, &cfg);
            assert_eq!(
                out.score,
                reference.score,
                "{} kernel {}",
                backend.name(),
                kernel.name()
            );
            assert_eq!(
                out.memo,
                reference.memo,
                "memo mismatch: {} kernel {}",
                backend.name(),
                kernel.name()
            );
        }
    }
}

/// A pressuring budget for `backend` on this pair: half the
/// no-pressure liveness floor, but at least the widest single step
/// (below which the step frontier itself is the bound).
fn tight_budget(
    s1: &rna_structure::ArcStructure,
    s2: &rna_structure::ArcStructure,
    backend: Backend,
) -> u64 {
    let p1 = mcos_core::preprocess::Preprocessed::build(s1);
    let p2 = mcos_core::preprocess::Preprocessed::build(s2);
    let plan = RetentionPlan::new(&p1, &p2, backend.schedule);
    let widest = (0..plan.num_steps())
        .map(|s| plan.cells_written_at(s))
        .max()
        .unwrap_or(0);
    (plan.liveness().floor_cells / 2).max(widest).max(1)
}

/// The budgeted decorator composes with every store: under a budget
/// tight enough to force pressure eviction, every matrix composition
/// still produces the reference score AND the reference alignment at
/// 1, 2, 4, and 8 threads — the linear-space acceptance sweep.
#[test]
fn budgeted_matrix_matches_scores_and_alignments() {
    let s1 = generate::random_structure(48, 0.9, 61);
    let s2 = generate::random_structure(42, 0.8, 62);
    let reference = srna2::run(&s1, &s2);
    let reference_mapping = traceback::traceback(&s1, &s2);
    assert!(reference.score > 0, "degenerate input");
    for backend in Backend::MATRIX {
        let budget = tight_budget(&s1, &s2, backend);
        for threads in [1u32, 2, 4, 8] {
            let cfg = PrnaConfig {
                mem_budget: Some(budget),
                ..config(backend, threads)
            };
            let (out, mapping) = prna_aligned(&s1, &s2, &cfg, &Recorder::disabled());
            assert_eq!(
                out.score,
                reference.score,
                "{} threads {threads} budget {budget}",
                backend.name()
            );
            assert_eq!(
                mapping,
                reference_mapping,
                "alignment mismatch: {} threads {threads} budget {budget}",
                backend.name()
            );
        }
    }
}

/// The budget invariant, across the matrix: the recorded resident-cell
/// peak stays within the budget (the budget always covers the widest
/// step here), evictions are visible in the counters, and every read
/// of an evicted cell is accounted as recompute work.
#[test]
fn budgeted_runs_respect_the_budget_and_account_recompute() {
    let s1 = generate::random_structure(44, 0.9, 63);
    let s2 = generate::random_structure(40, 0.8, 64);
    let reference = srna2::run(&s1, &s2);
    for backend in Backend::MATRIX {
        let budget = tight_budget(&s1, &s2, backend);
        let cfg = PrnaConfig {
            mem_budget: Some(budget),
            ..config(backend, 3)
        };
        let recorder = Recorder::enabled();
        let out = prna_recorded(&s1, &s2, &cfg, &recorder);
        assert_eq!(out.score, reference.score, "{}", backend.name());
        let c = recorder.counters();
        assert!(
            c.resident_cells_peak > 0 && c.resident_cells_peak <= budget,
            "{}: peak {} vs budget {budget}",
            backend.name(),
            c.resident_cells_peak
        );
        assert!(c.evicted_cells > 0, "{}: no evictions", backend.name());
        // Stage two re-reads the whole grid, so a run that evicted
        // anything must have recomputed something — and cells are
        // counted with their slices.
        assert!(c.recompute_slices > 0, "{}", backend.name());
        assert!(
            c.recompute_cells >= c.recompute_slices,
            "{}",
            backend.name()
        );
    }
}

/// Compositions no bespoke backend ever offered are reachable from the
/// CLI grammar and correct.
#[test]
fn new_combinations_are_reachable_by_name() {
    let s1 = generate::random_structure(48, 0.9, 45);
    let s2 = generate::random_structure(44, 0.9, 46);
    let reference = srna2::run(&s1, &s2);
    for name in [
        "wavefront-replicated",
        "row-lockfree",
        "wavefront-rwlock-managed",
        "row-replicated-claim",
    ] {
        let backend = Backend::from_name(name).expect(name);
        assert_eq!(backend.name(), name);
        assert!(
            !Backend::ALL.contains(&backend),
            "{name} is supposed to be a new combination"
        );
        let out = prna(&s1, &s2, &config(backend, 4));
        assert_eq!(out.score, reference.score, "{name}");
        assert_eq!(out.memo, reference.memo, "{name}");
    }
}

//! Exhaustive model checks of the managed-distribution handshake, run
//! only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p mcos-parallel --test loom_models
//! ```
//!
//! The engine's manager loop (`engine::run_managed`) tags every work
//! request with the worker's current step index so that a fast worker
//! requesting work for the NEXT step cannot be mistaken for a
//! current-step requester — the manager stashes early requests and
//! replays them after the step settles. These models distill that
//! handshake to its synchronization skeleton (2 workers x 2 steps x 1
//! slice, a request channel, per-worker assignment channels, a done
//! channel, and a settled-step counter) and check:
//!
//! * the step-tagged manager preserves, in EVERY schedule, the
//!   invariant that a slice of step `s` executes only once `s` steps
//!   have settled, and that each slice executes exactly once;
//! * a manager that ignores the tags (first-come-first-served) has a
//!   schedule where the invariant breaks, and the model finds it.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{mpsc, Arc};
use std::collections::VecDeque;
use std::panic::catch_unwind;

// Smallest shape that exhibits the race: with one slice per step the
// non-winning worker is released early and races ahead to the next
// step while the winner is still executing — exactly the window the
// step tags close. Every extra slice or step multiplies the choice
// points and explodes the schedule space without adding new
// synchronization structure.
const WORKERS: usize = 2;
const STEPS: usize = 2;
const SLICES: usize = 1;

/// Extracts the panic message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Runs the distilled manager/worker handshake. `tagged` selects the
/// engine's step-tagged manager; `false` is the seeded bug: requests
/// are served first-come-first-served regardless of which step the
/// requesting worker is on.
fn managed_handshake(tagged: bool) {
    // Requests carry (step tag, worker id); assignments carry
    // Some((step, slice)) or None for "step over".
    let (req_tx, req_rx) = mpsc::channel::<(usize, usize)>();
    let mut assign_tx = Vec::new();
    let mut assign_rx = VecDeque::new();
    for _ in 0..WORKERS {
        let (tx, rx) = mpsc::channel::<Option<(usize, usize)>>();
        assign_tx.push(tx);
        assign_rx.push_back(rx);
    }
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let settled = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let req_tx = req_tx.clone();
            let assign_rx = assign_rx.pop_front().expect("one per worker");
            let done_tx = done_tx.clone();
            let settled = settled.clone();
            loom::thread::spawn(move || {
                // Slices this worker executed, returned through join
                // (a plain local: no extra choice points).
                let mut executed = Vec::new();
                for s in 0..STEPS {
                    loop {
                        req_tx.send((s, w)).unwrap();
                        match assign_rx.recv().unwrap() {
                            Some((step, idx)) => {
                                assert_eq!(step, s, "assignment for the wrong step");
                                assert_eq!(
                                    settled.load(Ordering::SeqCst),
                                    s,
                                    "executing before predecessor steps settled"
                                );
                                executed.push((step, idx));
                            }
                            None => break,
                        }
                    }
                    done_tx.send(()).unwrap();
                }
                executed
            })
        })
        .collect();
    drop((req_tx, done_tx));

    // The manager runs on the model's main thread.
    let mut stash: Vec<(usize, usize)> = Vec::new();
    for pos in 0..STEPS {
        let mut pending: VecDeque<(usize, usize)> = stash.drain(..).collect();
        let mut next = 0;
        let mut sentinels = 0;
        while sentinels < WORKERS {
            let (tag, w) = match pending.pop_front() {
                Some(r) => r,
                None => req_rx.recv().unwrap(),
            };
            if tagged && tag != pos {
                // A fast worker already on the next step: stash its
                // request until this step settles (the engine asserts
                // "one step ahead at most", and so do we).
                assert_eq!(tag, pos + 1, "one step ahead at most");
                stash.push((tag, w));
                continue;
            }
            if next < SLICES {
                assign_tx[w].send(Some((pos, next))).unwrap();
                next += 1;
            } else {
                assign_tx[w].send(None).unwrap();
                sentinels += 1;
            }
        }
        for _ in 0..WORKERS {
            done_rx.recv().unwrap();
        }
        settled.store(pos + 1, Ordering::SeqCst);
    }

    let mut executed: Vec<(usize, usize)> = workers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    executed.sort_unstable();
    let expected: Vec<(usize, usize)> = (0..STEPS)
        .flat_map(|s| (0..SLICES).map(move |i| (s, i)))
        .collect();
    assert_eq!(executed, expected, "each slice must execute exactly once");
}

/// The step-tagged handshake holds its invariants in every schedule.
/// The model has three threads and ~30 choice points per execution,
/// so the default bound of 3 involuntary switches explodes past the
/// execution ceiling; 2 preemptions (the CHESS empirical sweet spot)
/// keeps the sweep exhaustive-within-bound and fast. The seeded bug
/// in [`untagged_manager_is_caught`] needs zero preemptions, so the
/// bound costs no known detection power here.
#[test]
fn step_tagged_manager_is_sound_in_every_schedule() {
    let mut builder = loom::model::Builder::new();
    builder.preemption_bound = Some(2);
    builder.check(|| managed_handshake(true));
}

/// Dropping the step tags admits a schedule where a fast worker's
/// next-step request is consumed as a current-step request: the
/// manager's bookkeeping skews and a slice executes against the wrong
/// step (or never executes). The model must find such a schedule.
#[test]
fn untagged_manager_is_caught() {
    let result = catch_unwind(|| loom::model(|| managed_handshake(false)));
    let msg = panic_message(result.expect_err("model must catch the untagged manager"));
    assert!(
        msg.contains("wrong step")
            || msg.contains("settled")
            || msg.contains("exactly once")
            || msg.contains("deadlock"),
        "{msg}"
    );
}

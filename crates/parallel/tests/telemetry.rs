//! Telemetry integration: event determinism, trace-export schema, and
//! backend coverage of the recorder.

use load_balance::Policy;
use mcos_core::preprocess::Preprocessed;
use mcos_parallel::{prna, prna_recorded, Backend, PrnaConfig};
use mcos_telemetry::critical_path::{self, StallBucket, StallReport};
use mcos_telemetry::liveness::{self, SliceNode};
use mcos_telemetry::{json, trace, BarrierKind, Event, EventKind, Recorder};
use rna_structure::generate;

fn config(backend: Backend, processors: u32) -> PrnaConfig {
    PrnaConfig {
        processors,
        policy: Policy::Greedy,
        backend,
        ..PrnaConfig::default()
    }
}

fn record(backend: Backend, processors: u32) -> Vec<Event> {
    let s1 = generate::random_structure(48, 0.9, 7);
    let s2 = generate::random_structure(40, 0.8, 8);
    let recorder = Recorder::enabled();
    let out = prna_recorded(&s1, &s2, &config(backend, processors), &recorder);
    assert_eq!(out.score, prna(&s1, &s2, &config(backend, 1)).score);
    recorder.events()
}

/// Per-lane label sequences, in lane order. Timings vary run to run;
/// the *structure* of what each lane did must not.
fn lane_labels(events: &[Event]) -> Vec<(u32, Vec<String>)> {
    let mut lanes: Vec<(u32, Vec<(u32, String)>)> = Vec::new();
    for e in events {
        let entry = match lanes.iter_mut().find(|(tid, _)| *tid == e.tid) {
            Some(entry) => entry,
            None => {
                lanes.push((e.tid, Vec::new()));
                lanes.last_mut().expect("just pushed")
            }
        };
        entry.1.push((e.seq, e.kind.label()));
    }
    lanes.sort_by_key(|(tid, _)| *tid);
    lanes
        .into_iter()
        .map(|(tid, mut seq)| {
            // Within a lane, `seq` is the recording order regardless of
            // how timestamps interleave.
            seq.sort_by_key(|&(s, _)| s);
            (tid, seq.into_iter().map(|(_, l)| l).collect())
        })
        .collect()
}

/// The worker-pool backend with a fixed assignment is deterministic in
/// *what* every lane records (rows arrive in order, columns are owned
/// statically), even though *when* varies: two runs must produce
/// identical per-lane label sequences.
#[test]
fn pool_event_order_is_deterministic_per_lane() {
    let a = lane_labels(&record(Backend::WORKER_POOL, 2));
    let b = lane_labels(&record(Backend::WORKER_POOL, 2));
    assert_eq!(a, b);
    // Both workers actually tabulated something on this input.
    for tid in [1, 2] {
        let (_, labels) = &a[tid];
        assert!(
            labels.iter().any(|l| l.starts_with("slice")),
            "lane {tid} recorded no slices"
        );
    }
}

/// Same for the mpi-sim backend: rank-owned columns and row-lockstep
/// Allreduce make each rank's sequence a pure function of the input.
#[test]
fn mpi_event_order_is_deterministic_per_lane() {
    let a = lane_labels(&record(Backend::MPI_SIM, 3));
    let b = lane_labels(&record(Backend::MPI_SIM, 3));
    assert_eq!(a, b);
    assert!(a
        .iter()
        .any(|(_, labels)| labels.iter().any(|l| l == "allreduce")));
}

/// Every backend feeds the recorder: phase spans on lane 0 plus
/// per-worker busy spans, and slice totals that match the table size
/// (`A1 x A2` child slices, however they are scheduled).
#[test]
fn every_backend_records_slices_and_phases() {
    let s1 = generate::random_structure(48, 0.9, 7);
    let s2 = generate::random_structure(40, 0.8, 8);
    let expected = s1.num_arcs() as u64 * s2.num_arcs() as u64;
    for backend in Backend::ALL {
        let recorder = Recorder::enabled();
        prna_recorded(&s1, &s2, &config(backend, 2), &recorder);
        let c = recorder.counters();
        assert_eq!(c.slices, expected, "{}", backend.name());
        assert!(c.cells > 0, "{}", backend.name());
        assert!(c.max_cells_per_slice > 0, "{}", backend.name());
        let events = recorder.events();
        let phases = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Phase(_)))
            .count();
        assert_eq!(
            phases,
            3,
            "{}: preprocess/stage-one/stage-two",
            backend.name()
        );
        assert!(
            events.iter().any(|e| e.kind.is_wait()),
            "{}: no barrier/collective span",
            backend.name()
        );
    }
}

/// The Chrome trace export is valid JSON with the schema Perfetto and
/// `chrome://tracing` expect: a `traceEvents` array of objects whose
/// `ph` is `M` (metadata) or `X` (complete span), with numeric
/// `ts`/`dur` on every span and thread-name metadata per lane.
#[test]
fn chrome_trace_export_satisfies_schema() {
    // The pool backend guarantees every lane appears: workers record a
    // row-wait barrier per row even when they own no columns (the rayon
    // shim's fresh-thread workers, by contrast, may never claim work on
    // tiny inputs).
    let events = record(Backend::WORKER_POOL, 2);
    assert!(!events.is_empty());
    let text = trace::chrome_trace_json(&events);
    let root = json::parse(&text).expect("trace.json must parse");
    assert_eq!(
        root.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let trace_events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut spans = 0;
    let mut thread_names = 0;
    for e in trace_events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(e.get("pid").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("tid").and_then(|v| v.as_f64()).is_some());
        let name = e.get("name").and_then(|v| v.as_str()).expect("name");
        match ph {
            "X" => {
                spans += 1;
                let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
                let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                assert!(e.get("cat").and_then(|v| v.as_str()).is_some());
            }
            "M" => {
                if name == "thread_name" {
                    thread_names += 1;
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(spans, events.len());
    // Lane 0 (coordinator) + 2 workers at minimum.
    assert!(thread_names >= 3, "{thread_names} thread_name records");
}

/// The stall-attribution identity, as a property over real traces: on
/// every engine composition, each lane's busy + wait + overhead +
/// untracked nanoseconds equal its measured wall-clock exactly, and the
/// busy bucket equals the sum of that lane's slice spans.
#[test]
fn stall_buckets_sum_to_wall_on_every_matrix_composition() {
    let s1 = generate::random_structure(48, 0.9, 7);
    let s2 = generate::random_structure(40, 0.8, 8);
    for backend in Backend::MATRIX {
        let recorder = Recorder::enabled();
        prna_recorded(&s1, &s2, &config(backend, 3), &recorder);
        let events = recorder.events();
        let report = StallReport::build(&events);
        assert!(!report.workers.is_empty(), "{}", backend.name());
        for w in &report.workers {
            assert_eq!(
                w.buckets.iter().sum::<u64>(),
                w.wall_ns,
                "{}: lane {} buckets do not sum to wall",
                backend.name(),
                w.tid
            );
            let slice_ns: u64 = events
                .iter()
                .filter(|e| e.tid == w.tid && e.kind.is_busy())
                .map(|e| e.dur_ns)
                .sum();
            assert_eq!(
                w.bucket(StallBucket::Busy),
                slice_ns,
                "{}: lane {} busy bucket",
                backend.name(),
                w.tid
            );
        }
        // Workers tabulated, so busy time exists somewhere.
        assert!(report.total(StallBucket::Busy) > 0, "{}", backend.name());
    }
}

/// Managed distributions tell starvation apart from dependency waits:
/// every worker's last answer per step is the wave-off sentinel, so
/// queue-empty spans must appear, and the manager (lane 0) must record
/// one coord-serve span per step.
#[test]
fn managed_runs_record_queue_empty_and_coord_serve() {
    let s1 = generate::random_structure(48, 0.9, 7);
    let s2 = generate::random_structure(40, 0.8, 8);
    for backend in Backend::MATRIX
        .into_iter()
        .filter(|b| b.name().ends_with("managed"))
    {
        let recorder = Recorder::enabled();
        prna_recorded(&s1, &s2, &config(backend, 2), &recorder);
        let events = recorder.events();
        let count = |want: BarrierKind, tid: Option<u32>| {
            events
                .iter()
                .filter(|e| tid.is_none_or(|t| e.tid == t))
                .filter(|e| matches!(e.kind, EventKind::Barrier { kind, .. } if kind == want))
                .count()
        };
        assert!(
            count(BarrierKind::QueueEmpty, None) > 0,
            "{}: no queue-empty span",
            backend.name()
        );
        let serves = count(BarrierKind::CoordServe, Some(0));
        assert!(serves > 0, "{}: no coord-serve span", backend.name());
        // Serving happens on the manager lane only.
        assert_eq!(
            serves,
            count(BarrierKind::CoordServe, None),
            "{}",
            backend.name()
        );
    }
}

/// The memory-occupancy invariant holds on every engine composition:
/// the modelled peak of simultaneously-live cells never exceeds the
/// physical writes, and no store writes more cells than it allocated
/// (`cells_live ≤ cells_written ≤ cells_allocated`). A store that
/// under-reports its representation, or a settle path that writes
/// outside the grid it claimed, breaks the chain immediately.
#[test]
fn occupancy_invariant_holds_on_every_matrix_composition() {
    let s1 = generate::random_structure(48, 0.9, 7);
    let s2 = generate::random_structure(40, 0.8, 8);
    let p1 = Preprocessed::build(&s1);
    let p2 = Preprocessed::build(&s2);
    for backend in Backend::MATRIX {
        let recorder = Recorder::enabled();
        prna_recorded(&s1, &s2, &config(backend, 3), &recorder);
        let counters = recorder.counters();
        let costs = critical_path::slice_costs_from_events(&recorder.events());
        let nodes: Vec<SliceNode> = costs
            .iter()
            .map(|c| SliceNode {
                k1: c.k1,
                k2: c.k2,
                level: c.level,
            })
            .collect();
        let model = liveness::level_liveness(&nodes, |k1, k2, sink| {
            let (lo1, hi1) = p1.under_range[k1 as usize];
            let (lo2, hi2) = p2.under_range[k2 as usize];
            for c1 in lo1..hi1 {
                for c2 in lo2..hi2 {
                    sink(c1, c2);
                }
            }
        });
        let cells_live = model.resident.iter().copied().max().unwrap_or(0);
        assert!(
            cells_live <= counters.memo_cells_written,
            "{}: live {} > written {}",
            backend.name(),
            cells_live,
            counters.memo_cells_written
        );
        assert!(
            counters.memo_cells_written <= counters.memo_cells_allocated,
            "{}: written {} > allocated {}",
            backend.name(),
            counters.memo_cells_written,
            counters.memo_cells_allocated
        );
        // The floor is a lower bound on the peak by construction.
        assert!(model.floor_cells <= cells_live, "{}", backend.name());
    }
}

/// A disabled recorder passed through the full public entry point keeps
/// nothing — the production default costs no events.
#[test]
fn disabled_recorder_through_prna_records_nothing() {
    let s = generate::worst_case_nested(10);
    let recorder = Recorder::disabled();
    for backend in Backend::ALL {
        prna_recorded(&s, &s, &config(backend, 2), &recorder);
    }
    assert!(recorder.events().is_empty());
    assert_eq!(recorder.counters(), Default::default());
}

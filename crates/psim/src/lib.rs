//! Deterministic simulator for row-synchronized parallel schedules.
//!
//! The paper's Figure 8 measures PRNA speedup on a 64-processor cluster.
//! This crate replays the *exact* schedule PRNA executes — per-task work,
//! static column ownership, a synchronization step after every row — under
//! an explicit cost model, so the speedup curve can be reproduced for any
//! processor count on any machine (including the single-core container
//! this reproduction runs in; see DESIGN.md, substitution 2).
//!
//! # Model
//!
//! Stage one of PRNA is a sequence of *rows* (the arcs of `S₁`). Within a
//! row there is one task per column (the arcs of `S₂`); the task's work is
//! the child slice's subproblem count. Columns are owned by processors
//! (statically, per the load balancer, or dynamically per row). A row ends
//! with an `Allreduce(MAX)` over its `A₂`-element memo row, modeled as a
//! binomial tree: `⌈log₂ P⌉ · (α + β·elements)`. The simulated wall time
//! is
//!
//! ```text
//! T(P) = Σ_rows [ max_p (row work of p) · spc  +  sync(P) ]
//!        + (preprocessing + stage two) · spc            (sequential parts)
//! ```
//!
//! with `sync(1) = 0`. Speedup is `T(1)/T(P)`, where `T(1)` charges no
//! synchronization.
//!
//! The per-cell cost `spc` is **calibrated** from a real sequential run
//! ([`CostModel::calibrate`]), so simulated absolute times track the
//! machine the calibration ran on, and speedups depend only on the
//! schedule shape and the communication parameters.
//!
//! ```
//! use par_sim::{CostModel, PrnaSim, Scheduling, WorkGrid};
//! use load_balance::Policy;
//!
//! // 64 uniform columns over 10 rows, free synchronization: ideal scaling.
//! let sim = PrnaSim {
//!     grid: WorkGrid::from_fn(10, 64, |_, _| 1000),
//!     sequential_work: 0,
//! };
//! let model = CostModel { sync_alpha: 0.0, sync_beta_per_elem: 0.0, ..CostModel::default() };
//! let curve = sim.speedup_curve(&[1, 4, 16], Scheduling::Static(Policy::Greedy), &model);
//! assert!((curve[2].1 - 16.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use load_balance::{Assignment, Policy};

/// Cost parameters of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per work unit (compressed DP cell).
    pub seconds_per_cell: f64,
    /// Per-message latency of one tree round of the row allreduce (s).
    pub sync_alpha: f64,
    /// Per-element cost of one tree round (transfer + max-combine, s).
    pub sync_beta_per_elem: f64,
    /// Cores per node of the (hybrid) cluster; ranks fill nodes in
    /// blocks. `1` models independent processors with no shared memory
    /// path.
    pub node_cores: u32,
    /// Slowdown multiplier on per-cell compute when **all** cores of a
    /// node are busy (memory-bandwidth contention); interpolated linearly
    /// in node occupancy. `1.0` disables contention. DP tabulation is
    /// memory-bound, so multi-core nodes of 2009-era clusters commonly
    /// showed 1.5–2.5× per-core degradation at full occupancy.
    pub contention_at_full: f64,
}

impl Default for CostModel {
    /// Defaults resemble a commodity cluster interconnect: 20 µs message
    /// latency, 10 ns per 4-byte element per round, 1 ns per cell
    /// (overridden by calibration in real use), no node contention.
    fn default() -> Self {
        CostModel {
            seconds_per_cell: 1e-9,
            sync_alpha: 20e-6,
            sync_beta_per_elem: 10e-9,
            node_cores: 1,
            contention_at_full: 1.0,
        }
    }
}

impl CostModel {
    /// Sets `seconds_per_cell` from a measured sequential run that
    /// processed `cells` work units in `seconds`.
    pub fn calibrate(mut self, cells: u64, seconds: f64) -> Self {
        assert!(cells > 0 && seconds > 0.0, "calibration needs a real run");
        self.seconds_per_cell = seconds / cells as f64;
        self
    }

    /// Effective per-cell cost when `p` ranks run: ranks fill nodes in
    /// blocks of `node_cores`, so occupancy is `min(p, node_cores)` and
    /// the compute slowdown interpolates between 1 (single core per
    /// node) and `contention_at_full` (node saturated).
    pub fn effective_seconds_per_cell(&self, p: u32) -> f64 {
        if self.node_cores <= 1 || self.contention_at_full <= 1.0 {
            return self.seconds_per_cell;
        }
        let busy = p.min(self.node_cores) as f64;
        let frac = (busy - 1.0) / (self.node_cores as f64 - 1.0);
        self.seconds_per_cell * (1.0 + (self.contention_at_full - 1.0) * frac)
    }

    /// Simulated cost of one `Allreduce(MAX)` over `elements` values
    /// across `p` processors (binomial tree, log₂p rounds); zero for a
    /// single processor.
    pub fn sync_cost(&self, p: u32, elements: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (32 - (p - 1).leading_zeros()) as f64; // ceil(log2 p)
        rounds * (self.sync_alpha + self.sync_beta_per_elem * elements as f64)
    }
}

/// The stage-one work grid: one task per (row, column), row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkGrid {
    rows: usize,
    cols: usize,
    work: Vec<u64>,
}

impl WorkGrid {
    /// Builds a grid from a row-major work vector.
    pub fn new(rows: usize, cols: usize, work: Vec<u64>) -> Self {
        assert_eq!(work.len(), rows * cols, "work vector must be rows*cols");
        WorkGrid { rows, cols, work }
    }

    /// Builds a grid from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u64) -> Self {
        let mut work = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                work.push(f(r, c));
            }
        }
        WorkGrid { rows, cols, work }
    }

    /// Number of rows (arcs of `S₁`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (arcs of `S₂`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Work of task `(row, col)`.
    #[inline]
    pub fn work(&self, row: usize, col: usize) -> u64 {
        self.work[row * self.cols + col]
    }

    /// One row of tasks.
    pub fn row(&self, row: usize) -> &[u64] {
        &self.work[row * self.cols..(row + 1) * self.cols]
    }

    /// Total work across all tasks.
    pub fn total(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Per-column totals — the weights PRNA's static balancer consumes.
    pub fn column_totals(&self) -> Vec<u64> {
        let mut t = vec![0u64; self.cols];
        for r in 0..self.rows {
            for (c, w) in self.row(r).iter().enumerate() {
                t[c] += w;
            }
        }
        t
    }
}

/// How columns are assigned to processors within each row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// One static column→processor map for the whole run (the paper's
    /// PRNA: ownership decided in preprocessing).
    Static(Policy),
    /// Each row is balanced independently with greedy list scheduling —
    /// an idealized dynamic (work-stealing-like) scheduler, used by the
    /// static-vs-dynamic ablation.
    DynamicPerRow,
}

/// Result of simulating one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Processor count simulated.
    pub processors: u32,
    /// Simulated stage-one wall time (s), synchronization included.
    pub stage_one_seconds: f64,
    /// Portion of stage one spent in row synchronization (s).
    pub sync_seconds: f64,
    /// Simulated sequential parts (preprocessing + stage two, s).
    pub sequential_seconds: f64,
    /// Total simulated wall time (s).
    pub total_seconds: f64,
    /// Mean busy fraction of processors during stage one (1.0 = perfectly
    /// balanced compute with no sync).
    pub utilization: f64,
}

/// Per-row detail from [`PrnaSim::run_traced`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowTrace {
    /// Compute seconds of each processor in this row.
    pub compute: Vec<f64>,
    /// Synchronization cost charged at the end of this row.
    pub sync: f64,
}

impl RowTrace {
    /// The row's compute makespan (slowest processor).
    pub fn makespan(&self) -> f64 {
        self.compute.iter().copied().fold(0.0, f64::max)
    }

    /// The row's compute imbalance: makespan over mean busy time
    /// (1.0 = perfectly even; returns 1.0 for an all-idle row).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.compute.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        self.makespan() * self.compute.len() as f64 / total
    }
}

/// A PRNA run to simulate: the stage-one grid plus the sequential parts.
#[derive(Debug, Clone)]
pub struct PrnaSim {
    /// Stage-one task grid.
    pub grid: WorkGrid,
    /// Work units executed sequentially regardless of `P` (preprocessing
    /// + stage two).
    pub sequential_work: u64,
}

impl PrnaSim {
    /// Simulates the schedule on `p` processors.
    pub fn run(&self, p: u32, scheduling: Scheduling, model: &CostModel) -> SimOutcome {
        assert!(p > 0, "need at least one processor");
        let spc = model.effective_seconds_per_cell(p);
        let cols = self.grid.cols();
        let static_assignment: Option<Assignment> = match scheduling {
            Scheduling::Static(policy) => Some(policy.assign(&self.grid.column_totals(), p)),
            Scheduling::DynamicPerRow => None,
        };

        let mut stage_one = 0.0f64;
        let mut sync_total = 0.0f64;
        let mut busy_total = 0.0f64; // summed over processors
        let mut span_total = 0.0f64; // row makespans (compute only)
        let mut proc_load = vec![0u64; p as usize];
        for r in 0..self.grid.rows() {
            let row = self.grid.row(r);
            proc_load.iter_mut().for_each(|l| *l = 0);
            match &static_assignment {
                Some(a) => {
                    for (c, &w) in row.iter().enumerate() {
                        proc_load[a.owner[c] as usize] += w;
                    }
                }
                None => {
                    // Idealized dynamic scheduling: greedy list scheduling
                    // of this row's tasks in decreasing order (LPT).
                    let a = load_balance::lpt(row, p);
                    proc_load.copy_from_slice(&a.load);
                }
            }
            let row_max = *proc_load.iter().max().expect("p >= 1") as f64 * spc;
            let row_busy: f64 = proc_load.iter().map(|&l| l as f64 * spc).sum();
            let sync = model.sync_cost(p, cols as u64);
            stage_one += row_max + sync;
            sync_total += sync;
            busy_total += row_busy;
            span_total += row_max;
        }

        // Sequential phases run one rank per node: no contention.
        let sequential_seconds = self.sequential_work as f64 * model.seconds_per_cell;
        let utilization = if span_total > 0.0 {
            busy_total / (span_total * p as f64)
        } else {
            1.0
        };
        SimOutcome {
            processors: p,
            stage_one_seconds: stage_one,
            sync_seconds: sync_total,
            sequential_seconds,
            total_seconds: stage_one + sequential_seconds,
            utilization,
        }
    }

    /// Like [`PrnaSim::run`], but also returns the per-row trace:
    /// each row's per-processor compute times and its sync cost. Useful
    /// for diagnosing where a schedule loses time.
    pub fn run_traced(
        &self,
        p: u32,
        scheduling: Scheduling,
        model: &CostModel,
    ) -> (SimOutcome, Vec<RowTrace>) {
        assert!(p > 0, "need at least one processor");
        let spc = model.effective_seconds_per_cell(p);
        let cols = self.grid.cols();
        let static_assignment: Option<Assignment> = match scheduling {
            Scheduling::Static(policy) => Some(policy.assign(&self.grid.column_totals(), p)),
            Scheduling::DynamicPerRow => None,
        };
        let mut rows = Vec::with_capacity(self.grid.rows());
        for r in 0..self.grid.rows() {
            let row = self.grid.row(r);
            let mut proc_load = vec![0u64; p as usize];
            match &static_assignment {
                Some(a) => {
                    for (c, &w) in row.iter().enumerate() {
                        proc_load[a.owner[c] as usize] += w;
                    }
                }
                None => {
                    let a = load_balance::lpt(row, p);
                    proc_load.copy_from_slice(&a.load);
                }
            }
            rows.push(RowTrace {
                compute: proc_load.iter().map(|&l| l as f64 * spc).collect(),
                sync: model.sync_cost(p, cols as u64),
            });
        }
        (self.run(p, scheduling, model), rows)
    }

    /// Simulates the schedule on **heterogeneous** processors with the
    /// given relative speeds (`speed[p]` cells per base-rate second; 1.0
    /// is the calibrated rate). Columns are distributed speed-aware when
    /// `speed_aware` is true ([`load_balance::greedy_speeds`]) or with
    /// speed-oblivious greedy otherwise — the ablation contrast for
    /// heterogeneous clusters (the setting of the manager–worker related
    /// work). Sequential phases run on the fastest processor. Node
    /// contention is not modeled here (speeds already encode per-rank
    /// throughput).
    pub fn run_heterogeneous(
        &self,
        speeds: &[f64],
        speed_aware: bool,
        model: &CostModel,
    ) -> SimOutcome {
        assert!(!speeds.is_empty(), "need at least one processor");
        let p = speeds.len() as u32;
        let spc = model.seconds_per_cell;
        let cols = self.grid.cols();
        let col_totals = self.grid.column_totals();
        let assignment = if speed_aware {
            load_balance::greedy_speeds(&col_totals, speeds)
        } else {
            load_balance::greedy(&col_totals, p)
        };

        let mut stage_one = 0.0f64;
        let mut sync_total = 0.0f64;
        let mut busy_total = 0.0f64;
        let mut span_total = 0.0f64;
        let mut proc_load = vec![0u64; speeds.len()];
        for r in 0..self.grid.rows() {
            proc_load.iter_mut().for_each(|l| *l = 0);
            for (c, &w) in self.grid.row(r).iter().enumerate() {
                proc_load[assignment.owner[c] as usize] += w;
            }
            let times: Vec<f64> = proc_load
                .iter()
                .zip(speeds)
                .map(|(&l, &s)| l as f64 * spc / s)
                .collect();
            let row_max = times.iter().copied().fold(0.0, f64::max);
            let sync = model.sync_cost(p, cols as u64);
            stage_one += row_max + sync;
            sync_total += sync;
            busy_total += times.iter().sum::<f64>();
            span_total += row_max;
        }
        let fastest = speeds.iter().copied().fold(f64::MIN, f64::max);
        let sequential_seconds = self.sequential_work as f64 * spc / fastest;
        let utilization = if span_total > 0.0 {
            busy_total / (span_total * p as f64)
        } else {
            1.0
        };
        SimOutcome {
            processors: p,
            stage_one_seconds: stage_one,
            sync_seconds: sync_total,
            sequential_seconds,
            total_seconds: stage_one + sequential_seconds,
            utilization,
        }
    }

    /// Simulated sequential time: all work on one processor, no sync.
    pub fn sequential_seconds(&self, model: &CostModel) -> f64 {
        (self.grid.total() + self.sequential_work) as f64 * model.seconds_per_cell
    }

    /// Speedup curve `T(1)/T(p)` over the given processor counts.
    pub fn speedup_curve(
        &self,
        procs: &[u32],
        scheduling: Scheduling,
        model: &CostModel,
    ) -> Vec<(u32, f64)> {
        let t1 = self.sequential_seconds(model);
        procs
            .iter()
            .map(|&p| {
                let t = self.run(p, scheduling, model).total_seconds;
                (p, t1 / t)
            })
            .collect()
    }
}

pub mod jitter {
    //! Seeded random delay injection for schedule perturbation.
    //!
    //! The deterministic simulator above replays schedules under a cost
    //! model; this module does the opposite job for *real* executions —
    //! it perturbs thread interleavings so a dynamic checker (the race
    //! detector in `crates/analysis`) explores adversarial timings
    //! instead of whatever the scheduler happens to produce on an idle
    //! machine. A [`DelayInjector`] is installed as the trace hook of a
    //! traced PRNA run; every recorded event then pays a pseudo-random
    //! pause derived from `(seed, event counter)`, so one seed is one
    //! reproducible-in-distribution interleaving family.
    //!
    //! Delays are busy-spins (with an occasional `yield_now`), not
    //! `thread::sleep`: sleep granularity on mainstream kernels is tens
    //! of microseconds, far coarser than the nanosecond-scale windows
    //! where memo-table orderings are decided.

    use std::sync::atomic::{AtomicU64, Ordering};

    /// SplitMix64 finalizer: a cheap, well-distributed 64→64 bit mixer.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Injects seeded pseudo-random delays, one per call, shared across
    /// threads.
    #[derive(Debug)]
    pub struct DelayInjector {
        seed: u64,
        // ORDERING: Relaxed — the counter only has to hand out distinct
        // values; no memory ordering is implied by (or needed for) the
        // delay schedule.
        counter: AtomicU64,
        max_spins: u64,
    }

    impl DelayInjector {
        /// Creates an injector with the default delay bound (`4096`
        /// spin iterations — roughly a microsecond, i.e. wider than a
        /// memo write but far below scheduler quanta).
        pub fn new(seed: u64) -> Self {
            Self::with_max_spins(seed, 4096)
        }

        /// Creates an injector whose longest delay is `max_spins`
        /// `spin_loop` iterations (0 disables delays but keeps the
        /// yields).
        pub fn with_max_spins(seed: u64, max_spins: u64) -> Self {
            DelayInjector {
                seed,
                counter: AtomicU64::new(0),
                max_spins,
            }
        }

        /// Pauses the calling thread for a pseudo-random interval
        /// determined by the seed and the global event number.
        pub fn delay(&self) {
            // ORDERING: Relaxed — the counter only diversifies delay
            // lengths; no data is published through it.
            let n = self.counter.fetch_add(1, Ordering::Relaxed);
            let h = splitmix64(self.seed ^ n.wrapping_mul(0x6c62_272e_07bb_0142));
            // One event in 16 gives up its timeslice entirely, forcing
            // cross-core migrations and preemption points.
            if h & 0xf == 0 {
                std::thread::yield_now();
            }
            let spins = if self.max_spins == 0 {
                0
            } else {
                (h >> 8) % self.max_spins
            };
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn splitmix_mixes_counter_values() {
            let a = splitmix64(1);
            let b = splitmix64(2);
            assert_ne!(a, b);
            assert_eq!(a, splitmix64(1)); // pure function of the input
        }

        #[test]
        fn delay_survives_concurrent_use() {
            let inj = DelayInjector::with_max_spins(42, 64);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            inj.delay();
                        }
                    });
                }
            });
            assert_eq!(inj.counter.load(Ordering::Relaxed), 400);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sim(rows: usize, cols: usize, w: u64) -> PrnaSim {
        PrnaSim {
            grid: WorkGrid::from_fn(rows, cols, |_, _| w),
            sequential_work: 0,
        }
    }

    #[test]
    fn grid_accessors() {
        let g = WorkGrid::new(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(g.work(1, 2), 6);
        assert_eq!(g.row(0), &[1, 2, 3]);
        assert_eq!(g.total(), 21);
        assert_eq!(g.column_totals(), vec![5, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn grid_rejects_bad_shape() {
        let _ = WorkGrid::new(2, 3, vec![1, 2, 3]);
    }

    #[test]
    fn single_processor_matches_sequential() {
        let sim = uniform_sim(10, 8, 100);
        let model = CostModel::default();
        let out = sim.run(1, Scheduling::Static(Policy::Greedy), &model);
        assert_eq!(out.sync_seconds, 0.0, "no sync on one processor");
        let seq = sim.sequential_seconds(&model);
        assert!((out.total_seconds - seq).abs() < 1e-12);
    }

    #[test]
    fn perfect_speedup_with_free_sync() {
        // Uniform work, sync costs zero, cols divisible by P => ideal.
        let sim = uniform_sim(10, 64, 1000);
        let model = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        let curve = sim.speedup_curve(&[1, 2, 4, 8], Scheduling::Static(Policy::Greedy), &model);
        for (p, s) in curve {
            assert!(
                (s - p as f64).abs() < 1e-9,
                "expected ideal speedup at p={p}, got {s}"
            );
        }
    }

    #[test]
    fn sync_cost_reduces_speedup() {
        let sim = uniform_sim(100, 64, 100);
        let free = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        let costly = CostModel::default();
        let s_free = sim.speedup_curve(&[16], Scheduling::Static(Policy::Greedy), &free)[0].1;
        let s_costly = sim.speedup_curve(&[16], Scheduling::Static(Policy::Greedy), &costly)[0].1;
        assert!(s_costly < s_free);
    }

    #[test]
    fn speedup_is_bounded_by_processor_count() {
        let sim = PrnaSim {
            grid: WorkGrid::from_fn(50, 40, |r, c| ((r * 31 + c * 17) % 97) as u64),
            sequential_work: 1000,
        };
        let model = CostModel::default();
        for sched in [
            Scheduling::Static(Policy::Greedy),
            Scheduling::DynamicPerRow,
        ] {
            for (p, s) in sim.speedup_curve(&[1, 2, 4, 8, 16, 32], sched, &model) {
                assert!(s <= p as f64 + 1e-9, "p={p}, s={s}");
                assert!(s > 0.0);
            }
        }
    }

    #[test]
    fn sequential_part_caps_speedup_amdahl() {
        // If half the work is sequential, speedup < 2 regardless of P.
        let grid = WorkGrid::from_fn(10, 10, |_, _| 100);
        let total = grid.total();
        let sim = PrnaSim {
            grid,
            sequential_work: total,
        };
        let model = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        // With 10 columns per row the parallel part saturates at 10-way
        // parallelism: T = (seq + par/10), so speedup = 20/11 ≈ 1.82 — under
        // the Amdahl limit of 2.
        let (_, s) = sim.speedup_curve(&[64], Scheduling::Static(Policy::Greedy), &model)[0];
        assert!(s < 2.0);
        assert!((s - 20.0 / 11.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn dynamic_no_worse_than_static_on_skewed_rows() {
        // Rows whose heavy column moves around defeat static ownership.
        let grid = WorkGrid::from_fn(32, 16, |r, c| if r % 16 == c { 1000 } else { 1 });
        let sim = PrnaSim {
            grid,
            sequential_work: 0,
        };
        let model = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        let s_static = sim.run(8, Scheduling::Static(Policy::Greedy), &model);
        let s_dyn = sim.run(8, Scheduling::DynamicPerRow, &model);
        assert!(s_dyn.stage_one_seconds <= s_static.stage_one_seconds + 1e-12);
    }

    #[test]
    fn utilization_is_one_when_balanced() {
        let sim = uniform_sim(5, 8, 10);
        let model = CostModel::default();
        let out = sim.run(4, Scheduling::Static(Policy::Greedy), &model);
        assert!((out.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_sets_per_cell_cost() {
        let m = CostModel::default().calibrate(2_000_000, 4.0);
        assert!((m.seconds_per_cell - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn sync_cost_scales_with_log_p() {
        let m = CostModel::default();
        let c2 = m.sync_cost(2, 100);
        let c16 = m.sync_cost(16, 100);
        assert!((c16 / c2 - 4.0).abs() < 1e-9, "log2(16)/log2(2) = 4");
        assert_eq!(m.sync_cost(1, 100), 0.0);
    }

    #[test]
    fn heterogeneous_uniform_speeds_match_homogeneous() {
        let sim = PrnaSim {
            grid: WorkGrid::from_fn(15, 10, |r, c| ((r * 7 + c * 3) % 23) as u64),
            sequential_work: 40,
        };
        let model = CostModel::default();
        let hetero = sim.run_heterogeneous(&[1.0; 4], true, &model);
        let homo = sim.run(4, Scheduling::Static(Policy::Greedy), &model);
        assert!((hetero.total_seconds - homo.total_seconds).abs() / homo.total_seconds < 1e-9);
    }

    #[test]
    fn speed_aware_beats_oblivious_on_mixed_cluster() {
        // Two fast + two slow processors: speed-oblivious greedy loads
        // all four evenly, so the slow pair gates the row.
        let sim = uniform_sim(20, 16, 1000);
        let model = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        let speeds = [2.0, 2.0, 1.0, 1.0];
        let aware = sim.run_heterogeneous(&speeds, true, &model);
        let oblivious = sim.run_heterogeneous(&speeds, false, &model);
        assert!(
            aware.stage_one_seconds < oblivious.stage_one_seconds * 0.85,
            "aware {} vs oblivious {}",
            aware.stage_one_seconds,
            oblivious.stage_one_seconds
        );
    }

    #[test]
    fn faster_processors_shorten_heterogeneous_runs() {
        let sim = uniform_sim(10, 12, 500);
        let model = CostModel::default();
        let slow = sim.run_heterogeneous(&[1.0, 1.0], true, &model);
        let fast = sim.run_heterogeneous(&[2.0, 2.0], true, &model);
        assert!(fast.total_seconds < slow.total_seconds);
    }

    #[test]
    fn traced_run_is_consistent_with_plain_run() {
        let sim = PrnaSim {
            grid: WorkGrid::from_fn(20, 12, |r, c| ((r * 13 + c * 5) % 40) as u64),
            sequential_work: 50,
        };
        let model = CostModel::default();
        let (out, rows) = sim.run_traced(4, Scheduling::Static(Policy::Greedy), &model);
        assert_eq!(rows.len(), 20);
        let stage_one: f64 = rows.iter().map(|r| r.makespan() + r.sync).sum();
        assert!((stage_one - out.stage_one_seconds).abs() < 1e-12);
        let sync: f64 = rows.iter().map(|r| r.sync).sum();
        assert!((sync - out.sync_seconds).abs() < 1e-12);
    }

    #[test]
    fn row_trace_imbalance() {
        let t = RowTrace {
            compute: vec![2.0, 1.0, 1.0],
            sync: 0.0,
        };
        assert_eq!(t.makespan(), 2.0);
        assert!((t.imbalance() - 1.5).abs() < 1e-12);
        let idle = RowTrace {
            compute: vec![0.0, 0.0],
            sync: 0.1,
        };
        assert_eq!(idle.imbalance(), 1.0);
    }

    #[test]
    fn contention_interpolates_with_occupancy() {
        let m = CostModel {
            seconds_per_cell: 1e-9,
            node_cores: 8,
            contention_at_full: 2.0,
            ..CostModel::default()
        };
        assert_eq!(m.effective_seconds_per_cell(1), 1e-9);
        // Half-ish occupancy (4 busy of 8): 1 + (4-1)/(8-1) = 10/7.
        let half = m.effective_seconds_per_cell(4);
        assert!((half / 1e-9 - (1.0 + 3.0 / 7.0)).abs() < 1e-9);
        // Saturated nodes: full 2x penalty, regardless of extra nodes.
        assert!((m.effective_seconds_per_cell(8) / 1e-9 - 2.0).abs() < 1e-9);
        assert!((m.effective_seconds_per_cell(64) / 1e-9 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn contention_disabled_by_default() {
        let m = CostModel::default();
        assert_eq!(m.effective_seconds_per_cell(64), m.seconds_per_cell);
    }

    #[test]
    fn contention_reduces_speedup_at_high_p() {
        let sim = uniform_sim(100, 128, 1000);
        let free = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        let contended = CostModel {
            node_cores: 8,
            contention_at_full: 2.0,
            ..free
        };
        let s_free = sim.speedup_curve(&[64], Scheduling::Static(Policy::Greedy), &free)[0].1;
        let s_cont = sim.speedup_curve(&[64], Scheduling::Static(Policy::Greedy), &contended)[0].1;
        assert!((s_free - 64.0).abs() < 1e-6);
        assert!(
            (s_cont - 32.0).abs() < 1e-6,
            "2x contention halves speedup, got {s_cont}"
        );
    }

    #[test]
    fn monotone_speedup_for_large_uniform_grids() {
        // With free synchronization, adding processors never hurts a
        // uniform grid; with realistic sync costs the curve may flatten
        // and even dip at high P (that is the *point* of Figure 8's
        // saturation), so monotonicity is only asserted for the
        // compute-bound model.
        let sim = uniform_sim(200, 128, 10_000);
        let free = CostModel {
            sync_alpha: 0.0,
            sync_beta_per_elem: 0.0,
            ..CostModel::default()
        };
        let curve = sim.speedup_curve(
            &[1, 2, 4, 8, 16, 32, 64],
            Scheduling::Static(Policy::Greedy),
            &free,
        );
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1, "speedup must grow: {curve:?}");
        }
        // And with realistic sync the curve is still >1 but saturates
        // below the free-sync curve at high P.
        let costly = CostModel::default();
        let s64_free = curve.last().unwrap().1;
        let s64_costly = sim.speedup_curve(&[64], Scheduling::Static(Policy::Greedy), &costly)[0].1;
        assert!(s64_costly > 1.0);
        assert!(s64_costly < s64_free);
    }
}

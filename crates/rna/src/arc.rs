//! The [`Arc`] type: a single base pairing between two sequence positions.

use std::fmt;

/// A single arc (base pair) between two positions of a sequence.
///
/// Invariant: `left < right`. Positions are zero-based. The invariant is
/// enforced by [`Arc::new`]; the fields are public for pattern matching but
/// all constructors normalize the order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Arc {
    /// Left (5') endpoint, zero-based.
    pub left: u32,
    /// Right (3') endpoint, zero-based; always greater than `left`.
    pub right: u32,
}

impl Arc {
    /// Creates an arc between two distinct positions, normalizing the order
    /// so `left < right`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (an arc cannot pair a position with itself).
    #[inline]
    pub fn new(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "an arc cannot pair a position with itself");
        if a < b {
            Arc { left: a, right: b }
        } else {
            Arc { left: b, right: a }
        }
    }

    /// Number of positions strictly between the endpoints.
    #[inline]
    pub fn span(&self) -> u32 {
        self.right - self.left - 1
    }

    /// Returns `true` if `other` is strictly nested inside `self`
    /// (`self.left < other.left` and `other.right < self.right`).
    #[inline]
    pub fn nests(&self, other: &Arc) -> bool {
        self.left < other.left && other.right < self.right
    }

    /// Returns `true` if the two arcs are disjoint (one ends before the
    /// other begins).
    #[inline]
    pub fn disjoint(&self, other: &Arc) -> bool {
        self.right < other.left || other.right < self.left
    }

    /// Returns `true` if the two arcs cross (pseudoknot configuration) or
    /// share an endpoint — i.e. they violate the non-pseudoknot model.
    #[inline]
    pub fn conflicts(&self, other: &Arc) -> bool {
        !(self.nests(other) || other.nests(self) || self.disjoint(other))
    }

    /// Returns `true` if `pos` lies strictly between the endpoints.
    #[inline]
    pub fn contains(&self, pos: u32) -> bool {
        self.left < pos && pos < self.right
    }

    /// Shifts both endpoints right by `offset`.
    #[inline]
    pub fn shifted(&self, offset: u32) -> Arc {
        Arc {
            left: self.left + offset,
            right: self.right + offset,
        }
    }
}

impl fmt::Display for Arc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.left, self.right)
    }
}

impl From<(u32, u32)> for Arc {
    fn from((a, b): (u32, u32)) -> Self {
        Arc::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_order() {
        assert_eq!(Arc::new(5, 2), Arc { left: 2, right: 5 });
        assert_eq!(Arc::new(2, 5), Arc { left: 2, right: 5 });
    }

    #[test]
    #[should_panic(expected = "cannot pair a position with itself")]
    fn new_rejects_self_pair() {
        let _ = Arc::new(3, 3);
    }

    #[test]
    fn span_counts_interior_positions() {
        assert_eq!(Arc::new(0, 1).span(), 0);
        assert_eq!(Arc::new(0, 9).span(), 8);
    }

    #[test]
    fn nesting_relation() {
        let outer = Arc::new(0, 9);
        let inner = Arc::new(1, 8);
        assert!(outer.nests(&inner));
        assert!(!inner.nests(&outer));
        assert!(!outer.nests(&outer));
    }

    #[test]
    fn disjoint_relation() {
        let a = Arc::new(0, 3);
        let b = Arc::new(4, 7);
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));
        // Adjacent endpoints are not shared, so (0,3) and (3,6) are NOT
        // disjoint: they share position 3.
        let c = Arc::new(3, 6);
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn conflicts_detects_crossing_and_shared_endpoints() {
        let a = Arc::new(0, 5);
        let crossing = Arc::new(3, 8);
        let shares = Arc::new(5, 9);
        let nested = Arc::new(1, 4);
        let apart = Arc::new(6, 9);
        assert!(a.conflicts(&crossing));
        assert!(a.conflicts(&shares));
        assert!(!a.conflicts(&nested));
        assert!(!a.conflicts(&apart));
    }

    #[test]
    fn contains_is_strict() {
        let a = Arc::new(2, 6);
        assert!(!a.contains(2));
        assert!(a.contains(3));
        assert!(a.contains(5));
        assert!(!a.contains(6));
    }

    #[test]
    fn display_format() {
        assert_eq!(Arc::new(1, 8).to_string(), "(1,8)");
    }

    #[test]
    fn shifted_moves_both_endpoints() {
        assert_eq!(Arc::new(1, 4).shifted(10), Arc::new(11, 14));
    }
}

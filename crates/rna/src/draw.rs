//! Text-mode arc diagrams.
//!
//! Renders a structure as stacked arc rows over the position axis, the
//! way the paper's Figure 1 draws them:
//!
//! ```text
//! .--------------------.
//! |  .-----.  .-----.  |
//! |  | .-. |  | .-. |  |
//! () (( ) )( ( ) ) ()
//! ```
//!
//! Arcs at greater nesting depth draw closer to the baseline; the last
//! line is the dot-bracket string itself. Purely for human inspection
//! (CLI `draw`, examples); the renderer is deterministic and tested on
//! exact outputs.

use crate::formats::dot_bracket;
use crate::structure::ArcStructure;

/// Renders the structure as an ASCII arc diagram. Returns one string
/// with `max_depth + 1` lines (or just the baseline for arcless
/// structures). Positions map 1:1 to columns.
pub fn arc_diagram(s: &ArcStructure) -> String {
    let n = s.len() as usize;
    let depth_rows = s.max_depth() as usize;
    // rows[0] is the outermost (top) row.
    let mut rows = vec![vec![' '; n]; depth_rows];
    let depths = s.arc_depths();
    for (k, arc) in s.arcs().iter().enumerate() {
        let row = depths[k] as usize;
        let (l, r) = (arc.left as usize, arc.right as usize);
        rows[row][l] = '.';
        rows[row][r] = '.';
        for cell in rows[row][l + 1..r].iter_mut() {
            *cell = '-';
        }
        // Verticals: connect this arc's endpoints downward through any
        // deeper rows (drawn later as '|' unless a deeper arc claims the
        // column).
        for deeper in rows.iter_mut().skip(row + 1) {
            if deeper[l] == ' ' {
                deeper[l] = '|';
            }
            if deeper[r] == ' ' {
                deeper[r] = '|';
            }
        }
    }
    let mut out = String::new();
    for row in rows {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&dot_bracket::to_string(s));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn single_arc() {
        let s = dot_bracket::parse("(..)").unwrap();
        assert_eq!(arc_diagram(&s), ".--.\n(..)\n");
    }

    #[test]
    fn nested_arcs_stack() {
        let s = dot_bracket::parse("((.))").unwrap();
        let d = arc_diagram(&s);
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines, vec![".---.", "|.-.|", "((.))"]);
    }

    #[test]
    fn sequential_arcs_share_a_row() {
        let s = dot_bracket::parse("(.)(.)").unwrap();
        let d = arc_diagram(&s);
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines, vec![".-..-.", "(.)(.)"]);
    }

    #[test]
    fn figure_1_shape() {
        // The paper's Figure 1: (0,19), (1,8), (9,18).
        let s = ArcStructure::new(
            20,
            [(0u32, 19u32), (1, 8), (9, 18)].map(crate::arc::Arc::from),
        )
        .unwrap();
        let d = arc_diagram(&s);
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with('.') && lines[0].ends_with('.'));
        assert_eq!(lines[1].matches('.').count(), 4, "two inner arcs");
        assert_eq!(lines[2], "((......)(........))");
    }

    #[test]
    fn arcless_structure_is_just_dots() {
        let s = ArcStructure::unpaired(4);
        assert_eq!(arc_diagram(&s), "....\n");
    }

    #[test]
    fn column_count_matches_length() {
        for seed in 0..5 {
            let s = generate::random_structure(40, 0.8, seed);
            let d = arc_diagram(&s);
            let last = d.lines().last().unwrap();
            assert_eq!(last.len(), 40);
            for line in d.lines() {
                assert!(line.len() <= 40);
            }
        }
    }
}

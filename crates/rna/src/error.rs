//! Error types for structure construction and parsing.

use std::fmt;

use crate::arc::Arc;

/// Errors produced when constructing or parsing an [`crate::ArcStructure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// An arc references a position at or beyond the sequence length.
    OutOfBounds {
        /// The offending arc.
        arc: Arc,
        /// The sequence length the arc was validated against.
        len: u32,
    },
    /// Two arcs share an endpoint (each base may be linked at most once).
    SharedEndpoint {
        /// The shared position.
        position: u32,
    },
    /// Two arcs cross, which the non-pseudoknot model forbids.
    CrossingArcs {
        /// The first arc of the crossing pair.
        first: Arc,
        /// The second arc of the crossing pair.
        second: Arc,
    },
    /// The same arc appears more than once.
    DuplicateArc {
        /// The duplicated arc.
        arc: Arc,
    },
    /// A parse error in a structure file format.
    Parse {
        /// Line number (1-based) where the error occurred, when known.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl StructureError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        StructureError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::OutOfBounds { arc, len } => {
                write!(f, "arc {arc} out of bounds for sequence of length {len}")
            }
            StructureError::SharedEndpoint { position } => {
                write!(f, "position {position} is an endpoint of more than one arc")
            }
            StructureError::CrossingArcs { first, second } => {
                write!(
                    f,
                    "arcs {first} and {second} cross (pseudoknots are not permitted)"
                )
            }
            StructureError::DuplicateArc { arc } => {
                write!(f, "arc {arc} appears more than once")
            }
            StructureError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for StructureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StructureError::OutOfBounds {
            arc: Arc::new(3, 12),
            len: 10,
        };
        assert!(e.to_string().contains("(3,12)"));
        assert!(e.to_string().contains("10"));

        let e = StructureError::SharedEndpoint { position: 7 };
        assert!(e.to_string().contains('7'));

        let e = StructureError::CrossingArcs {
            first: Arc::new(0, 5),
            second: Arc::new(3, 8),
        };
        assert!(e.to_string().contains("cross"));

        let e = StructureError::parse(4, "bad token");
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("bad token"));
    }
}

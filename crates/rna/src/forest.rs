//! Tree view of a secondary structure.
//!
//! A non-pseudoknot structure is exactly an ordered forest: each arc is
//! a node, nesting is parenthood, and sequence order orders siblings.
//! [`StructureForest`] materializes that view with child lists and
//! preorder traversal, and supports extracting the substructure under an
//! arc as a standalone [`ArcStructure`] — the object a child slice
//! conceptually operates on.

use crate::arc::Arc;
use crate::structure::ArcStructure;

/// One node of the forest: an arc plus its children (indices into the
/// forest's node array, which is parallel to the structure's arc array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The arc this node represents.
    pub arc: Arc,
    /// Parent arc index, or `None` for top-level arcs.
    pub parent: Option<u32>,
    /// Children in sequence order (left to right).
    pub children: Vec<u32>,
    /// Nesting depth (top-level arcs have depth 0).
    pub depth: u32,
}

/// The ordered forest of a structure's arcs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureForest {
    nodes: Vec<Node>,
    roots: Vec<u32>,
}

impl StructureForest {
    /// Builds the forest view. Node `k` corresponds to arc index `k`
    /// (right-endpoint order).
    pub fn build(s: &ArcStructure) -> Self {
        let parents = s.arc_parents();
        let depths = s.arc_depths();
        let mut nodes: Vec<Node> = s
            .arcs()
            .iter()
            .zip(parents.iter().zip(&depths))
            .map(|(&arc, (&parent, &depth))| Node {
                arc,
                parent,
                children: Vec::new(),
                depth,
            })
            .collect();
        let mut roots = Vec::new();
        // Children collected in left-endpoint order = sequence order.
        let mut order: Vec<u32> = (0..nodes.len() as u32).collect();
        order.sort_by_key(|&k| nodes[k as usize].arc.left);
        for k in order {
            match nodes[k as usize].parent {
                Some(p) => nodes[p as usize].children.push(k),
                None => roots.push(k),
            }
        }
        StructureForest { nodes, roots }
    }

    /// All nodes (indexable by arc index).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Top-level arcs in sequence order.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of arcs in the subtree rooted at `k` (including `k`).
    pub fn subtree_size(&self, k: u32) -> u32 {
        1 + self.nodes[k as usize]
            .children
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<u32>()
    }

    /// Preorder traversal of the whole forest (roots left to right).
    pub fn preorder(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<u32> = self.roots.iter().rev().copied().collect();
        while let Some(k) = stack.pop() {
            out.push(k);
            stack.extend(self.nodes[k as usize].children.iter().rev());
        }
        out
    }

    /// Extracts the substructure strictly under arc `k` as a standalone
    /// structure over the positions `(arc.left, arc.right)` exclusive —
    /// the window a child slice spawned at `k` tabulates.
    pub fn substructure_under(&self, s: &ArcStructure, k: u32) -> ArcStructure {
        let arc = self.nodes[k as usize].arc;
        let offset = arc.left + 1;
        let len = arc.span();
        let arcs = s
            .arcs_in_window(arc.left + 1, arc.right.saturating_sub(1))
            .into_iter()
            .map(|j| {
                let a = s.arc(j);
                Arc::new(a.left - offset, a.right - offset)
            });
        ArcStructure::new(len, arcs).expect("a window of a valid structure is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::dot_bracket;
    use crate::generate;

    #[test]
    fn forest_of_nested_structure_is_a_path() {
        let s = generate::worst_case_nested(5);
        let f = StructureForest::build(&s);
        assert_eq!(f.roots(), &[4]); // outermost arc has the largest right endpoint
        for k in (1..5u32).rev() {
            assert_eq!(f.nodes()[k as usize].children, vec![k - 1]);
        }
        assert_eq!(f.subtree_size(4), 5);
        assert_eq!(f.subtree_size(0), 1);
    }

    #[test]
    fn forest_of_hairpin_chain_is_flat() {
        let s = generate::hairpin_chain(3, 1, 2);
        let f = StructureForest::build(&s);
        assert_eq!(f.roots().len(), 3);
        assert!(f.nodes().iter().all(|n| n.children.is_empty()));
        // Roots in sequence order.
        let lefts: Vec<u32> = f
            .roots()
            .iter()
            .map(|&r| f.nodes()[r as usize].arc.left)
            .collect();
        assert!(lefts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn children_are_in_sequence_order() {
        let s = dot_bracket::parse("((..)(..)(..))").unwrap();
        let f = StructureForest::build(&s);
        let root = f.roots()[0];
        let kids = &f.nodes()[root as usize].children;
        assert_eq!(kids.len(), 3);
        let lefts: Vec<u32> = kids
            .iter()
            .map(|&k| f.nodes()[k as usize].arc.left)
            .collect();
        assert!(lefts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn preorder_visits_every_node_parent_first() {
        for seed in 0..10 {
            let s = generate::random_structure(60, 1.0, seed);
            let f = StructureForest::build(&s);
            let order = f.preorder();
            assert_eq!(order.len(), s.num_arcs() as usize);
            let mut pos = vec![usize::MAX; order.len()];
            for (i, &k) in order.iter().enumerate() {
                pos[k as usize] = i;
            }
            for (k, n) in f.nodes().iter().enumerate() {
                if let Some(p) = n.parent {
                    assert!(pos[p as usize] < pos[k], "parent before child");
                }
            }
        }
    }

    #[test]
    fn substructure_under_matches_window() {
        let s = dot_bracket::parse("(((..))(.))").unwrap();
        let f = StructureForest::build(&s);
        let root = f.roots()[0];
        let sub = f.substructure_under(&s, root);
        assert_eq!(sub.len(), s.len() - 2);
        assert_eq!(sub.num_arcs(), s.num_arcs() - 1);
        assert_eq!(dot_bracket::to_string(&sub), "((..))(.)");
    }

    #[test]
    fn substructure_under_leaf_is_unpaired() {
        let s = dot_bracket::parse("(...)").unwrap();
        let f = StructureForest::build(&s);
        let sub = f.substructure_under(&s, 0);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.num_arcs(), 0);
    }

    #[test]
    fn subtree_sizes_sum_to_arc_count() {
        for seed in 0..8 {
            let s = generate::random_structure(50, 0.9, seed);
            let f = StructureForest::build(&s);
            let total: u32 = f.roots().iter().map(|&r| f.subtree_size(r)).sum();
            assert_eq!(total, s.num_arcs());
        }
    }
}

//! BPSEQ format: three whitespace-separated columns per line —
//! `position base pair` — with 1-based positions and `0` for unpaired.
//!
//! This is the format used by the comparative RNA databases from which the
//! paper's 23S ribosomal RNA structures (GenBank L47585, U48228) originate.

use crate::arc::Arc;
use crate::error::StructureError;
use crate::sequence::{Base, Sequence};
use crate::structure::ArcStructure;

/// A structure together with its sequence, as stored in a BPSEQ file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpseqRecord {
    /// The base sequence.
    pub sequence: Sequence,
    /// The validated secondary structure.
    pub structure: ArcStructure,
}

/// Parses a BPSEQ file. Lines starting with `#` and blank lines are skipped.
///
/// The pairing column must be symmetric (if `i` pairs with `j`, then line
/// `j` must pair back with `i`); asymmetric files are rejected.
pub fn parse(input: &str) -> Result<BpseqRecord, StructureError> {
    let mut bases = Vec::new();
    let mut pairs: Vec<u32> = Vec::new(); // 1-based partner, 0 = unpaired
    let mut expected: u32 = 1;
    for (lno, raw) in input.lines().enumerate() {
        let lno = lno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() != 3 {
            return Err(StructureError::parse(
                lno,
                format!("expected 3 columns, found {}", cols.len()),
            ));
        }
        let idx: u32 = cols[0]
            .parse()
            .map_err(|_| StructureError::parse(lno, "bad position index"))?;
        if idx != expected {
            return Err(StructureError::parse(
                lno,
                format!("expected position {expected}, found {idx}"),
            ));
        }
        expected += 1;
        let base_char = cols[1].chars().next().unwrap();
        let base = Base::from_char(base_char)
            .ok_or_else(|| StructureError::parse(lno, format!("unknown base '{base_char}'")))?;
        bases.push(base);
        let pair: u32 = cols[2]
            .parse()
            .map_err(|_| StructureError::parse(lno, "bad pair column"))?;
        pairs.push(pair);
    }

    let n = bases.len() as u32;
    let mut arcs = Vec::new();
    for (i, &p) in pairs.iter().enumerate() {
        let pos = i as u32 + 1; // 1-based
        if p == 0 {
            continue;
        }
        if p > n {
            return Err(StructureError::parse(
                i + 1,
                format!("pair index {p} out of range"),
            ));
        }
        if p == pos {
            return Err(StructureError::parse(i + 1, "position paired with itself"));
        }
        // Symmetry check.
        if pairs[(p - 1) as usize] != pos {
            return Err(StructureError::parse(
                i + 1,
                format!(
                    "asymmetric pairing: {pos} -> {p} but {p} -> {}",
                    pairs[(p - 1) as usize]
                ),
            ));
        }
        if p > pos {
            arcs.push(Arc::new(pos - 1, p - 1));
        }
    }
    let structure = ArcStructure::new(n, arcs)?;
    Ok(BpseqRecord {
        sequence: Sequence::new(bases),
        structure,
    })
}

/// Serializes a sequence/structure pair to BPSEQ format.
pub fn to_string(record: &BpseqRecord) -> String {
    let n = record.structure.len();
    assert_eq!(
        n as usize,
        record.sequence.len(),
        "sequence and structure lengths must match"
    );
    let mut out = String::with_capacity(12 * n as usize);
    for pos in 0..n {
        let base = record.sequence.base(pos as usize);
        let pair = record.structure.partner_of(pos).map_or(0, |p| p + 1);
        out.push_str(&format!("{} {} {}\n", pos + 1, base, pair));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny hairpin
1 G 5
2 A 0
3 A 0
4 A 0
5 C 1
";

    #[test]
    fn parse_sample() {
        let rec = parse(SAMPLE).unwrap();
        assert_eq!(rec.sequence.to_string(), "GAAAC");
        assert_eq!(rec.structure.num_arcs(), 1);
        assert_eq!(rec.structure.arc(0), Arc::new(0, 4));
    }

    #[test]
    fn round_trip() {
        let rec = parse(SAMPLE).unwrap();
        let text = to_string(&rec);
        let rec2 = parse(&text).unwrap();
        assert_eq!(rec, rec2);
    }

    #[test]
    fn rejects_asymmetric_pairing() {
        let bad = "1 G 3\n2 A 0\n3 C 2\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn rejects_self_pairing() {
        let bad = "1 G 1\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn rejects_out_of_range_pair() {
        let bad = "1 G 9\n2 A 0\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn rejects_wrong_column_count() {
        let bad = "1 G\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn empty_input_gives_empty_structure() {
        let rec = parse("# only comments\n").unwrap();
        assert_eq!(rec.structure.len(), 0);
    }
}

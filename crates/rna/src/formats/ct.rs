//! CT ("connectivity table") format, as emitted by mfold / RNAstructure.
//!
//! A CT file has a header line (`<length> <title...>`) followed by one line
//! per position with six columns:
//!
//! ```text
//! index  base  index-1  index+1  pair  index
//! ```
//!
//! `pair` is the 1-based partner position, or `0` for unpaired bases.

use crate::arc::Arc;
use crate::error::StructureError;
use crate::sequence::{Base, Sequence};
use crate::structure::ArcStructure;

/// A structure together with its sequence and title, as stored in a CT file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtRecord {
    /// Free-text title from the header line.
    pub title: String,
    /// The base sequence.
    pub sequence: Sequence,
    /// The validated secondary structure.
    pub structure: ArcStructure,
}

/// Parses a CT file.
pub fn parse(input: &str) -> Result<CtRecord, StructureError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, header) = lines
        .next()
        .ok_or_else(|| StructureError::parse(0, "empty CT file"))?;
    let mut hparts = header.split_whitespace();
    let len: u32 = hparts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| StructureError::parse(hline, "header must start with the length"))?;
    let title: String = hparts.collect::<Vec<_>>().join(" ");

    let mut bases = Vec::with_capacity(len as usize);
    let mut arcs = Vec::new();
    let mut expected: u32 = 1;
    for (lno, line) in lines {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() < 5 {
            return Err(StructureError::parse(
                lno,
                format!("expected at least 5 columns, found {}", cols.len()),
            ));
        }
        let idx: u32 = cols[0]
            .parse()
            .map_err(|_| StructureError::parse(lno, "bad position index"))?;
        if idx != expected {
            return Err(StructureError::parse(
                lno,
                format!("expected position {expected}, found {idx}"),
            ));
        }
        expected += 1;
        let base_char = cols[1]
            .chars()
            .next()
            .ok_or_else(|| StructureError::parse(lno, "missing base column"))?;
        let base = Base::from_char(base_char)
            .ok_or_else(|| StructureError::parse(lno, format!("unknown base '{base_char}'")))?;
        bases.push(base);
        let pair: u32 = cols[4]
            .parse()
            .map_err(|_| StructureError::parse(lno, "bad pair column"))?;
        if pair != 0 && pair > len {
            return Err(StructureError::parse(
                lno,
                format!("pair index {pair} out of range"),
            ));
        }
        // Record each arc once, from its left endpoint.
        if pair != 0 && pair > idx {
            arcs.push(Arc::new(idx - 1, pair - 1));
        }
    }
    if expected - 1 != len {
        return Err(StructureError::parse(
            0,
            format!(
                "header declares {len} positions but file has {}",
                expected - 1
            ),
        ));
    }
    let structure = ArcStructure::new(len, arcs)?;
    Ok(CtRecord {
        title,
        sequence: Sequence::new(bases),
        structure,
    })
}

/// Serializes a structure (with its sequence and title) to CT format.
pub fn to_string(record: &CtRecord) -> String {
    let n = record.structure.len();
    assert_eq!(
        n as usize,
        record.sequence.len(),
        "sequence and structure lengths must match"
    );
    let mut out = String::with_capacity(32 * n as usize);
    out.push_str(&format!("{n} {}\n", record.title));
    for pos in 0..n {
        let base = record.sequence.base(pos as usize);
        let pair = record.structure.partner_of(pos).map_or(0, |p| p + 1);
        out.push_str(&format!(
            "{} {} {} {} {} {}\n",
            pos + 1,
            base,
            pos, // index - 1 (0 for the first base)
            if pos + 2 <= n { pos + 2 } else { 0 },
            pair,
            pos + 1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
5 test hairpin
1 G 0 2 5 1
2 A 1 3 0 2
3 A 2 4 0 3
4 A 3 5 0 4
5 C 4 0 1 5
";

    #[test]
    fn parse_sample() {
        let rec = parse(SAMPLE).unwrap();
        assert_eq!(rec.title, "test hairpin");
        assert_eq!(rec.sequence.to_string(), "GAAAC");
        assert_eq!(rec.structure.num_arcs(), 1);
        assert_eq!(rec.structure.arc(0), Arc::new(0, 4));
    }

    #[test]
    fn round_trip() {
        let rec = parse(SAMPLE).unwrap();
        let text = to_string(&rec);
        let rec2 = parse(&text).unwrap();
        assert_eq!(rec, rec2);
    }

    #[test]
    fn parse_rejects_length_mismatch() {
        let bad = "3 t\n1 A 0 2 0 1\n2 C 1 3 0 2\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn parse_rejects_out_of_order_index() {
        let bad = "2 t\n2 A 0 2 0 1\n1 C 1 3 0 2\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn parse_rejects_bad_base() {
        let bad = "1 t\n1 Z 0 0 0 1\n";
        assert!(matches!(parse(bad), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn parse_rejects_crossing_pairs() {
        // (1,3) and (2,4) cross.
        let bad = "4 t\n1 A 0 2 3 1\n2 C 1 3 4 2\n3 U 2 4 1 3\n4 G 3 0 2 4\n";
        assert!(matches!(
            parse(bad),
            Err(StructureError::CrossingArcs { .. })
        ));
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = format!("# comment\n\n{SAMPLE}");
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn parse_empty_file_errors() {
        assert!(matches!(parse(""), Err(StructureError::Parse { .. })));
    }
}

//! Dot-bracket notation: `(`, `)`, and `.` characters, one per position.
//!
//! ```
//! use rna_structure::formats::dot_bracket;
//!
//! let s = dot_bracket::parse("((..)).(.)").unwrap();
//! assert_eq!(s.num_arcs(), 3);
//! assert_eq!(dot_bracket::to_string(&s), "((..)).(.)");
//! ```

use crate::arc::Arc;
use crate::error::StructureError;
use crate::structure::ArcStructure;

/// Parses a dot-bracket string into a structure.
///
/// Accepted characters: `(` opens an arc, `)` closes the innermost open
/// arc, `.` (or `-`, `:`, `,`) is an unpaired position. Whitespace is
/// ignored. Unbalanced brackets produce a [`StructureError::Parse`].
pub fn parse(input: &str) -> Result<ArcStructure, StructureError> {
    let mut arcs = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut pos: u32 = 0;
    for c in input.chars() {
        if c.is_whitespace() {
            continue;
        }
        match c {
            '(' => {
                stack.push(pos);
                pos += 1;
            }
            ')' => {
                let left = stack.pop().ok_or_else(|| {
                    StructureError::parse(1, format!("unmatched ')' at position {pos}"))
                })?;
                arcs.push(Arc::new(left, pos));
                pos += 1;
            }
            '.' | '-' | ':' | ',' => {
                pos += 1;
            }
            other => {
                return Err(StructureError::parse(
                    1,
                    format!("unexpected character '{other}' at position {pos}"),
                ));
            }
        }
    }
    if let Some(left) = stack.pop() {
        return Err(StructureError::parse(
            1,
            format!("unmatched '(' at position {left}"),
        ));
    }
    ArcStructure::new(pos, arcs)
}

/// Serializes a structure to dot-bracket notation.
pub fn to_string(s: &ArcStructure) -> String {
    let mut out = vec!['.'; s.len() as usize];
    for arc in s.arcs() {
        out[arc.left as usize] = '(';
        out[arc.right as usize] = ')';
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_hairpin() {
        let s = parse("(((...)))").unwrap();
        assert_eq!(s.len(), 9);
        assert_eq!(s.num_arcs(), 3);
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn parse_empty() {
        let s = parse("").unwrap();
        assert_eq!(s.len(), 0);
        let s = parse("....").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_arcs(), 0);
    }

    #[test]
    fn parse_alternative_unpaired_chars() {
        let s = parse("(-:,)").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.num_arcs(), 1);
    }

    #[test]
    fn parse_ignores_whitespace() {
        let s = parse("( ( . ) )").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.num_arcs(), 2);
    }

    #[test]
    fn parse_rejects_unbalanced() {
        assert!(matches!(parse("(()"), Err(StructureError::Parse { .. })));
        assert!(matches!(parse("())"), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(parse("(x)"), Err(StructureError::Parse { .. })));
    }

    #[test]
    fn round_trip() {
        for db in ["", ".", "()", "(())", "()()", "((..))..(.)", "(((...)))"] {
            let s = parse(db).unwrap();
            assert_eq!(to_string(&s), db, "round trip of {db:?}");
        }
    }

    #[test]
    fn round_trip_normalizes_unpaired_chars() {
        let s = parse("(-)").unwrap();
        assert_eq!(to_string(&s), "(.)");
    }
}

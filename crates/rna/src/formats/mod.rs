//! Text formats for reading and writing secondary structures.
//!
//! Three formats are supported:
//!
//! * [`dot_bracket`] — the ubiquitous single-line notation where `(` and `)`
//!   mark arc endpoints and `.` marks unpaired positions;
//! * [`ct`] — the "connectivity table" format emitted by mfold/RNAstructure;
//! * [`bpseq`] — the three-column base-pair format used by comparative RNA
//!   databases (the source of the paper's 23S rRNA structures).
//!
//! All parsers validate the non-pseudoknot model via
//! [`ArcStructure::new`](crate::ArcStructure::new), so a successfully parsed
//! structure is always usable by the MCOS algorithms.

pub mod bpseq;
pub mod ct;
pub mod dot_bracket;

//! Deterministic generators for synthetic secondary structures.
//!
//! The experiment harness uses three families of inputs:
//!
//! * [`worst_case_nested`] — the paper's *contrived worst-case data*: the
//!   maximum number of nested arcs for a given length, which maximizes the
//!   number of spawned child slices (§IV-C, §VI);
//! * [`rrna_like`] — synthetic stand-ins for the paper's 23S ribosomal RNA
//!   structures (Table II), matching length and arc count with realistic
//!   stem/loop organization (see DESIGN.md, substitution 3);
//! * [`random_non_crossing`] — random valid structures for property tests.
//!
//! All generators are deterministic given their parameters (and seed, where
//! applicable), so experiments are reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arc::Arc;
use crate::sequence::{Base, Sequence};
use crate::structure::ArcStructure;

/// The paper's contrived worst case: `num_arcs` fully nested arcs over a
/// sequence of `2 * num_arcs` positions — arc `i` spans
/// `(i, 2*num_arcs - 1 - i)`.
///
/// This is the densest possible non-pseudoknot structure and maximizes the
/// number of spawned child slices, fully exhausting the SRNA algorithms.
pub fn worst_case_nested(num_arcs: u32) -> ArcStructure {
    let n = 2 * num_arcs;
    let arcs = (0..num_arcs).map(|i| Arc::new(i, n - 1 - i));
    ArcStructure::new(n, arcs).expect("fully nested arcs are always valid")
}

/// A chain of `num_hairpins` sequential hairpins, each a stem of
/// `stem_depth` nested arcs around `loop_len` unpaired positions.
///
/// Useful as a structured counterpoint to the fully nested worst case: the
/// same arc count spread across disjoint groups produces many small child
/// slices instead of few enormous ones.
pub fn hairpin_chain(num_hairpins: u32, stem_depth: u32, loop_len: u32) -> ArcStructure {
    let hairpin_len = 2 * stem_depth + loop_len;
    let n = num_hairpins * hairpin_len;
    let mut arcs = Vec::with_capacity((num_hairpins * stem_depth) as usize);
    for h in 0..num_hairpins {
        let base = h * hairpin_len;
        for d in 0..stem_depth {
            arcs.push(Arc::new(base + d, base + hairpin_len - 1 - d));
        }
    }
    ArcStructure::new(n, arcs).expect("disjoint hairpins are always valid")
}

/// A "staircase" of `groups` sequential groups where group `g` contains
/// `base_depth + g * step` nested arcs.
///
/// Produces deliberately *skewed* per-column workloads, used by the
/// load-balancing ablations: greedy scheduling shines when task weights are
/// uneven.
pub fn skewed_groups(groups: u32, base_depth: u32, step: u32) -> ArcStructure {
    let mut s = ArcStructure::unpaired(0);
    for g in 0..groups {
        let depth = base_depth + g * step;
        let group = worst_case_nested(depth);
        s = s.concat(&group);
    }
    s
}

/// A chromosome-scale *sparse* input: `num_hairpins` hairpins (stems of
/// `stem_depth` arcs around `loop_len` unpaired positions) scattered
/// along a sequence of `len` positions, with the leftover length
/// distributed as random unpaired spacers between them.
///
/// This is the linear-space showcase shape: arcs are shallow and
/// disjoint, so the retention plan's liveness floor is a vanishing
/// fraction of the `A₁ × A₂` grid (most cells die the step after they
/// are written). Deterministic per `(parameters, seed)`. Panics if
/// `len` cannot hold the hairpins.
pub fn sparse_hairpin_field(
    len: u32,
    num_hairpins: u32,
    stem_depth: u32,
    loop_len: u32,
    seed: u64,
) -> ArcStructure {
    let hairpin_len = 2 * stem_depth + loop_len;
    let used = num_hairpins * hairpin_len;
    assert!(
        len >= used,
        "length {len} cannot hold {num_hairpins} hairpins of {hairpin_len} nt"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Random spacer per slot (before each hairpin and after the last).
    let mut spacers = vec![0u32; num_hairpins as usize + 1];
    for _ in 0..(len - used) {
        let slot = rng.gen_range(0..spacers.len());
        spacers[slot] += 1;
    }
    let mut arcs = Vec::with_capacity((num_hairpins * stem_depth) as usize);
    let mut pos = 0u32;
    for h in 0..num_hairpins {
        pos += spacers[h as usize];
        for d in 0..stem_depth {
            arcs.push(Arc::new(pos + d, pos + hairpin_len - 1 - d));
        }
        pos += hairpin_len;
    }
    ArcStructure::new(len, arcs).expect("disjoint hairpins are always valid")
}

/// A chromosome-scale *skewed sparse* input: `families` disjoint fully
/// nested arc families, family `f` holding `base_depth + f * step`
/// arcs, scattered along `len` positions with random unpaired spacers.
///
/// Combines the load-balancing skew of [`skewed_groups`] with the low
/// arc density of [`sparse_hairpin_field`]: per-column work is very
/// uneven *and* the liveness floor stays far below the grid.
/// Deterministic per `(parameters, seed)`. Panics if `len` cannot hold
/// the families.
pub fn sparse_skewed_families(
    len: u32,
    families: u32,
    base_depth: u32,
    step: u32,
    seed: u64,
) -> ArcStructure {
    let total_arcs: u32 = (0..families).map(|f| base_depth + f * step).sum();
    let used = 2 * total_arcs;
    assert!(
        len >= used,
        "length {len} cannot hold {families} families ({total_arcs} arcs)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spacers = vec![0u32; families as usize + 1];
    for _ in 0..(len - used) {
        let slot = rng.gen_range(0..spacers.len());
        spacers[slot] += 1;
    }
    let mut arcs = Vec::with_capacity(total_arcs as usize);
    let mut pos = 0u32;
    for f in 0..families {
        pos += spacers[f as usize];
        let depth = base_depth + f * step;
        let span = 2 * depth;
        for d in 0..depth {
            arcs.push(Arc::new(pos + d, pos + span - 1 - d));
        }
        pos += span;
    }
    ArcStructure::new(len, arcs).expect("disjoint nested families are always valid")
}

/// Configuration for the [`rrna_like`] generator.
#[derive(Debug, Clone)]
pub struct RrnaConfig {
    /// Total sequence length (number of positions).
    pub len: u32,
    /// Exact number of arcs to generate.
    pub arcs: u32,
    /// Mean stem length (consecutive nested arcs); stems are sampled from a
    /// geometric-like distribution with this mean. Real rRNA helices
    /// average roughly 6–8 base pairs.
    pub mean_stem: u32,
    /// Probability that a new stem nests inside the most recent open
    /// multiloop rather than starting a new top-level domain. Controls how
    /// deep the branching tree grows.
    pub nest_bias: f64,
}

impl RrnaConfig {
    /// Configuration matching the paper's "Fungus" input — 23S rRNA of
    /// *Suillus sinuspaulianus* (GenBank L47585): 4216 bases, 721 arcs.
    pub fn fungus() -> Self {
        RrnaConfig {
            len: 4216,
            arcs: 721,
            mean_stem: 7,
            nest_bias: 0.55,
        }
    }

    /// Configuration at the scale of the *Escherichia coli* 23S rRNA
    /// (2904 bases) with a moderate helix count — the mem-profile
    /// smoke input: big enough that the memo grid dominates RSS, small
    /// enough for CI.
    pub fn ecoli() -> Self {
        RrnaConfig {
            len: 2904,
            arcs: 580,
            mean_stem: 7,
            nest_bias: 0.55,
        }
    }

    /// Configuration matching the paper's "Malaria Parasite" input — 23S
    /// rRNA of *Plasmodium falciparum* (GenBank U48228): 4381 bases,
    /// 1126 arcs.
    pub fn malaria() -> Self {
        RrnaConfig {
            len: 4381,
            arcs: 1126,
            mean_stem: 7,
            nest_bias: 0.55,
        }
    }
}

/// Generates a synthetic rRNA-like structure: an exact number of arcs
/// organized into stems of geometric length, arranged in a branching
/// multiloop tree, with unpaired positions distributed over the loops.
///
/// Deterministic for a given `(config, seed)` pair. Panics if
/// `config.len < 2 * config.arcs` (not enough positions to place the arcs).
pub fn rrna_like(config: &RrnaConfig, seed: u64) -> ArcStructure {
    assert!(
        config.len >= 2 * config.arcs,
        "length {} cannot hold {} arcs",
        config.len,
        config.arcs
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Step 1: partition the arc budget into stems with ~geometric lengths.
    let mut stems: Vec<u32> = Vec::new();
    let mut remaining = config.arcs;
    while remaining > 0 {
        let mut s = 1u32;
        // Geometric with success probability 1/mean_stem => mean mean_stem.
        while s < remaining && rng.gen::<f64>() > 1.0 / config.mean_stem as f64 {
            s += 1;
        }
        let s = s.min(remaining);
        stems.push(s);
        remaining -= s;
    }

    // Step 2: arrange stems into a random forest. `tree[i]` holds the
    // children (stem indices) of stem i; `roots` are top-level stems.
    // Each new stem either nests under a uniformly random earlier stem
    // (with probability nest_bias) or becomes a new root.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); stems.len()];
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..stems.len() {
        if i > 0 && rng.gen::<f64>() < config.nest_bias {
            let parent = rng.gen_range(0..i);
            children[parent].push(i);
        } else {
            roots.push(i);
        }
    }

    // Step 3: lay out the forest as dot-bracket text via an explicit DFS,
    // recording the unpaired "gap slots" (before/between/after stems and
    // hairpin loops) so the leftover positions can be distributed.
    //
    // Layout grammar: forest = gap (stem gap)* ; stem(d) = '('^d body ')'^d
    // where body is the child forest (or a pure gap for leaf stems).
    #[derive(Clone, Copy)]
    enum Piece {
        Open(u32),
        Close(u32),
        /// Gap slot index (hairpin-loop slots are tracked separately so
        /// they can be given a minimum width).
        Gap {
            slot: usize,
        },
    }

    let mut pieces: Vec<Piece> = Vec::new();
    let mut num_slots = 0usize;
    let mut hairpin_slots: Vec<usize> = Vec::new();
    let mut new_gap = |pieces: &mut Vec<Piece>, hairpin: bool| {
        let slot = num_slots;
        num_slots += 1;
        if hairpin {
            hairpin_slots.push(slot);
        }
        pieces.push(Piece::Gap { slot });
    };

    // Iterative DFS over the forest: emit gap, then for each stem at this
    // level: open, recurse, close, gap.
    fn emit_forest(
        level: &[usize],
        stems: &[u32],
        children: &[Vec<usize>],
        pieces: &mut Vec<Piece>,
        new_gap: &mut dyn FnMut(&mut Vec<Piece>, bool),
    ) {
        new_gap(pieces, false);
        for &s in level {
            pieces.push(Piece::Open(stems[s]));
            if children[s].is_empty() {
                new_gap(pieces, true);
            } else {
                emit_forest(&children[s], stems, children, pieces, new_gap);
            }
            pieces.push(Piece::Close(stems[s]));
            new_gap(pieces, false);
        }
    }
    emit_forest(&roots, &stems, &children, &mut pieces, &mut new_gap);

    // Step 4: distribute the unpaired budget over the gap slots. Hairpin
    // loops get a minimum of 3 positions when the budget allows (no base
    // pair closes a loop shorter than 3 nt in real RNA).
    let unpaired = config.len - 2 * config.arcs;
    let mut slot_sizes = vec![0u32; num_slots];
    let mut budget = unpaired;
    for &h in &hairpin_slots {
        let want = 3.min(budget);
        slot_sizes[h] = want;
        budget -= want;
    }
    // Remaining budget: uniformly random slot per position.
    for _ in 0..budget {
        let slot = rng.gen_range(0..num_slots);
        slot_sizes[slot] += 1;
    }

    // Step 5: materialize arcs by replaying the pieces with a position
    // cursor and a stack of open stem endpoints.
    let mut arcs: Vec<Arc> = Vec::with_capacity(config.arcs as usize);
    let mut pos: u32 = 0;
    let mut open_stack: Vec<u32> = Vec::new();
    for piece in &pieces {
        match *piece {
            Piece::Open(d) => {
                for _ in 0..d {
                    open_stack.push(pos);
                    pos += 1;
                }
            }
            Piece::Close(d) => {
                for _ in 0..d {
                    let left = open_stack.pop().expect("balanced layout");
                    arcs.push(Arc::new(left, pos));
                    pos += 1;
                }
            }
            Piece::Gap { slot } => {
                pos += slot_sizes[slot];
            }
        }
    }
    debug_assert_eq!(pos, config.len);
    debug_assert!(open_stack.is_empty());
    ArcStructure::new(config.len, arcs).expect("generated layout is balanced and non-crossing")
}

/// Generates a random valid non-pseudoknot structure of length `len` using
/// a stack process: at each position, open a new arc with probability
/// `open_prob`, close the innermost open arc with probability `close_prob`
/// (when one is open and closable), otherwise leave the position unpaired.
///
/// All open arcs are closed by the end (forced closes near the end of the
/// sequence), so the result is always valid. Deterministic per `(len,
/// open_prob, close_prob, rng state)`.
pub fn random_non_crossing<R: Rng>(
    len: u32,
    open_prob: f64,
    close_prob: f64,
    rng: &mut R,
) -> ArcStructure {
    let mut arcs = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    for pos in 0..len {
        let remaining = len - pos;
        // Force closes when exactly enough positions remain.
        if stack.len() as u32 == remaining {
            let left = stack.pop().unwrap();
            arcs.push(Arc::new(left, pos));
            continue;
        }
        let r: f64 = rng.gen();
        if !stack.is_empty() && r < close_prob {
            let left = stack.pop().unwrap();
            arcs.push(Arc::new(left, pos));
        } else if r < close_prob + open_prob && stack.len() as u32 + 1 < remaining {
            stack.push(pos);
        }
        // else: unpaired.
    }
    debug_assert!(stack.is_empty());
    ArcStructure::new(len, arcs).expect("stack process yields valid structures")
}

/// Convenience wrapper around [`random_non_crossing`] with a fixed seed and
/// balanced probabilities; used widely in tests.
pub fn random_structure(len: u32, density: f64, seed: u64) -> ArcStructure {
    let mut rng = StdRng::seed_from_u64(seed);
    random_non_crossing(len, density / 2.0, density / 2.0, &mut rng)
}

/// Generates a sequence consistent with a structure: paired positions get
/// complementary bases (G-C or A-U, chosen at random), unpaired positions
/// get uniform random bases. Deterministic per seed.
pub fn sequence_for(structure: &ArcStructure, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = structure.len() as usize;
    let mut bases = vec![Base::A; n];
    let mut assigned = vec![false; n];
    for arc in structure.arcs() {
        let (l, r) = (arc.left as usize, arc.right as usize);
        let (a, b) = if rng.gen::<bool>() {
            (Base::G, Base::C)
        } else {
            (Base::A, Base::U)
        };
        let (a, b) = if rng.gen::<bool>() { (a, b) } else { (b, a) };
        bases[l] = a;
        bases[r] = b;
        assigned[l] = true;
        assigned[r] = true;
    }
    for (i, done) in assigned.iter().enumerate() {
        if !done {
            bases[i] = Base::ALL[rng.gen_range(0..4)];
        }
    }
    Sequence::new(bases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_shape() {
        let s = worst_case_nested(5);
        assert_eq!(s.len(), 10);
        assert_eq!(s.num_arcs(), 5);
        assert_eq!(s.max_depth(), 5);
        assert_eq!(s.arc(0), Arc::new(4, 5)); // innermost has smallest right endpoint
        assert_eq!(s.arc(4), Arc::new(0, 9));
    }

    #[test]
    fn worst_case_zero_arcs() {
        let s = worst_case_nested(0);
        assert_eq!(s.len(), 0);
        assert_eq!(s.num_arcs(), 0);
    }

    #[test]
    fn hairpin_chain_shape() {
        let s = hairpin_chain(3, 4, 5);
        assert_eq!(s.len(), 3 * (8 + 5));
        assert_eq!(s.num_arcs(), 12);
        assert_eq!(s.max_depth(), 4);
    }

    #[test]
    fn skewed_groups_shape() {
        let s = skewed_groups(3, 2, 3); // depths 2, 5, 8
        assert_eq!(s.num_arcs(), 15);
        assert_eq!(s.len(), 2 * 15);
        assert_eq!(s.max_depth(), 8);
    }

    #[test]
    fn sparse_hairpin_field_shape() {
        // The 23S-scale smoke shape: 2900 nt, 290 shallow hairpins.
        let s = sparse_hairpin_field(2900, 145, 3, 4, 7);
        assert_eq!(s.len(), 2900);
        assert_eq!(s.num_arcs(), 145 * 3);
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn sparse_hairpin_field_is_deterministic_and_scales() {
        let a = sparse_hairpin_field(12_000, 200, 2, 3, 11);
        let b = sparse_hairpin_field(12_000, 200, 2, 3, 11);
        assert_eq!(a.len(), 12_000);
        assert_eq!(a.num_arcs(), 400);
        assert_eq!(
            (0..a.num_arcs()).map(|i| a.arc(i)).collect::<Vec<_>>(),
            (0..b.num_arcs()).map(|i| b.arc(i)).collect::<Vec<_>>()
        );
        let c = sparse_hairpin_field(12_000, 200, 2, 3, 12);
        assert_ne!(
            (0..a.num_arcs()).map(|i| a.arc(i)).collect::<Vec<_>>(),
            (0..c.num_arcs()).map(|i| c.arc(i)).collect::<Vec<_>>(),
            "different seeds should scatter differently"
        );
    }

    #[test]
    fn sparse_skewed_families_shape() {
        let s = sparse_skewed_families(1000, 4, 3, 5, 9); // depths 3, 8, 13, 18
        assert_eq!(s.len(), 1000);
        assert_eq!(s.num_arcs(), 3 + 8 + 13 + 18);
        assert_eq!(s.max_depth(), 18);
        let t = sparse_skewed_families(1000, 4, 3, 5, 9);
        assert_eq!(
            (0..s.num_arcs()).map(|i| s.arc(i)).collect::<Vec<_>>(),
            (0..t.num_arcs()).map(|i| t.arc(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ecoli_preset_hits_exact_counts() {
        let cfg = RrnaConfig::ecoli();
        let s = rrna_like(&cfg, 3);
        assert_eq!(s.len(), 2904);
        assert_eq!(s.num_arcs(), 580);
    }

    #[test]
    fn rrna_like_hits_exact_counts() {
        for seed in [0, 1, 42] {
            let cfg = RrnaConfig {
                len: 500,
                arcs: 90,
                mean_stem: 6,
                nest_bias: 0.5,
            };
            let s = rrna_like(&cfg, seed);
            assert_eq!(s.len(), 500);
            assert_eq!(s.num_arcs(), 90);
        }
    }

    #[test]
    fn rrna_paper_configs() {
        let f = rrna_like(&RrnaConfig::fungus(), 0xF47585);
        assert_eq!(f.len(), 4216);
        assert_eq!(f.num_arcs(), 721);
        let m = rrna_like(&RrnaConfig::malaria(), 0xF48228);
        assert_eq!(m.len(), 4381);
        assert_eq!(m.num_arcs(), 1126);
    }

    #[test]
    fn rrna_like_is_deterministic() {
        let cfg = RrnaConfig {
            len: 300,
            arcs: 60,
            mean_stem: 5,
            nest_bias: 0.6,
        };
        let a = rrna_like(&cfg, 7);
        let b = rrna_like(&cfg, 7);
        assert_eq!(a, b);
        let c = rrna_like(&cfg, 8);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rrna_like_rejects_impossible_budget() {
        let cfg = RrnaConfig {
            len: 10,
            arcs: 6,
            mean_stem: 3,
            nest_bias: 0.5,
        };
        let _ = rrna_like(&cfg, 0);
    }

    #[test]
    fn random_structure_is_valid_and_deterministic() {
        for seed in 0..20 {
            let a = random_structure(64, 0.8, seed);
            let b = random_structure(64, 0.8, seed);
            assert_eq!(a, b);
            assert_eq!(a.len(), 64);
        }
    }

    #[test]
    fn random_structure_density_extremes() {
        let empty = random_structure(40, 0.0, 1);
        assert_eq!(empty.num_arcs(), 0);
        let dense = random_structure(40, 2.0, 1);
        assert!(dense.num_arcs() > 0);
    }

    #[test]
    fn sequence_for_pairs_are_complementary() {
        let s = rrna_like(
            &RrnaConfig {
                len: 200,
                arcs: 40,
                mean_stem: 5,
                nest_bias: 0.5,
            },
            3,
        );
        let seq = sequence_for(&s, 3);
        assert_eq!(seq.len(), 200);
        for arc in s.arcs() {
            let a = seq.base(arc.left as usize);
            let b = seq.base(arc.right as usize);
            assert!(a.can_pair(b), "arc {arc} pairs {a} with {b}");
        }
    }
}
